"""Tests for the metrics registry: families, labels, scoping, stats bridge."""

from __future__ import annotations

import math

import pytest

from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    CounterBackedStats,
    CounterField,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    P2Quantile,
    default_buckets,
)

pytestmark = pytest.mark.telemetry


# ------------------------------------------------------------- instruments


def test_counter_monotone():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(4.0)
    g.inc(0.5)
    g.dec(2.0)
    assert g.value == 2.5


def test_histogram_buckets_are_cumulative():
    h = Histogram(buckets=(1.0, 10.0))
    for v in (0.5, 0.7, 5.0, 50.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(56.2)
    cumulative = h.cumulative_buckets()
    assert [le for le, _ in cumulative] == [1.0, 10.0, math.inf]
    assert [n for _, n in cumulative] == [2, 3, 4]


def test_histogram_quantiles_track_distribution():
    h = Histogram()
    for k in range(1, 1001):
        h.observe(k / 1000.0)
    q = h.quantiles
    assert q[0.5] == pytest.approx(0.5, abs=0.05)
    assert q[0.99] == pytest.approx(0.99, abs=0.05)


def test_p2_quantile_small_samples_exact():
    sketch = P2Quantile(0.5)
    for v in (3.0, 1.0, 2.0):
        sketch.observe(v)
    assert sketch.value == 2.0


def test_default_buckets_span_microseconds_to_kiloseconds():
    buckets = default_buckets()
    assert buckets[0] <= 1e-6
    assert buckets[-1] >= 1e3
    assert list(buckets) == sorted(buckets)


# ---------------------------------------------------------------- families


def test_family_labels_and_samples_sorted():
    reg = MetricsRegistry()
    fam = reg.counter("repro_x_total", "x", labelnames=("server",))
    fam.labels(server="S2").inc()
    fam.labels(server="S1").inc(2)
    assert [(lv, c.value) for lv, c in fam.samples()] == [
        (("S1",), 2.0),
        (("S2",), 1.0),
    ]
    assert fam.total() == 3.0


def test_family_rejects_wrong_labelset():
    reg = MetricsRegistry()
    fam = reg.counter("repro_y_total", "y", labelnames=("server",))
    with pytest.raises(ValueError):
        fam.labels(nope="S1")
    with pytest.raises(ValueError):
        fam.labels()


def test_registry_rejects_type_and_label_mismatch():
    reg = MetricsRegistry()
    reg.counter("repro_z_total", "z")
    with pytest.raises(ValueError):
        reg.gauge("repro_z_total", "z")
    with pytest.raises(ValueError):
        reg.counter("repro_z_total", "z", labelnames=("server",))


def test_registry_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("repro_same_total", "same")
    b = reg.counter("repro_same_total", "same")
    assert a is b


def test_registry_value_falls_back_to_zero():
    reg = MetricsRegistry()
    assert reg.value("repro_absent_total") == 0.0
    fam = reg.counter("repro_present_total", "p", labelnames=("server",))
    fam.labels(server="S1").inc()
    assert reg.value("repro_present_total", server="S1") == 1.0
    assert reg.value("repro_present_total", server="S9") == 0.0


def test_families_listing_is_sorted_by_name():
    reg = MetricsRegistry()
    reg.counter("repro_b_total", "b")
    reg.gauge("repro_a", "a")
    assert [f.name for f in reg.families()] == ["repro_a", "repro_b_total"]


# ----------------------------------------------------------------- scoping


def test_scoped_registry_injects_constant_labels():
    reg = MetricsRegistry()
    s1 = reg.scoped(server="S1")
    s2 = reg.scoped(server="S2")
    fam1 = s1.counter("repro_rounds_total", "rounds")
    fam2 = s2.counter("repro_rounds_total", "rounds")
    fam1.inc()
    fam1.inc()
    fam2.inc()
    root = reg.get("repro_rounds_total")
    assert root is not None
    assert root.total() == 3.0
    assert reg.value("repro_rounds_total", server="S1") == 2.0
    assert reg.value("repro_rounds_total", server="S2") == 1.0


def test_scoped_registry_merges_extra_labelnames():
    reg = MetricsRegistry()
    scoped = reg.scoped(server="S1")
    fam = scoped.counter("repro_outcomes_total", "o", labelnames=("outcome",))
    fam.labels(outcome="ok").inc()
    assert reg.value("repro_outcomes_total", server="S1", outcome="ok") == 1.0


def test_scoped_registry_with_explicit_server_label():
    # A family whose extras already include the scope's constant must
    # produce the identical merged labelset, not a duplicate.
    reg = MetricsRegistry()
    scoped = reg.scoped(server="S1")
    fam = scoped.gauge("repro_err", "e", labelnames=("server",))
    fam.labels(server="S1").set(0.5)
    assert reg.value("repro_err", server="S1") == 0.5


# ---------------------------------------------------------------- the null


def test_null_registry_is_inert():
    null = NullRegistry()
    assert not null.enabled
    fam = null.counter("whatever", "w", labelnames=("a",))
    fam.labels(a="x").inc()
    fam.inc()
    null.gauge("g", "g").set(5.0)
    null.histogram("h", "h").observe(1.0)
    assert null.families() == []
    assert null.value("whatever") == 0.0
    assert null.scoped(server="S1") is not None


# ------------------------------------------------------------ stats bridge


class _Stats(CounterBackedStats):
    prefix = "repro_test_"

    hits = CounterField("hits seen")
    misses = CounterField("misses seen")


def test_counter_backed_stats_reads_and_writes():
    stats = _Stats()
    assert stats.hits == 0
    stats.hits += 1
    stats.hits += 2
    stats.misses += 1
    assert stats.hits == 3
    assert stats.misses == 1
    assert set(stats.fields()) == {"hits", "misses"}


def test_counter_backed_stats_exports_to_shared_registry():
    reg = MetricsRegistry()
    stats = _Stats(reg.scoped(server="S1"))
    stats.hits += 4
    assert reg.value("repro_test_hits_total", server="S1") == 4.0


def test_counter_backed_stats_rejects_decrease():
    stats = _Stats()
    stats.hits += 1
    with pytest.raises(ValueError):
        stats.hits = 0


def test_counter_backed_stats_refuses_null_registry():
    # Stats must keep counting even when telemetry is off: a NullRegistry
    # would silently zero them, so the constructor refuses it.
    with pytest.raises(ValueError):
        _Stats(NULL_REGISTRY)
