"""Property tests for the overload PR's supporting machinery.

Two targets the flash-crowd experiment leans on:

* :meth:`TimeClient._aged_interval` — the client-side reply aging whose
  correctness every accepted (fresh *or* degraded) answer depends on;
* :class:`~repro.network.transport.NetworkStats` counter consistency
  when message taps multiply or drop deliveries — the accounting the
  experiment's shed/goodput numbers sit on.
"""

from __future__ import annotations

import math

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.delay import ConstantDelay
from repro.network.transport import Network
from repro.service.client import TimeClient
from repro.service.messages import RequestKind, TimeReply
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import SimProcess
from repro.simulation.rng import RngRegistry


def reply(value: float, error: float) -> TimeReply:
    return TimeReply(
        request_id=1,
        server="S",
        destination="C",
        clock_value=value,
        error=error,
        kind=RequestKind.CLIENT,
    )


def client_with(delta: float) -> TimeClient:
    return TimeClient(SimulationEngine(), "C", network=None, delta=delta)


class TestAgedInterval:
    """The edges behave exactly as documented, for any claimed δ ≥ 0."""

    @given(
        value=st.floats(-1e3, 1e3),
        error=st.floats(0.0, 10.0),
        delta=st.floats(0.0, 0.5),
        rtt=st.floats(0.0, 1.0),
        elapsed=st.floats(0.0, 100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_edge_formulas(self, value, error, delta, rtt, elapsed):
        client = client_with(delta)
        interval = client._aged_interval(
            reply(value, error), rtt, received_local=0.0, local_now=elapsed
        )
        # The trailing edge ages by elapsed − δ·elapsed: slower than real
        # time could have passed, so it can never overtake the truth.
        assert math.isclose(
            interval.lo,
            value - error + elapsed * (1.0 - delta),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        # The leading edge absorbs the (1+δ)-inflated round trip and ages
        # by elapsed + δ·elapsed.
        assert math.isclose(
            interval.hi,
            value + error + (1.0 + delta) * rtt + elapsed * (1.0 + delta),
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(
        error=st.floats(0.0, 10.0),
        delta=st.floats(0.0, 0.5),
        rtt=st.floats(0.0, 1.0),
        elapsed=st.floats(0.0, 100.0),
        more_elapsed=st.floats(0.0, 100.0),
        more_rtt=st.floats(0.0, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_width_monotone_in_elapsed_and_rtt(
        self, error, delta, rtt, elapsed, more_elapsed, more_rtt
    ):
        client = client_with(delta)

        def width(r, e):
            interval = client._aged_interval(
                reply(0.0, error), r, received_local=0.0, local_now=e
            )
            return interval.hi - interval.lo

        base = width(rtt, elapsed)
        slack = 1e-9 * max(1.0, abs(base))  # float association noise only
        assert width(rtt + more_rtt, elapsed) >= base - slack
        assert width(rtt, elapsed + more_elapsed) >= base - slack

    @given(
        value=st.floats(-1e3, 1e3),
        error=st.floats(0.0, 10.0),
        delta=st.floats(0.0, 0.5),
        rtt=st.floats(0.0, 1.0),
        elapsed=st.floats(0.0, 100.0),
        offset=st.floats(-1.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_containment_oracle(
        self, value, error, delta, rtt, elapsed, offset
    ):
        """If the reply's interval contained true time when it was
        received, the aged interval contains true time now (client clock
        perfect, claimed δ ≥ the actual drift 0 — Theorem 1, client side).
        """
        client = client_with(delta)
        true_at_receipt = value + offset * error  # anywhere in ⟨C ± E⟩
        interval = client._aged_interval(
            reply(value, error), rtt, received_local=5.0, local_now=5.0 + elapsed
        )
        truth_now = true_at_receipt + elapsed
        assert interval.lo <= truth_now + 1e-9
        assert interval.hi >= truth_now - 1e-9


class _Sink(SimProcess):
    def on_message(self, message, sender):
        pass


class TestNetworkStatsUnderTaps:
    """sent/tapped/delivered/dropped stay mutually consistent when a tap
    multiplies each delivery k-fold (k = 0 drops everything)."""

    @given(copies=st.integers(0, 4), sends=st.integers(1, 15))
    @settings(max_examples=40, deadline=None)
    def test_multiplying_tap_accounting(self, copies, sends):
        engine = SimulationEngine()
        graph = nx.Graph([("A", "B")])
        network = Network(
            engine, graph, RngRegistry(seed=0), lan_delay=ConstantDelay(0.001)
        )
        for name in ("A", "B"):
            sink = _Sink(engine, name)
            network.register(sink)
            sink.start()
        network.add_tap(
            lambda source, destination, message, delay: [(message, delay)] * copies
        )
        for k in range(sends):
            network.send("A", "B", f"m{k}")
        engine.run(until=1.0)
        stats = network.stats
        assert stats.sent == sends
        assert stats.tapped == sends
        assert stats.delivered == sends * copies
        assert stats.dropped == (sends if copies == 0 else 0)

    def test_pass_through_tap_counts_nothing(self):
        engine = SimulationEngine()
        graph = nx.Graph([("A", "B")])
        network = Network(
            engine, graph, RngRegistry(seed=0), lan_delay=ConstantDelay(0.001)
        )
        for name in ("A", "B"):
            sink = _Sink(engine, name)
            network.register(sink)
            sink.start()
        network.add_tap(lambda source, destination, message, delay: None)
        for k in range(5):
            network.send("A", "B", f"m{k}")
        engine.run(until=1.0)
        assert network.stats.tapped == 0
        assert network.stats.delivered == 5
        assert network.stats.dropped == 0
