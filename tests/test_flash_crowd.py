"""The flash-crowd experiment: smoke (tier-1) and full acceptance.

The smoke test runs a shortened crowd — hot enough to overload the mesh
(600 q/s offered against ~500 q/s of fresh capacity) but too brief for
the plain arm's sync-window starvation check to trip, so it asserts the
*defended* arm's guarantees plus determinism.  The ``overload``-marked
test runs the real 120 s profile over the paper seeds and asserts the
full acceptance verdict, including plain-arm starvation.
"""

from __future__ import annotations

import pytest

from repro.experiments import flash_crowd
from repro.load.workload import FlashCrowdProfile

SMOKE_HORIZON = 30.0
SMOKE_PROFILE = FlashCrowdProfile(
    base_rate=15.0, crowd_rate=300.0, crowd_start=8.0, crowd_end=22.0, ramp=1.0
)


class TestProfile:
    def test_rate_shape(self):
        profile = SMOKE_PROFILE
        assert profile.rate_at(0.0) == 15.0
        assert profile.rate_at(10.0) == 300.0  # plateau
        assert profile.rate_at(29.0) == 15.0
        assert profile.rate_at(8.5) == pytest.approx(157.5)  # mid-ramp
        assert profile.in_crowd(10.0)
        assert not profile.in_crowd(8.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdProfile(crowd_start=10.0, crowd_end=11.0, ramp=2.0)
        with pytest.raises(ValueError):
            FlashCrowdProfile(ramp=-1.0)


class TestFlashCrowdSmoke:
    @pytest.fixture(scope="class")
    def comparison(self):
        return flash_crowd.run_comparison(
            11, horizon=SMOKE_HORIZON, profile=SMOKE_PROFILE
        )

    def test_crowd_actually_overloads(self, comparison):
        # The crowd pushed both arms past the fresh-serving capacity:
        # the plain arm shed silently, the controlled arm shed loudly.
        assert comparison.plain.shed_silent > 0
        assert comparison.controlled.busy_replies > 0

    def test_controlled_arm_keeps_every_invariant(self, comparison):
        assert comparison.controlled.monitor_violations == 0
        assert comparison.controlled.monitor_checks > 0

    def test_degraded_replies_engage_and_stay_correct(self, comparison):
        controlled = comparison.controlled
        assert controlled.degraded_replies > 0
        assert controlled.degraded_correct == controlled.degraded_replies

    def test_no_arm_ever_returns_a_wrong_interval(self, comparison):
        assert comparison.plain.incorrect_results == 0
        assert comparison.controlled.incorrect_results == 0

    def test_controlled_goodput_dominates(self, comparison):
        assert comparison.controlled.goodput > comparison.plain.goodput
        assert (
            comparison.controlled.p99_latency < comparison.plain.p99_latency
        )

    def test_deterministic_for_a_seed(self, comparison):
        again = flash_crowd.run_arm(
            True, 11, horizon=SMOKE_HORIZON, profile=SMOKE_PROFILE
        )
        assert again == comparison.controlled
        assert again.digest == comparison.controlled.digest

    def test_seed_changes_the_run(self):
        other = flash_crowd.run_arm(
            True, 12, horizon=SMOKE_HORIZON, profile=SMOKE_PROFILE
        )
        base = flash_crowd.run_arm(
            True, 11, horizon=SMOKE_HORIZON, profile=SMOKE_PROFILE
        )
        assert other.digest != base.digest


@pytest.mark.overload
class TestFlashCrowdAcceptance:
    """The full 120 s profile, three seeds — the ISSUE's acceptance bar."""

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_comparison_passes(self, seed):
        comparison = flash_crowd.run_comparison(seed)
        plain, controlled = comparison.plain, comparison.controlled
        # The undefended arm's sync plane starves under the crowd…
        assert comparison.plain_starved, (
            f"seed {seed}: expected plain-arm sync-plane violations, "
            f"got {plain.sync_plane_violations}"
        )
        # …while the defended arm stays entirely clean…
        assert controlled.monitor_violations == 0
        # …degrades instead of lying…
        assert controlled.degraded_replies > 0
        assert controlled.degraded_correct == controlled.degraded_replies
        assert plain.incorrect_results == 0
        assert controlled.incorrect_results == 0
        # …and still wins on throughput and tail latency.
        assert controlled.goodput > plain.goodput
        assert controlled.p99_latency < plain.p99_latency
        assert comparison.passed
