"""Tests for the configuration validator."""

from __future__ import annotations

import networkx as nx

from repro.network.delay import UniformDelay
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec
from repro.service.validation import Severity, validate_specs


def codes(findings):
    return [f.code for f in findings]


class TestValidateSpecs:
    def test_clean_config_no_findings(self):
        specs = [
            ServerSpec("S1", delta=1e-5, skew=5e-6),
            ServerSpec("S2", delta=1e-5, skew=-5e-6),
        ]
        findings = validate_specs(
            full_mesh(2), specs, tau=60.0, lan_delay=UniformDelay(0.05)
        )
        assert findings == []

    def test_skew_exceeding_delta_is_error(self):
        specs = [
            ServerSpec("S1", delta=1e-5, skew=2e-5),
            ServerSpec("S2", delta=1e-5, skew=0.0),
        ]
        findings = validate_specs(full_mesh(2), specs, tau=60.0)
        assert "skew-exceeds-delta" in codes(findings)
        assert findings[0].severity is Severity.ERROR
        assert findings[0].subject == "S1"

    def test_skew_at_bound_is_warning(self):
        specs = [
            ServerSpec("S1", delta=1e-5, skew=0.99e-5),
            ServerSpec("S2", delta=1e-5, skew=0.0),
        ]
        findings = validate_specs(full_mesh(2), specs, tau=60.0)
        assert "skew-at-bound" in codes(findings)

    def test_zero_delta_drifting_is_error(self):
        specs = [
            ServerSpec("S1", delta=0.0, skew=1e-6),
            ServerSpec("S2", delta=1e-5, skew=0.0),
        ]
        findings = validate_specs(full_mesh(2), specs, tau=60.0)
        assert "zero-delta-drifting" in codes(findings)

    def test_isolated_polling_server(self):
        graph = nx.Graph()
        graph.add_nodes_from(["S1", "S2"])
        graph.add_edge("S1", "S2")
        graph.add_node("S3")
        specs = [
            ServerSpec("S1", delta=1e-5),
            ServerSpec("S2", delta=1e-5),
            ServerSpec("S3", delta=1e-5),
        ]
        findings = validate_specs(graph, specs, tau=60.0)
        assert any(
            f.code == "isolated-server" and f.subject == "S3" for f in findings
        )

    def test_tau_below_xi(self):
        specs = [ServerSpec("S1", delta=1e-5), ServerSpec("S2", delta=1e-5)]
        findings = validate_specs(
            full_mesh(2), specs, tau=0.05, lan_delay=UniformDelay(0.05)
        )
        assert "tau-vs-xi" in codes(findings)

    def test_round_timeout_at_tau(self):
        specs = [ServerSpec("S1", delta=1e-5), ServerSpec("S2", delta=1e-5)]
        findings = validate_specs(
            full_mesh(2), specs, tau=60.0, round_timeout=60.0
        )
        assert "timeout-vs-tau" in codes(findings)

    def test_no_polling_servers(self):
        specs = [
            ServerSpec("S1", reference=True),
            ServerSpec("S2", delta=1e-5, polls=False),
        ]
        findings = validate_specs(full_mesh(2), specs, tau=60.0)
        assert "no-polling-servers" in codes(findings)

    def test_custom_clock_factory_skipped(self):
        """The validator cannot judge a custom clock; no false alarms."""
        specs = [
            ServerSpec("S1", delta=0.0, clock_factory=lambda rng, name: None),
            ServerSpec("S2", delta=1e-5),
        ]
        findings = validate_specs(full_mesh(2), specs, tau=60.0)
        assert "zero-delta-drifting" not in codes(findings)

    def test_reference_specs_skipped(self):
        specs = [
            ServerSpec("S1", reference=True, initial_error=0.01),
            ServerSpec("S2", delta=1e-5, skew=5e-6),
        ]
        findings = validate_specs(full_mesh(2), specs, tau=60.0)
        assert all(f.subject != "S1" for f in findings)

    def test_errors_sort_first(self):
        specs = [
            ServerSpec("S1", delta=1e-5, skew=2e-5),   # error
            ServerSpec("S2", delta=1e-5, skew=0.99e-5),  # warning
        ]
        findings = validate_specs(
            full_mesh(2), specs, tau=0.01, lan_delay=UniformDelay(0.05)
        )
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities, key=lambda s: {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}[s]
        )
