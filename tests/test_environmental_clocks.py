"""Unit tests for the environmentally-driven clock models."""

from __future__ import annotations

import math

import pytest

from repro.clocks.environmental import AgingClock, TemperatureDriftClock


class TestTemperatureDriftClock:
    def test_zero_amplitude_is_constant_drift(self):
        clock = TemperatureDriftClock(base_skew=1e-4, amplitude=0.0)
        assert clock.read(1000.0) == pytest.approx(1000.0 * (1 + 1e-4))

    def test_full_cycle_integrates_to_base_drift(self):
        """Over a whole period, the sinusoid contributes nothing."""
        clock = TemperatureDriftClock(
            base_skew=1e-5, amplitude=5e-5, period=3600.0
        )
        value = clock.read(3600.0)
        assert value == pytest.approx(3600.0 * (1 + 1e-5), rel=1e-9)

    def test_half_cycle_maximal_excursion(self):
        """Over the first half cycle (phase 0), sin is positive: the clock
        gains amplitude·period/π above the base drift."""
        amplitude, period = 4e-5, 1000.0
        clock = TemperatureDriftClock(amplitude=amplitude, period=period)
        value = clock.read(period / 2.0)
        gained = value - period / 2.0
        assert gained == pytest.approx(amplitude * period / math.pi, rel=1e-9)

    def test_instantaneous_skew_bounded(self):
        clock = TemperatureDriftClock(
            base_skew=1e-5, amplitude=3e-5, period=86400.0
        )
        for t in range(0, 86400, 3600):
            assert abs(clock.skew_at(float(t))) <= clock.worst_case_skew + 1e-15

    def test_worst_case_skew(self):
        clock = TemperatureDriftClock(base_skew=-2e-5, amplitude=3e-5)
        assert clock.worst_case_skew == pytest.approx(5e-5)

    def test_set_preserves_environment_phase(self):
        """Resetting the clock does not reset the temperature cycle."""
        period = 1000.0
        clock = TemperatureDriftClock(amplitude=1e-4, period=period)
        skew_before = clock.skew_at(600.0)
        clock.read(600.0)
        clock.set(600.0, 0.0)
        # Right after the reset the instantaneous skew is unchanged.
        assert clock.skew_at(600.0) == pytest.approx(skew_before, abs=1e-12)
        assert clock.read(600.0) == pytest.approx(0.0)

    def test_drift_bound_holds_with_valid_delta(self):
        """A claimed δ >= worst_case_skew is a valid bound (Section 2.2)."""
        clock = TemperatureDriftClock(
            base_skew=1e-5, amplitude=2e-5, period=7200.0
        )
        delta = clock.worst_case_skew
        previous_t, previous_v = 0.0, clock.read(0.0)
        for t in range(600, 36000, 600):
            value = clock.read(float(t))
            elapsed = t - previous_t
            assert abs(value - previous_v - elapsed) <= delta * elapsed + 1e-12
            previous_t, previous_v = float(t), value

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TemperatureDriftClock(amplitude=-1.0)
        with pytest.raises(ValueError):
            TemperatureDriftClock(amplitude=1.0, period=0.0)


class TestAgingClock:
    def test_zero_aging_is_constant_drift(self):
        clock = AgingClock(initial_skew=2e-5, aging_rate=0.0)
        assert clock.read(1000.0) == pytest.approx(1000.0 * (1 + 2e-5))

    def test_quadratic_integration(self):
        """With skew = rate·t, the drift integral is rate·t²/2."""
        rate = 1e-9
        clock = AgingClock(initial_skew=0.0, aging_rate=rate)
        t = 10_000.0
        assert clock.read(t) - t == pytest.approx(0.5 * rate * t * t, rel=1e-9)

    def test_clamp_at_terminal_skew(self):
        clock = AgingClock(
            initial_skew=0.0, aging_rate=1e-6, terminal_skew=1e-3
        )
        clamp_at = 1e-3 / 1e-6  # 1000 s
        assert clock.skew_at(500.0) == pytest.approx(5e-4)
        assert clock.skew_at(2000.0) == pytest.approx(1e-3)
        # After the clamp the clock advances linearly at the terminal skew.
        v1 = clock.read(clamp_at + 100.0)
        v2 = clock.read(clamp_at + 200.0)
        assert v2 - v1 == pytest.approx(100.0 * (1 + 1e-3), rel=1e-9)

    def test_negative_aging(self):
        clock = AgingClock(
            initial_skew=1e-4, aging_rate=-1e-7, terminal_skew=-1e-4
        )
        assert clock.skew_at(1000.0) == pytest.approx(0.0, abs=1e-12)
        assert clock.skew_at(10_000.0) == pytest.approx(-1e-4)

    def test_aging_survives_resets(self):
        """Resetting the value does not rejuvenate the crystal."""
        clock = AgingClock(initial_skew=0.0, aging_rate=1e-6)
        clock.read(1000.0)
        clock.set(1000.0, 0.0)
        assert clock.skew_at(1000.0) == pytest.approx(1e-3)
        # Over [1000, 1100] the skew ramps 1.0e-3 -> 1.1e-3: mean 1.05e-3.
        gained = clock.read(1100.0) - 100.0
        assert gained == pytest.approx(100.0 * 1.05e-3, rel=1e-6)

    def test_unreachable_terminal_rejected(self):
        with pytest.raises(ValueError):
            AgingClock(initial_skew=1e-4, aging_rate=1e-7, terminal_skew=0.0)
        with pytest.raises(ValueError):
            AgingClock(initial_skew=0.0, aging_rate=-1e-7, terminal_skew=1e-4)
