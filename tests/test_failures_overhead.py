"""Tests for the failure-injection matrix and the overhead sweeps."""

from __future__ import annotations

import pytest

from repro.experiments import failures, overhead


class TestFailureMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return {
            (o.failure, o.policy, o.recovery): o
            for o in failures.run_matrix(horizon=2400.0)
        }

    def test_all_cells_present(self, matrix):
        assert len(matrix) == 12

    def test_healthy_servers_survive_mm(self, matrix):
        for key, outcome in matrix.items():
            if outcome.policy == "MM":
                assert outcome.healthy_correct, key

    def test_recovery_bounds_stopped_clock(self, matrix):
        without = matrix[("stopped", "MM", False)]
        with_rec = matrix[("stopped", "MM", True)]
        assert not without.faulty_recovered
        assert with_rec.faulty_recovered
        assert with_rec.faulty_final_offset < without.faulty_final_offset / 10

    def test_recovery_bounds_racing_clock(self, matrix):
        without = matrix[("racing", "IM", False)]
        with_rec = matrix[("racing", "IM", True)]
        assert not without.faulty_recovered
        assert with_rec.faulty_recovered

    def test_stuck_clock_unfixable_but_harmless_here(self, matrix):
        """A stuck clock with healthy natural drift never goes far enough
        to alarm anyone; its hazard is the silent bookkeeping corruption
        tested in test_server.py."""
        outcome = matrix[("stuck-on-reset", "MM", True)]
        assert outcome.inconsistencies == 0
        assert outcome.faulty_recovered  # trivially: tiny natural drift

    def test_failures_raise_inconsistency_alarms(self, matrix):
        for failure in ("stopped", "racing"):
            outcome = matrix[(failure, "MM", False)]
            assert outcome.inconsistencies > 0


class TestOverheadSweeps:
    def test_message_cost_scales_inverse_tau(self):
        rows = overhead.sweep_tau(taus=(30.0, 60.0, 120.0))
        assert rows[0].messages_per_server_hour == pytest.approx(
            2 * rows[1].messages_per_server_hour, rel=0.1
        )
        assert rows[1].messages_per_server_hour == pytest.approx(
            2 * rows[2].messages_per_server_hour, rel=0.1
        )

    def test_accuracy_degrades_with_tau(self):
        rows = overhead.sweep_tau(taus=(30.0, 240.0))
        assert rows[1].worst_offset > rows[0].worst_offset
        assert rows[1].mean_error > rows[0].mean_error

    def test_loss_degrades_gracefully(self):
        rows = overhead.sweep_loss(losses=(0.0, 0.5), horizon=2400.0)
        clean, lossy = rows
        assert clean.reply_rate > 0.95
        assert lossy.reply_rate < 0.5
        # Correctness survives; the error floor merely rises.
        assert clean.correct and lossy.correct
        assert lossy.mean_error >= clean.mean_error

    def test_heavy_loss_still_correct(self):
        rows = overhead.sweep_loss(losses=(0.8,), horizon=2400.0)
        assert rows[0].correct
