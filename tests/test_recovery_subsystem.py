"""Tests for the crash-recovery / self-stabilizing subsystem.

Covers the stable store (checksums, torn writes, corruption), the gossip
census, the stabilizer's vetting pipeline, the recovery-stats accounting
invariant under lost messages and mid-recovery departures, the widened
arbiter exclusion (both liars of a Figure 4 pair banned), the monitor's
crash-window exemption, and the figure4_repair acceptance scenario.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.mm import MMPolicy
from repro.core.recovery import RecoveryStrategy, ThirdServerRecovery
from repro.experiments import figure4_repair
from repro.faults import FaultSchedule, ServerCrash, attach_chaos
from repro.network.delay import UniformDelay
from repro.recovery import (
    Checkpoint,
    ConsistencyCensus,
    SelfStabilizingRecovery,
    StabilizerConfig,
    StableStore,
)
from repro.service.builder import ServerSpec, build_service
from repro.service.messages import RequestKind, TimeReply, TimeRequest


def _checkpoint(**overrides) -> Checkpoint:
    base = dict(
        server="S1",
        clock_value=123.456,
        error=0.025,
        rate_estimate=0.0,
        epoch=2,
        sequence=7,
    )
    base.update(overrides)
    return Checkpoint(**base)


class TestStableStore:
    def test_roundtrip(self):
        store = StableStore()
        checkpoint = _checkpoint()
        store.write(checkpoint)
        assert store.read("S1") == checkpoint
        assert store.stats.writes == 1
        assert store.stats.read_hits == 1

    def test_missing_slot_is_a_miss(self):
        store = StableStore()
        assert store.read("nobody") is None
        assert store.stats.read_misses == 1
        assert not store.has_slot("nobody")

    def test_corruption_fails_checksum(self):
        store = StableStore()
        store.write(_checkpoint())
        assert store.corrupt("S1")
        assert store.read("S1") is None
        assert store.stats.checksum_failures == 1
        # A fresh write heals the slot.
        store.write(_checkpoint(sequence=8))
        assert store.read("S1").sequence == 8

    def test_corrupting_an_empty_slot_reports_false(self):
        assert not StableStore().corrupt("S1")

    def test_torn_write_detected_on_read(self):
        store = StableStore()
        store.tear("S1")
        store.write(_checkpoint())
        assert store.has_slot("S1")
        assert store.read("S1") is None
        assert store.stats.torn_writes == 1
        assert store.stats.checksum_failures == 1
        # Only the armed write is torn; the next one is fine.
        store.write(_checkpoint(sequence=8))
        assert store.read("S1") is not None

    def test_wipe(self):
        store = StableStore()
        store.write(_checkpoint())
        store.wipe("S1")
        assert not store.has_slot("S1")
        assert store.read("S1") is None

    def test_decode_rejects_malformed_payload(self):
        with pytest.raises(ValueError):
            Checkpoint.decode("not|a|checkpoint")
        assert Checkpoint.decode(_checkpoint().encode()) == _checkpoint()

    def test_slots_are_independent(self):
        store = StableStore()
        store.write(_checkpoint(server="S1"))
        store.write(_checkpoint(server="S2", epoch=9))
        store.corrupt("S1")
        assert store.read("S1") is None
        assert store.read("S2").epoch == 9


class TestConsistencyCensus:
    def test_direct_observation_and_export(self):
        census = ConsistencyCensus(owner="A")
        census.observe("B", True, now_local=100.0)
        census.observe("C", False, now_local=105.0)
        exported = census.export(now_local=110.0)
        assert ("A", "B", True, 10.0) in exported
        assert ("A", "C", False, 5.0) in exported

    def test_gossip_relay_accumulates_age(self):
        a = ConsistencyCensus(owner="A")
        b = ConsistencyCensus(owner="B")
        a.observe("C", False, now_local=100.0)
        # B merges A's export 20 local seconds later (age 10 on the wire).
        b.merge(a.export(now_local=110.0), now_local=500.0)
        exported = b.export(now_local=520.0)
        assert ("A", "C", False, 30.0) in exported  # 10 carried + 20 here

    def test_own_verdicts_not_clobbered_by_gossip(self):
        a = ConsistencyCensus(owner="A")
        a.observe("B", True, now_local=100.0)
        a.merge([("A", "B", False, 0.0)], now_local=100.0)
        entry = {(e.observer, e.subject): e for e in a.fresh_entries(100.0)}
        assert entry[("A", "B")].ok is True
        assert entry[("A", "B")].direct is True

    def test_freshness_horizon_expires_verdicts(self):
        census = ConsistencyCensus(owner="A", horizon=50.0)
        census.observe("B", True, now_local=100.0)
        assert census.fresh_entries(149.0)
        assert not census.fresh_entries(151.0)
        # An already-expired relay is dropped on arrival.
        census.merge([("C", "D", True, 60.0)], now_local=100.0)
        assert not [
            e for e in census.fresh_entries(100.0) if e.observer == "C"
        ]

    def test_edge_verdict_is_the_conjunction(self):
        census = ConsistencyCensus(owner="A")
        census.observe("B", True, now_local=100.0)
        census.merge([("B", "A", False, 0.0)], now_local=100.0)
        verdicts = census.edge_verdicts(100.0)
        assert verdicts[frozenset({"A", "B"})] is False

    def test_support_excludes_requested_edges(self):
        census = ConsistencyCensus(owner="G1")
        census.observe("G2", False, now_local=100.0)  # G1's own skewed view
        census.merge(
            [("G2", "G3", True, 0.0), ("G2", "G4", True, 0.0)],
            now_local=100.0,
        )
        # Counting G1's edge, G2 looks 2/3; excluding it, unanimous.
        assert census.support("G2", 100.0) == pytest.approx(2.0 / 3.0)
        assert census.support("G2", 100.0, exclude=("G1",)) == 1.0

    def test_support_none_without_data(self):
        census = ConsistencyCensus(owner="G1")
        assert census.support("G2", 100.0) is None

    def test_groups_and_partitioned(self):
        census = ConsistencyCensus(owner="A")
        census.observe("B", True, now_local=10.0)
        census.merge(
            [("B", "C", False, 0.0), ("C", "B", False, 0.0)], now_local=10.0
        )
        groups = census.groups(["A", "B", "C"], 10.0)
        assert ("A", "B") in groups and ("C",) in groups
        assert census.partitioned(["A", "B", "C"], 10.0)

    def test_forget_drops_both_directions(self):
        census = ConsistencyCensus(owner="A")
        census.observe("B", True, now_local=10.0)
        census.merge([("B", "A", True, 0.0)], now_local=10.0)
        census.forget("B")
        assert not census.fresh_entries(10.0)


class _StubServer:
    """The slice of SelfStabilizingServer the stabilizer consults."""

    def __init__(self, now_local: float = 1000.0):
        self._now = now_local
        self.last_merge_local = None
        self.census = ConsistencyCensus(owner="G1")
        self.dissonant = set()
        self.epochs = {}

    def clock_value(self) -> float:
        return self._now

    def dissonant_neighbours(self):
        return set(self.dissonant)

    def epoch_of(self, name: str) -> int:
        return self.epochs.get(name, 0)


class TestSelfStabilizingRecovery:
    NEIGHBOURS = ["B1", "B2", "C", "D"]

    def test_unbound_behaves_like_third_server_rule(self):
        strategy = SelfStabilizingRecovery()
        assert (
            strategy.choose_arbiter("G1", self.NEIGHBOURS, ("B1",)) == "B2"
        )

    def test_hysteresis_holds_after_a_merge(self):
        strategy = SelfStabilizingRecovery()
        server = _StubServer(now_local=1000.0)
        server.last_merge_local = 900.0  # 100 s ago < merge_hold 240 s
        strategy.bind(server)
        assert strategy.choose_arbiter("G1", self.NEIGHBOURS, ("B1",)) is None
        assert strategy.stabilizer_stats.held == 1

    def test_consonance_veto_removes_dissonant_candidates(self):
        strategy = SelfStabilizingRecovery()
        server = _StubServer()
        server.dissonant = {"B2"}
        server.census.merge(
            [("C", "D", True, 0.0), ("D", "C", True, 0.0)],
            now_local=server.clock_value(),
        )
        strategy.bind(server)
        arbiter = strategy.choose_arbiter("G1", self.NEIGHBOURS, ("B1",))
        assert arbiter in {"C", "D"}
        assert strategy.stabilizer_stats.vetoed_dissonant == 1

    def test_census_majority_veto(self):
        strategy = SelfStabilizingRecovery()
        server = _StubServer()
        server.census.merge(
            [
                ("B2", "C", False, 0.0),  # B2 condemned by the census
                ("B2", "D", False, 0.0),
                ("C", "D", True, 0.0),
                ("C", "X", True, 0.0),  # C and D each carry a clear
                ("D", "X", True, 0.0),  # majority of ok edges
            ],
            now_local=server.clock_value(),
        )
        strategy.bind(server)
        arbiter = strategy.choose_arbiter("G1", self.NEIGHBOURS, ("B1",))
        assert arbiter in {"C", "D"}
        assert strategy.stabilizer_stats.vetoed_support == 1
        assert strategy.stabilizer_stats.census_choices == 1

    def test_recovering_servers_own_edges_do_not_veto(self):
        # G1 is stranded in the wrong group: it judges everyone
        # inconsistent.  Its own edges must not veto the good arbiter.
        strategy = SelfStabilizingRecovery()
        server = _StubServer()
        server.census.observe("C", False, now_local=server.clock_value())
        server.census.merge(
            [("C", "D", True, 0.0)], now_local=server.clock_value()
        )
        strategy.bind(server)
        assert strategy.choose_arbiter("G1", ["B1", "C"], ("B1",)) == "C"

    def test_epoch_breaks_support_ties(self):
        strategy = SelfStabilizingRecovery()
        server = _StubServer()
        server.census.merge(
            [("C", "X", True, 0.0), ("D", "X", True, 0.0)],
            now_local=server.clock_value(),
        )
        server.epochs = {"C": 1, "D": 3}
        strategy.bind(server)
        assert strategy.choose_arbiter("G1", self.NEIGHBOURS, ("B1", "B2")) == "D"

    def test_censusless_fallback(self):
        strategy = SelfStabilizingRecovery()
        strategy.bind(_StubServer())
        arbiter = strategy.choose_arbiter("G1", self.NEIGHBOURS, ("B1",))
        assert arbiter == "B2"  # exclusion-based pick, no census data
        assert strategy.stabilizer_stats.fallback_choices == 1

    def test_no_arbiter_when_everything_vetoed(self):
        strategy = SelfStabilizingRecovery()
        server = _StubServer()
        server.dissonant = {"B2", "C", "D"}
        strategy.bind(server)
        assert strategy.choose_arbiter("G1", self.NEIGHBOURS, ("B1",)) is None
        assert strategy.stats.no_arbiter == 1


def _recovery_mesh(seed: int = 0, **build_kwargs):
    """A 3-mesh where A/C are good and B drifts far beyond its claim —
    every good server soon finds B inconsistent and starts recoveries."""
    graph = nx.complete_graph(["A", "B", "C"])
    specs = [
        ServerSpec("A", delta=1e-5, skew=+2e-6),
        ServerSpec("B", delta=1e-5, skew=+5e-3),
        ServerSpec("C", delta=1e-5, skew=0.0),
    ]
    return build_service(
        graph,
        specs,
        policy=MMPolicy(),
        tau=30.0,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        recovery_factory=lambda name: ThirdServerRecovery(),
        trace_enabled=True,
        **build_kwargs,
    )


class TestRecoveryStatsInvariant:
    """Satellite: ``started == completed + timed_out + in_flight`` always."""

    def _assert_all_balanced(self, service):
        for name, server in service.servers.items():
            stats = server.recovery.stats
            assert stats.balanced, f"{name}: {stats}"

    def test_balanced_on_the_happy_path(self):
        service = _recovery_mesh()
        service.run_until(900.0)
        stats = service.servers["A"].recovery.stats
        assert stats.recoveries_started > 0
        assert stats.recoveries_completed > 0
        self._assert_all_balanced(service)

    def test_balanced_under_lost_recovery_replies(self):
        service = _recovery_mesh()

        def drop_recovery_replies(source, destination, message, delay):
            if (
                isinstance(message, TimeReply)
                and message.kind is RequestKind.RECOVERY
            ):
                return []
            return None

        service.network.add_tap(drop_recovery_replies)
        service.run_until(900.0)
        stats = service.servers["A"].recovery.stats
        assert stats.recoveries_started > 0
        assert stats.recoveries_completed == 0
        assert stats.recoveries_timed_out > 0
        self._assert_all_balanced(service)

    def test_balanced_under_lost_recovery_requests(self):
        service = _recovery_mesh()

        def drop_recovery_requests(source, destination, message, delay):
            if (
                isinstance(message, TimeRequest)
                and message.kind is RequestKind.RECOVERY
            ):
                return []
            return None

        service.network.add_tap(drop_recovery_requests)
        service.run_until(900.0)
        stats = service.servers["A"].recovery.stats
        assert stats.recoveries_started > 0
        assert stats.recoveries_completed == 0
        assert stats.recoveries_timed_out > 0
        self._assert_all_balanced(service)

    def test_balanced_when_server_leaves_mid_recovery(self):
        # The in-flight window is tiny (the round timeout), so the
        # departure is hooked to fire the instant a recovery starts.
        service = _recovery_mesh()
        server = service.servers["A"]
        original = server.recovery.note_started

        def start_then_leave():
            original()
            assert server._recovery_inflight is not None
            server.leave()

        server.recovery.note_started = start_then_leave
        service.run_until(900.0)
        stats = server.recovery.stats
        assert stats.recoveries_started >= 1
        assert stats.recoveries_timed_out >= 1
        assert stats.recoveries_in_flight == 0
        assert server.departed
        self._assert_all_balanced(service)


class _SpyRecovery(RecoveryStrategy):
    """Records every exclusion set it is handed; never recovers."""

    def __init__(self):
        super().__init__()
        self.calls = []

    def choose_arbiter(self, server_name, neighbours, conflicting):
        self.calls.append(tuple(conflicting))
        return None


def _star_service(recovery_factory):
    """A with three neighbours (B1, B2, C); no polling noise (huge tau)."""
    graph = nx.Graph()
    graph.add_edges_from([("A", "B1"), ("A", "B2"), ("A", "C")])
    specs = [
        ServerSpec(name, delta=1e-5, skew=0.0)
        for name in ["A", "B1", "B2", "C"]
    ]
    return build_service(
        graph,
        specs,
        policy=MMPolicy(),
        tau=10_000.0,
        seed=0,
        lan_delay=UniformDelay(0.01),
        recovery_factory=recovery_factory,
        trace_enabled=True,
    )


class TestArbiterExclusionWidening:
    """Satellite: every neighbour flagged this round *or* last round is
    banned from arbitration — not just the reply that triggered it."""

    def test_previous_round_flags_are_banned(self):
        spies = {}

        def factory(name):
            spies[name] = _SpyRecovery()
            return spies[name]

        service = _star_service(factory)
        server = service.servers["A"]
        server._prev_round_inconsistent = {"B1"}
        server._note_inconsistency(("B2",))
        # First attempt: both liars banned.
        assert set(spies["A"].calls[0]) == {"B2", "B1"}
        # The spy returned None with a widened ban, so the fallback
        # retries with only the triggering event's set.
        assert spies["A"].calls[1] == ("B2",)

    def test_arbiter_avoids_the_second_liar(self):
        service = _star_service(lambda name: ThirdServerRecovery())
        server = service.servers["A"]
        server._prev_round_inconsistent = {"B1"}
        server._note_inconsistency(("B2",))
        starts = service.trace.filter(kind="recovery_start")
        assert starts and starts[-1].data["arbiter"] == "C"

    def test_fallback_when_every_neighbour_is_flagged(self):
        # A server whose own clock is bad flags everyone; refusing to
        # recover at all would strand it, so the ban falls back to the
        # triggering set ("some arbiter beats none" under the paper rule).
        service = _star_service(lambda name: ThirdServerRecovery())
        server = service.servers["A"]
        server._prev_round_inconsistent = {"B1", "C"}
        server._note_inconsistency(("B2",))
        starts = service.trace.filter(kind="recovery_start")
        assert starts and starts[-1].data["arbiter"] in {"B1", "C"}

    def test_rejoin_clears_the_flag_history(self):
        service = _star_service(lambda name: ThirdServerRecovery())
        server = service.servers["A"]
        server._round_inconsistent = {"B1"}
        server._prev_round_inconsistent = {"B2"}
        server.leave()
        server.rejoin(1.0)
        assert server._round_inconsistent == set()
        assert server._prev_round_inconsistent == set()


def _stabilizing_mesh(
    n: int = 3,
    tau: float = 30.0,
    seed: int = 0,
    stabilizer: StabilizerConfig | None = None,
):
    names = [f"S{k + 1}" for k in range(n)]
    skews = [+2e-6, -2e-6, +1e-6, -1e-6][:n]
    specs = [
        ServerSpec(name, delta=1e-5, skew=skew, self_stabilizing=True)
        for name, skew in zip(names, skews)
    ]
    return build_service(
        nx.complete_graph(names),
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        recovery_factory=lambda name: SelfStabilizingRecovery(),
        trace_enabled=True,
        stabilizer=stabilizer,
    )


@pytest.mark.recovery
class TestSelfStabilizingServer:
    def test_checkpoints_flow_to_the_store(self):
        service = _stabilizing_mesh()
        service.run_until(200.0)
        for name in service.servers:
            checkpoint = service.stable_store.read(name)
            assert checkpoint is not None
            assert checkpoint.server == name
            assert checkpoint.error > 0.0
        assert service.stable_store.stats.writes >= 3 * 6

    def test_warm_restart_is_correct(self):
        service = _stabilizing_mesh()
        service.run_until(300.0)
        server = service.servers["S2"]
        server.crash()
        service.run_until(500.0)
        report = server.restart(cold_error=5.0)
        assert report.warm
        assert report.downtime_local == pytest.approx(200.0, rel=1e-3)
        assert report.rebuilt_error < 5.0
        assert report.correct
        assert server.restart_reports == [report]

    def test_corrupt_checkpoint_forces_cold_start(self):
        service = _stabilizing_mesh()
        service.run_until(300.0)
        server = service.servers["S2"]
        server.crash()
        service.stable_store.corrupt("S2")
        service.stable_store.tear("S2")
        service.run_until(400.0)
        report = server.restart(cold_error=5.0)
        assert not report.warm
        assert report.rebuilt_error == 5.0

    def test_stale_checkpoint_forces_cold_start(self):
        config = StabilizerConfig(checkpoint_stale_after=50.0)
        service = _stabilizing_mesh(stabilizer=config)
        service.run_until(300.0)
        server = service.servers["S2"]
        server.crash()
        service.run_until(500.0)  # downtime 200 s > stale_after 50 s
        report = server.restart(cold_error=5.0)
        assert not report.warm

    def test_census_converges_to_one_clique(self):
        service = _stabilizing_mesh()
        service.run_until(300.0)
        server = service.servers["S1"]
        groups = server.census.groups(
            sorted(service.servers), server.clock_value()
        )
        assert groups[0] == ("S1", "S2", "S3")

    def test_replies_gossip_epoch_and_verdicts(self):
        service = _stabilizing_mesh()
        service.run_until(300.0)
        server = service.servers["S1"]
        extras = server._reply_extras()
        assert extras["epoch"] == server.epoch
        assert extras["verdicts"]  # fresh census rides on replies


@pytest.mark.recovery
class TestMonitorCrashWindows:
    """Satellite: a crashed-and-revived server re-enters the monitor's
    checks as non-faulty only after the crash-window exemption expires."""

    def test_window_bounds_include_grace(self):
        service = _stabilizing_mesh()
        schedule = FaultSchedule(
            [ServerCrash(at=10.0, server="S2", downtime=5.0)]
        )
        injector, monitor = attach_chaos(
            service, schedule, monitor_grace=2.0, start=False
        )
        assert monitor._in_crash_window("S2", 10.0)
        assert monitor._in_crash_window("S2", 15.0)
        assert monitor._in_crash_window("S2", 17.0)  # end + grace
        assert not monitor._in_crash_window("S2", 17.5)
        assert not monitor._in_crash_window("S2", 9.9)
        assert not monitor._in_crash_window("S1", 12.0)

    def test_revived_server_checked_only_after_exemption_expires(self):
        # Huge tau: no sync round repairs the server mid-test, so the
        # moment it is checked again is visible in the violation times.
        service = _stabilizing_mesh(tau=10_000.0)
        schedule = FaultSchedule(
            [
                ServerCrash(
                    at=300.0, server="S2", downtime=60.0, rejoin_error=1e-7
                )
            ]
        )
        injector, monitor = attach_chaos(
            service, schedule, monitor_period=5.0, monitor_grace=2.0
        )
        service.run_until(299.0)
        # No usable checkpoint: the revival is a cold start whose tiny
        # operator error cannot cover the drift — incorrect on revival.
        service.stable_store.wipe("S2")
        service.stable_store.tear("S2")
        service.run_until(420.0)
        report = service.servers["S2"].restart_reports[-1]
        assert not report.warm and not report.correct
        violations = [
            v for v in monitor.violations if "S2" in v.servers
        ]
        assert violations, "revived incorrect server was never checked"
        # ... but never while the crash window (+ grace) still held.
        assert all(v.time > 360.0 + 2.0 for v in violations)
        assert monitor.stats.exemptions > 0


@pytest.mark.recovery
class TestFigure4Repair:
    """The acceptance scenario: plain rule partitions, stabilizer repairs."""

    def test_plain_rule_ends_partitioned(self):
        result = figure4_repair.run(self_stabilizing=False)
        assert len(result.groups_good) >= 2
        assert result.poisoned_recoveries > 0
        assert result.core_still_correct

    def test_self_stabilizing_layer_remerges(self):
        result = figure4_repair.run(self_stabilizing=True)
        assert result.merged
        assert len(result.groups_good) == 1
        assert set(result.groups_good[0].members) == set(figure4_repair.GOOD)
        assert result.correctness_violations == 0
        assert result.consistency_violations == 0
        assert result.census_detected_split
        assert result.census_clean_at_end
        assert result.final_epochs["G1"] > 0  # G1 merged its way back

    def test_comparison_verdicts(self):
        comparison = figure4_repair.run_comparison()
        assert comparison.figure4_reproduced
        assert comparison.repaired
        assert (
            comparison.stabilized.poisoned_recoveries
            < comparison.plain.poisoned_recoveries
        )

    def test_crash_soak_warm_restarts_correct_across_seeds(self):
        rows = figure4_repair.crash_soak(seeds=(1, 2, 3, 4, 5))
        assert len(rows) == 5
        for row in rows:
            assert row.warm_restarts >= 1, row
            assert row.cold_restarts >= 1, row  # sabotage forced one
            assert row.warm_all_correct, row
            assert row.correctness_violations == 0, row
