"""Shared test helpers (importable, unlike conftest fixtures)."""

from __future__ import annotations

from repro.core.mm import MMPolicy
from repro.network.delay import UniformDelay
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec, build_service


def make_mesh_service(
    n: int = 3,
    policy=None,
    *,
    delta: float = 1e-5,
    skew_fill: float = 0.9,
    tau: float = 30.0,
    one_way: float = 0.01,
    seed: int = 0,
    **kwargs,
):
    """Small full-mesh service used across server/integration tests."""
    if policy is None:
        policy = MMPolicy()
    skews = (
        [0.0]
        if n == 1
        else [skew_fill * delta * (2.0 * k / (n - 1) - 1.0) for k in range(n)]
    )
    specs = [
        ServerSpec(f"S{k + 1}", delta=delta, skew=skews[k]) for k in range(n)
    ]
    return build_service(
        full_mesh(n),
        specs,
        policy=policy,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(one_way),
        **kwargs,
    )
