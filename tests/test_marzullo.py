"""Unit and property tests for Marzullo's algorithm and the NTP variant."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import TimeInterval
from repro.core.marzullo import (
    intersect_tolerating,
    marzullo,
    ntp_select,
)

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
widths = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@st.composite
def intervals(draw):
    lo = draw(coords)
    return TimeInterval(lo, lo + draw(widths))


class TestMarzullo:
    def test_single_interval(self):
        result = marzullo([TimeInterval(1, 3)])
        assert result.count == 1
        assert result.interval == TimeInterval(1, 3)

    def test_full_agreement(self):
        ivs = [TimeInterval(0, 10), TimeInterval(2, 8), TimeInterval(4, 6)]
        result = marzullo(ivs)
        assert result.count == 3
        assert result.interval == TimeInterval(4, 6)

    def test_majority_beats_outlier(self):
        """The classic falseticker case: 3 agree, 1 is far off."""
        ivs = [
            TimeInterval(8, 12),
            TimeInterval(9, 13),
            TimeInterval(10, 14),
            TimeInterval(100, 104),  # falseticker
        ]
        result = marzullo(ivs)
        assert result.count == 3
        assert result.interval == TimeInterval(10, 12)

    def test_wikipedia_example(self):
        """The canonical 8-12 / 11-13 / 10-12 example -> [11, 12] by 3."""
        ivs = [TimeInterval(8, 12), TimeInterval(11, 13), TimeInterval(10, 12)]
        result = marzullo(ivs)
        assert result.count == 3
        assert result.interval == TimeInterval(11, 12)

    def test_touching_counts_as_overlap(self):
        ivs = [TimeInterval(0, 5), TimeInterval(5, 10)]
        result = marzullo(ivs)
        assert result.count == 2
        assert result.interval == TimeInterval(5, 5)

    def test_disjoint_picks_first_best(self):
        ivs = [TimeInterval(0, 1), TimeInterval(5, 6)]
        result = marzullo(ivs)
        assert result.count == 1
        assert result.interval == TimeInterval(0, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            marzullo([])

    @given(st.lists(intervals(), min_size=1, max_size=10))
    def test_count_is_achievable(self, ivs):
        """The returned region really is covered by `count` intervals."""
        result = marzullo(ivs)
        mid = result.interval.center
        covering = sum(1 for iv in ivs if iv.contains(mid))
        assert covering == result.count

    @given(st.lists(intervals(), min_size=1, max_size=10))
    def test_count_is_maximal_on_endpoints(self, ivs):
        """No endpoint is covered by more than `count` intervals."""
        result = marzullo(ivs)
        for probe in [edge for iv in ivs for edge in (iv.lo, iv.hi)]:
            covering = sum(1 for iv in ivs if iv.contains(probe))
            assert covering <= result.count

    @given(st.lists(intervals(), min_size=1, max_size=10))
    def test_result_within_hull(self, ivs):
        result = marzullo(ivs)
        lo = min(iv.lo for iv in ivs)
        hi = max(iv.hi for iv in ivs)
        assert lo <= result.interval.lo <= result.interval.hi <= hi


class TestIntersectTolerating:
    def test_zero_faults_requires_unanimity(self):
        agreeing = [TimeInterval(0, 10), TimeInterval(5, 15)]
        assert intersect_tolerating(agreeing, 0) is not None
        split = [TimeInterval(0, 1), TimeInterval(5, 15)]
        assert intersect_tolerating(split, 0) is None

    def test_one_fault_tolerated(self):
        ivs = [
            TimeInterval(8, 12),
            TimeInterval(9, 13),
            TimeInterval(100, 104),
        ]
        result = intersect_tolerating(ivs, 1)
        assert result is not None
        assert result.interval == TimeInterval(9, 12)

    def test_thesis_guarantee(self):
        """If <= f of n are incorrect and the rest contain t, the result
        contains t."""
        true_time = 50.0
        good = [
            TimeInterval(true_time - e, true_time + e) for e in (1.0, 2.0, 3.0)
        ]
        bad = [TimeInterval(90, 95)]
        result = intersect_tolerating(good + bad, 1)
        assert result is not None
        assert result.interval.contains(true_time)

    def test_negative_faults_rejected(self):
        with pytest.raises(ValueError):
            intersect_tolerating([TimeInterval(0, 1)], -1)

    @given(
        st.lists(intervals(), min_size=2, max_size=8),
        st.integers(min_value=0, max_value=8),
    )
    def test_tolerance_monotone(self, ivs, faults):
        """If the intersection exists at tolerance f, it exists at f+1."""
        at_f = intersect_tolerating(ivs, faults)
        if at_f is not None:
            assert intersect_tolerating(ivs, faults + 1) is not None


class TestNtpSelect:
    def test_clean_majority(self):
        ivs = [
            TimeInterval(8, 12),
            TimeInterval(9, 13),
            TimeInterval(10, 14),
        ]
        result = ntp_select(ivs)
        assert result is not None
        assert result.falsetickers == ()
        assert set(result.truechimers) == {0, 1, 2}

    def test_falseticker_identified(self):
        ivs = [
            TimeInterval(8, 12),
            TimeInterval(9, 13),
            TimeInterval(10, 14),
            TimeInterval(100, 101),
        ]
        result = ntp_select(ivs)
        assert result is not None
        assert 3 in result.falsetickers
        assert set(result.truechimers) == {0, 1, 2}

    def test_no_majority_returns_none(self):
        ivs = [TimeInterval(0, 1), TimeInterval(10, 11)]
        assert ntp_select(ivs) is None

    def test_empty_returns_none(self):
        assert ntp_select([]) is None

    def test_selection_contains_truechimer_midpoints(self):
        ivs = [
            TimeInterval(8, 12),
            TimeInterval(9, 13),
            TimeInterval(10, 14),
            TimeInterval(200, 201),
        ]
        result = ntp_select(ivs)
        assert result is not None
        for index in result.truechimers:
            assert result.interval.contains(ivs[index].center)

    @given(st.lists(intervals(), min_size=1, max_size=9))
    def test_truechimers_are_majority_when_selected(self, ivs):
        result = ntp_select(ivs)
        if result is not None:
            assert 2 * len(result.truechimers) > len(ivs)
            # Partition is exact.
            assert sorted(result.truechimers + result.falsetickers) == list(
                range(len(ivs))
            )
