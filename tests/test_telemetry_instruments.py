"""Acceptance tests for the wired telemetry plane.

The contract: metrics and spans must agree *exactly* with the simulation's
own ground truth (ServerStats and the TraceRecorder), artefacts must be
byte-identical across identical-seed runs, and the live per-edge
asynchronism gauge must respect the Theorem 7 bound in a fault-free run.
"""

from __future__ import annotations

import pytest

from repro.experiments import chaos_soak, figure1
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec, build_service
from repro.service.hardening import HardeningStats
from repro.load.server import LoadStats
from repro.simulation.engine import SimulationEngine
from repro.telemetry import (
    NULL_SERVER_TELEMETRY,
    NULL_SERVICE_TELEMETRY,
    EngineInstruments,
    MetricsRegistry,
    NullRegistry,
    ServiceTelemetry,
    render_dashboard,
    run_top,
)

pytestmark = pytest.mark.telemetry

#: One figure-1 row is plenty for count reconciliation (10 rounds/server).
SHORT = (600.0,)


@pytest.fixture(scope="module")
def instrumented():
    """One short instrumented Figure 1 run shared by the read-only tests."""
    return figure1.run_instrumented(times=SHORT)


def test_round_counters_match_server_stats(instrumented):
    _, service, telemetry = instrumented
    reg = telemetry.registry
    for name, server in service.servers.items():
        assert (
            reg.value("repro_sync_rounds_total", server=name)
            == server.stats.rounds
        )
        assert (
            reg.value("repro_requests_answered_total", server=name, kind="poll")
            == server.stats.requests_answered
        )
        assert (
            reg.value("repro_clock_resets_total", server=name, kind="sync")
            + reg.value("repro_clock_resets_total", server=name, kind="recovery")
            == server.stats.resets
        )
        assert server.stats.rounds > 0  # the run is not trivially empty


def test_reset_counters_match_trace_ground_truth(instrumented):
    _, service, telemetry = instrumented
    reg = telemetry.registry
    for name in service.servers:
        sync_resets = [
            row
            for row in service.trace.filter(kind="reset", source=name)
            if row.data.get("reset_kind") == "sync"
        ]
        assert reg.value(
            "repro_clock_resets_total", server=name, kind="sync"
        ) == len(sync_resets)
        assert reg.value(
            "repro_sync_adoptions_total", server=name
        ) == len(sync_resets)
        # Reset event spans mirror the trace rows one-for-one.
        assert len(telemetry.tracer.filter(name="reset", source=name)) == len(
            sync_resets
        )


def test_round_spans_match_round_counts(instrumented):
    _, service, telemetry = instrumented
    rounds = telemetry.tracer.filter(name="poll_round")
    assert len(rounds) == sum(s.stats.rounds for s in service.servers.values())
    assert all(not span.open for span in rounds)
    assert {span.status for span in rounds} <= {
        "ok",
        "reset",
        "no_reset",
        "inconsistent",
        "abandoned",
    }
    # Every poll leg is parented by a round span of the same server.
    by_id = {span.span_id: span for span in telemetry.tracer}
    for leg in telemetry.tracer.filter(name="poll"):
        parent = by_id[leg.parent_id]
        assert parent.name == "poll_round"
        assert parent.source == leg.source


def test_engine_counters_match_engine(instrumented):
    _, service, telemetry = instrumented
    reg = telemetry.registry
    assert (
        reg.value("repro_engine_events_total")
        == service.engine.events_processed
    )
    assert reg.value("repro_engine_heap_depth") == service.engine.heap_depth


def test_theorem7_gauge_never_breached_without_faults(instrumented):
    _, service, telemetry = instrumented
    reg = telemetry.registry
    assert reg.value("repro_theorem7_breaches_total") == 0.0
    asyn = reg.get("repro_edge_asynchronism_seconds")
    bound = reg.get("repro_edge_asynchronism_bound_seconds")
    assert asyn is not None and bound is not None
    edges = {lv[0] for lv, _ in asyn.samples()}
    assert edges == {"S1-S2", "S1-S3", "S2-S3"}
    for (edge,), child in asyn.samples():
        assert child.value <= bound.labels(edge=edge).value


def test_error_gauge_tracks_live_bound(instrumented):
    _, service, telemetry = instrumented
    telemetry.sampler.sample_now()  # pin the gauges to the frozen engine time
    reg = telemetry.registry
    for name, server in service.servers.items():
        _, error = server.report()
        assert reg.value(
            "repro_server_error_seconds", server=name
        ) == pytest.approx(error)


def test_artifacts_byte_identical_across_identical_seeds(tmp_path):
    paths = []
    for arm in ("a", "b"):
        _, service, telemetry = figure1.run_instrumented(times=SHORT, seed=7)
        out = tmp_path / arm
        telemetry.write(out, time=service.engine.now)
        paths.append(out)
    first, second = paths
    assert (first / "metrics.prom").read_bytes() == (
        second / "metrics.prom"
    ).read_bytes()
    assert (first / "spans.jsonl").read_bytes() == (
        second / "spans.jsonl"
    ).read_bytes()
    assert (first / "summary.json").read_bytes() == (
        second / "summary.json"
    ).read_bytes()


def test_different_seed_changes_artifacts(tmp_path):
    _, service7, tele7 = figure1.run_instrumented(times=SHORT, seed=7)
    _, service8, tele8 = figure1.run_instrumented(times=SHORT, seed=8)
    tele7.write(tmp_path / "s7", time=service7.engine.now)
    tele8.write(tmp_path / "s8", time=service8.engine.now)
    assert (tmp_path / "s7" / "spans.jsonl").read_bytes() != (
        tmp_path / "s8" / "spans.jsonl"
    ).read_bytes()


# --------------------------------------------------------- disabled plane


def test_build_service_without_telemetry_uses_nulls():
    specs = [ServerSpec(f"S{k + 1}", delta=1e-5) for k in range(3)]
    service = build_service(full_mesh(3), specs, policy=None, tau=60.0, seed=0)
    assert service.telemetry is NULL_SERVICE_TELEMETRY
    for server in service.servers.values():
        assert server.telemetry is NULL_SERVER_TELEMETRY
    service.run_until(120.0)  # no-op instruments must not disturb the run


def test_null_registry_service_telemetry_is_inert():
    telemetry = ServiceTelemetry(registry=NullRegistry())
    assert not telemetry.enabled
    assert telemetry.server("S1") is NULL_SERVER_TELEMETRY
    specs = [ServerSpec(f"S{k + 1}", delta=1e-5) for k in range(3)]
    service = build_service(
        full_mesh(3), specs, policy=None, tau=60.0, seed=0, telemetry=telemetry
    )
    service.run_until(120.0)
    assert telemetry.registry.families() == []
    assert len(telemetry.tracer) == 0


# -------------------------------------------------------- engine observer


def test_engine_instruments_count_events():
    engine = SimulationEngine()
    registry = MetricsRegistry()
    instruments = EngineInstruments(registry)
    engine.set_observer(instruments.on_event)
    fired = []
    for t in (1.0, 2.0, 5.0):
        engine.schedule_at(t, lambda t=t: fired.append(t))
    engine.run(until=10.0)
    assert len(fired) == 3
    assert registry.value("repro_engine_events_total") == 3.0
    gap = registry.get("repro_engine_event_gap_seconds")
    assert gap is not None
    assert gap.labels().count == 2  # n-1 gaps: the first event has none
    assert gap.labels().sum == pytest.approx(4.0)  # (2-1) + (5-2)


# -------------------------------------------- stats migration (satellite)


def test_hardening_stats_accessors_unchanged():
    stats = HardeningStats()
    assert stats.retries_sent == 0
    stats.retries_sent += 1
    stats.quarantines += 2
    assert stats.retries_sent == 1
    assert stats.quarantines == 2
    assert isinstance(stats.retries_sent, int)
    assert set(stats.fields()) >= {
        "retries_sent",
        "recovery_retries",
        "quarantines",
        "starvation_overrides",
    }


def test_load_stats_accessors_unchanged():
    stats = LoadStats()
    stats.fresh_replies += 3
    stats.busy_replies += 1
    assert stats.fresh_replies == 3
    assert stats.busy_replies == 1
    assert set(stats.fields()) >= {
        "fresh_replies",
        "degraded_replies",
        "busy_replies",
        "shed_silent",
    }


def test_migrated_stats_export_through_shared_registry():
    reg = MetricsRegistry()
    stats = HardeningStats(reg.scoped(server="S1"))
    stats.retries_sent += 5
    assert reg.value("repro_hardening_retries_sent_total", server="S1") == 5.0


# ------------------------------------------------- chaos soak (satellite)


@pytest.mark.chaos
def test_seeded_chaos_run_counts_exempted_checks():
    telemetry = ServiceTelemetry(spans=False, sample_period=15.0)
    outcome = chaos_soak.run_soak(
        "MM", 0, horizon=600.0, telemetry=telemetry
    )
    reg = telemetry.registry
    exempted = reg.value(
        "repro_invariant_checks_total", check="correctness", outcome="exempted"
    )
    checked = reg.value(
        "repro_invariant_checks_total", check="correctness", outcome="checked"
    )
    assert exempted > 0  # the storm tainted servers and the monitor skipped them
    assert checked > 0
    assert exempted == outcome.exemptions
    assert (
        reg.value(
            "repro_invariant_checks_total",
            check="correctness",
            outcome="violated",
        )
        == outcome.violations
        == 0
    )


# -------------------------------------------------------------- dashboard


def test_dashboard_renders_counts_and_bounds(instrumented):
    _, service, telemetry = instrumented
    frame = render_dashboard(service, telemetry)
    assert "repro top" in frame
    for name in service.servers:
        assert name in frame
    assert "Theorem 7" in frame
    assert "BREACH" not in frame
    assert "\x1b" not in frame  # no ANSI without clear=True
    assert render_dashboard(service, telemetry, clear=True).startswith("\x1b")


def test_run_top_emits_one_frame_per_refresh():
    telemetry = ServiceTelemetry(sample_period=30.0)
    specs = [ServerSpec(f"S{k + 1}", delta=1e-5) for k in range(3)]
    service = build_service(
        full_mesh(3), specs, policy=None, tau=60.0, seed=0, telemetry=telemetry
    )
    frames = []
    count = run_top(
        service,
        telemetry,
        horizon=300.0,
        refresh=100.0,
        interactive=False,
        emit=frames.append,
    )
    assert count == len(frames) == 3
    assert service.engine.now == pytest.approx(300.0)
    with pytest.raises(ValueError):
        run_top(service, telemetry, horizon=400.0, refresh=0.0)
