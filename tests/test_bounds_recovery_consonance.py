"""Unit tests for theorem bounds, recovery strategies, and consonance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import (
    ServiceParameters,
    lemma1_error_growth,
    theorem2_error_bound,
    theorem3_asynchronism_bound,
    theorem7_asynchronism_bound,
)
from repro.core.consonance import (
    RateEstimator,
    RateInterval,
    RateObservation,
    consonant,
    dissonant_servers,
    rate_im_step,
    rate_mm_step,
)
from repro.core.recovery import NullRecovery, ThirdServerRecovery


class TestBounds:
    def test_lemma1(self):
        assert lemma1_error_growth(0.5, 1e-5, 1000.0) == pytest.approx(0.51)

    def test_theorem2_formula(self):
        # E_M + ξ + δ(τ + 2ξ)
        assert theorem2_error_bound(0.1, 0.2, 1e-3, 60.0) == pytest.approx(
            0.1 + 0.2 + 1e-3 * 60.4
        )

    def test_theorem3_formula(self):
        assert theorem3_asynchronism_bound(
            0.1, 0.2, 1e-3, 2e-3, 60.0
        ) == pytest.approx(0.2 + 0.4 + 3e-3 * 60.4)

    def test_theorem7_formula(self):
        assert theorem7_asynchronism_bound(0.2, 1e-3, 2e-3, 60.0) == (
            pytest.approx(0.2 + 3e-3 * 60.0)
        )

    def test_theorem7_independent_of_error(self):
        """IM's asynchronism bound does not reference E_M at all."""
        params = ServiceParameters(xi=0.1, tau=60.0)
        assert params.im_asynchronism_bound(1e-5, 1e-5) == pytest.approx(
            0.1 + 2e-5 * 60.0
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            theorem2_error_bound(-0.1, 0.1, 1e-5, 60.0)
        with pytest.raises(ValueError):
            ServiceParameters(xi=-1.0, tau=60.0)

    def test_service_parameters_wrappers_match_functions(self):
        params = ServiceParameters(xi=0.3, tau=90.0)
        assert params.mm_error_bound(0.05, 1e-4) == theorem2_error_bound(
            0.05, 0.3, 1e-4, 90.0
        )
        assert params.mm_asynchronism_bound(
            0.05, 1e-4, 2e-4
        ) == theorem3_asynchronism_bound(0.05, 0.3, 1e-4, 2e-4, 90.0)


class TestRecoveryStrategies:
    def test_null_recovery_never_chooses(self):
        strategy = NullRecovery()
        assert strategy.choose_arbiter("S1", ["S2", "S3"], ["S2"]) is None

    def test_third_server_excludes_conflicting_and_self(self):
        strategy = ThirdServerRecovery()
        arbiter = strategy.choose_arbiter("S1", ["S1", "S2", "S3"], ["S2"])
        assert arbiter == "S3"

    def test_prefers_remote_servers(self):
        strategy = ThirdServerRecovery(remote_servers=("R1",))
        arbiter = strategy.choose_arbiter("S1", ["S2", "S3"], ["S2"])
        assert arbiter == "R1"

    def test_remote_in_conflict_falls_back_to_local(self):
        strategy = ThirdServerRecovery(remote_servers=("R1",))
        arbiter = strategy.choose_arbiter("S1", ["S2", "S3"], ["R1", "S2"])
        assert arbiter == "S3"

    def test_no_arbiter_available(self):
        strategy = ThirdServerRecovery()
        assert strategy.choose_arbiter("S1", ["S2"], ["S2"]) is None
        assert strategy.stats.no_arbiter == 1

    def test_random_choice_is_from_pool(self):
        rng = np.random.default_rng(0)
        strategy = ThirdServerRecovery(rng=rng)
        pool = ["S2", "S3", "S4"]
        for _ in range(20):
            assert strategy.choose_arbiter("S1", pool, []) in pool

    def test_stats_counters(self):
        strategy = ThirdServerRecovery()
        strategy.note_inconsistency()
        strategy.note_started()
        strategy.note_completed()
        assert strategy.stats.inconsistencies == 1
        assert strategy.stats.recoveries_started == 1
        assert strategy.stats.recoveries_completed == 1


class TestConsonance:
    def test_consonant_predicate(self):
        """|d/dt(C_i - C_j)| <= δ_i + δ_j (Section 5)."""
        assert consonant(1.5e-5, 1e-5, 1e-5)
        assert not consonant(2.5e-5, 1e-5, 1e-5)
        assert consonant(-1.9e-5, 1e-5, 1e-5)

    def test_rate_estimator_recovers_slope(self):
        estimator = RateEstimator(min_span=1.0)
        for t in np.linspace(0.0, 100.0, 20):
            estimator.add(RateObservation(t, 0.01 * t + 3.0, reading_error=1e-6))
        estimate = estimator.estimate()
        assert estimate is not None
        assert estimate.rate == pytest.approx(0.01, rel=1e-6)

    def test_rate_estimator_uncertainty_from_endpoints(self):
        estimator = RateEstimator(min_span=1.0)
        estimator.add(RateObservation(0.0, 0.0, reading_error=0.5))
        estimator.add(RateObservation(10.0, 0.0, reading_error=0.5))
        estimate = estimator.estimate()
        assert estimate is not None
        assert estimate.uncertainty == pytest.approx(0.1)

    def test_rate_estimator_underdetermined(self):
        estimator = RateEstimator(min_span=5.0)
        estimator.add(RateObservation(0.0, 0.0, 0.1))
        assert estimator.estimate() is None  # single point
        estimator.add(RateObservation(1.0, 0.0, 0.1))
        assert estimator.estimate() is None  # span below min_span

    def test_rate_estimator_rejects_time_reversal(self):
        estimator = RateEstimator()
        estimator.add(RateObservation(10.0, 0.0, 0.1))
        with pytest.raises(ValueError):
            estimator.add(RateObservation(5.0, 0.0, 0.1))

    def test_rate_interval_from_delta(self):
        ri = RateInterval.from_delta(1e-5)
        assert ri.value == 0.0 and ri.bound == 1e-5

    def test_rate_mm_step_adopts_better(self):
        local = RateInterval(0.0, 1e-4)
        remote = RateInterval(0.0, 1e-6)
        estimate = RateEstimator(min_span=1.0)
        estimate.add(RateObservation(0.0, 0.0, 1e-7))
        estimate.add(RateObservation(100.0, 1e-3, 1e-7))
        result = rate_mm_step(local, remote, estimate.estimate())
        assert result is not None
        assert result.bound < local.bound
        assert result.value == pytest.approx(-1e-5, rel=1e-3)

    def test_rate_mm_step_rejects_worse(self):
        local = RateInterval(0.0, 1e-7)
        remote = RateInterval(0.0, 1e-6)
        estimate = RateEstimator(min_span=1.0)
        estimate.add(RateObservation(0.0, 0.0, 1e-6))
        estimate.add(RateObservation(10.0, 0.0, 1e-6))
        assert rate_mm_step(local, remote, estimate.estimate()) is None

    def test_rate_im_step_intersects(self):
        local = RateInterval(1e-5, 1e-5)  # [0, 2e-5]
        remote = RateInterval(0.0, 1e-6)
        estimate = RateEstimator(min_span=1.0)
        estimate.add(RateObservation(0.0, 0.0, 1e-7))
        estimate.add(RateObservation(1000.0, -5e-3, 1e-7))  # rate -5e-6
        result = rate_im_step(local, remote, estimate.estimate())
        assert result is not None
        # Remote seen skew: 0 - (-5e-6) = 5e-6 ± ~1.2e-6 overlaps [0, 2e-5].
        assert 0.0 <= result.value <= 2e-5

    def test_rate_im_step_dissonant_returns_none(self):
        local = RateInterval(1e-3, 1e-6)
        remote = RateInterval(0.0, 1e-6)
        estimate = RateEstimator(min_span=1.0)
        estimate.add(RateObservation(0.0, 0.0, 1e-9))
        estimate.add(RateObservation(100.0, 0.0, 1e-9))
        assert rate_im_step(local, remote, estimate.estimate()) is None

    def test_dissonant_servers_majority_flagging(self):
        names = ["A", "B", "C"]
        deltas = [1e-5, 1e-5, 1e-5]
        rates = {
            (0, 1): 1e-6,   # A-B consonant
            (0, 2): 5e-3,   # A-C dissonant
            (1, 2): 5e-3,   # B-C dissonant
        }
        assert dissonant_servers(names, deltas, rates) == ["C"]

    def test_invalid_estimator_params(self):
        with pytest.raises(ValueError):
            RateEstimator(window=1)
        with pytest.raises(ValueError):
            RateEstimator(min_span=0.0)
