"""Tests for the resilient client: backoff, breakers, retries, hedging."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.load.capacity import CapacityConfig
from repro.load.client import (
    BackoffPolicy,
    CircuitBreaker,
    CircuitBreakerConfig,
    CircuitState,
    ResilienceConfig,
)
from repro.load.admission import TokenBucketConfig
from repro.load.server import LoadPolicy
from repro.network.delay import ConstantDelay
from repro.service.builder import ServerSpec, build_service


def make_service(n_servers=2, *, resilience=None, capacity=None, load_policy=None):
    """A client hub C joined to ``n_servers`` answer-only servers."""
    graph = nx.Graph()
    names = [f"S{k + 1}" for k in range(n_servers)]
    for name in names:
        graph.add_edge("C", name)
    service = build_service(
        graph,
        [
            ServerSpec(name, delta=1e-4, initial_error=0.01, polls=False)
            for name in names
        ],
        policy=None,
        tau=60.0,
        seed=5,
        lan_delay=ConstantDelay(0.002),
        capacity=capacity or CapacityConfig(service_time=0.002, degraded_time=0.001),
        load_policy=load_policy,
    )
    client = service.add_client(
        "C", resilience=resilience or ResilienceConfig(attempt_timeout=0.1)
    )
    client.start()
    return service, client, names


class TestBackoffPolicy:
    def test_unjittered_growth_and_cap(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, max_delay=0.5, jitter=0.0)
        delays = [policy.delay(attempt, None) for attempt in (1, 2, 3, 4, 5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_bounds(self):
        policy = BackoffPolicy(base=0.1, factor=1.0, max_delay=0.1, jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(200):
            delay = policy.delay(1, rng)
            assert 0.05 <= delay <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.5, max_delay=0.1)


class TestCircuitBreaker:
    def test_trips_after_threshold_and_probes_after_cooldown(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=2, reset_timeout=1.0)
        )
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow(0.5)
        assert breaker.allow(1.1)  # half-open probe
        assert breaker.state is CircuitState.HALF_OPEN

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(
            CircuitBreakerConfig(failure_threshold=1, reset_timeout=1.0)
        )
        breaker.record_failure(0.0)
        assert breaker.allow(1.5)
        breaker.record_failure(1.5)
        assert breaker.state is CircuitState.OPEN
        assert not breaker.allow(2.0)  # timer restarted
        assert breaker.trips == 2

    def test_success_closes(self):
        breaker = CircuitBreaker(CircuitBreakerConfig(failure_threshold=1))
        breaker.record_failure(0.0)
        breaker.allow(10.0)
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        assert breaker.failures == 0


class TestResilienceConfig:
    def test_hedge_must_precede_timeout(self):
        with pytest.raises(ValueError):
            ResilienceConfig(attempt_timeout=0.2, hedge_after=0.3)
        with pytest.raises(ValueError):
            ResilienceConfig(max_attempts=0)


class TestResilientQueries:
    def test_single_healthy_server_answers(self):
        service, client, names = make_service(1)
        results = []
        client.ask([names[0]], callback=results.append)
        service.engine.run(until=1.0)
        assert len(results) == 1
        assert results[0].correct
        assert client.load_stats.attempts == 1

    def test_retry_rotates_to_live_server(self):
        service, client, names = make_service(2)
        service.network.link("C", "S1").take_down()
        results = []
        client.ask(names, callback=results.append)
        service.engine.run(until=2.0)
        assert len(results) == 1
        assert results[0].correct
        assert results[0].source == "S2"
        assert client.load_stats.attempt_timeouts >= 1
        assert client.load_stats.retries >= 1

    def test_exhausted_budget_fails_explicitly_and_cleans_up(self):
        service, client, names = make_service(
            2,
            resilience=ResilienceConfig(max_attempts=2, attempt_timeout=0.05),
        )
        for name in names:
            service.network.link("C", name).take_down()
        results = []
        client.ask(names, callback=results.append)
        service.engine.run(until=5.0)
        assert len(results) == 1
        assert results[0].failed
        assert client.failures == [results[0]]
        assert client.results == []
        assert client._rqueries == {} and client._attempts == {}

    def test_open_breaker_is_skipped(self):
        service, client, names = make_service(
            2,
            resilience=ResilienceConfig(
                max_attempts=2,
                attempt_timeout=0.05,
                breaker=CircuitBreakerConfig(failure_threshold=1, reset_timeout=9.0),
            ),
        )
        service.network.link("C", "S1").take_down()
        client.ask(names)
        service.engine.run(until=1.0)
        assert client.breakers["S1"].state is CircuitState.OPEN
        # The next query skips S1 entirely and answers from S2 at once.
        results = []
        client.ask(names, callback=results.append)
        service.engine.run(until=2.0)
        assert results[0].source == "S2"
        assert client.load_stats.breaker_skips >= 1

    def test_busy_reply_honors_retry_after(self):
        service, client, names = make_service(
            1,
            resilience=ResilienceConfig(
                max_attempts=3,
                attempt_timeout=0.1,
                backoff=BackoffPolicy(base=0.001, factor=1.0, max_delay=0.001, jitter=0.0),
            ),
            load_policy=LoadPolicy(
                admission=TokenBucketConfig(rate=5.0, burst=1.0)
            ),
        )
        results = []
        client.ask(names)  # drains the bucket's one token
        client.ask(names, callback=results.append)  # refused: BUSY + hint
        service.engine.run(until=2.0)
        assert client.load_stats.busy_received >= 1
        assert len(results) == 1 and results[0].correct
        # The hint (~1/rate = 0.2 s) dominates the tiny backoff.
        assert results[0].latency >= 0.15

    def test_hedge_races_a_silent_server(self):
        service, client, names = make_service(
            2,
            resilience=ResilienceConfig(
                max_attempts=3,
                attempt_timeout=0.2,
                hedge_after=0.05,
            ),
        )
        service.network.link("C", "S1").take_down()
        results = []
        client.ask(names, callback=results.append)
        service.engine.run(until=1.0)
        assert len(results) == 1
        assert results[0].correct
        assert results[0].source == "S2"
        assert client.load_stats.hedges == 1
        # The hedge answered well before the first attempt's timeout.
        assert results[0].latency < 0.2

    def test_degraded_reply_accepted_and_labelled(self):
        service, client, names = make_service(1)
        server = service.servers["S1"]
        server.detector.overloaded = True
        server.detector.ewma = 1.0
        results = []
        client.ask(names, callback=results.append)
        service.engine.run(until=1.0)
        assert client.load_stats.degraded_accepted == 1
        assert results[0].source == "degraded:S1"
        assert results[0].correct


class TestPendingStateBounded:
    """The timer/closure-retention satellite: 10k queries must not
    accumulate timers, query records, or attempt records."""

    @staticmethod
    def _instant_service():
        """One paper-model (infinite-capacity) server: the tests probe
        *client* bookkeeping, so the server must never be the bottleneck."""
        graph = nx.Graph([("C", "S1")])
        return build_service(
            graph,
            [ServerSpec("S1", delta=1e-4, initial_error=0.01, polls=False)],
            policy=None,
            tau=60.0,
            seed=5,
            lan_delay=ConstantDelay(0.002),
        )

    def test_resilient_client_state_is_bounded(self):
        service = self._instant_service()
        client = service.add_client("C", resilience=ResilienceConfig())
        client.start()
        for _ in range(10_000):
            client.ask(["S1"])
        service.engine.run(until=3.0)
        assert len(client.results) == 10_000
        assert client._rqueries == {} and client._attempts == {}
        # Every attempt timeout was cancelled at completion: nothing from
        # the queries may still be pending on the engine heap.
        assert service.engine.pending_events < 50

    def test_base_client_state_is_bounded(self):
        service = self._instant_service()
        base = service.add_client("C", timeout=1.0)  # plain TimeClient
        base.start()
        for _ in range(10_000):
            base.ask(["S1"])
        service.engine.run(until=3.0)
        assert len(base.results) == 10_000
        assert base._queries == {}
        # Query timeout timers were cancelled at finalisation: nothing
        # from the queries may still be pending on the engine heap.
        assert service.engine.pending_events < 50

    def test_poll_round_timers_are_cancelled(self):
        """Polling servers over many rounds keep a bounded pending set:
        round timeout timers are cancelled when rounds complete."""
        graph = nx.complete_graph(3)
        graph = nx.relabel_nodes(graph, {0: "S1", 1: "S2", 2: "S3"})
        from repro.core.im import IMPolicy

        service = build_service(
            graph,
            [
                ServerSpec(f"S{k}", delta=1e-5, initial_error=0.01)
                for k in (1, 2, 3)
            ],
            policy=IMPolicy(),
            tau=0.2,
            round_timeout=0.1,
            seed=1,
            lan_delay=ConstantDelay(0.001),
        )
        service.run_until(60.0)  # ~300 rounds per server
        for server in service.servers.values():
            assert server.stats.rounds > 200
        # Steady state: the next poll + its jitter per server, the odd
        # in-flight message — not hundreds of stale round timers.
        assert service.engine.pending_events < 30
