"""Tests for the DisciplinedClock and the DiscipliningServer loop."""

from __future__ import annotations

import pytest

from repro.clocks.disciplined import DisciplinedClock
from repro.clocks.drift import DriftingClock
from repro.core.im import IMPolicy
from repro.network.delay import ConstantDelay
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec, build_service
from repro.service.discipline import DiscipliningServer
from repro.experiments import discipline as discipline_experiment


class TestDisciplinedClock:
    def test_passthrough_by_default(self):
        clock = DisciplinedClock(DriftingClock(skew=1e-4))
        assert clock.read(1000.0) == pytest.approx(1000.0 * (1 + 1e-4))
        assert clock.correction == 0.0

    def test_rate_correction_cancels_skew(self):
        raw_skew = 1e-4
        clock = DisciplinedClock(DriftingClock(skew=raw_skew))
        clock.read(100.0)
        # Exact cancellation: (1 + s)(1 + c) = 1.
        correction = -raw_skew / (1.0 + raw_skew)
        clock.adjust_rate(100.0, correction)
        v1 = clock.read(100.0)
        v2 = clock.read(1100.0)
        assert v2 - v1 == pytest.approx(1000.0, abs=1e-9)
        assert clock.effective_skew(raw_skew) == pytest.approx(0.0, abs=1e-15)

    def test_adjustment_is_continuous(self):
        """Retuning the rate never steps the value."""
        clock = DisciplinedClock(DriftingClock(skew=5e-5))
        before = clock.read(500.0)
        clock.adjust_rate(500.0, -5e-5)
        assert clock.read(500.0) == pytest.approx(before, abs=1e-12)

    def test_set_reanchors_value_not_raw(self):
        raw = DriftingClock(skew=0.0)
        clock = DisciplinedClock(raw)
        clock.read(10.0)
        clock.set(10.0, 100.0)
        assert clock.read(20.0) == pytest.approx(110.0)

    def test_correction_clamped(self):
        clock = DisciplinedClock(DriftingClock(skew=0.0), max_correction=1e-3)
        applied = clock.adjust_rate(0.0, 5.0)
        assert applied == pytest.approx(1e-3)
        assert clock.correction == pytest.approx(1e-3)

    def test_adjustments_counter(self):
        clock = DisciplinedClock(DriftingClock(skew=0.0))
        clock.adjust_rate(0.0, 1e-5)
        clock.adjust_rate(1.0, 1e-5)  # unchanged -> not counted
        clock.adjust_rate(2.0, 2e-5)
        assert clock.adjustments == 2

    def test_invalid_max_correction(self):
        with pytest.raises(ValueError):
            DisciplinedClock(DriftingClock(skew=0.0), max_correction=0.0)


class TestDiscipliningServer:
    def _build(self, skew=8e-5, delta=1e-4, tau=20.0, gain=0.5):
        specs = [
            ServerSpec("S1", delta=delta, skew=skew, discipline=True),
            ServerSpec("REF", reference=True, initial_error=0.0005),
        ]
        graph = full_mesh(1)
        graph.add_node("REF")
        graph.add_edge("S1", "REF")
        return build_service(
            graph,
            specs,
            policy=IMPolicy(),
            tau=tau,
            seed=0,
            lan_delay=ConstantDelay(0.002),
        )

    def test_requires_disciplined_clock(self):
        service = self._build()
        server = service.servers["S1"]
        assert isinstance(server, DiscipliningServer)
        assert isinstance(server.clock, DisciplinedClock)

    def test_converges_toward_zero_skew(self):
        raw_skew = 8e-5
        service = self._build(skew=raw_skew)
        service.run_until(4.0 * 3600.0)
        server = service.servers["S1"]
        assert server.discipline_steps > 0
        residual = server.clock.effective_skew(raw_skew)
        assert abs(residual) < raw_skew / 4.0

    def test_stays_correct_while_disciplining(self):
        service = self._build()
        for t in range(600, 4 * 3600, 600):
            service.run_until(float(t))
            snap = service.snapshot()
            assert snap.correct["S1"]

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            DiscipliningServer(
                None, "X", DisciplinedClock(DriftingClock(0.0)), 1e-5, None, gain=0.0
            )

    def test_plain_clock_rejected(self):
        with pytest.raises(TypeError):
            DiscipliningServer(
                None, "X", DriftingClock(0.0), 1e-5, None
            )


class TestDisciplineExperiment:
    def test_three_arm_comparison(self):
        result = discipline_experiment.run(horizon=2.0 * 3600.0)
        # Measurement alone changes nothing.
        assert result.tracking.worst_true_offset == pytest.approx(
            result.plain.worst_true_offset, rel=1e-6
        )
        # Discipline improves the truth...
        assert result.offset_improvement > 2.0
        assert (
            result.disciplined.mean_asynchronism
            < result.plain.mean_asynchronism
        )
        # ...but not the claimed bound (rule MM-1 uses the claimed δ).
        assert result.disciplined.mean_claimed_error == pytest.approx(
            result.plain.mean_claimed_error, rel=0.1
        )

    def test_residual_skews_shrink(self):
        result = discipline_experiment.run(horizon=2.0 * 3600.0)
        raw_worst = 0.9e-4
        for residual in result.disciplined.residual_skews.values():
            assert abs(residual) < raw_worst / 2.0
