"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngRegistry

from tests.helpers import make_mesh_service


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh engine at t = 0."""
    return SimulationEngine()


@pytest.fixture
def rng() -> RngRegistry:
    """A deterministic RNG registry."""
    return RngRegistry(seed=1234)


@pytest.fixture
def mm_service():
    """A 3-server MM mesh."""
    return make_mesh_service(3, MMPolicy())


@pytest.fixture
def im_service():
    """A 3-server IM mesh."""
    return make_mesh_service(3, IMPolicy())
