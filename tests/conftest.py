"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngRegistry

from tests.helpers import make_mesh_service


def pytest_collection_modifyitems(config, items):
    """Keep the live-socket suite out of the default (tier-1) run.

    ``runtime``-marked tests bind real UDP sockets and spawn node
    subprocesses — seconds each, and sensitive to a loaded CI host.
    They only run when asked for explicitly: ``-m runtime`` (or any
    ``-m`` expression naming the marker) or ``REPRO_RUNTIME_TESTS=1``.
    """
    if os.environ.get("REPRO_RUNTIME_TESTS"):
        return
    if "runtime" in (config.getoption("-m") or ""):
        return
    skip = pytest.mark.skip(
        reason="runtime tests need -m runtime or REPRO_RUNTIME_TESTS=1"
    )
    for item in items:
        if "runtime" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh engine at t = 0."""
    return SimulationEngine()


@pytest.fixture
def rng() -> RngRegistry:
    """A deterministic RNG registry."""
    return RngRegistry(seed=1234)


@pytest.fixture
def mm_service():
    """A 3-server MM mesh."""
    return make_mesh_service(3, MMPolicy())


@pytest.fixture
def im_service():
    """A 3-server IM mesh."""
    return make_mesh_service(3, IMPolicy())
