"""Unit tests for the clock models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clocks.base import ClockError
from repro.clocks.drift import (
    DriftingClock,
    SegmentDriftClock,
    biased_uniform_sampler,
    truncated_normal_sampler,
    uniform_sampler,
)
from repro.clocks.failures import RacingClock, StoppedClock, StuckOnResetClock
from repro.clocks.monotonic import MonotonicClock
from repro.clocks.perfect import PerfectClock
from repro.clocks.quantized import QuantizedClock
from repro.clocks.random_walk import RandomWalkClock


class TestPerfectClock:
    def test_reads_true_time(self):
        clock = PerfectClock()
        assert clock.read(0.0) == 0.0
        assert clock.read(123.456) == 123.456

    def test_ignores_resets(self):
        clock = PerfectClock()
        clock.set(10.0, 999.0)
        assert clock.read(10.0) == 10.0
        assert clock.resets == 1  # counted, but without effect

    def test_offset_is_zero(self):
        clock = PerfectClock()
        assert clock.offset(42.0) == 0.0


class TestDriftingClock:
    def test_fast_clock_gains(self):
        clock = DriftingClock(skew=0.01)
        assert clock.read(100.0) == pytest.approx(101.0)

    def test_slow_clock_loses(self):
        clock = DriftingClock(skew=-0.01)
        assert clock.read(100.0) == pytest.approx(99.0)

    def test_epoch_and_initial(self):
        clock = DriftingClock(skew=0.0, epoch=50.0, initial=100.0)
        assert clock.read(60.0) == pytest.approx(110.0)

    def test_set_restarts_segment(self):
        clock = DriftingClock(skew=0.01)
        clock.read(10.0)
        clock.set(10.0, 0.0)
        assert clock.read(110.0) == pytest.approx(101.0)
        assert clock.resets == 1

    def test_reading_backwards_rejected(self):
        clock = DriftingClock(skew=0.0)
        clock.read(10.0)
        with pytest.raises(ClockError):
            clock.read(5.0)

    def test_drift_bound_respected(self):
        """|C(t0+Δ) - C(t0) - Δ| <= δΔ — the paper's Section 2.2 relation."""
        delta = 3e-5
        clock = DriftingClock(skew=0.9 * delta)
        c0 = clock.read(0.0)
        c1 = clock.read(1000.0)
        assert abs(c1 - c0 - 1000.0) <= delta * 1000.0


class TestSegmentDriftClock:
    def test_redraws_skew_on_reset(self):
        values = iter([0.01, -0.01])
        clock = SegmentDriftClock(lambda: next(values))
        assert clock.read(100.0) == pytest.approx(101.0)
        clock.set(100.0, 100.0)
        assert clock.read(200.0) == pytest.approx(199.0)

    def test_uniform_sampler_within_bounds(self):
        rng = np.random.default_rng(0)
        sampler = uniform_sampler(rng, 1e-4)
        draws = [sampler() for _ in range(200)]
        assert all(abs(d) <= 1e-4 for d in draws)
        assert len(set(draws)) > 100  # actually random

    def test_uniform_sampler_rejects_negative_delta(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            uniform_sampler(rng, -1.0)

    def test_biased_sampler_centers_on_bias(self):
        rng = np.random.default_rng(0)
        sampler = biased_uniform_sampler(rng, 1e-5, bias=5e-4)
        draws = [sampler() for _ in range(500)]
        assert abs(np.mean(draws) - 5e-4) < 5e-6

    def test_truncated_normal_respects_bound(self):
        rng = np.random.default_rng(0)
        sampler = truncated_normal_sampler(rng, sigma=1.0, bound=0.5)
        assert all(abs(sampler()) <= 0.5 for _ in range(200))


class TestRandomWalkClock:
    def _clock(self, **kwargs):
        rng = np.random.default_rng(42)
        defaults = dict(max_skew=1e-4, step_sigma=2e-5, mean_dwell=10.0)
        defaults.update(kwargs)
        return RandomWalkClock(rng, **defaults)

    def test_drift_bound_never_violated(self):
        """The clamp guarantees |C(t) - t| <= max_skew * t from epoch."""
        clock = self._clock()
        clock.set(0.0, 0.0)
        for t in np.linspace(1.0, 5000.0, 200):
            assert abs(clock.read(t) - t) <= 1e-4 * t + 1e-9

    def test_deterministic_for_fixed_stream(self):
        a = self._clock()
        b = RandomWalkClock(
            np.random.default_rng(42),
            max_skew=1e-4,
            step_sigma=2e-5,
            mean_dwell=10.0,
        )
        for t in (10.0, 100.0, 1000.0):
            assert a.read(t) == b.read(t)

    def test_skew_actually_changes(self):
        clock = self._clock(mean_dwell=1.0)
        first = clock.skew
        clock.read(1000.0)
        assert clock.skew != first

    def test_set_moves_value(self):
        clock = self._clock()
        clock.read(100.0)
        clock.set(100.0, 50.0)
        assert clock.read(100.0) == pytest.approx(50.0)

    def test_invalid_parameters_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWalkClock(rng, max_skew=-1.0, step_sigma=1.0, mean_dwell=1.0)
        with pytest.raises(ValueError):
            RandomWalkClock(rng, max_skew=1.0, step_sigma=1.0, mean_dwell=0.0)


class TestFailureClocks:
    def test_stopped_clock_freezes(self):
        clock = StoppedClock(DriftingClock(skew=0.0), fail_at=10.0)
        assert clock.read(5.0) == pytest.approx(5.0)
        assert clock.read(20.0) == pytest.approx(10.0)
        assert clock.read(100.0) == pytest.approx(10.0)

    def test_stopped_clock_accepts_set_then_freezes_again(self):
        clock = StoppedClock(DriftingClock(skew=0.0), fail_at=10.0)
        clock.read(20.0)
        clock.set(20.0, 99.0)
        assert clock.read(30.0) == pytest.approx(99.0)

    def test_racing_clock_races_after_failure(self):
        clock = RacingClock(DriftingClock(skew=0.0), fail_at=10.0, racing_skew=0.04)
        assert clock.read(10.0) == pytest.approx(10.0)
        assert clock.read(110.0) == pytest.approx(10.0 + 100.0 * 1.04)

    def test_racing_clock_set_during_failure(self):
        clock = RacingClock(DriftingClock(skew=0.0), fail_at=0.0, racing_skew=1.0)
        clock.set(10.0, 10.0)
        assert clock.read(11.0) == pytest.approx(12.0)

    def test_stuck_clock_ignores_resets_after_failure(self):
        clock = StuckOnResetClock(DriftingClock(skew=0.01), fail_at=10.0)
        clock.set(5.0, 5.0)  # before failure: works
        assert clock.read(5.0) == pytest.approx(5.0)
        clock.set(20.0, 0.0)  # after failure: silently dropped
        assert clock.read(20.0) == pytest.approx(5.0 + 15.0 * 1.01)

    def test_failed_flag(self):
        clock = StoppedClock(PerfectClock(), fail_at=10.0)
        assert not clock.failed(9.9)
        assert clock.failed(10.0)


class TestQuantizedClock:
    def test_floors_to_tick(self):
        clock = QuantizedClock(DriftingClock(skew=0.0), tick=0.5)
        assert clock.read(1.26) == pytest.approx(1.0)
        assert clock.read(1.74) == pytest.approx(1.5)

    def test_set_passes_through(self):
        clock = QuantizedClock(DriftingClock(skew=0.0), tick=1.0)
        clock.set(10.0, 3.3)
        assert clock.read(10.0) == pytest.approx(3.0)
        assert clock.read(10.8) == pytest.approx(4.0)  # 3.3 + 0.8 floored

    def test_quantization_error_bounded_by_tick(self):
        inner = DriftingClock(skew=1e-5)
        clock = QuantizedClock(inner, tick=0.01)
        for t in (1.0, 2.5, 77.7):
            # Access the raw value via a twin inner clock to avoid
            # rewinding the wrapped one.
            raw = (1.0 + 1e-5) * t
            assert 0.0 <= raw - clock.read(t) < 0.01

    def test_invalid_tick_rejected(self):
        with pytest.raises(ValueError):
            QuantizedClock(PerfectClock(), tick=0.0)


class TestMonotonicClock:
    def test_tracks_base_when_no_steps(self):
        base = DriftingClock(skew=0.0)
        mono = MonotonicClock(base)
        assert mono.read(1.0) == pytest.approx(1.0)
        assert mono.read(2.0) == pytest.approx(2.0)

    def test_never_decreases_across_backward_step(self):
        base = DriftingClock(skew=0.0)
        mono = MonotonicClock(base, slew=0.5)
        mono.read(10.0)
        base.set(10.0, 5.0)  # step 5 s backwards
        readings = [mono.read(t) for t in np.linspace(10.0, 30.0, 50)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_amortises_back_to_base(self):
        base = DriftingClock(skew=0.0)
        mono = MonotonicClock(base, slew=0.5)
        mono.read(10.0)
        base.set(10.0, 8.0)  # 2 s backwards; at slew 0.5 needs ~4 s of base
        assert mono.read(20.0) == pytest.approx(base.read(20.0))

    def test_runs_slower_while_ahead(self):
        base = DriftingClock(skew=0.0)
        mono = MonotonicClock(base, slew=0.5)
        mono.read(10.0)
        base.set(10.0, 5.0)
        before = mono.read(10.0)
        after = mono.read(12.0)
        # 2 s of base progress at half rate -> 1 s of monotonic progress.
        assert after - before == pytest.approx(1.0)

    def test_forward_step_snaps_forward(self):
        base = DriftingClock(skew=0.0)
        mono = MonotonicClock(base)
        mono.read(10.0)
        base.set(10.0, 100.0)
        assert mono.read(11.0) == pytest.approx(101.0)

    def test_ahead_property(self):
        base = DriftingClock(skew=0.0)
        mono = MonotonicClock(base, slew=0.5)
        mono.read(10.0)
        base.set(10.0, 7.0)
        mono.read(10.0)
        assert mono.ahead == pytest.approx(3.0)

    def test_set_is_rejected(self):
        mono = MonotonicClock(DriftingClock(skew=0.0))
        with pytest.raises(NotImplementedError):
            mono.set(0.0, 1.0)

    def test_invalid_slew_rejected(self):
        with pytest.raises(ValueError):
            MonotonicClock(PerfectClock(), slew=0.0)
        with pytest.raises(ValueError):
            MonotonicClock(PerfectClock(), slew=1.5)


class TestFailureDetach:
    """detach() ends a transient fault and hands back the inner clock."""

    def test_stopped_clock_thaws_from_frozen_value(self):
        clock = StoppedClock(DriftingClock(skew=0.0), fail_at=5.0)
        frozen = clock.read(8.0)
        assert frozen == pytest.approx(5.0)
        inner = clock.detach(10.0)
        # The thawed clock resumes from the frozen value: permanently
        # behind real time until a reset corrects it.
        assert inner.read(10.0) == pytest.approx(frozen)
        assert inner.read(13.0) == pytest.approx(frozen + 3.0)

    def test_racing_clock_keeps_surplus(self):
        clock = RacingClock(DriftingClock(skew=0.0), fail_at=0.0, racing_skew=1.0)
        assert clock.read(10.0) == pytest.approx(20.0)
        inner = clock.detach(10.0)
        # Repaired clock runs at its natural rate but keeps the gain.
        assert inner.read(12.0) == pytest.approx(22.0)

    def test_stuck_on_reset_detach_restores_settability(self):
        clock = StuckOnResetClock(DriftingClock(skew=0.0), fail_at=0.0)
        clock.set(5.0, 100.0)  # silently dropped while wedged
        assert clock.read(5.5) == pytest.approx(5.5)
        inner = clock.detach(6.0)
        inner.set(7.0, 100.0)
        assert inner.read(7.5) == pytest.approx(100.5)

    def test_set_during_freeze_rewrites_frozen_value(self):
        clock = StoppedClock(DriftingClock(skew=0.0), fail_at=0.0)
        clock.set(2.0, 50.0)
        assert clock.read(4.0) == pytest.approx(50.0)
        inner = clock.detach(5.0)
        assert inner.read(6.0) == pytest.approx(51.0)

    def test_set_during_race_restarts_segment(self):
        clock = RacingClock(DriftingClock(skew=0.0), fail_at=0.0, racing_skew=1.0)
        clock.set(4.0, 0.0)
        assert clock.read(6.0) == pytest.approx(4.0)  # races again from 0
        inner = clock.detach(6.0)
        assert inner.read(8.0) == pytest.approx(6.0)
