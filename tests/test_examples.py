"""Smoke tests: every example script runs clean and prints its claim.

Examples are user-facing documentation; a broken one is a bug.  Each test
runs the script in a subprocess (as a user would) and asserts on the
headline output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Algorithm IM" in out and "Algorithm MM" in out
        assert "asynchronism" in out

    def test_xerox_internet(self):
        out = run_example("xerox_internet.py")
        assert "Service state after 2 simulated hours" in out
        assert "intersect" in out

    def test_bad_clock_recovery(self):
        out = run_example("bad_clock_recovery.py")
        assert "sawtooth" in out
        assert "worst offset" in out

    def test_ntp_style_selection(self):
        out = run_example("ntp_style_selection.py")
        assert "falsetickers identified" in out
        assert "Marzullo" in out

    def test_monotonic_client(self):
        out = run_example("monotonic_client.py")
        assert "backward steps in the monotonic view: 0" in out
        assert "backward steps in the raw clock:" in out
        # The raw clock must actually step back for the demo to mean anything.
        raw_line = next(
            line for line in out.splitlines() if "raw clock" in line
        )
        assert int(raw_line.rsplit(" ", 1)[1]) > 0

    def test_consonance_diagnosis(self):
        out = run_example("consonance_diagnosis.py")
        assert "dissonant servers" in out
        assert "S6" in out

    def test_event_ordering(self):
        out = run_example("event_ordering.py")
        assert "indeterminate" in out
        assert "certainly later: True" in out

    def test_parameter_study(self):
        out = run_example("parameter_study.py", timeout=600.0)
        assert "Headlines from the surface" in out
        assert "IM mean error vs MM" in out
