"""Tests for server churn and the Section 5 rate-tracking machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.core.recovery import ThirdServerRecovery
from repro.network.delay import ConstantDelay, UniformDelay
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec, build_service
from repro.service.churn import ChurnController
from repro.service.rate_tracking import RateTrackingServer

from tests.helpers import make_mesh_service


class TestLeaveRejoin:
    def test_departed_server_does_not_answer(self):
        service = make_mesh_service(3, MMPolicy())
        service.run_until(50.0)
        victim = service.servers["S2"]
        answered_before = victim.stats.requests_answered
        victim.leave()
        service.run_until(200.0)
        assert victim.stats.requests_answered == answered_before
        assert victim.departed

    def test_departed_server_stops_polling(self):
        service = make_mesh_service(3, MMPolicy())
        service.run_until(50.0)
        victim = service.servers["S2"]
        victim.leave()
        rounds_at_leave = victim.stats.rounds
        service.run_until(400.0)
        assert victim.stats.rounds == rounds_at_leave

    def test_rejoin_restores_service(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(50.0)
        victim = service.servers["S2"]
        victim.leave()
        service.run_until(100.0)
        victim.rejoin(initial_error=5.0)
        assert not victim.departed
        _value, error = victim.report()
        assert error == pytest.approx(5.0, abs=0.1)
        # Within a few rounds the rejoined server is pulled back in.
        service.run_until(200.0)
        _value, error = victim.report()
        assert error < 0.5
        assert victim.is_correct()

    def test_leave_rejoin_idempotence(self):
        service = make_mesh_service(3, MMPolicy())
        service.run_until(10.0)
        victim = service.servers["S1"]
        victim.leave()
        victim.leave()
        victim.rejoin(1.0)
        victim.rejoin(1.0)
        assert not victim.departed

    def test_rejoin_negative_error_rejected(self):
        service = make_mesh_service(3, MMPolicy())
        victim = service.servers["S1"]
        victim.leave()
        with pytest.raises(ValueError):
            victim.rejoin(-1.0)


class TestChurnController:
    def _service_with_churn(self, **kwargs):
        service = make_mesh_service(5, IMPolicy(), tau=20.0, trace_enabled=True)
        controller = ChurnController(
            service.engine,
            list(service.servers.values()),
            np.random.default_rng(0),
            interval=kwargs.pop("interval", 50.0),
            mean_downtime=kwargs.pop("mean_downtime", 30.0),
            rejoin_error=1.0,
            min_alive=kwargs.pop("min_alive", 2),
        )
        controller.start()
        return service, controller

    def test_churn_produces_departures_and_rejoins(self):
        service, controller = self._service_with_churn()
        service.run_until(2000.0)
        assert controller.stats.departures > 5
        assert controller.stats.rejoins > 5

    def test_min_alive_respected(self):
        service, controller = self._service_with_churn(
            interval=5.0, mean_downtime=500.0, min_alive=3
        )
        checked = 0
        for t in range(50, 2000, 50):
            service.run_until(float(t))
            present = sum(
                1 for s in service.servers.values() if not s.departed
            )
            assert present >= 3
            checked += 1
        assert checked > 0
        assert controller.stats.skipped > 0

    def test_present_servers_stay_correct_under_churn(self):
        service, controller = self._service_with_churn()
        for t in range(100, 3000, 100):
            service.run_until(float(t))
            snap = service.snapshot()
            for name, server in service.servers.items():
                if not server.departed:
                    assert snap.correct[name]

    def test_invalid_parameters(self):
        service = make_mesh_service(3, IMPolicy())
        with pytest.raises(ValueError):
            ChurnController(
                service.engine, [], np.random.default_rng(0), interval=0.0
            )
        with pytest.raises(ValueError):
            ChurnController(
                service.engine,
                [],
                np.random.default_rng(0),
                rejoin_error=-1.0,
            )


def build_rate_tracking_pair(bad_skew=5e-3, tau=20.0, delta=1e-5):
    """S1 (tracking, good) polling S2 (good) and S3 (racing)."""
    specs = [
        ServerSpec("S1", delta=delta, skew=0.0, rate_tracking=True),
        ServerSpec("S2", delta=delta, skew=2e-6, polls=False),
        ServerSpec("S3", delta=delta, skew=bad_skew, polls=False),
    ]
    return build_service(
        full_mesh(3),
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=0,
        lan_delay=ConstantDelay(0.005),
    )


class TestRateTracking:
    def test_raw_clock_unaffected_by_resets(self):
        service = make_mesh_service(2, IMPolicy(), tau=10.0)
        # Rebuild with rate tracking on.
        specs = [
            ServerSpec("S1", delta=1e-4, skew=5e-5, rate_tracking=True),
            ServerSpec("S2", delta=0.0, skew=0.0, polls=False),
        ]
        service = build_service(
            full_mesh(2),
            specs,
            policy=IMPolicy(),
            tau=10.0,
            seed=0,
            lan_delay=ConstantDelay(0.005),
        )
        service.run_until(500.0)
        server = service.servers["S1"]
        assert isinstance(server, RateTrackingServer)
        assert server.stats.resets > 5
        # Raw time advances at the oscillator rate: 500 s * (1 + 5e-5).
        assert server.raw_clock_value == pytest.approx(
            500.0 * (1 + 5e-5), abs=0.01
        )

    def test_detects_racing_neighbour(self):
        service = build_rate_tracking_pair()
        service.run_until(600.0)
        server = service.servers["S1"]
        assert server.dissonant_neighbours() == ["S3"]
        report = server.rate_report("S3")
        assert report.consonant is False
        assert report.estimate is not None
        assert report.estimate.rate == pytest.approx(5e-3, rel=0.2)

    def test_healthy_neighbour_is_consonant(self):
        service = build_rate_tracking_pair()
        service.run_until(600.0)
        report = service.servers["S1"].rate_report("S2")
        assert report.consonant is True
        assert report.remote_delta == pytest.approx(1e-5)

    def test_unknown_neighbour_verdict_none(self):
        service = build_rate_tracking_pair()
        report = service.servers["S1"].rate_report("S2")
        assert report.consonant is None
        assert report.estimate is None

    def test_rate_reports_cover_all_heard(self):
        service = build_rate_tracking_pair()
        service.run_until(600.0)
        reports = service.servers["S1"].rate_reports()
        assert set(reports) == {"S2", "S3"}

    def test_dissonant_neighbour_excluded_from_recovery(self):
        """The Section 5 fix: the tracker widens the recovery exclusion
        set, so the arbiter is never a provably-bad clock."""
        specs = [
            ServerSpec("S1", delta=1e-5, skew=0.0, rate_tracking=True),
            # Two racing neighbours, alphabetically before the good one —
            # without rate tracking, pool[0] would pick a bad arbiter.
            ServerSpec("B1", delta=1e-5, skew=5e-3, polls=False),
            ServerSpec("B2", delta=1e-5, skew=-4e-3, polls=False),
            ServerSpec("G1", delta=1e-5, skew=1e-6, polls=False),
        ]
        import networkx as nx

        graph = nx.Graph()
        graph.add_edges_from(
            [("S1", "B1"), ("S1", "B2"), ("S1", "G1")]
        )
        service = build_service(
            graph,
            specs,
            policy=MMPolicy(),
            tau=30.0,
            seed=0,
            lan_delay=UniformDelay(0.01),
            recovery_factory=lambda name: ThirdServerRecovery(),
            trace_enabled=True,
        )
        service.run_until(3600.0)
        recoveries = service.trace.filter(
            kind="reset",
            source="S1",
            predicate=lambda row: row.data.get("reset_kind") == "recovery",
        )
        assert recoveries, "scenario should trigger recoveries"
        # Once the rate window fills (a few rounds), arbiters are good.
        poisoned_late = [
            row
            for row in recoveries
            if row.time > 300.0
            and row.data["from_server"].removeprefix("recovery:") in ("B1", "B2")
        ]
        assert poisoned_late == []
        assert service.servers["S1"].is_correct()
