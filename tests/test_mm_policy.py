"""Unit tests for algorithm MM (rule MM-2)."""

from __future__ import annotations

import pytest

from repro.core.mm import MMPolicy
from repro.core.sync import LocalState, Reply


def state(clock=100.0, error=1.0, delta=1e-5) -> LocalState:
    return LocalState(clock_value=clock, error=error, delta=delta)


def reply(server="S2", clock=100.0, error=0.5, rtt=0.1, **kwargs) -> Reply:
    return Reply(server=server, clock_value=clock, error=error, rtt_local=rtt, **kwargs)


class TestPredicate:
    def test_accepts_strictly_better_reply(self):
        policy = MMPolicy()
        assert policy.accepts(state(error=1.0), reply(error=0.5, rtt=0.1))

    def test_rejects_worse_reply(self):
        policy = MMPolicy()
        assert not policy.accepts(state(error=0.2), reply(error=0.5, rtt=0.1))

    def test_rtt_counts_against_the_reply(self):
        """E_j alone is better, but E_j + (1+δ)ξ is not."""
        policy = MMPolicy()
        assert not policy.accepts(state(error=0.55), reply(error=0.5, rtt=0.1))

    def test_equality_accepted_by_default(self):
        """The paper's predicate is <=; the self-reply device needs it."""
        policy = MMPolicy()
        local = state(error=0.5 + 1.1 * (1 + 1e-5) - 1.1)  # engineered
        the_reply = reply(error=0.5, rtt=0.0)
        assert policy.accepts(state(error=0.5), the_reply)

    def test_strict_mode_rejects_equality(self):
        policy = MMPolicy(strict_improvement=True)
        assert not policy.accepts(state(error=0.5), reply(error=0.5, rtt=0.0))

    def test_adoption_error_inflates_rtt(self):
        policy = MMPolicy()
        local = state(delta=0.5)
        assert policy.adoption_error(local, reply(error=1.0, rtt=2.0)) == (
            pytest.approx(1.0 + 1.5 * 2.0)
        )

    def test_ablation_raw_rtt(self):
        policy = MMPolicy(inflate_rtt=False)
        local = state(delta=0.5)
        assert policy.adoption_error(local, reply(error=1.0, rtt=2.0)) == (
            pytest.approx(3.0)
        )


class TestOnReply:
    def test_reset_decision_carries_mm2_values(self):
        """ε_i <- E_j + (1+δ_i)ξ, C_i <- C_j (rule MM-2)."""
        policy = MMPolicy()
        local = state(clock=100.0, error=1.0, delta=1e-5)
        the_reply = reply(server="S9", clock=100.2, error=0.3, rtt=0.1)
        outcome = policy.on_reply(local, the_reply)
        assert outcome.consistent
        assert outcome.decision is not None
        assert outcome.decision.clock_value == 100.2
        assert outcome.decision.inherited_error == pytest.approx(
            0.3 + (1 + 1e-5) * 0.1
        )
        assert outcome.decision.source == "S9"

    def test_consistent_but_worse_reply_not_adopted(self):
        policy = MMPolicy()
        outcome = policy.on_reply(state(error=0.1), reply(error=0.5))
        assert outcome.consistent and outcome.decision is None

    def test_inconsistent_reply_ignored(self):
        """'Any reply that is inconsistent with S_i is ignored.'"""
        policy = MMPolicy()
        local = state(clock=100.0, error=0.1)
        far = reply(clock=200.0, error=0.1, rtt=0.0)
        outcome = policy.on_reply(local, far)
        assert not outcome.consistent and outcome.decision is None

    def test_consistency_uses_transit_widened_interval(self):
        """A reply whose raw interval misses the local one, but whose
        rtt-widened (transit) interval reaches it, is consistent."""
        policy = MMPolicy()
        local = state(clock=100.5, error=0.1, delta=0.0)
        # Raw reply interval [99.8, 100.2] misses [100.4, 100.6]; with the
        # round trip 0.3 the leading edge reaches 100.5.
        lagged = reply(clock=100.0, error=0.2, rtt=0.3)
        outcome = policy.on_reply(local, lagged)
        assert outcome.consistent

    def test_round_outcome_reports_all_inconsistent(self):
        policy = MMPolicy()
        local = state(clock=100.0, error=0.01)
        replies = [reply(clock=200.0, error=0.01, rtt=0.0, server=f"S{k}") for k in range(3)]
        outcome = policy.on_round_complete(local, replies)
        assert not outcome.consistent

    def test_round_outcome_consistent_when_any_reply_is(self):
        policy = MMPolicy()
        local = state(clock=100.0, error=0.01)
        replies = [
            reply(clock=200.0, error=0.01, rtt=0.0, server="far"),
            reply(clock=100.0, error=0.01, rtt=0.0, server="near"),
        ]
        assert policy.on_round_complete(local, replies).consistent

    def test_empty_round_is_consistent(self):
        policy = MMPolicy()
        assert policy.on_round_complete(state(), []).consistent

    def test_policy_is_incremental(self):
        assert MMPolicy().incremental
