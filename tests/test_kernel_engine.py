"""Determinism regressions for the batched/sharded kernel engine.

Three guarantees are pinned here, each as a digest comparison so any drift
in arithmetic, ordering, or RNG consumption fails loudly:

* **exact mode vs the heap engine** — on a clean staggered mesh, the
  round-structured replay produces the *same trace, byte for byte*, the
  same event ledger, the same per-server stats and the same final snapshot
  as :func:`repro.service.builder.build_service`'s discrete-event run;
* **bulk mode is deterministic** — same seed → identical trace and state
  digests across runs; different seed → different state;
* **bulk mode is partition-invariant** — 1 shard, 4 shards, and 4 shards
  across worker processes all produce identical digests, because RNG
  streams are per-server and the trace merge is keyed on
  ``(cycle, phase rank, seq)``, neither of which depends on the partition.
"""

from __future__ import annotations

import pytest

from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.network import ConstantDelay, UniformDelay
from repro.network.topology import full_mesh, ring
from repro.service.builder import ServerSpec, build_service
from repro.kernel import (
    KernelConfig,
    build_kernel_service,
    plan_kernel,
    partition_names,
    state_digest,
    trace_digest,
)

pytestmark = pytest.mark.kernel

TAU = 10.0
DELAY = 0.01  # one-way bound; 2·bound = 0.02 < τ/(n+1) for n <= 499


def mesh_specs(n: int) -> list[ServerSpec]:
    return [
        ServerSpec(
            name=f"S{k + 1}",
            delta=1e-5,
            skew=((-1) ** k) * 1e-5 * 0.8 * (k + 1) / n,
            initial_error=0.002 + 0.001 * k,
        )
        for k in range(n)
    ]


def scalar_service(graph, specs, policy, seed):
    return build_service(
        graph,
        specs,
        policy=policy,
        tau=TAU,
        seed=seed,
        lan_delay=UniformDelay(DELAY),
    )


def kernel_service(graph, specs, policy, seed, **kwargs):
    kwargs.setdefault("lan_delay", UniformDelay(DELAY))
    return build_kernel_service(
        graph, specs, policy=policy, tau=TAU, seed=seed, **kwargs
    )


def bulk_digests(policy_name, *, graph=None, specs=None, seed=0,
                 horizon=200.0, shards=1, processes=0):
    graph = full_mesh(8) if graph is None else graph
    specs = mesh_specs(len(graph)) if specs is None else specs
    policy = MMPolicy() if policy_name == "mm" else IMPolicy()
    with kernel_service(
        graph, specs, policy, seed, mode="bulk",
        shards=shards, processes=processes,
    ) as svc:
        svc.run_until(horizon)
        return trace_digest(svc.trace), svc.state_digest(), svc.events_processed


# ------------------------------------------------------- exact vs heap engine


class TestExactVsScalar:
    @pytest.mark.parametrize("policy_name", ["mm", "im"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_trace_and_state_bit_identical(self, policy_name, seed):
        graph = full_mesh(8)
        specs = mesh_specs(8)
        policy = MMPolicy() if policy_name == "mm" else IMPolicy()
        horizon = 300.0

        scalar = scalar_service(graph, specs, policy, seed)
        scalar.run_until(horizon)
        exact = kernel_service(graph, specs, policy, seed, mode="exact")
        exact.run_until(horizon)

        assert trace_digest(exact.trace) == trace_digest(scalar.trace)
        assert len(list(exact.trace)) == len(list(scalar.trace))
        assert exact.events_processed == scalar.engine.events_processed

        scalar_snap = scalar.snapshot()
        exact_snap = exact.snapshot()
        assert exact_snap.time == scalar_snap.time
        for name in sorted(s.name for s in specs):
            assert exact_snap.values[name] == scalar_snap.values[name]
            assert exact_snap.errors[name] == scalar_snap.errors[name]

        for name, kstats in exact.stats.items():
            sstats = scalar.servers[name].stats
            for field in (
                "rounds", "replies_handled", "resets",
                "rejects", "inconsistencies", "requests_answered",
            ):
                assert getattr(kstats, field) == getattr(sstats, field), (
                    f"{name}.{field}"
                )

    def test_exact_rounds_actually_reset(self):
        # Guard against vacuous digest equality: the run must do real work.
        exact = kernel_service(full_mesh(8), mesh_specs(8), MMPolicy(), 0,
                               mode="exact")
        exact.run_until(300.0)
        assert sum(s.resets for s in exact.stats.values()) > 0
        assert exact.events_processed > 0


# ------------------------------------------------------------ bulk determinism


class TestBulkDeterminism:
    @pytest.mark.parametrize("policy_name", ["mm", "im"])
    def test_same_seed_repeats_exactly(self, policy_name):
        first = bulk_digests(policy_name, seed=3)
        second = bulk_digests(policy_name, seed=3)
        assert first == second
        assert first[2] > 0

    def test_different_seed_differs(self):
        assert bulk_digests("mm", seed=0)[1] != bulk_digests("mm", seed=7)[1]

    @pytest.mark.parametrize("policy_name", ["mm", "im"])
    @pytest.mark.parametrize(
        "graph_factory", [lambda: full_mesh(8), lambda: ring(12)],
        ids=["mesh8", "ring12"],
    )
    def test_shard_count_invariance(self, policy_name, graph_factory):
        baseline = bulk_digests(policy_name, graph=graph_factory())
        sharded = bulk_digests(policy_name, graph=graph_factory(), shards=4)
        assert sharded == baseline

    @pytest.mark.parametrize("policy_name", ["mm", "im"])
    def test_multiprocess_matches_in_process(self, policy_name):
        baseline = bulk_digests(policy_name)
        multi = bulk_digests(policy_name, shards=4, processes=2)
        assert multi == baseline

    def test_trace_disabled_keeps_state_digest(self):
        graph = full_mesh(8)
        traced = bulk_digests("mm")
        with kernel_service(
            graph, mesh_specs(8), MMPolicy(), 0,
            mode="bulk", trace_enabled=False,
        ) as svc:
            svc.run_until(200.0)
            assert svc.trace == []
            assert svc.state_digest() == traced[1]
            assert svc.events_processed == traced[2]


# ---------------------------------------------------------------- validation


class TestPlanValidation:
    def test_partition_covers_names_in_order(self):
        names = [f"S{k}" for k in range(10)]
        blocks = partition_names(names, 4)
        assert [n for block in blocks for n in block] == names
        assert all(block for block in blocks)
        assert partition_names(names, 1) == [names]

    def test_rejects_unsupported_specs(self):
        graph = full_mesh(3)
        specs = mesh_specs(3)
        reference = [
            ServerSpec("S1", reference=True, initial_error=0.01),
            *specs[1:],
        ]
        with pytest.raises(ValueError):
            plan_kernel(KernelConfig(graph, reference, MMPolicy(), TAU))
        with pytest.raises(ValueError, match="UniformDelay"):
            plan_kernel(
                KernelConfig(graph, specs, MMPolicy(), TAU,
                             delay=ConstantDelay(DELAY))
            )
        with pytest.raises(ValueError, match="duplicate"):
            plan_kernel(
                KernelConfig(graph, [specs[0], *specs[:2]], MMPolicy(), TAU)
            )
        with pytest.raises(ValueError, match="not in the topology"):
            plan_kernel(
                KernelConfig(
                    graph,
                    [*specs[:2], ServerSpec("S9", delta=1e-5)],
                    MMPolicy(),
                    TAU,
                )
            )

    def test_exact_mode_preconditions(self):
        graph = full_mesh(8)
        specs = mesh_specs(8)
        # Round span 2·bound must fit inside the stagger gap τ/(n+1)...
        with pytest.raises(ValueError, match="non-overlapping"):
            kernel_service(
                graph, specs, MMPolicy(), 0, mode="exact",
                lan_delay=UniformDelay(2.0 * TAU),
            )
        # ...and the round timer must never cut a round short.
        with pytest.raises(ValueError, match="round_timeout"):
            kernel_service(
                graph, specs, MMPolicy(), 0, mode="exact",
                round_timeout=DELAY / 2.0,
            )

    def test_exact_mode_is_single_shard(self):
        with pytest.raises(ValueError, match="single-shard"):
            kernel_service(
                full_mesh(4), mesh_specs(4), MMPolicy(), 0,
                mode="exact", shards=2,
            )
        with pytest.raises(ValueError, match="mode"):
            kernel_service(
                full_mesh(4), mesh_specs(4), MMPolicy(), 0, mode="turbo",
            )

    def test_run_backwards_raises(self):
        with kernel_service(
            full_mesh(4), mesh_specs(4), MMPolicy(), 0, mode="bulk"
        ) as svc:
            svc.run_until(50.0)
            with pytest.raises(ValueError, match="backwards"):
                svc.run_until(20.0)
