"""Property-style integration tests for the paper's theorems.

These run whole simulated services and check the theorem statements as
executable properties: correctness preservation (Theorems 1 and 5), the
never-decreasing minimum error (Lemma 3), the error/asynchronism bounds
(Theorems 2, 3, 7), and convergence (Theorem 4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    correctness_violations,
    min_error_series,
    pairwise_asynchronism,
)
from repro.core.bounds import ServiceParameters
from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.experiments.scenarios import MeshScenario, build_mesh_service, grid
from repro.experiments.theorem_bounds import (
    _default_deltas,
    run_im_bounds,
    run_mm_bounds,
)


@pytest.mark.parametrize("policy_factory", [MMPolicy, IMPolicy], ids=["MM", "IM"])
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n", [3, 6])
def test_theorem1_and_5_correctness_preserved(policy_factory, seed, n):
    """Valid δ bounds => the service never becomes incorrect."""
    scenario = MeshScenario(n=n, delta=1e-4, seed=seed)
    service = build_mesh_service(scenario, policy_factory())
    snapshots = service.sample(grid(0.0, 1200.0, 60))
    assert correctness_violations(snapshots) == []


@pytest.mark.parametrize("policy_factory", [MMPolicy, IMPolicy], ids=["MM", "IM"])
def test_lemma3_min_error_never_decreases(policy_factory):
    """E_M(t) is non-decreasing (Lemma 3), up to float jitter."""
    scenario = MeshScenario(n=5, deltas=_default_deltas(5, 1e-5), seed=3)
    service = build_mesh_service(scenario, policy_factory())
    snapshots = service.sample(grid(0.0, 1200.0, 120))
    series = min_error_series(snapshots)
    assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))


def test_theorem2_and_3_hold_on_sweep_cell():
    scenario = MeshScenario(n=4, deltas=_default_deltas(4, 1e-5), tau=30.0, seed=0)
    result = run_mm_bounds(scenario, horizon=900.0, samples=60)
    assert result.theorem2 is not None and result.theorem2.holds
    assert result.theorem3 is not None and result.theorem3.holds


def test_theorem7_holds_on_sweep_cell():
    scenario = MeshScenario(n=4, deltas=_default_deltas(4, 1e-5), tau=30.0, seed=0)
    result = run_im_bounds(scenario, horizon=900.0, samples=60)
    assert result.theorem7 is not None and result.theorem7.holds


def test_theorem7_bound_is_tighter_than_theorem3():
    """IM's asynchronism bound beats MM's whenever E_M > 0 — the paper's
    central comparison."""
    params = ServiceParameters(xi=0.1, tau=60.0)
    for e_min in (0.01, 0.1, 1.0):
        assert params.im_asynchronism_bound(1e-5, 1e-5) < (
            params.mm_asynchronism_bound(e_min, 1e-5, 1e-5)
        )


def test_im_outsyncs_mm_in_practice():
    """Measured asynchronism under IM is much smaller than under MM on the
    same scenario (Theorem 7 vs Theorem 3, empirically)."""
    scenario = MeshScenario(n=5, delta=1e-4, seed=7)
    horizon = 1800.0
    sample_times = grid(300.0, horizon, 40)

    mm_snaps = build_mesh_service(scenario, MMPolicy()).sample(sample_times)
    im_snaps = build_mesh_service(scenario, IMPolicy()).sample(sample_times)
    mm_asyn = float(np.mean([snap.asynchronism for snap in mm_snaps]))
    im_asyn = float(np.mean([snap.asynchronism for snap in im_snaps]))
    assert im_asyn < mm_asyn


def test_asynchronism_respects_theorem7_for_every_pair():
    scenario = MeshScenario(n=4, delta=1e-4, tau=30.0, seed=1)
    service = build_mesh_service(scenario, IMPolicy())
    snapshots = service.sample(grid(30.0, 900.0, 60))
    params = ServiceParameters(xi=scenario.xi, tau=scenario.tau)
    bound = params.im_asynchronism_bound(1e-4, 1e-4)
    names = scenario.names()
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            measured = pairwise_asynchronism(snapshots, a, b)
            assert measured.max() <= bound


def test_invalid_bound_breaks_correctness():
    """The contrapositive: an invalid δ lets the service go incorrect —
    the premise of Sections 3 and 5."""
    scenario = MeshScenario(
        n=3, delta=1e-5, skews=[0.0, 5e-6, 3e-4], seed=2
    )  # S3's skew is 30x its claimed bound
    service = build_mesh_service(scenario, IMPolicy())
    snapshots = service.sample(grid(0.0, 1200.0, 60))
    assert correctness_violations(snapshots)
