"""Behavioural tests for :class:`repro.load.server.LoadAwareServer`."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.load.capacity import CapacityConfig, ServiceClass
from repro.load.server import LoadPolicy
from repro.load.admission import TokenBucketConfig
from repro.network.delay import ConstantDelay
from repro.service.builder import ServerSpec, build_service
from repro.service.client import QueryStrategy
from repro.service.messages import ReplyStatus, RequestKind, TimeReply, TimeRequest
from repro.simulation.process import SimProcess


class Probe(SimProcess):
    """A bare node that records every message it receives."""

    def __init__(self, engine, name, network):
        super().__init__(engine, name)
        self.network = network
        self.replies = []

    def on_message(self, message, sender):
        self.replies.append((self.now, message))


def make_service(capacity, load_policy=None, *, delta=1e-4):
    """One load-aware server S, a client hub C, a probe node P."""
    graph = nx.Graph([("C", "S"), ("P", "S")])
    service = build_service(
        graph,
        [ServerSpec("S", delta=delta, initial_error=0.01, polls=False)],
        policy=None,
        tau=60.0,
        seed=3,
        lan_delay=ConstantDelay(0.001),
        capacity=capacity,
        load_policy=load_policy,
    )
    client = service.add_client("C")
    client.start()
    probe = Probe(service.engine, "P", service.network)
    service.network.register(probe)
    probe.start()
    return service, client, probe


class TestFreshPath:
    def test_answer_costs_service_time(self):
        service, client, _probe = make_service(
            CapacityConfig(service_time=0.05, degraded_time=0.01)
        )
        results = []
        client.ask(["S"], QueryStrategy.FIRST_REPLY, callback=results.append)
        service.engine.run(until=0.04)
        assert results == []  # still on the CPU
        service.engine.run(until=0.2)
        assert len(results) == 1
        assert results[0].correct
        assert service.servers["S"].load_stats.fresh_replies == 1

    def test_requests_queue_behind_the_cpu(self):
        service, client, _probe = make_service(
            CapacityConfig(service_time=0.05, degraded_time=0.01, queue_limit=8)
        )
        results = []
        for _ in range(3):
            client.ask(["S"], callback=results.append)
        service.engine.run(until=1.0)
        assert len(results) == 3
        # Serial service: roughly service_time apart, not simultaneous.
        latencies = sorted(r.latency for r in results)
        assert latencies[-1] >= latencies[0] + 0.09


class TestShedding:
    def test_bucket_refusal_sends_busy_with_hint(self):
        service, client, _probe = make_service(
            CapacityConfig(service_time=0.001, degraded_time=0.0005),
            LoadPolicy(admission=TokenBucketConfig(rate=5.0, burst=1.0)),
        )
        client.ask(["S"])
        client.ask(["S"])  # same instant: the bucket holds one token
        service.engine.run(until=3.0)
        server = service.servers["S"]
        assert server.load_stats.busy_replies == 1
        assert server.bucket.refused == 1
        # The plain client ignores BUSY, so the second query failed.
        assert len(client.results) == 1 and len(client.failures) == 1

    def test_plain_policy_sheds_silently(self):
        service, client, _probe = make_service(
            CapacityConfig(
                service_time=0.05,
                degraded_time=0.01,
                queue_limit=1,
                prioritized=False,
                sync_evicts_client=False,
            ),
            LoadPolicy.plain(),
        )
        for _ in range(5):
            client.ask(["S"])
        service.engine.run(until=3.0)
        server = service.servers["S"]
        assert server.load_stats.busy_replies == 0
        assert server.load_stats.shed_silent == 3  # 1 serving + 1 queued
        assert len(client.failures) == 3

    def test_full_queue_evicts_client_for_poll(self):
        service, client, probe = make_service(
            CapacityConfig(
                service_time=0.5, degraded_time=0.1, queue_limit=2
            ),
            LoadPolicy(admission=None, shedding="drop-tail"),
        )
        for _ in range(3):  # one on the CPU, two queued: full
            client.ask(["S"])
        service.engine.run(until=0.01)
        server = service.servers["S"]
        assert server.queue.full
        service.network.send(
            "P",
            "S",
            TimeRequest(
                request_id=7, origin="P", destination="S", kind=RequestKind.POLL
            ),
        )
        service.engine.run(until=5.0)
        assert server.load_stats.sync_evictions == 1
        assert server.queue.stats.evicted[ServiceClass.CLIENT] == 1
        # The poll got in and was answered (priority: before the client).
        poll_replies = [
            m for _, m in probe.replies if isinstance(m, TimeReply)
        ]
        assert len(poll_replies) == 1
        assert poll_replies[0].status is ReplyStatus.OK
        # The evicted client request got a BUSY reply.
        assert server.load_stats.busy_replies == 1

    def test_full_queue_drops_poll_when_eviction_disabled(self):
        service, client, probe = make_service(
            CapacityConfig(
                service_time=0.5,
                degraded_time=0.1,
                queue_limit=2,
                prioritized=False,
                sync_evicts_client=False,
            ),
            LoadPolicy.plain(),
        )
        for _ in range(3):
            client.ask(["S"])
        service.engine.run(until=0.01)
        service.network.send(
            "P",
            "S",
            TimeRequest(
                request_id=7, origin="P", destination="S", kind=RequestKind.POLL
            ),
        )
        service.engine.run(until=5.0)
        server = service.servers["S"]
        assert server.load_stats.sync_drops == 1
        assert not any(isinstance(m, TimeReply) for _, m in probe.replies)


class TestDegradedMode:
    def test_degraded_reply_is_stale_wide_and_correct(self):
        service, client, _probe = make_service(
            CapacityConfig(service_time=0.01, degraded_time=0.002), delta=1e-3
        )
        server = service.servers["S"]
        service.engine.run(until=10.0)  # let the cache age
        server.detector.overloaded = True
        server.detector.ewma = 1.0  # stays above the exit threshold
        results = []
        client.ask(["S"], callback=results.append)
        service.engine.run(until=11.0)
        assert server.load_stats.degraded_replies == 1
        assert server.load_stats.degraded_correct == 1
        assert server.load_stats.fresh_replies == 0
        result = results[0]
        assert result.correct  # the whole point: degraded, never wrong
        # The served error carries the age inflation: ~10 s of age at
        # δ = 1e-3 inflates the cached error by at least age·δ.
        assert result.error > 0.01 + 10.0 * 1e-3

    def test_degraded_costs_less_cpu(self):
        service, client, _probe = make_service(
            CapacityConfig(service_time=0.2, degraded_time=0.001)
        )
        server = service.servers["S"]
        server.detector.overloaded = True
        server.detector.ewma = 1.0
        results = []
        client.ask(["S"], callback=results.append)
        service.engine.run(until=0.05)
        assert len(results) == 1  # far quicker than service_time

    def test_reset_refreshes_the_cache(self):
        service, _client, _probe = make_service(
            CapacityConfig(service_time=0.01, degraded_time=0.002)
        )
        server = service.servers["S"]
        service.engine.run(until=5.0)
        before = server._cache
        # Any reset (here via the public clock interface + cache refresh
        # hook) must retake the cache so the age arithmetic stays sound.
        server._refresh_cache()
        after = server._cache
        assert after != before

    def test_busy_reply_never_feeds_a_peer(self):
        """A BUSY reply carries no usable interval and must be rejected
        by the server-side reply validation."""
        reply = TimeReply(
            request_id=1,
            server="S",
            destination="X",
            clock_value=0.0,
            error=float("inf"),
            kind=RequestKind.POLL,
            status=ReplyStatus.BUSY,
        )
        service, _client, _probe = make_service(
            CapacityConfig(service_time=0.01, degraded_time=0.002)
        )
        server = service.servers["S"]
        reason = server._validate_reply(reply)
        assert reason is not None and "busy" in reason
