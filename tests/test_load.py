"""Unit tests for the capacity model and admission machinery."""

from __future__ import annotations

import pytest

import numpy as np

from repro.load.admission import (
    DeadlineAwareShed,
    DropTail,
    OverloadConfig,
    OverloadDetector,
    RandomEarlyShed,
    TokenBucket,
    TokenBucketConfig,
    make_shedding_policy,
)
from repro.load.capacity import (
    CapacityConfig,
    QueuedItem,
    RequestQueue,
    ServiceClass,
)


def item(service_class=ServiceClass.CLIENT, arrived=0.0):
    return QueuedItem(
        service_class=service_class, message=object(), sender=None, arrived=arrived
    )


class TestServiceClass:
    def test_sync_plane_split(self):
        assert ServiceClass.POLL.sync_plane
        assert ServiceClass.RECOVERY.sync_plane
        assert not ServiceClass.CLIENT.sync_plane

    def test_priority_order(self):
        assert ServiceClass.POLL < ServiceClass.RECOVERY < ServiceClass.CLIENT


class TestCapacityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityConfig(service_time=0.0)
        with pytest.raises(ValueError):
            CapacityConfig(degraded_time=1.0, service_time=0.5)
        with pytest.raises(ValueError):
            CapacityConfig(queue_limit=0)

    def test_capacities(self):
        config = CapacityConfig(service_time=0.01, degraded_time=0.002)
        assert config.fresh_capacity == pytest.approx(100.0)
        assert config.degraded_capacity == pytest.approx(500.0)


class TestRequestQueue:
    def test_priority_serves_sync_plane_first(self):
        queue = RequestQueue(limit=8, prioritized=True)
        client = item(ServiceClass.CLIENT)
        poll = item(ServiceClass.POLL)
        recovery = item(ServiceClass.RECOVERY)
        queue.push(client)
        queue.push(recovery)
        queue.push(poll)
        order = [queue.pop().service_class for _ in range(3)]
        assert order == [
            ServiceClass.POLL,
            ServiceClass.RECOVERY,
            ServiceClass.CLIENT,
        ]

    def test_fifo_when_not_prioritized(self):
        queue = RequestQueue(limit=8, prioritized=False)
        first = item(ServiceClass.CLIENT)
        second = item(ServiceClass.POLL)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first  # the flood ahead of the poll

    def test_fifo_within_class(self):
        queue = RequestQueue(limit=8, prioritized=True)
        first, second = item(), item()
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first

    def test_overflow_raises_and_is_counted_explicitly(self):
        queue = RequestQueue(limit=1)
        queue.push(item())
        assert queue.full
        with pytest.raises(OverflowError):
            queue.push(item())
        queue.note_overflow(ServiceClass.CLIENT)
        assert queue.stats.overflowed[ServiceClass.CLIENT] == 1

    def test_evict_youngest_client_spares_sync_plane(self):
        queue = RequestQueue(limit=4)
        old_client = item(arrived=0.0)
        young_client = item(arrived=2.0)
        poll = item(ServiceClass.POLL, arrived=1.0)
        queue.push(old_client)
        queue.push(young_client)
        queue.push(poll)
        evicted = queue.evict_youngest_client()
        assert evicted is young_client
        assert queue.stats.evicted[ServiceClass.CLIENT] == 1
        remaining = [queue.pop() for _ in range(len(queue))]
        assert poll in remaining and old_client in remaining

    def test_evict_with_no_clients_returns_none(self):
        queue = RequestQueue(limit=2)
        queue.push(item(ServiceClass.POLL))
        assert queue.evict_youngest_client() is None

    def test_stale_items_and_remove(self):
        queue = RequestQueue(limit=4)
        stale = item(arrived=0.0)
        fresh = item(arrived=9.9)
        queue.push(stale)
        queue.push(fresh)
        found = queue.stale_client_items(now=10.0, deadline=1.0)
        assert found == [stale]
        assert queue.remove(stale)
        assert not queue.remove(stale)  # already gone
        assert len(queue) == 1

    def test_accounting(self):
        queue = RequestQueue(limit=4)
        for _ in range(3):
            queue.push(item())
        assert queue.stats.peak_depth == 3
        queue.pop()
        assert queue.stats.total(queue.stats.enqueued) == 3
        assert queue.stats.total(queue.stats.served) == 1
        assert queue.depth(ServiceClass.CLIENT) == 2


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(TokenBucketConfig(rate=10.0, burst=2.0))
        assert bucket.try_admit(0.0)
        assert bucket.try_admit(0.0)
        assert not bucket.try_admit(0.0)
        assert bucket.admitted == 2 and bucket.refused == 1

    def test_refill_readmits(self):
        bucket = TokenBucket(TokenBucketConfig(rate=10.0, burst=1.0))
        assert bucket.try_admit(0.0)
        assert not bucket.try_admit(0.0)
        assert bucket.try_admit(0.2)  # 2 tokens' worth of time elapsed

    def test_retry_after_is_the_deficit(self):
        bucket = TokenBucket(TokenBucketConfig(rate=10.0, burst=1.0))
        bucket.try_admit(0.0)
        assert bucket.retry_after(0.0) == pytest.approx(0.1)
        assert bucket.retry_after(0.05) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketConfig(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucketConfig(burst=0.5)


class TestSheddingPolicies:
    def test_registry(self):
        assert isinstance(make_shedding_policy("drop-tail"), DropTail)
        assert isinstance(
            make_shedding_policy("random", threshold=0.25), RandomEarlyShed
        )
        assert isinstance(
            make_shedding_policy("deadline", deadline=0.2), DeadlineAwareShed
        )
        with pytest.raises(ValueError):
            make_shedding_policy("nope")

    def test_drop_tail(self):
        queue = RequestQueue(limit=1)
        policy = DropTail()
        assert policy.admit(queue, 0.0, None)
        queue.push(item())
        assert not policy.admit(queue, 0.0, None)

    def test_random_early_shed_below_knee_always_admits(self):
        queue = RequestQueue(limit=10)
        policy = RandomEarlyShed(threshold=0.5)
        rng = np.random.default_rng(0)
        for _ in range(5):
            assert policy.admit(queue, 0.0, rng)
            queue.push(item())

    def test_random_early_shed_sheds_above_knee(self):
        queue = RequestQueue(limit=10)
        policy = RandomEarlyShed(threshold=0.2)
        rng = np.random.default_rng(1)
        for _ in range(9):
            queue.push(item())
        decisions = [policy.admit(queue, 0.0, rng) for _ in range(200)]
        # Depth 9/10 with knee at 2: shed probability 7/8 — some of each.
        assert any(decisions) and not all(decisions)
        queue.push(item())
        assert not policy.admit(queue, 0.0, rng)  # full: certainty

    def test_deadline_shed_evicts_stale_to_admit_fresh(self):
        queue = RequestQueue(limit=2)
        policy = DeadlineAwareShed(deadline=1.0)
        stale = item(arrived=0.0)
        queue.push(stale)
        queue.push(item(arrived=4.9))
        assert policy.admit(queue, 5.0, None)  # evicted the stale entry
        assert len(queue) == 1
        assert queue.stats.evicted[ServiceClass.CLIENT] == 1

    def test_deadline_shed_refuses_when_nothing_is_stale(self):
        queue = RequestQueue(limit=1)
        policy = DeadlineAwareShed(deadline=1.0)
        queue.push(item(arrived=0.0))
        assert not policy.admit(queue, 0.5, None)


class TestOverloadDetector:
    def test_hysteresis(self):
        detector = OverloadDetector(
            OverloadConfig(alpha=1.0, enter_threshold=0.1, exit_threshold=0.02)
        )
        assert not detector.observe(0.05)  # above exit, below enter: calm
        assert detector.observe(0.5)
        assert detector.observe(0.05)  # inside the band: stays overloaded
        assert not detector.observe(0.0)
        assert detector.onsets == 1 and detector.recoveries == 1

    def test_ewma_smooths(self):
        detector = OverloadDetector(
            OverloadConfig(alpha=0.1, enter_threshold=0.1, exit_threshold=0.02)
        )
        detector.observe(0.0)  # seed the EWMA at calm
        # One spike folded at alpha=0.1 cannot cross the threshold.
        assert not detector.observe(0.5)
        assert detector.ewma == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadConfig(alpha=0.0)
        with pytest.raises(ValueError):
            OverloadConfig(enter_threshold=0.01, exit_threshold=0.05)
