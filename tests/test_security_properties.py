"""Property tests for the on-path security layer.

Four machine-checked claims back the threat-model table in
``docs/security.md``:

* the canonical encoding is a bijection on honest messages (signing is
  well-defined);
* a MAC over the canonical bytes detects **every** single-byte tamper;
* the anti-replay window accepts exactly the fresh, in-window sequence
  numbers — checked against an unbounded-memory oracle, so a pruning
  bug in the windowed seen-set cannot hide;
* the delay guard never rejects an *honest* reply: any transit drawn
  within the links' declared ``[minimum, bound]`` legs, measured on a
  local clock running within ``1 ± δ``, is judged ``ok`` with no
  widening.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.delay import UniformDelay
from repro.security import (
    DelayGuard,
    Keyring,
    MessageAuthenticator,
    ReplayGuard,
    canonical_decode,
    canonical_encode,
)
from repro.service.messages import (
    ReplyStatus,
    RequestKind,
    TimeReply,
    TimeRequest,
)

pytestmark = pytest.mark.security

# repr() round-trips every finite float; honest messages never carry
# nan/inf (the hardened validators reject them long before signing).
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
names = st.text(
    st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=8
)
ids = st.integers(min_value=0, max_value=2**62)


requests = st.builds(
    TimeRequest,
    request_id=ids,
    origin=names,
    destination=names,
    kind=st.sampled_from(RequestKind),
    nonce=ids,
)

replies = st.builds(
    TimeReply,
    request_id=ids,
    server=names,
    destination=names,
    clock_value=finite,
    error=finite,
    kind=st.sampled_from(RequestKind),
    delta=finite,
    epoch=ids,
    verdicts=st.tuples(),
    status=st.sampled_from(ReplyStatus),
    retry_after=finite,
    nonce=ids,
)

messages = st.one_of(requests, replies)


class TestCanonicalEncodingProperties:
    @given(message=messages)
    @settings(max_examples=200)
    def test_round_trip(self, message):
        assert canonical_decode(canonical_encode(message)) == message

    @given(message=messages)
    @settings(max_examples=100)
    def test_encoding_deterministic(self, message):
        assert canonical_encode(message) == canonical_encode(message)


class TestTamperDetectionProperties:
    @given(message=messages, data=st.data())
    @settings(max_examples=200)
    def test_any_single_byte_tamper_detected(self, message, data):
        ring = Keyring.from_secret("property")
        auth = MessageAuthenticator(ring)
        signed = auth.sign(message)
        key_id, seq, mac = signed.auth
        payload = canonical_encode(message)
        index = data.draw(st.integers(0, len(payload) - 1), label="index")
        flip = data.draw(st.integers(1, 255), label="flip")
        tampered = (
            payload[:index]
            + bytes([payload[index] ^ flip])
            + payload[index + 1 :]
        )
        assert auth._mac(key_id, seq, tampered) != mac

    @given(message=messages)
    @settings(max_examples=100)
    def test_untampered_always_verifies(self, message):
        auth = MessageAuthenticator(Keyring.from_secret("property"))
        assert auth.verify(auth.sign(message)) == "ok"


class _ReplayOracle:
    """Unbounded-memory reference for the windowed replay guard."""

    def __init__(self, window: int) -> None:
        self.window = window
        self.highest: dict = {}
        self.seen: dict = {}

    def admit(self, peer: str, seq: int) -> str:
        if peer not in self.highest:
            self.highest[peer] = seq
            self.seen[peer] = {seq}
            return "ok"
        if seq <= self.highest[peer] - self.window:
            return "stale"
        if seq in self.seen[peer]:
            return "replay"
        self.seen[peer].add(seq)
        self.highest[peer] = max(self.highest[peer], seq)
        return "ok"


class TestReplayWindowProperties:
    @given(
        window=st.integers(1, 32),
        events=st.lists(
            st.tuples(
                st.sampled_from(["S1", "S2", "S3"]),
                st.integers(0, 200),
            ),
            max_size=120,
        ),
    )
    @settings(max_examples=200)
    def test_matches_unbounded_oracle(self, window, events):
        guard = ReplayGuard(window=window)
        oracle = _ReplayOracle(window)
        for peer, seq in events:
            assert guard.admit(peer, seq) == oracle.admit(peer, seq)


class TestDelayGuardProperties:
    @given(
        data=st.data(),
        delta=st.floats(0.0, 1e-3),
        mode=st.sampled_from(["widen", "reject"]),
    )
    @settings(max_examples=300)
    def test_never_rejects_honest_transit(self, data, delta, mode):
        def leg(label):
            minimum = data.draw(st.floats(0.0, 0.05), label=f"{label}-min")
            span = data.draw(st.floats(0.0, 0.05), label=f"{label}-span")
            return UniformDelay(minimum + span, minimum=minimum)

        outbound, inbound = leg("out"), leg("in")
        # An honest exchange: each leg inside its declared range, the
        # sum measured on a clock running within 1 ± δ of real time.
        frac1 = data.draw(st.floats(0.0, 1.0), label="frac1")
        frac2 = data.draw(st.floats(0.0, 1.0), label="frac2")
        d1 = outbound.minimum + frac1 * (outbound.bound - outbound.minimum)
        d2 = inbound.minimum + frac2 * (inbound.bound - inbound.minimum)
        rate = 1.0 + data.draw(st.floats(-delta, delta), label="rate")
        guard = DelayGuard(delta, mode=mode)
        verdict = guard.judge((d1 + d2) * rate, outbound, inbound)
        assert verdict.ok
        assert verdict.widen == 0.0
