"""Socket-free units of the live runtime plane (tier-1 safe).

Wire framing, the wall-clock engine's Scheduler contract, RTT tracking,
the chaos proxy's pure packet planner, and supervisor backoff — all
exercised without binding a port or spawning a process.  The live
loopback integration suite is ``test_runtime_loopback.py`` (marker
``runtime``).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.faults.schedule import (
    DelaySpike,
    LinkFlap,
    LossBurst,
    MessageDuplication,
    MessageTamper,
    PartitionFault,
)
from repro.runtime import wire
from repro.runtime.engine import WallClockEngine
from repro.runtime.proxy import ChaosProxy, _matches
from repro.runtime.supervisor import RestartPolicy
from repro.runtime.transport import RttTracker
from repro.security.auth import Keyring, MessageAuthenticator
from repro.service.messages import RequestKind, TimeReply, TimeRequest
from repro.simulation.engine import SchedulingError
from repro.simulation.scheduler import Scheduler


# ----------------------------------------------------------------- wire


def test_wire_request_roundtrip():
    request = TimeRequest(
        request_id=7, origin="S1", destination="S2", kind=RequestKind.POLL
    )
    assert wire.decode_message(wire.encode_message(request)) == request


def test_wire_reply_roundtrip_preserves_auth():
    reply = TimeReply(
        request_id=3,
        server="S2",
        destination="S1",
        clock_value=12.5,
        error=0.004,
        auth=(1, 42, "ab" * 32),
    )
    decoded = wire.decode_message(wire.encode_message(reply))
    assert decoded == reply
    assert decoded.auth == (1, 42, "ab" * 32)


@pytest.mark.parametrize(
    "data",
    [
        b"",
        b"X",
        b"Rjunk",
        b"R3:(),",  # truncated payload
        b"R999:()",  # header length beyond the datagram
        b"R4:[1],payload",  # auth not a tuple
        b"R9:(1,2,3),payload",  # mac not a string
    ],
)
def test_wire_rejects_malformed_frames(data):
    with pytest.raises(ValueError):
        wire.decode_message(data)


def test_wire_truncated_canonical_payload_rejected():
    frame = wire.encode_message(
        TimeRequest(request_id=1, origin="A", destination="B")
    )
    with pytest.raises(ValueError):
        wire.decode_message(frame[:-3])


def test_wire_control_roundtrip_and_kind():
    payload = {"op": "ping", "token": 5}
    frame = wire.encode_control(payload)
    assert wire.packet_kind(frame) == "control"
    assert wire.decode_control(frame) == payload
    kind, decoded = wire.decode_packet(frame)
    assert kind == "control" and decoded == payload
    data_frame = wire.encode_message(
        TimeRequest(request_id=1, origin="A", destination="B")
    )
    assert wire.packet_kind(data_frame) == "message"
    assert wire.packet_kind(b"Z") == "unknown"
    with pytest.raises(ValueError):
        wire.decode_packet(b"Zx")


def test_wire_tamper_invalidates_mac():
    """What is signed is what is sent: an on-path edit breaks the tag."""
    signer = MessageAuthenticator(Keyring.from_secret("test-secret"))
    reply = signer.sign(
        TimeReply(
            request_id=1, server="S1", destination="S3",
            clock_value=100.0, error=0.003,
        )
    )
    assert signer.verify(reply) == "ok"
    proxy = ChaosProxy(addresses={}, seed=0)
    tampered_bytes = proxy._tamper(wire.encode_message(reply), offset=0.06)
    tampered = wire.decode_message(tampered_bytes)
    assert tampered.clock_value == pytest.approx(100.06)
    assert tampered.auth == reply.auth  # the stale tag rode along
    assert signer.verify(tampered) == "bad-mac"


# --------------------------------------------------------------- engine


def test_wall_clock_engine_is_a_scheduler():
    assert isinstance(WallClockEngine(), Scheduler)


def test_wall_clock_engine_fires_in_order_and_honours_cancel():
    engine = WallClockEngine()
    fired = []
    engine.schedule_after(0.02, lambda: fired.append("b"))
    engine.schedule_after(0.005, lambda: fired.append("a"))
    doomed = engine.schedule_after(0.01, lambda: fired.append("x"))
    doomed.cancel()
    engine.schedule_after(0.04, engine.stop)
    asyncio.run(engine.run())
    assert fired == ["a", "b"]
    assert engine.events_processed == 3  # a, b, stop — not the cancelled one


def test_wall_clock_engine_periodic_and_negative_delay():
    engine = WallClockEngine()
    ticks = []
    engine.schedule_periodic(0.01, lambda: ticks.append(engine.now))
    engine.schedule_after(0.06, engine.stop)
    asyncio.run(engine.run())
    assert len(ticks) >= 3
    assert ticks == sorted(ticks)
    with pytest.raises(SchedulingError):
        engine.schedule_after(-0.1, lambda: None)


def test_wall_clock_engine_stop_from_callback_does_not_hang():
    """Regression: stop() inside a fired callback must not deadlock the
    pump (the wake flag is set before the sleep that would clear it)."""
    engine = WallClockEngine()
    engine.schedule_after(0.0, engine.stop)

    async def bounded():
        await asyncio.wait_for(engine.run(), timeout=5.0)

    asyncio.run(bounded())


def test_wall_clock_engine_schedule_at_past_clamps_to_now():
    engine = WallClockEngine()
    fired = []
    engine.schedule_at(engine.now - 10.0, lambda: fired.append(True))
    engine.schedule_after(0.02, engine.stop)
    asyncio.run(engine.run())
    assert fired == [True]


# ------------------------------------------------------------------ rtt


def test_rtt_tracker_matches_requests_to_replies():
    clock = [0.0]
    tracker = RttTracker(lambda: clock[0])
    tracker.note_request("S2", 7)
    clock[0] = 0.025
    sample = tracker.note_reply("S2", 7)
    assert sample == pytest.approx(0.025)
    assert tracker.note_reply("S2", 7) is None  # consumed
    assert tracker.note_reply("S9", 1) is None  # never asked
    summary = tracker.summary()
    assert summary["count"] == 1
    assert summary["max"] == pytest.approx(0.025)


def test_rtt_tracker_resend_overwrites_stamp():
    clock = [0.0]
    tracker = RttTracker(lambda: clock[0])
    tracker.note_request("S2", 1)
    clock[0] = 1.0
    tracker.note_request("S2", 1)  # retry of the same request id
    clock[0] = 1.01
    assert tracker.note_reply("S2", 1) == pytest.approx(0.01)


# ---------------------------------------------------------------- proxy


def _frame(source="S1", destination="S2", value=50.0):
    return wire.encode_message(
        TimeReply(
            request_id=1, server=source, destination=destination,
            clock_value=value, error=0.01,
        )
    )


def test_proxy_matches_wildcards():
    assert _matches(MessageTamper(at=0.0), "S1", "S2")
    assert _matches(MessageTamper(at=0.0, a="S1"), "S1", "S2")
    assert _matches(MessageTamper(at=0.0, a="S1"), "S3", "S1")
    assert not _matches(MessageTamper(at=0.0, a="S9"), "S1", "S2")
    assert _matches(MessageTamper(at=0.0, a="S2", b="S1"), "S1", "S2")
    assert not _matches(MessageTamper(at=0.0, a="S1", b="S3"), "S1", "S2")


def test_proxy_plan_steady_loss_and_windows():
    proxy = ChaosProxy(addresses={}, loss=1.0, seed=1)
    assert proxy.plan("S1", "S2", _frame(), now=0.0) == []
    assert proxy.stats.dropped_loss == 1
    burst = ChaosProxy(
        addresses={},
        events=[LossBurst(at=10.0, probability=1.0, duration=5.0)],
        seed=1,
    )
    assert burst.plan("S1", "S2", _frame(), now=12.0) == []
    # Outside the window the burst does not apply.
    assert len(burst.plan("S1", "S2", _frame(), now=20.0)) == 1


def test_proxy_plan_partition_and_flap():
    proxy = ChaosProxy(
        addresses={},
        events=[
            PartitionFault(at=0.0, groups=(("S1", "S2"), ("S3",)), duration=10.0),
            LinkFlap(at=20.0, a="S1", b="S2", downtime=5.0),
        ],
        seed=0,
    )
    assert proxy.plan("S1", "S3", _frame("S1", "S3"), now=1.0) == []
    assert len(proxy.plan("S1", "S2", _frame(), now=1.0)) == 1
    assert proxy.plan("S1", "S2", _frame(), now=21.0) == []
    assert proxy.stats.dropped_partition == 1
    assert proxy.stats.dropped_flap == 1


def test_proxy_plan_delay_duplication_and_tamper():
    proxy = ChaosProxy(
        addresses={},
        events=[
            DelaySpike(at=0.0, scale=1.0, extra=0.2, duration=10.0),
            MessageDuplication(at=0.0, probability=1.0, duration=10.0,
                               extra_delay=0.05),
            MessageTamper(at=0.0, a="S1", offset=0.5, probability=1.0,
                          duration=10.0),
        ],
        seed=0,
    )
    deliveries = proxy.plan("S1", "S2", _frame(value=50.0), now=1.0)
    assert len(deliveries) == 2  # original + duplicate
    payload, delay = deliveries[0]
    assert delay == pytest.approx(0.2)
    assert deliveries[1][1] == pytest.approx(0.25)
    assert wire.decode_message(payload).clock_value == pytest.approx(50.5)
    assert proxy.stats.tampered == 1
    assert proxy.stats.duplicated == 1


def test_proxy_tamper_leaves_requests_alone():
    proxy = ChaosProxy(
        addresses={},
        events=[MessageTamper(at=0.0, probability=1.0, duration=10.0)],
        seed=0,
    )
    request_frame = wire.encode_message(
        TimeRequest(request_id=1, origin="S1", destination="S2")
    )
    [(payload, _)] = proxy.plan("S1", "S2", request_frame, now=1.0)
    assert payload == request_frame


def test_proxy_corruption_damages_the_frame():
    """A flipped tail byte either breaks the framing (decoder rejects)
    or garbles a packed value (validation/consistency rejects) — never
    yields the original message back."""
    proxy = ChaosProxy(addresses={}, seed=3)
    original = wire.decode_message(_frame())
    for _ in range(8):
        corrupted = proxy._corrupt(_frame())
        assert corrupted != _frame()
        try:
            decoded = wire.decode_message(corrupted)
        except ValueError:
            continue
        assert decoded != original


# ----------------------------------------------------------- supervision


def test_restart_policy_backoff_progression():
    policy = RestartPolicy(base=0.2, factor=2.0, max_delay=1.5)
    assert policy.delay(0) == pytest.approx(0.2)
    assert policy.delay(1) == pytest.approx(0.4)
    assert policy.delay(2) == pytest.approx(0.8)
    assert policy.delay(5) == pytest.approx(1.5)  # capped
