"""Integration tests for the Byzantine-tolerant server and its gauntlet.

Covers round-outcome feedback into reputation/health/census, demotion of
a live liar from the poll set, durable reputation through the PR-2
checkpoint (including the acceptance scenario: a warm-restarted server
still refuses a known liar as recovery arbiter), the stabilizer's
falseticker veto, and a fast slice of the Figure 3 liar gauntlet.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.byzantine import FaultBudgetController, ReputationConfig
from repro.core.ft_im import FTIMPolicy, FTRoundOutcome
from repro.experiments import figure3_liars
from repro.faults import FaultSchedule, attach_chaos
from repro.faults.schedule import ByzantineReplies
from repro.network.delay import UniformDelay
from repro.recovery import (
    Checkpoint,
    ConsistencyCensus,
    SelfStabilizingRecovery,
)
from repro.service.builder import ServerSpec, build_service

LIAR = "S5"
LIE_START = 120.0
LIE_DURATION = 600.0


def _liar_mesh(n=5, tau=30.0, seed=1, offset=0.4):
    """A K_n byzantine-tolerant mesh where one server lies for a window."""
    names = [f"S{k + 1}" for k in range(n)]
    graph = nx.Graph()
    graph.add_nodes_from(names)
    graph.add_edges_from(
        (a, b) for i, a in enumerate(names) for b in names[i + 1 :]
    )
    specs = [
        ServerSpec(
            name,
            delta=1e-5,
            skew=(k - n // 2) * 1e-6,
            byzantine_tolerant=True,
        )
        for k, name in enumerate(names)
    ]
    service = build_service(
        graph,
        specs,
        policy=None,
        policy_factory=lambda name: FTIMPolicy(
            fault_budget=FaultBudgetController()
        ),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.02),
        recovery_factory=lambda name: SelfStabilizingRecovery(),
        trace_enabled=True,
    )
    schedule = FaultSchedule()
    schedule.add(
        ByzantineReplies(
            at=LIE_START,
            server=LIAR,
            duration=LIE_DURATION,
            offset=offset,
            error_scale=0.2,
        )
    )
    injector, monitor = attach_chaos(service, schedule)
    return service, monitor


class TestRoundFeedback:
    """Direct _on_round_outcome plumbing, no simulation needed."""

    def _server(self):
        service, _ = _liar_mesh()
        return service.servers["S1"]

    def test_falseticker_verdicts_classify_and_demote(self):
        server = self._server()
        outcome = FTRoundOutcome(
            consistent=True,
            mode="tolerant",
            n_sources=5,
            truechimers=("S2", "S3"),
            falsetickers=(LIAR,),
        )
        for _ in range(3):
            server._on_round_outcome(outcome)
        assert server.reputation.is_falseticker(LIAR)
        assert LIAR in server.falseticker_neighbours()
        # The health score quarantines faster than the EWMA classifies.
        assert any(e.neighbour == LIAR for e in server.demotion_log)
        assert server.byzantine_stats.falseticker_observations == 3
        assert server.byzantine_stats.tolerant_rounds == 3
        # Truechimer credit accrued on the honest neighbours.
        assert server.reputation.record("S2").truechimer_rounds == 3

    def test_classified_liar_widens_recovery_exclusion(self):
        server = self._server()
        outcome = FTRoundOutcome(
            consistent=True,
            mode="tolerant",
            n_sources=5,
            falsetickers=(LIAR,),
        )
        for _ in range(3):
            server._on_round_outcome(outcome)
        seen = []
        original = server.recovery.choose_arbiter

        def spy(name, neighbours, conflicting):
            seen.append(tuple(conflicting))
            return original(name, neighbours, conflicting)

        server.recovery.choose_arbiter = spy
        server._note_inconsistency(("S2",))
        assert seen, "recovery was never consulted"
        assert LIAR in seen[0]

    def test_budget_floor_follows_classified_liars_in_poll(self):
        server = self._server()
        config = ReputationConfig(min_observations=1, falseticker_below=0.9)
        server.reputation = type(server.reputation)(config)
        server.reputation.observe_falseticker(LIAR)
        assert server.reputation.is_falseticker(LIAR)
        server._poll_targets()
        assert server.budget_controller.current(9) >= 1


class TestLiveLiar:
    def test_liar_is_classified_demoted_and_tolerated(self):
        service, monitor = _liar_mesh()
        service.run_until(LIE_START + 400.0)
        honest = [service.servers[f"S{k}"] for k in (1, 2, 3, 4)]
        for server in honest:
            assert server.reputation.is_falseticker(LIAR), server.name
            assert any(
                event.neighbour == LIAR and event.at >= LIE_START
                for event in server.demotion_log
            ), server.name
        assert sum(s.byzantine_stats.tolerant_rounds for s in honest) > 0
        # The physics/sanity validators caught shrunk-error replies too.
        assert (
            sum(s.byzantine_stats.validation_rejections for s in honest) > 0
        )
        # Nobody outside the fault window went incorrect.
        assert monitor.stats.correctness_violations == 0


class TestDurableReputation:
    def test_checkpoint_extras_carry_reputation_and_budget(self):
        service, _ = _liar_mesh()
        service.run_until(LIE_START + 400.0)
        server = service.servers["S1"]
        extras = server._checkpoint_extras()
        assert LIAR in extras["reputation"]
        assert extras["fault_budget"] >= 1

    def test_restore_rebuilds_tracker_and_budget(self):
        service, _ = _liar_mesh()
        server = service.servers["S1"]
        checkpoint = Checkpoint(
            server="S1",
            clock_value=100.0,
            error=0.1,
            rate_estimate=0.0,
            epoch=1,
            sequence=3,
            reputation=f"{LIAR},0.1,6,1",
            fault_budget=2,
        )
        server._restore_checkpoint_extras(checkpoint)
        assert server.reputation.is_falseticker(LIAR)
        assert server.budget_controller.value == 2

    def test_garbled_reputation_blob_starts_fresh_not_fatal(self):
        service, _ = _liar_mesh()
        server = service.servers["S1"]
        server.reputation.observe_falseticker("S3")
        checkpoint = Checkpoint(
            server="S1",
            clock_value=100.0,
            error=0.1,
            rate_estimate=0.0,
            epoch=1,
            sequence=3,
            reputation="not,a,valid",
        )
        server._restore_checkpoint_extras(checkpoint)
        assert server.reputation.falsetickers() == ()

    def test_warm_restart_still_refuses_the_known_liar_as_arbiter(self):
        """The acceptance scenario: crash an honest server after it has
        classified the liar; its warm restart must restore the verdict
        and the stabilizer must veto the liar even when the census says
        the liar looks fine."""
        service, _ = _liar_mesh()
        service.run_until(LIE_START + 300.0)
        server = service.servers["S1"]
        assert server.reputation.is_falseticker(LIAR)
        server.crash()
        service.run_until(LIE_START + 340.0)
        report = server.restart(cold_error=5.0)
        assert report is not None and report.warm
        # The durable checkpoint brought the verdict back...
        assert server.reputation.is_falseticker(LIAR)
        assert LIAR in server.falseticker_neighbours()
        # ...and arbiter choice vetoes the liar even with full census
        # support for it (gossiped verdicts can lag a live liar).  The
        # rate tracker's dissonance veto would catch S5 too; mask it so
        # this asserts the reputation veto specifically.
        server.last_merge_local = None  # bypass post-merge hysteresis
        server.dissonant_neighbours = lambda: set()
        now_local = server.clock_value()
        server.census.merge(
            [(LIAR, "S2", True, 0.0), (LIAR, "S3", True, 0.0)],
            now_local=now_local,
        )
        strategy = server.recovery
        before = strategy.stabilizer_stats.vetoed_falseticker
        arbiter = strategy.choose_arbiter(
            "S1", ["S2", "S3", "S4", LIAR], ("S2", "S3", "S4")
        )
        assert arbiter != LIAR
        assert strategy.stabilizer_stats.vetoed_falseticker > before


class _FlaggedStub:
    """The stabilizer-facing server slice, with a reputation verdict."""

    def __init__(self, flagged=()):
        self._now = 1000.0
        self.last_merge_local = None
        self.census = ConsistencyCensus(owner="G1")
        self.flagged = tuple(flagged)

    def clock_value(self):
        return self._now

    def dissonant_neighbours(self):
        return set()

    def epoch_of(self, name):
        return 0

    def falseticker_neighbours(self):
        return self.flagged


class TestStabilizerFalsetickerVeto:
    """Regression (satellite): arbiter vetting never selects a currently
    classified falseticker, even when the census majority admits it."""

    def _bound(self, flagged):
        strategy = SelfStabilizingRecovery()
        stub = _FlaggedStub(flagged)
        # Full census support for B1: two fresh ok edges.
        stub.census.merge(
            [("B1", "C", True, 0.0), ("B1", "D", True, 0.0)],
            now_local=stub.clock_value(),
        )
        strategy.bind(stub)
        return strategy

    def test_census_admitted_liar_is_vetoed(self):
        strategy = self._bound(flagged=("B1",))
        assert strategy.choose_arbiter("G1", ["B1"], ()) is None
        assert strategy.stabilizer_stats.vetoed_falseticker == 1

    def test_veto_is_load_bearing(self):
        # Identical census, no reputation verdict: B1 would be chosen.
        strategy = self._bound(flagged=())
        assert strategy.choose_arbiter("G1", ["B1"], ()) == "B1"

    def test_veto_redirects_to_clean_candidate(self):
        strategy = self._bound(flagged=("B1",))
        assert strategy.choose_arbiter("G1", ["B1", "C"], ()) == "C"


class TestFigure3Gauntlet:
    def test_ft_arm_smoke(self):
        """Short FT-arm run: no poisoned resets, tolerance active."""
        ft = figure3_liars.run("k5", True, seed=1, horizon=720.0)
        assert ft.poisoned_resets == 0
        assert ft.correctness_violations == 0
        assert ft.consistency_violations == 0
        assert ft.tolerant_rounds > 0

    @pytest.mark.byzantine
    def test_full_cell_plain_fails_ft_holds(self):
        cell = figure3_liars.run_cell("k5", seed=1)
        assert cell.plain_failed
        assert cell.ft_held
        assert cell.ft.poisoned_resets == 0
        assert cell.ft.oracle_bad_samples == 0
        assert cell.ft.all_liars_demoted
        # The plain arm really did adopt the lie somewhere.
        assert cell.plain.poisoned_resets > 0 or cell.plain.oracle_bad_samples > 0
