"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SchedulingError, SimulationEngine
from repro.simulation.events import Event, EventSequencer


class TestEventOrdering:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.schedule_at(3.0, lambda: fired.append(3))
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1, 2, 3]

    def test_ties_fire_in_scheduling_order(self, engine):
        fired = []
        for tag in range(5):
            engine.schedule_at(1.0, lambda tag=tag: fired.append(tag))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_tracks_event_time(self, engine):
        seen = []
        engine.schedule_at(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]
        assert engine.now == 2.5

    def test_events_scheduled_during_run_are_honoured(self, engine):
        fired = []

        def first():
            fired.append("first")
            engine.schedule_after(1.0, lambda: fired.append("second"))

        engine.schedule_at(1.0, first)
        engine.run()
        assert fired == ["first", "second"]
        assert engine.now == 2.0


class TestScheduling:
    def test_past_scheduling_rejected(self, engine):
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulingError):
            engine.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SchedulingError):
            engine.schedule_after(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        event = engine.schedule_at(1.0, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []
        assert engine.events_processed == 0

    def test_pending_events_excludes_cancelled(self, engine):
        keep = engine.schedule_at(1.0, lambda: None)
        drop = engine.schedule_at(2.0, lambda: None)
        drop.cancel()
        assert engine.pending_events == 1
        assert keep.active and not drop.active


class TestRunControl:
    def test_run_until_stops_at_horizon(self, engine):
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0  # advanced to the horizon

    def test_run_until_resumable(self, engine):
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        engine.run(until=20.0)
        assert fired == [10]

    def test_max_events_budget(self, engine):
        fired = []
        for k in range(10):
            engine.schedule_at(float(k), lambda k=k: fired.append(k))
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_exits_early(self, engine):
        fired = []
        engine.schedule_at(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_advance_to_backwards_rejected(self, engine):
        engine.advance_to(5.0)
        with pytest.raises(SchedulingError):
            engine.advance_to(4.0)

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_sample_grid_yields_each_point(self, engine):
        points = list(engine.sample_grid(0.0, 1.0, 0.25))
        assert points == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])


class TestPeriodicTask:
    def test_fires_every_period(self, engine):
        fired = []
        engine.schedule_periodic(1.0, lambda: fired.append(engine.now))
        engine.run(until=3.5)
        assert fired == pytest.approx([1.0, 2.0, 3.0])

    def test_first_at_override(self, engine):
        fired = []
        engine.schedule_periodic(
            2.0, lambda: fired.append(engine.now), first_at=0.5
        )
        engine.run(until=5.0)
        assert fired == pytest.approx([0.5, 2.5, 4.5])

    def test_cancel_stops_future_firings(self, engine):
        fired = []
        task = engine.schedule_periodic(1.0, lambda: fired.append(engine.now))
        engine.run(until=2.5)
        task.cancel()
        engine.run(until=10.0)
        assert fired == pytest.approx([1.0, 2.0])
        assert task.cancelled

    def test_cancel_from_within_callback(self, engine):
        fired = []
        task = engine.schedule_periodic(
            1.0, lambda: (fired.append(engine.now), task.cancel())
        )
        engine.run(until=10.0)
        assert fired == pytest.approx([1.0])

    def test_jitter_applies_to_gap(self, engine):
        fired = []
        engine.schedule_periodic(
            1.0, lambda: fired.append(engine.now), jitter=lambda: 0.5
        )
        engine.run(until=4.0)
        # First firing at period (no jitter on the initial arm), then +1.5.
        assert fired == pytest.approx([1.0, 2.5, 4.0])

    def test_zero_period_rejected(self, engine):
        with pytest.raises(SchedulingError):
            engine.schedule_periodic(0.0, lambda: None)

    def test_firings_counted(self, engine):
        task = engine.schedule_periodic(1.0, lambda: None)
        engine.run(until=5.0)
        assert task.firings == 5


class TestEventSequencer:
    def test_strictly_increasing(self):
        seq = EventSequencer()
        values = [seq.next() for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]
        assert seq.last == 4

    def test_event_ordering_dataclass(self):
        early = Event(1.0, 0, lambda: None)
        late = Event(1.0, 1, lambda: None)
        assert early < late
