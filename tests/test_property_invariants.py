"""Cross-cutting property tests: engine, clocks, consistency structure.

These complement the per-module unit tests with hypothesis-driven
invariants that hold for *any* inputs — the properties a maintainer should
be able to rely on when extending the library.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks.disciplined import DisciplinedClock
from repro.clocks.drift import DriftingClock, SegmentDriftClock
from repro.clocks.monotonic import MonotonicClock
from repro.analysis.consistency_graph import consistency_groups
from repro.core.intervals import TimeInterval, intersect_all
from repro.core.marzullo import intersect_tolerating, marzullo
from repro.simulation.engine import SimulationEngine


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_events_always_fire_in_nondecreasing_time(self, times):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda t=t: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_run_until_never_overshoots(self, times, horizon):
        engine = SimulationEngine()
        for t in times:
            engine.schedule_at(t, lambda: None)
        engine.run(until=horizon)
        assert engine.now <= max(horizon, max(times)) + 1e-12
        # Everything at or before the horizon fired.
        remaining = engine.pending_events
        assert remaining == sum(1 for t in times if t > horizon)

    @given(st.integers(min_value=0, max_value=200))
    def test_event_count_conserved(self, n):
        engine = SimulationEngine()
        fired = []
        for k in range(n):
            engine.schedule_at(float(k % 7), lambda: fired.append(1))
        engine.run()
        assert len(fired) == n == engine.events_processed


class TestClockProperties:
    @given(
        skew=st.floats(min_value=-0.1, max_value=0.1, allow_nan=False),
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=2,
            max_size=20,
        ),
    )
    def test_drifting_clock_is_linear(self, skew, times):
        clock = DriftingClock(skew)
        ordered = sorted(times)
        values = [clock.read(t) for t in ordered]
        for (t0, v0), (t1, v1) in zip(
            zip(ordered, values), zip(ordered[1:], values[1:])
        ):
            assert v1 - v0 == pytest.approx((t1 - t0) * (1 + skew), abs=1e-6)

    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),  # time advance
                st.floats(min_value=-50.0, max_value=50.0),  # set offset
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_monotonic_view_never_decreases(self, steps):
        base = DriftingClock(0.0)
        mono = MonotonicClock(base, slew=0.5)
        t = 0.0
        last = mono.read(t)
        for advance, offset in steps:
            t += advance
            reading = mono.read(t)
            assert reading >= last - 1e-9
            last = reading
            base.set(t, base.read(t) + offset)
            reading = mono.read(t)
            assert reading >= last - 1e-9
            last = reading

    @given(
        skews=st.lists(
            st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False),
            min_size=1,
            max_size=10,
        )
    )
    def test_segment_drift_clock_continuous_at_resets(self, skews):
        source = iter(skews + [0.0])
        clock = SegmentDriftClock(lambda: next(source, 0.0))
        t = 0.0
        for _ in skews:
            t += 10.0
            before = clock.read(t)
            clock.set(t, before)  # reset to own value: must be seamless
            assert clock.read(t) == pytest.approx(before, abs=1e-9)

    @given(
        corrections=st.lists(
            st.floats(min_value=-0.01, max_value=0.01, allow_nan=False),
            min_size=1,
            max_size=10,
        )
    )
    def test_disciplined_clock_continuous_across_adjustments(self, corrections):
        clock = DisciplinedClock(DriftingClock(1e-4))
        t = 0.0
        for correction in corrections:
            t += 5.0
            before = clock.read(t)
            clock.adjust_rate(t, correction)
            assert clock.read(t) == pytest.approx(before, abs=1e-9)


coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
widths = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


@st.composite
def named_intervals(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    result = {}
    for k in range(n):
        lo = draw(coords)
        result[f"S{k + 1}"] = TimeInterval(lo, lo + draw(widths))
    return result


class TestConsistencyStructureProperties:
    @given(named_intervals())
    def test_groups_cover_every_server(self, intervals):
        groups = consistency_groups(intervals)
        covered = set()
        for group in groups:
            covered.update(group.members)
        assert covered == set(intervals)

    @given(named_intervals())
    def test_group_members_share_the_intersection(self, intervals):
        for group in consistency_groups(intervals):
            for name in group.members:
                assert intervals[name].contains_interval(group.intersection) or (
                    intervals[name].intersects(group.intersection)
                )

    @given(named_intervals())
    def test_single_group_iff_globally_consistent(self, intervals):
        groups = consistency_groups(intervals)
        globally = intersect_all(intervals.values()) is not None
        if globally:
            assert groups[0].members == tuple(sorted(intervals))

    @given(named_intervals())
    def test_groups_are_maximal(self, intervals):
        """No group can absorb an extra server and stay consistent."""
        groups = consistency_groups(intervals)
        for group in groups:
            outside = set(intervals) - set(group.members)
            for name in outside:
                extended = [intervals[m] for m in group.members]
                extended.append(intervals[name])
                assert intersect_all(extended) is None or any(
                    set(group.members) | {name} <= set(other.members)
                    for other in groups
                )


class TestMarzulloConsistencyAgreement:
    @given(named_intervals())
    def test_marzullo_count_equals_biggest_group(self, intervals):
        """The sweep's max overlap equals the largest consistency group's
        size (both are 'most mutually-intersecting intervals', by 1-D
        Helly)."""
        sweep = marzullo(list(intervals.values()))
        groups = consistency_groups(intervals)
        assert sweep.count == groups[0].size

    @given(named_intervals(), st.integers(min_value=0, max_value=7))
    def test_tolerating_result_contains_biggest_group_region(self, intervals, faults):
        result = intersect_tolerating(list(intervals.values()), faults)
        groups = consistency_groups(intervals)
        if result is not None:
            assert result.count >= len(intervals) - faults
            assert result.count == groups[0].size
