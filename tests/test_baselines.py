"""Unit tests for the baseline synchronization functions."""

from __future__ import annotations

import pytest

from repro.baselines.averaging import MeanPolicy, MedianPolicy
from repro.baselines.first_reply import FirstReplyPolicy
from repro.baselines.lamport_max import LamportMaxPolicy
from repro.core.sync import LocalState, Reply

from tests.helpers import make_mesh_service


def state(clock=100.0, error=1.0, delta=1e-5) -> LocalState:
    return LocalState(clock_value=clock, error=error, delta=delta)


def reply(server="S2", clock=100.0, error=0.5, rtt=0.0) -> Reply:
    return Reply(server=server, clock_value=clock, error=error, rtt_local=rtt)


class TestLamportMax:
    def test_adopts_largest_clock(self):
        policy = LamportMaxPolicy(compensate_delay=False)
        outcome = policy.on_round_complete(
            state(clock=100.0),
            [reply(server="A", clock=99.0), reply(server="B", clock=103.0)],
        )
        assert outcome.decision is not None
        assert outcome.decision.clock_value == pytest.approx(103.0)
        assert outcome.decision.source == "B"

    def test_never_moves_backwards(self):
        policy = LamportMaxPolicy()
        outcome = policy.on_round_complete(
            state(clock=100.0), [reply(clock=90.0), reply(clock=95.0)]
        )
        assert outcome.decision is None

    def test_delay_compensation(self):
        policy = LamportMaxPolicy(compensate_delay=True)
        outcome = policy.on_round_complete(
            state(clock=100.0), [reply(clock=100.0, rtt=2.0)]
        )
        assert outcome.decision is not None
        assert outcome.decision.clock_value == pytest.approx(101.0)

    def test_empty_round(self):
        assert LamportMaxPolicy().on_round_complete(state(), []).decision is None

    def test_service_follows_fastest_clock(self):
        """The documented cost: max tracks the fastest clock's drift."""
        service = make_mesh_service(
            4, LamportMaxPolicy(), delta=1e-4, tau=20.0
        )
        service.run_until(2000.0)
        snap = service.snapshot()
        # All servers dragged to a positive offset near the fastest skew.
        assert all(offset > 0 for offset in snap.offsets.values())


class TestMedianMean:
    def test_median_includes_self_offset(self):
        policy = MedianPolicy()
        outcome = policy.on_round_complete(
            state(clock=100.0),
            [reply(clock=101.0), reply(clock=102.0)],
        )
        # Offsets {0, 1, 2} -> median 1.
        assert outcome.decision is not None
        assert outcome.decision.clock_value == pytest.approx(101.0)

    def test_median_resists_single_outlier(self):
        policy = MedianPolicy()
        outcome = policy.on_round_complete(
            state(clock=100.0),
            [reply(clock=100.2), reply(clock=1000.0)],
        )
        assert outcome.decision is not None
        assert outcome.decision.clock_value == pytest.approx(100.2)

    def test_mean_averages_offsets(self):
        policy = MeanPolicy()
        outcome = policy.on_round_complete(
            state(clock=100.0),
            [reply(clock=101.0), reply(clock=103.0)],
        )
        # Offsets {0, 1, 3} -> mean 4/3.
        assert outcome.decision is not None
        assert outcome.decision.clock_value == pytest.approx(100.0 + 4.0 / 3.0)

    def test_mean_discard_threshold_zeroes_outliers(self):
        policy = MeanPolicy(discard_threshold=1.0)
        outcome = policy.on_round_complete(
            state(clock=100.0),
            [reply(clock=100.5), reply(clock=1000.0)],
        )
        # Offsets {0, 0.5, 900 -> 0} -> mean 1/6.
        assert outcome.decision is not None
        assert outcome.decision.clock_value == pytest.approx(100.0 + 0.5 / 3.0)

    def test_mean_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            MeanPolicy(discard_threshold=0.0)

    def test_no_adjustment_when_offsets_zero(self):
        policy = MedianPolicy()
        outcome = policy.on_round_complete(state(clock=100.0), [reply(clock=100.0)])
        assert outcome.decision is None


class TestFirstReply:
    def test_adopts_first_in_arrival_order(self):
        policy = FirstReplyPolicy()
        outcome = policy.on_round_complete(
            state(clock=100.0),
            [reply(server="late-but-first", clock=105.0), reply(server="B", clock=90.0)],
        )
        assert outcome.decision is not None
        assert outcome.decision.source == "late-but-first"

    def test_empty_round(self):
        assert FirstReplyPolicy().on_round_complete(state(), []).decision is None


class TestBaselinesKeepSync:
    @pytest.mark.parametrize(
        "policy_factory",
        [MedianPolicy, MeanPolicy, LamportMaxPolicy],
        ids=["median", "mean", "max"],
    )
    def test_asynchronism_stays_bounded(self, policy_factory):
        """All baselines keep mutual synchronization (their design goal),
        whatever their accuracy story."""
        service = make_mesh_service(4, policy_factory(), delta=1e-4, tau=20.0)
        service.run_until(2000.0)
        snap = service.snapshot()
        unsynced_spread = 2 * 0.9 * 1e-4 * 2000.0  # no-sync worst case
        assert snap.asynchronism < unsynced_spread / 3.0
