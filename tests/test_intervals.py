"""Unit and property tests for the interval algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import (
    TimeInterval,
    consistency,
    intersect_all,
    pairwise_consistent,
    smallest,
)

# Bounded floats keep interval arithmetic exact enough for property tests.
coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
widths = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


@st.composite
def intervals(draw):
    lo = draw(coords)
    width = draw(widths)
    return TimeInterval(lo, lo + width)


class TestConstruction:
    def test_edge_form(self):
        interval = TimeInterval(1.0, 3.0)
        assert interval.center == 2.0
        assert interval.error == 1.0
        assert interval.width == 2.0
        assert interval.trailing_edge == 1.0
        assert interval.leading_edge == 3.0

    def test_center_error_form(self):
        interval = TimeInterval.from_center_error(10.0, 0.5)
        assert interval.lo == 9.5 and interval.hi == 10.5

    def test_point_interval(self):
        point = TimeInterval.point(5.0)
        assert point.width == 0.0 and point.contains(5.0)

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(3.0, 1.0)

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval.from_center_error(0.0, -1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(float("nan"), 1.0)

    def test_ordering_is_by_edges(self):
        assert TimeInterval(0, 1) < TimeInterval(0, 2) < TimeInterval(1, 2)


class TestPredicates:
    def test_contains_edges_inclusive(self):
        interval = TimeInterval(1.0, 3.0)
        assert interval.contains(1.0) and interval.contains(3.0)
        assert not interval.contains(0.999)

    def test_touching_intervals_intersect(self):
        assert TimeInterval(0, 1).intersects(TimeInterval(1, 2))

    def test_disjoint_do_not_intersect(self):
        assert not TimeInterval(0, 1).intersects(TimeInterval(1.1, 2))

    def test_containment(self):
        outer, inner = TimeInterval(0, 10), TimeInterval(2, 3)
        assert outer.contains_interval(inner)
        assert not inner.contains_interval(outer)

    def test_consistency_matches_paper_definition(self):
        """Section 2.3: |C_i - C_j| <= E_i + E_j  <=>  intervals intersect."""
        a = TimeInterval.from_center_error(3.01 * 60, 2 * 60)  # 3:01 ± 0:02
        b = TimeInterval.from_center_error(3.06 * 60, 2 * 60)  # 3:06 ± 0:02
        assert consistency(a.center, a.error, b.center, b.error) == a.intersects(b)

    def test_papers_301_306_example(self):
        """The Section 2.3 example: 3:01±0:02 vs 3:06±0:02 are inconsistent."""
        minutes = lambda m: m * 60.0
        assert not consistency(
            minutes(181), minutes(2), minutes(186), minutes(2)
        )


class TestOperations:
    def test_intersection_overlapping(self):
        result = TimeInterval(0, 5).intersection(TimeInterval(3, 8))
        assert result == TimeInterval(3, 5)

    def test_intersection_disjoint_is_none(self):
        assert TimeInterval(0, 1).intersection(TimeInterval(2, 3)) is None

    def test_hull(self):
        assert TimeInterval(0, 1).hull(TimeInterval(5, 6)) == TimeInterval(0, 6)

    def test_shifted(self):
        assert TimeInterval(0, 1).shifted(2.5) == TimeInterval(2.5, 3.5)

    def test_widened_asymmetric(self):
        widened = TimeInterval(2, 3).widened(trailing=0.5, leading=1.0)
        assert widened == TimeInterval(1.5, 4.0)

    def test_widened_inversion_rejected(self):
        with pytest.raises(ValueError):
            TimeInterval(2, 3).widened(trailing=-2.0)

    def test_intersect_all(self):
        common = intersect_all(
            [TimeInterval(0, 5), TimeInterval(2, 8), TimeInterval(1, 4)]
        )
        assert common == TimeInterval(2, 4)

    def test_intersect_all_empty_input(self):
        assert intersect_all([]) is None

    def test_intersect_all_inconsistent(self):
        assert intersect_all([TimeInterval(0, 1), TimeInterval(2, 3)]) is None

    def test_smallest(self):
        assert smallest(
            [TimeInterval(0, 10), TimeInterval(1, 2), TimeInterval(0, 5)]
        ) == TimeInterval(1, 2)

    def test_smallest_empty_rejected(self):
        with pytest.raises(ValueError):
            smallest([])


class TestProperties:
    @given(intervals(), intervals())
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(intervals(), intervals())
    def test_intersection_subset_of_both(self, a, b):
        common = a.intersection(b)
        if common is not None:
            assert a.contains_interval(common)
            assert b.contains_interval(common)

    @given(intervals())
    def test_self_intersection_identity(self, a):
        assert a.intersection(a) == a

    @given(intervals(), intervals())
    def test_intersects_iff_intersection_exists(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_interval(a) and hull.contains_interval(b)

    @given(st.lists(intervals(), min_size=1, max_size=8))
    def test_theorem6_intersection_never_larger_than_smallest(self, ivs):
        """Theorem 6, as a universal property."""
        common = intersect_all(ivs)
        if common is not None:
            assert common.width <= smallest(ivs).width + 1e-9

    @given(st.lists(intervals(), min_size=1, max_size=6))
    def test_helly_pairwise_implies_common_point(self, ivs):
        """In 1-D, pairwise intersection implies a common point."""
        if pairwise_consistent(ivs):
            assert intersect_all(ivs) is not None

    @given(intervals(), coords)
    def test_shift_preserves_width(self, a, amount):
        assert a.shifted(amount).width == pytest.approx(a.width, abs=1e-6)
