"""Edge-case tests for TraceRecorder's filtered views and numpy export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.trace import TraceRecord, TraceRecorder

pytestmark = pytest.mark.telemetry


@pytest.fixture
def trace() -> TraceRecorder:
    t = TraceRecorder()
    t.record(1.0, "reset", "S1", new_error=0.5)
    t.record(2.0, "sample", "S1", value=10.0, error=0.1)
    t.record(3.0, "reset", "S2", new_error=0.25)
    t.record(4.0, "sample", "S2", value=11.0)  # no "error" key: mixed payloads
    return t


def test_empty_recorder_views():
    t = TraceRecorder()
    assert len(t) == 0
    assert list(t) == []
    assert t.kinds == []
    assert t.count("reset") == 0
    assert t.filter(kind="reset") == []
    series = t.series("new_error")
    assert series.shape == (0, 2)


def test_unknown_kind_is_empty_not_error(trace):
    assert trace.count("no-such-kind") == 0
    assert trace.filter(kind="no-such-kind") == []
    assert trace.series("value", kind="no-such-kind").shape == (0, 2)


def test_filter_combines_kind_source_predicate(trace):
    assert len(trace.filter(kind="reset")) == 2
    assert len(trace.filter(source="S1")) == 2
    assert len(trace.filter(kind="reset", source="S2")) == 1
    late = trace.filter(predicate=lambda row: row.time > 2.5)
    assert [row.time for row in late] == [3.0, 4.0]
    none = trace.filter(kind="reset", predicate=lambda row: row.time > 10)
    assert none == []


def test_series_skips_rows_lacking_the_field(trace):
    # Both "sample" rows match the kind but only one carries "error".
    series = trace.series("error", kind="sample")
    assert series.shape == (1, 2)
    assert series[0].tolist() == [2.0, 0.1]


def test_series_shape_dtype_and_order(trace):
    series = trace.series("new_error", kind="reset")
    assert isinstance(series, np.ndarray)
    assert series.dtype == float
    assert series.shape == (2, 2)
    assert series[:, 0].tolist() == [1.0, 3.0]  # time order preserved
    assert series[:, 1].tolist() == [0.5, 0.25]


def test_series_unknown_field_is_empty(trace):
    assert trace.series("nonexistent").shape == (0, 2)


def test_kinds_and_counts_track_appends(trace):
    assert trace.kinds == ["reset", "sample"]
    assert trace.count("reset") == 2
    trace.record(5.0, "reject", "S1", server="S2")
    assert trace.kinds == ["reject", "reset", "sample"]
    assert trace.count("reject") == 1


def test_disabled_recorder_is_a_noop():
    t = TraceRecorder(enabled=False)
    t.record(1.0, "reset", "S1", new_error=0.5)
    assert len(t) == 0
    assert t.series("new_error").shape == (0, 2)


def test_clear_resets_everything(trace):
    trace.clear()
    assert len(trace) == 0
    assert trace.kinds == []
    assert trace.count("reset") == 0
    trace.record(9.0, "reset", "S3", new_error=1.0)
    assert trace.count("reset") == 1


def test_record_rows_are_immutable(trace):
    row = trace.filter(kind="reset")[0]
    assert isinstance(row, TraceRecord)
    with pytest.raises(AttributeError):
        row.time = 99.0
