"""Unit tests for FT-IM — rule IM-2 over the fault-tolerant intersection.

Rounds are built synthetically (a fixed LocalState plus hand-placed
replies) so each test pins one behaviour: tolerant acceptance and
classification, the plain fallback, the 2f < n budget cap, and the
adaptive-controller protocol.
"""

from __future__ import annotations

import pytest

from repro.byzantine import FaultBudgetConfig, FaultBudgetController
from repro.core.ft_im import FTIMPolicy, FTRoundOutcome
from repro.core.im import IMPolicy
from repro.core.sync import LocalState, Reply

STATE = LocalState(clock_value=1000.0, error=0.05, delta=1e-5)


def reply(server, offset, error=0.05, rtt=0.02):
    return Reply(
        server=server,
        clock_value=STATE.clock_value + offset,
        error=error,
        rtt_local=rtt,
    )


def honest_round(liars=()):
    """Three honest replies near zero offset, plus any liars."""
    return [
        reply("S2", 0.0),
        reply("S3", 0.005),
        reply("S4", -0.005),
        *liars,
    ]


class TestTolerantRounds:
    def test_liar_is_tolerated_and_classified(self):
        policy = FTIMPolicy(fault_budget=1)
        replies = honest_round(liars=[reply("S5", 0.5, error=0.01)])
        outcome = policy.on_round_complete(STATE, replies)
        assert isinstance(outcome, FTRoundOutcome)
        assert outcome.consistent
        assert outcome.mode == "tolerant"
        assert outcome.faults_used == 1
        assert outcome.n_sources == 5  # four replies + self
        assert outcome.overlap == 4
        assert "S5" in outcome.falsetickers
        assert set(outcome.truechimers) == {"S2", "S3", "S4"}
        # The local interval participates but is never reported.
        assert "self" not in outcome.truechimers
        assert "self" not in outcome.falsetickers

    def test_decision_stays_in_the_honest_region(self):
        policy = FTIMPolicy(fault_budget=1)
        replies = honest_round(liars=[reply("S5", 0.5, error=0.01)])
        outcome = policy.on_round_complete(STATE, replies)
        decision = outcome.decision
        assert decision is not None
        # Not dragged toward the +0.5 lie.
        assert abs(decision.clock_value - STATE.clock_value) < 0.1
        # Reset attribution names edge definers, never the liar.
        assert "S5" not in decision.source

    def test_clean_round_classifies_nobody(self):
        policy = FTIMPolicy(fault_budget=1)
        outcome = policy.on_round_complete(STATE, honest_round())
        assert outcome.consistent
        assert outcome.mode == "tolerant"
        assert outcome.falsetickers == ()
        assert set(outcome.truechimers) == {"S2", "S3", "S4"}

    def test_two_disjoint_liars_within_budget(self):
        policy = FTIMPolicy(
            fault_budget=FaultBudgetController(
                FaultBudgetConfig(initial=2, minimum=1)
            )
        )
        replies = [
            reply("S2", 0.0),
            reply("S3", 0.004),
            reply("S4", 0.5, error=0.01),
            reply("S5", -0.5, error=0.01),
        ]
        outcome = policy.on_round_complete(STATE, replies)
        assert outcome.consistent
        assert outcome.mode == "tolerant"
        assert outcome.faults_used == 2
        assert set(outcome.falsetickers) == {"S4", "S5"}
        assert abs(outcome.decision.clock_value - STATE.clock_value) < 0.1


class TestPlainFallback:
    def test_budget_zero_behaves_like_plain_im(self):
        replies = honest_round(liars=[reply("S5", 0.5, error=0.01)])
        ft = FTIMPolicy(fault_budget=0).on_round_complete(STATE, replies)
        plain = IMPolicy().on_round_complete(STATE, replies)
        assert ft.mode == "plain"
        assert ft.fault_budget == 0
        assert ft.consistent == plain.consistent is False
        assert ft.conflicting == plain.conflicting

    def test_liars_beyond_cap_fall_back_never_minority_reset(self):
        # One honest reply + self agree at 0; two liars pull apart.  With
        # n=4 the cap is 1, no tolerant intersection exists, and the
        # round must hand off to recovery rather than reset anywhere.
        policy = FTIMPolicy(fault_budget=3)
        replies = [
            reply("S2", 0.0),
            reply("S4", 0.5, error=0.01),
            reply("S5", -0.5, error=0.01),
        ]
        outcome = policy.on_round_complete(STATE, replies)
        assert outcome.mode == "plain"
        assert not outcome.consistent
        assert outcome.decision is None
        assert outcome.fault_budget == 1  # capped at (4 - 1) // 2
        assert len(outcome.conflicting) == 2

    def test_empty_round_without_self_is_vacuously_consistent(self):
        policy = FTIMPolicy(fault_budget=1, include_self=False)
        outcome = policy.on_round_complete(STATE, [])
        assert outcome.consistent
        assert outcome.mode == "plain"


class TestBudgetPlumbing:
    def test_budget_capped_at_strict_majority(self):
        policy = FTIMPolicy(fault_budget=10)
        assert policy.budget_for(5) == 2
        assert policy.budget_for(4) == 1
        assert policy.budget_for(3) == 1
        assert policy.budget_for(2) == 0
        assert policy.budget_for(1) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            FTIMPolicy(fault_budget=-1)

    def test_controller_protocol_is_consulted(self):
        class Fixed:
            def __init__(self, value):
                self.value = value

            def current(self, n_sources):
                return self.value

        assert FTIMPolicy(fault_budget=Fixed(2)).budget_for(7) == 2
        # The cap still applies to whatever the controller asks for.
        assert FTIMPolicy(fault_budget=Fixed(9)).budget_for(7) == 3
