"""Smoke test: every CLI-registered experiment runs end-to-end.

This keeps the experiment registry honest — an experiment that crashes at
default parameters is a release blocker even if its ``run()`` variants are
separately tested.
"""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main

#: Experiments cheap enough to run at full default size in the suite.
FAST = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "theorem4",
    "theorem8",
    "recovery",
    "partition",
    "quantization",
    "cold-start",
]


@pytest.mark.slow
@pytest.mark.parametrize("name", FAST)
def test_experiment_runs_clean(name, capsys):
    assert main(["experiment", name]) == 0
    out = capsys.readouterr().out
    assert out.strip(), f"experiment {name} printed nothing"


def test_registry_covers_fast_list():
    for name in FAST:
        assert name in EXPERIMENTS


def test_registry_complete():
    """Every experiment module with a main() is registered in the CLI."""
    import repro.experiments as exp

    expected = {
        module_name
        for module_name in exp.__all__
        if module_name not in ("scenarios",)
    }
    # The CLI uses a few renamed keys.
    renames = {
        "drift_recovery": "recovery",
        "theorem_bounds": "theorem-bounds",
        "topology_study": "topology",
        "cold_start": "cold-start",
        "delay_asymmetry": "asymmetry",
        "churn": "churn",
        "chaos_soak": "chaos-soak",
        "dynamic_gauntlet": "dynamic-gauntlet",
        "figure4_repair": "figure4-repair",
        "figure3_liars": "figure3-liars",
        "flash_crowd": "flash-crowd",
        "scale_gauntlet": "scale-gauntlet",
    }
    registered = set(EXPERIMENTS)
    for module_name in expected:
        key = renames.get(module_name, module_name)
        assert key in registered, f"{module_name} not runnable from the CLI"
