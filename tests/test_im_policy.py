"""Unit tests for algorithm IM (rule IM-2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.im import IMPolicy
from repro.core.sync import LocalState, Reply


def state(clock=100.0, error=1.0, delta=1e-5) -> LocalState:
    return LocalState(clock_value=clock, error=error, delta=delta)


def reply(server="S2", clock=100.0, error=0.5, rtt=0.0) -> Reply:
    return Reply(server=server, clock_value=clock, error=error, rtt_local=rtt)


class TestTransform:
    def test_transformation_formulas(self):
        """T_j = C_j - E_j - C_i ; L_j = C_j + E_j + (1+δ)ξ - C_i."""
        policy = IMPolicy()
        local = state(clock=100.0, delta=0.5)
        transformed = policy.transform(local, reply(clock=101.0, error=0.2, rtt=0.4))
        assert transformed.trailing == pytest.approx(101.0 - 0.2 - 100.0)
        assert transformed.leading == pytest.approx(
            101.0 + 0.2 + 1.5 * 0.4 - 100.0
        )

    def test_widening_is_leading_edge_only(self):
        policy = IMPolicy()
        local = state(clock=0.0, delta=0.0)
        with_rtt = policy.transform(local, reply(clock=0.0, error=1.0, rtt=0.5))
        without = policy.transform(local, reply(clock=0.0, error=1.0, rtt=0.0))
        assert with_rtt.trailing == without.trailing
        assert with_rtt.leading == without.leading + 0.5

    def test_widen_both_edges_ablation(self):
        policy = IMPolicy(widen_both_edges=True)
        local = state(clock=0.0, delta=0.0)
        transformed = policy.transform(local, reply(clock=0.0, error=1.0, rtt=0.5))
        assert transformed.trailing == pytest.approx(-1.5)
        assert transformed.leading == pytest.approx(1.5)


class TestRound:
    def test_reset_to_midpoint_of_intersection(self):
        """ε <- (b-a)/2, C <- (a+b)/2 + C_i (rule IM-2)."""
        policy = IMPolicy(include_self=False)
        local = state(clock=100.0, error=5.0, delta=0.0)
        replies = [
            reply(server="A", clock=100.0, error=1.0),  # [-1, 1]
            reply(server="B", clock=100.5, error=1.0),  # [-0.5, 1.5]
        ]
        outcome = policy.on_round_complete(local, replies)
        assert outcome.consistent and outcome.decision is not None
        # Intersection of offsets: [-0.5, 1.0] -> midpoint 0.25, error 0.75.
        assert outcome.decision.clock_value == pytest.approx(100.25)
        assert outcome.decision.inherited_error == pytest.approx(0.75)

    def test_self_interval_participates(self):
        policy = IMPolicy(include_self=True)
        local = state(clock=100.0, error=0.1, delta=0.0)
        wide = [reply(clock=100.0, error=5.0)]
        outcome = policy.on_round_complete(local, wide)
        assert outcome.decision is not None
        # The tight local interval dominates: no change beyond itself.
        assert outcome.decision.inherited_error == pytest.approx(0.1)
        assert outcome.decision.clock_value == pytest.approx(100.0)

    def test_intersection_smaller_than_smallest_input(self):
        """Theorem 6 at the policy level (overlapping case)."""
        policy = IMPolicy(include_self=False)
        local = state(clock=0.0, error=10.0, delta=0.0)
        replies = [
            reply(server="A", clock=-0.3, error=1.0),
            reply(server="B", clock=+0.3, error=1.0),
        ]
        outcome = policy.on_round_complete(local, replies)
        assert outcome.decision is not None
        assert outcome.decision.inherited_error < 1.0

    def test_inconsistent_round_reports_conflict(self):
        policy = IMPolicy(include_self=False)
        local = state(clock=0.0, error=1.0, delta=0.0)
        replies = [
            reply(server="A", clock=-10.0, error=0.1),
            reply(server="B", clock=+10.0, error=0.1),
        ]
        outcome = policy.on_round_complete(local, replies)
        assert not outcome.consistent
        assert outcome.decision is None
        assert set(outcome.conflicting) == {"A", "B"}

    def test_point_intersection_accepted_by_default(self):
        policy = IMPolicy(include_self=False)
        local = state(clock=0.0, error=1.0, delta=0.0)
        replies = [
            reply(server="A", clock=-1.0, error=1.0),  # [-2, 0]
            reply(server="B", clock=+1.0, error=1.0),  # [0, 2]
        ]
        outcome = policy.on_round_complete(local, replies)
        assert outcome.consistent
        assert outcome.decision is not None
        assert outcome.decision.inherited_error == pytest.approx(0.0)

    def test_point_intersection_rejected_in_strict_mode(self):
        policy = IMPolicy(include_self=False, allow_point_intersection=False)
        local = state(clock=0.0, error=1.0, delta=0.0)
        replies = [
            reply(server="A", clock=-1.0, error=1.0),
            reply(server="B", clock=+1.0, error=1.0),
        ]
        assert not policy.on_round_complete(local, replies).consistent

    def test_trailing_reset_ablation_doubles_error(self):
        midpoint = IMPolicy(include_self=False)
        trailing = IMPolicy(include_self=False, reset_to="trailing")
        local = state(clock=0.0, error=10.0, delta=0.0)
        replies = [reply(server="A", clock=0.0, error=1.0)]
        mid = midpoint.on_round_complete(local, replies).decision
        tra = trailing.on_round_complete(local, replies).decision
        assert tra.inherited_error == pytest.approx(2 * mid.inherited_error)

    def test_empty_round_with_self_resets_to_self(self):
        policy = IMPolicy(include_self=True)
        local = state(clock=50.0, error=2.0)
        outcome = policy.on_round_complete(local, [])
        assert outcome.consistent
        assert outcome.decision is not None
        assert outcome.decision.clock_value == pytest.approx(50.0)
        assert outcome.decision.inherited_error == pytest.approx(2.0)

    def test_empty_round_without_self_noop(self):
        policy = IMPolicy(include_self=False)
        assert policy.on_round_complete(state(), []).decision is None

    def test_invalid_reset_to_rejected(self):
        with pytest.raises(ValueError):
            IMPolicy(reset_to="leading")

    def test_policy_is_batch(self):
        assert not IMPolicy().incremental


class TestCorrectnessProperty:
    @given(
        true_time=st.floats(min_value=0.0, max_value=1e4),
        offsets=st.lists(
            st.floats(min_value=-1.0, max_value=1.0), min_size=1, max_size=6
        ),
        errors=st.lists(
            st.floats(min_value=1.0, max_value=3.0), min_size=1, max_size=6
        ),
    )
    def test_theorem5_correct_inputs_give_correct_output(
        self, true_time, offsets, errors
    ):
        """If every input interval contains the true time, so does IM's
        result (the heart of Theorem 5, at zero rtt)."""
        n = min(len(offsets), len(errors))
        local = state(clock=true_time, error=3.5, delta=0.0)
        replies = [
            reply(
                server=f"S{k}",
                clock=true_time + offsets[k],
                error=errors[k],  # error >= |offset| -> correct interval
                rtt=0.0,
            )
            for k in range(n)
        ]
        outcome = IMPolicy().on_round_complete(local, replies)
        assert outcome.consistent and outcome.decision is not None
        decision = outcome.decision
        # Tolerance absorbs float rounding when an input interval touches
        # the true time exactly at an edge.
        slack = 1e-9
        assert (
            decision.clock_value - decision.inherited_error - slack
            <= true_time
            <= decision.clock_value + decision.inherited_error + slack
        )
