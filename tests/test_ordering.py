"""Tests for interval timestamps and certain event ordering."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.im import IMPolicy
from repro.core.intervals import TimeInterval
from repro.ordering.timestamps import (
    IntervalTimestamp,
    Order,
    TimestampAuthority,
    certain_order,
    commit_wait,
)

from tests.helpers import make_mesh_service


def stamp(lo, hi, issuer="", sequence=0):
    return IntervalTimestamp(TimeInterval(lo, hi), issuer=issuer, sequence=sequence)


class TestCompare:
    def test_disjoint_is_certain(self):
        early, late = stamp(0, 1), stamp(2, 3)
        assert early.compare(late) is Order.BEFORE
        assert late.compare(early) is Order.AFTER
        assert early.definitely_before(late)

    def test_overlap_is_indeterminate(self):
        a, b = stamp(0, 2), stamp(1, 3)
        assert a.compare(b) is Order.INDETERMINATE
        assert a.possibly_concurrent(b)

    def test_touching_is_indeterminate(self):
        a, b = stamp(0, 1), stamp(1, 2)
        assert a.compare(b) is Order.INDETERMINATE

    def test_same_issuer_orders_by_sequence(self):
        a = stamp(0, 10, issuer="S1", sequence=1)
        b = stamp(0, 10, issuer="S1", sequence=2)
        assert a.compare(b) is Order.BEFORE
        assert b.compare(a) is Order.AFTER

    def test_cross_issuer_ignores_sequence(self):
        a = stamp(0, 10, issuer="S1", sequence=1)
        b = stamp(0, 10, issuer="S2", sequence=2)
        assert a.compare(b) is Order.INDETERMINATE

    @given(
        lo1=st.floats(min_value=0, max_value=100, allow_nan=False),
        w1=st.floats(min_value=0, max_value=10, allow_nan=False),
        lo2=st.floats(min_value=0, max_value=100, allow_nan=False),
        w2=st.floats(min_value=0, max_value=10, allow_nan=False),
    )
    def test_compare_antisymmetric(self, lo1, w1, lo2, w2):
        a, b = stamp(lo1, lo1 + w1), stamp(lo2, lo2 + w2)
        forward, backward = a.compare(b), b.compare(a)
        if forward is Order.BEFORE:
            assert backward is Order.AFTER
        elif forward is Order.AFTER:
            assert backward is Order.BEFORE
        else:
            assert backward is Order.INDETERMINATE


class TestCertainOrder:
    def test_disjoint_chain_fully_ordered(self):
        stamps = [stamp(2, 3), stamp(0, 1), stamp(4, 5)]
        order, indeterminate = certain_order(stamps)
        assert order == [1, 0, 2]
        assert indeterminate == []

    def test_overlaps_reported(self):
        stamps = [stamp(0, 2), stamp(1, 3), stamp(10, 11)]
        _order, indeterminate = certain_order(stamps)
        assert indeterminate == [(0, 1)]

    def test_order_is_linear_extension(self):
        """Every certain BEFORE relation is respected by the output order."""
        stamps = [stamp(0, 1), stamp(5, 6), stamp(0.5, 5.5), stamp(7, 8)]
        order, _ = certain_order(stamps)
        position = {index: rank for rank, index in enumerate(order)}
        for a in range(len(stamps)):
            for b in range(len(stamps)):
                if stamps[a].definitely_before(stamps[b]):
                    assert position[a] < position[b]

    def test_empty(self):
        assert certain_order([]) == ([], [])


class TestCommitWait:
    def test_self_wait_covers_both_errors(self):
        # width 3 + 2 * own error (1.5) when peers are assumed comparable.
        assert commit_wait(stamp(0, 3)) == pytest.approx(6.0)

    def test_self_wait_with_explicit_peer_error(self):
        assert commit_wait(stamp(0, 3), max_peer_error=0.5) == pytest.approx(4.0)

    def test_reference_wait_zero_when_certain(self):
        mine, reference = stamp(10, 11), stamp(0, 1)
        assert commit_wait(mine, reference) == 0.0

    def test_reference_wait_closes_the_gap(self):
        mine, reference = stamp(0, 2), stamp(1, 5)
        # Reference leading edge 5 vs my trailing edge 0: wait 5.
        assert commit_wait(mine, reference) == pytest.approx(5.0)


class TestTimestampAuthority:
    def test_mints_from_live_service(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(120.0)
        authority = TimestampAuthority(service.servers["S1"])
        first = authority.now()
        service.run_until(121.0)
        second = authority.now()
        assert first.issuer == "S1"
        assert second.sequence == first.sequence + 1
        # Both intervals contain the true time (correct server).
        assert first.interval.contains(120.0)
        assert second.interval.contains(121.0)
        # Same issuer: order certain by sequence despite overlap.
        assert first.compare(second) is Order.BEFORE

    def test_cross_server_ordering_with_real_uncertainty(self):
        """Events far apart in real time order certainly; events closer
        than the uncertainty do not."""
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(100.0)
        a1 = TimestampAuthority(service.servers["S1"])
        a2 = TimestampAuthority(service.servers["S2"])
        early = a1.now()
        width = early.interval.width
        # An event within the uncertainty window: indeterminate.
        service.run_until(100.0 + width / 10.0)
        near = a2.now()
        assert early.possibly_concurrent(near)
        # An event comfortably beyond the combined widths: certain.
        service.run_until(100.0 + 10.0 * width + 1.0)
        far = a2.now()
        assert early.definitely_before(far)

    def test_commit_wait_makes_order_certain(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(200.0)
        authority = TimestampAuthority(service.servers["S1"])
        mine = authority.now()
        wait = commit_wait(mine)
        service.run_until(200.0 + wait + 1e-6)
        later = TimestampAuthority(service.servers["S2"]).now()
        assert mine.definitely_before(later)
