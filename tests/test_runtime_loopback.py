"""Live loopback integration suite (marker ``runtime``).

Real UDP sockets and real subprocesses: an in-process mesh proving the
untouched policy core syncs over datagrams and answers a client, the
supervisor's crash/restart and graceful-drain machinery, and a short
fault-free run of the live gauntlet harness.  Everything binds loopback
on ephemeral ports; every test tears its cluster down in ``finally`` so
a failing assertion cannot leak node processes.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.experiments import live_gauntlet
from repro.experiments.live_gauntlet import _free_ports
from repro.runtime.node import build_node
from repro.runtime.supervisor import ClusterSupervisor, NodeSpec, RestartPolicy
from repro.service.messages import TimeReply, TimeRequest

pytestmark = pytest.mark.runtime


def _mesh_configs(names, *, kind="plain", extra_nodes=(), extra_edges=()):
    epoch = time.monotonic()
    everyone = list(names) + list(extra_nodes)
    ports = _free_ports(len(everyone))
    peers = {name: ["127.0.0.1", port] for name, port in zip(everyone, ports)}
    extra = {name: peers[name] for name in extra_nodes}
    edges = [[a, b] for i, a in enumerate(names) for b in names[i + 1:]]
    edges.extend(list(edge) for edge in extra_edges)
    configs = {}
    for index, name in enumerate(names):
        configs[name] = dict(
            name=name,
            host="127.0.0.1",
            port=peers[name][1],
            peers=peers,
            edges=edges,
            extra_nodes=list(extra_nodes),
            epoch=epoch,
            kind=kind,
            tau=0.4,
            delta=1e-4,
            skew=(-1) ** index * 5e-5,
            initial_offset=0.002 * index,
            initial_error=0.05,
            one_way_bound=0.05,
            poll_phase=0.15 + 0.05 * index,
            probe_period=0.05,
            seed=index,
        )
    return configs, peers, extra, epoch


class _ReplyBucket:
    """A fake client endpoint: collects whatever the transport delivers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.replies = []

    def deliver(self, message, sender) -> None:
        self.replies.append(message)


def test_in_process_mesh_syncs_and_answers_client_query():
    """Client query + MM poll rounds end to end over real datagrams."""
    names = ["S1", "S2", "S3"]
    configs, peers, extra, epoch = _mesh_configs(
        names, extra_nodes=("C1",), extra_edges=(("C1", "S1"),)
    )

    async def scenario():
        nodes = [build_node(configs[name]) for name in names]
        runners = []
        try:
            for node in nodes:
                await node.transport.start(
                    (node.config["host"], node.config["port"])
                )
                node.server.start()
                node.probe.start()
                runners.append(asyncio.ensure_future(node.engine.run()))

            # A client on its own socket, registered as topology node C1.
            client = build_node(
                dict(configs["S1"], name="C1", port=extra["C1"][1], kind="plain")
            )
            # Replace the server endpoint with a bare reply bucket: the
            # client transport only needs to route replies to C1.
            bucket = _ReplyBucket("C1")
            client.transport._processes.clear()
            client.transport.register(bucket)
            await client.transport.start(("127.0.0.1", extra["C1"][1]))

            try:
                await asyncio.sleep(1.5)  # a few tau=0.4 poll rounds
                client.transport.send(
                    "C1",
                    "S1",
                    TimeRequest(request_id=901, origin="C1", destination="S1"),
                )
                def answer():
                    # C1 is a topology node, so S1 also polls it; pick
                    # the actual answer out of the delivered traffic.
                    return next(
                        (m for m in bucket.replies
                         if isinstance(m, TimeReply) and m.request_id == 901),
                        None,
                    )

                deadline = time.monotonic() + 2.0
                while answer() is None and time.monotonic() < deadline:
                    await asyncio.sleep(0.02)

                reply = answer()
                assert reply is not None, "client query went unanswered"
                assert reply.server == "S1"
                assert abs(reply.clock_value - nodes[0].engine.now) < 1.0
                for node in nodes:
                    assert node.server.stats.rounds >= 1
                    assert node.server.is_correct()
                    assert node.probe.mm1_violations == 0
                assert any(node.transport.rtt.count > 0 for node in nodes)
            finally:
                client.transport.close()
        finally:
            for node in nodes:
                node.engine.stop()
            for runner in runners:
                try:
                    await asyncio.wait_for(runner, timeout=2.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    runner.cancel()
            for node in nodes:
                node.transport.close()

    asyncio.run(scenario())


def test_supervisor_restarts_after_sigkill():
    """A killed node comes back through the backoff path and re-syncs."""
    names = ["S1", "S2", "S3"]
    configs, _, _, _ = _mesh_configs(names, kind="hardened")

    async def scenario():
        specs = [NodeSpec(name=name, config=configs[name]) for name in names]
        supervisor = ClusterSupervisor(
            specs, restart=RestartPolicy(base=0.2, max_delay=1.0)
        )
        try:
            await supervisor.start()
            assert await supervisor.wait_ready(timeout=45.0)
            spec = supervisor.specs["S2"]
            old_pid = spec.process.pid
            assert supervisor.kill("S2")
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if (
                    spec.restarts >= 1
                    and spec.ready
                    and spec.process.pid != old_pid
                ):
                    break
                await asyncio.sleep(0.2)
            assert spec.restarts >= 1, "crash was never detected"
            assert spec.ready and spec.process.pid != old_pid, (
                "restarted node never came back"
            )
            assert supervisor.crash_restarts >= 1
            snap = None
            for _ in range(5):  # a fresh incarnation may still be booting
                snap = await supervisor.request("S2", {"op": "stats"}, timeout=2.0)
                if snap is not None:
                    break
                await asyncio.sleep(0.5)
            assert snap is not None and snap["name"] == "S2"
        finally:
            supervisor.close()

    asyncio.run(scenario())


def test_supervisor_graceful_drain():
    """Drain acks from every node and no surviving processes."""
    names = ["S1", "S2"]
    configs, _, _, _ = _mesh_configs(names)

    async def scenario():
        specs = [NodeSpec(name=name, config=configs[name]) for name in names]
        supervisor = ClusterSupervisor(specs)
        try:
            await supervisor.start()
            assert await supervisor.wait_ready(timeout=45.0)
            acked = await supervisor.drain(grace=3.0)
            assert all(acked.values()), f"drain not acknowledged: {acked}"
            for spec in supervisor.specs.values():
                assert spec.process is not None
                assert spec.process.poll() is not None
        finally:
            supervisor.close()

    asyncio.run(scenario())


def test_live_gauntlet_smoke_faultless_arm():
    """A short fault-free hardened run of the gauntlet harness is clean."""
    report = live_gauntlet.run(
        seed=1, duration=4.0, loss=0.0, with_faults=False, arms=("hardened",)
    )
    arm = report["arms"]["hardened"]
    assert arm["booted"]
    assert arm["mm1_violations"] == 0
    assert arm["monotonicity_violations"] == 0
    assert arm["rtt_count"] > 0
    assert arm["xi_live"] < arm["xi_declared"]
    assert report["ok"]
