"""On-path security layer: auth, replay window, delay guard, and wiring.

Covers the :mod:`repro.security` units (keyring rotation, canonical
encoding, MAC sign/verify, the anti-replay window, the delay guard), the
:class:`~repro.security.server.AuthenticationMixin` enforcement order,
the nonce-keyed cross-round reply defense, and the quarantine /
falseticker escalation fed by repeated security rejections.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.byzantine import ByzantineConfig
from repro.core.ft_im import FTIMPolicy
from repro.core.mm import MMPolicy
from repro.faults import FaultSchedule, MessageTamper
from repro.faults.injector import FaultInjector
from repro.network.delay import UniformDelay
from repro.network.topology import full_mesh
from repro.security import (
    AuthenticatedByzantineServer,
    AuthenticatedTimeServer,
    DelayGuard,
    Keyring,
    MessageAuthenticator,
    ReplayGuard,
    SecurityConfig,
    canonical_decode,
    canonical_encode,
)
from repro.service.builder import ServerSpec, build_service
from repro.service.messages import RequestKind, TimeReply, TimeRequest

pytestmark = pytest.mark.security


def make_secure_mesh(
    n=3,
    *,
    tau=30.0,
    one_way=0.01,
    minimum=0.0,
    seed=0,
    secret="test-cluster",
    byzantine=False,
    **security_kwargs,
):
    """A full-mesh service of authenticated servers sharing one keyring."""
    specs = [
        ServerSpec(
            f"S{k + 1}",
            delta=1e-5,
            skew=0.9e-5 * (2.0 * k / (n - 1) - 1.0) if n > 1 else 0.0,
            byzantine_tolerant=byzantine,
        )
        for k in range(n)
    ]
    kwargs = {}
    if byzantine:
        kwargs["policy_factory"] = lambda name: FTIMPolicy()
        kwargs["byzantine"] = ByzantineConfig()
    else:
        kwargs["policy"] = MMPolicy()
    return build_service(
        full_mesh(n),
        specs,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(one_way, minimum=minimum),
        security=SecurityConfig(
            keyring=Keyring.from_secret(secret), **security_kwargs
        ),
        **kwargs,
    )


# ------------------------------------------------------------------ keyring


class TestKeyring:
    def test_from_secret_deterministic(self):
        a = Keyring.from_secret("s3cret")
        b = Keyring.from_secret("s3cret")
        assert a.key(a.active_id) == b.key(b.active_id)
        assert a.epoch == 0

    def test_rotation_bumps_epoch_and_keeps_old_keys(self):
        ring = Keyring.from_secret("s3cret")
        old_id = ring.active_id
        new_id = ring.rotate()
        assert new_id != old_id
        assert ring.epoch == 1
        assert ring.key(old_id) is not None  # still verifies old traffic

    def test_retire_refuses_active_key(self):
        ring = Keyring.from_secret("s3cret")
        with pytest.raises(ValueError):
            ring.retire(ring.active_id)

    def test_retired_key_no_longer_verifies(self):
        ring = Keyring.from_secret("s3cret")
        signer = MessageAuthenticator(ring)
        request = signer.sign(TimeRequest(1, "S1", "S2", nonce=7))
        old_id = ring.active_id
        ring.rotate()
        assert signer.verify(request) == "ok"
        ring.retire(old_id)
        assert signer.verify(request) == "unknown-key"


# ------------------------------------------------------- canonical encoding


class TestCanonicalEncoding:
    def test_request_round_trip(self):
        request = TimeRequest(3, "S1", "S2", RequestKind.RECOVERY, nonce=99)
        assert canonical_decode(canonical_encode(request)) == request

    def test_reply_round_trip(self):
        reply = TimeReply(
            4, "S2", "S1", 100.5, 0.25, delta=1e-5, epoch=2, nonce=41
        )
        assert canonical_decode(canonical_encode(reply)) == reply

    def test_auth_tag_not_part_of_encoding(self):
        reply = TimeReply(4, "S2", "S1", 100.5, 0.25, nonce=41)
        tagged = replace(reply, auth=(1, 2, "ab" * 16))
        assert canonical_encode(reply) == canonical_encode(tagged)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_encode("not a message")

    def test_garbage_bytes_rejected(self):
        for junk in (b"('REQ', 1)", b"nonsense", b"[1, 2, 3]"):
            with pytest.raises(ValueError):
                canonical_decode(junk)


# ---------------------------------------------------------------------- mac


class TestMessageAuthenticator:
    def _signed_reply(self, authenticator):
        return authenticator.sign(
            TimeReply(7, "S2", "S1", 123.0, 0.5, nonce=17)
        )

    def test_sign_verify_round_trip(self):
        auth = MessageAuthenticator(Keyring.from_secret("k"))
        assert auth.verify(self._signed_reply(auth)) == "ok"

    def test_any_field_tamper_detected(self):
        auth = MessageAuthenticator(Keyring.from_secret("k"))
        reply = self._signed_reply(auth)
        for tampered in (
            replace(reply, clock_value=reply.clock_value + 1e-9),
            replace(reply, error=reply.error * 0.5),
            replace(reply, request_id=reply.request_id + 1),
            replace(reply, nonce=reply.nonce + 1),
            replace(reply, server="S3"),
        ):
            assert auth.verify(tampered) == "bad-mac"

    def test_missing_or_malformed_tag(self):
        auth = MessageAuthenticator(Keyring.from_secret("k"))
        bare = TimeReply(7, "S2", "S1", 123.0, 0.5, nonce=17)
        assert auth.verify(bare) == "missing-auth"
        assert auth.verify(replace(bare, auth=(1, "x"))) == "missing-auth"

    def test_wrong_cluster_key_rejected(self):
        signer = MessageAuthenticator(Keyring.from_secret("ours"))
        verifier = MessageAuthenticator(Keyring.from_secret("theirs"))
        assert verifier.verify(self._signed_reply(signer)) == "bad-mac"

    def test_rotation_old_traffic_still_verifies(self):
        ring = Keyring.from_secret("k")
        auth = MessageAuthenticator(ring)
        old = self._signed_reply(auth)
        ring.rotate()
        fresh = self._signed_reply(auth)
        assert auth.verify(old) == "ok"
        assert auth.verify(fresh) == "ok"
        assert fresh.auth[0] != old.auth[0]


# ------------------------------------------------------------------- replay


class TestReplayGuard:
    def test_fresh_sequences_accepted(self):
        guard = ReplayGuard(window=8)
        for seq in (1, 2, 5, 3, 9):
            assert guard.admit("S2", seq) == "ok"

    def test_duplicate_rejected(self):
        guard = ReplayGuard(window=8)
        assert guard.admit("S2", 4) == "ok"
        assert guard.admit("S2", 4) == "replay"

    def test_below_window_stale(self):
        guard = ReplayGuard(window=8)
        assert guard.admit("S2", 100) == "ok"
        assert guard.admit("S2", 92) == "stale"
        assert guard.admit("S2", 93) == "ok"  # exactly in-window, unseen

    def test_per_peer_state_independent(self):
        guard = ReplayGuard(window=8)
        assert guard.admit("S2", 4) == "ok"
        assert guard.admit("S3", 4) == "ok"

    def test_forget_resets_peer(self):
        guard = ReplayGuard(window=8)
        guard.admit("S2", 4)
        guard.forget("S2")
        assert guard.admit("S2", 4) == "ok"


# -------------------------------------------------------------- delay guard


class TestDelayGuard:
    def _models(self):
        return UniformDelay(0.01, minimum=0.002), UniformDelay(
            0.01, minimum=0.002
        )

    def test_honest_rtt_in_bounds_ok(self):
        guard = DelayGuard(1e-4)
        out, inn = self._models()
        for rtt in (0.004, 0.01, 0.02):
            verdict = guard.judge(rtt, out, inn)
            assert verdict.ok and verdict.widen == 0.0

    def test_too_fast_always_rejected(self):
        for mode in ("widen", "reject"):
            guard = DelayGuard(1e-4, mode=mode)
            out, inn = self._models()
            assert guard.judge(0.0005, out, inn).verdict == "too-fast"

    def test_beyond_bound_mode_dependent(self):
        out, inn = self._models()
        widen = DelayGuard(1e-4, mode="widen").judge(0.08, out, inn)
        assert widen.ok and widen.widen == pytest.approx(
            0.08 - 0.02 * 1.0001, rel=1e-6
        )
        assert (
            DelayGuard(1e-4, mode="reject").judge(0.08, out, inn).verdict
            == "beyond-bound"
        )

    def test_unknown_link_physics_passes(self):
        guard = DelayGuard(1e-4)
        assert guard.judge(1e-9, None, None).ok

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DelayGuard(1e-4, mode="panic")
        with pytest.raises(ValueError):
            DelayGuard(1e-4, slack=-1.0)


# ----------------------------------------------------------- mixin wiring


class TestAuthenticatedService:
    def test_builder_produces_authenticated_servers(self):
        service = make_secure_mesh(3)
        for server in service.servers.values():
            assert isinstance(server, AuthenticatedTimeServer)

    def test_authenticated_mesh_converges_cleanly(self):
        service = make_secure_mesh(3, tau=30.0)
        service.run_until(600.0)
        snap = service.snapshot()
        assert snap.all_correct
        for server in service.servers.values():
            assert server.security_stats.auth_failures == 0
            assert server.security_stats.replay_drops == 0
            assert server.security_stats.delay_attack_detections == 0

    def test_byzantine_composition(self):
        service = make_secure_mesh(4, byzantine=True)
        for server in service.servers.values():
            assert isinstance(server, AuthenticatedByzantineServer)
        service.run_until(200.0)
        assert service.snapshot().all_correct

    def test_outgoing_messages_signed(self):
        service = make_secure_mesh(2, tau=10.0)
        seen = []
        service.network.add_tap(
            lambda src, dst, message, delay: seen.append(message) and None
        )
        service.run_until(30.0)
        assert seen
        for message in seen:
            assert len(message.auth) == 3

    def test_tampered_reply_rejected_and_counted(self):
        service = make_secure_mesh(2, tau=10.0)
        s1 = service.servers["S1"]
        reply = s1.authenticator.sign(
            TimeReply(1, "S2", "S1", 5.0, 0.5, nonce=3)
        )
        rejection, _ = s1._admit_reply(
            replace(reply, clock_value=99.0), 0.01
        )
        assert rejection == "auth:bad-mac"
        assert s1.security_stats.auth_failures == 1

    def test_replayed_reply_rejected_and_counted(self):
        service = make_secure_mesh(2, tau=10.0)
        s1 = service.servers["S1"]
        reply = s1.authenticator.sign(
            TimeReply(1, "S2", "S1", 5.0, 0.5, nonce=3)
        )
        assert s1._admit_reply(reply, 0.01)[0] is None
        rejection, _ = s1._admit_reply(reply, 0.01)
        assert rejection == "replay:replay"
        assert s1.security_stats.replay_drops == 1

    def test_replayed_request_refused(self):
        service = make_secure_mesh(2, tau=10.0)
        s1, s2 = service.servers["S1"], service.servers["S2"]
        request = s2.authenticator.sign(TimeRequest(1, "S2", "S1", nonce=5))
        assert s1._admit_request(request) is None
        assert s1._admit_request(request) == "replay:replay"
        assert s1.security_stats.replay_drops == 1

    def test_unauthenticated_client_requests_still_served(self):
        service = make_secure_mesh(2, tau=10.0)
        s1 = service.servers["S1"]
        bare = TimeRequest(1, "client", "S1", kind=RequestKind.CLIENT)
        assert s1._admit_request(bare) is None

    def test_client_auth_enforceable(self):
        service = make_secure_mesh(2, tau=10.0, authenticate_clients=True)
        s1 = service.servers["S1"]
        bare = TimeRequest(1, "client", "S1", kind=RequestKind.CLIENT)
        assert s1._admit_request(bare) == "auth:missing-auth"

    def test_too_fast_reply_rejected_before_mac(self):
        # Declared link floor 2 ms each way: a 0.1 ms round trip is
        # physically impossible — rejected as a delay attack even though
        # the MAC on this crafted reply would *also* fail.
        service = make_secure_mesh(2, tau=10.0, minimum=0.002)
        s1 = service.servers["S1"]
        reply = TimeReply(1, "S2", "S1", 5.0, 0.5, nonce=3)
        rejection, _ = s1._admit_reply(reply, 0.0001)
        assert rejection == "delay:too-fast"
        assert s1.security_stats.delay_attack_detections == 1
        assert s1.security_stats.auth_failures == 0

    def test_beyond_bound_reply_widens(self):
        service = make_secure_mesh(2, tau=10.0, minimum=0.002)
        s1 = service.servers["S1"]
        reply = s1.authenticator.sign(
            TimeReply(1, "S2", "S1", 5.0, 0.5, nonce=3)
        )
        rejection, widen = s1._admit_reply(reply, 0.5)
        assert rejection is None
        assert widen > 0.4
        assert s1.security_stats.delay_widens == 1

    def test_key_rotation_mid_run_keeps_service_converged(self):
        service = make_secure_mesh(3, tau=30.0)
        service.run_until(150.0)
        service.servers["S1"].rotate_key()
        service.run_until(400.0)
        snap = service.snapshot()
        assert snap.all_correct
        for server in service.servers.values():
            assert server.security_stats.auth_failures == 0
            assert server.security.keyring.epoch == 1


# ----------------------------------------- satellite: cross-round replays


class TestCrossRoundReplay:
    """A recorded reply re-labelled into a later round must be dropped.

    Reply acceptance is keyed on the per-request nonce, not just the
    round id: an adversary who records round N's reply and rewrites its
    ``request_id`` to N+1 still cannot guess round N+1's nonce.
    """

    def _service(self):
        specs = [
            ServerSpec("S1", delta=1e-5, skew=0.5e-5),
            ServerSpec("S2", delta=1e-5, skew=-0.5e-5),
        ]
        return build_service(
            full_mesh(2),
            specs,
            policy=MMPolicy(),
            tau=50.0,
            seed=1,
            lan_delay=UniformDelay(0.01),
        )

    def test_recorded_reply_replayed_into_next_round_dropped(self):
        service = self._service()
        recorded = []
        service.network.add_tap(
            lambda src, dst, message, delay: (
                recorded.append(message)
                if isinstance(message, TimeReply) and dst == "S1"
                else None
            )
        )
        service.run_until(60.0)  # at least one full round
        assert recorded
        s1 = service.servers["S1"]
        handled_before = s1.stats.replies_handled
        s1._start_round()
        assert s1._round is not None and not s1._round.closed
        stale = replace(recorded[0], request_id=s1._round.round_id)
        s1._handle_reply(stale)
        assert s1.stats.replies_handled == handled_before

    def test_nonces_unique_per_destination_and_round(self):
        service = self._service()
        s1 = service.servers["S1"]
        seen = set()
        for _ in range(50):
            nonce = s1._next_nonce()
            assert nonce not in seen
            seen.add(nonce)


# -------------------------------------- satellite: quarantine escalation


class TestQuarantineEscalation:
    def _run_tampered(self, *, byzantine: bool, horizon: float):
        service = make_secure_mesh(
            4 if byzantine else 3, tau=10.0, byzantine=byzantine
        )
        schedule = FaultSchedule().add(
            MessageTamper(
                at=0.0, a="S1", b="S2", offset=0.5, duration=horizon
            )
        )
        injector = FaultInjector(
            service.engine,
            service.network,
            service.servers,
            schedule,
            rng=service.rng.stream("faults/injector"),
            trace=service.trace,
        )
        injector.start()
        service.run_until(horizon)
        return service

    def test_tampering_link_peer_quarantined_within_bounded_rounds(self):
        # Default quarantine policy: two invalid replies tip a healthy
        # peer below threshold, so the third round is an upper bound.
        service = self._run_tampered(byzantine=False, horizon=40.0)
        assert "S1" in service.servers["S2"].quarantined_peers()
        assert "S2" in service.servers["S1"].quarantined_peers()
        # The untouched edge stays healthy.
        assert "S3" not in service.servers["S1"].quarantined_peers()

    def test_auth_failures_register_falseticker_evidence(self):
        service = self._run_tampered(byzantine=True, horizon=60.0)
        s2 = service.servers["S2"]
        assert s2.security_stats.auth_failures > 0
        assert s2.reputation.record("S1").validation_failures > 0
