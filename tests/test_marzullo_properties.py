"""Property tests: the interval-intersection core vs a brute-force oracle.

``marzullo()``'s endpoint sweep, ``intersect_tolerating()``'s fault gate
and ``ntp_select()``'s majority scan are cross-checked against an O(n²)
reference that evaluates coverage at every trailing edge — the maximum
coverage of a finite set of closed intervals is always attained at some
interval's ``lo``, so the reference is exact.  Two strategies feed them:
free floats, and a small integer grid that forces degenerate zero-width
intervals and exact-touch ties (the cases off-by-one sweeps hide in).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import TimeInterval
from repro.core.marzullo import intersect_tolerating, marzullo, ntp_select

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
widths = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@st.composite
def float_intervals(draw, min_size=1, max_size=8):
    intervals = []
    for _ in range(draw(st.integers(min_size, max_size))):
        lo = draw(coords)
        intervals.append(TimeInterval(lo, lo + draw(widths)))
    return intervals


@st.composite
def grid_intervals(draw, min_size=1, max_size=8):
    """Small-integer endpoints: points and exact-touch ties are common."""
    intervals = []
    for _ in range(draw(st.integers(min_size, max_size))):
        lo = draw(st.integers(0, 8))
        hi = draw(st.integers(lo, 8))
        intervals.append(TimeInterval(float(lo), float(hi)))
    return intervals


any_intervals = st.one_of(float_intervals(), grid_intervals())


def cover(intervals, point):
    """How many closed intervals contain ``point``."""
    return sum(1 for iv in intervals if iv.lo <= point <= iv.hi)


def best_cover(intervals):
    """Brute-force maximum coverage (attained at some trailing edge)."""
    return max(cover(intervals, iv.lo) for iv in intervals)


class TestMarzulloProperties:
    @settings(max_examples=300, deadline=None)
    @given(any_intervals)
    def test_count_matches_brute_force(self, intervals):
        result = marzullo(intervals)
        assert result.count == best_cover(intervals)
        assert result.interval.lo <= result.interval.hi

    @settings(max_examples=300, deadline=None)
    @given(any_intervals)
    def test_returned_point_is_maximally_covered(self, intervals):
        result = marzullo(intervals)
        assert cover(intervals, result.interval.lo) == result.count

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            marzullo([])

    def test_exact_touch_counts_as_overlap(self):
        # The paper's <=-based consistency: [0,1] and [1,2] share {1}.
        result = marzullo([TimeInterval(0.0, 1.0), TimeInterval(1.0, 2.0)])
        assert result.count == 2
        assert result.interval.lo == result.interval.hi == 1.0

    def test_degenerate_points_stack(self):
        intervals = [TimeInterval(3.0, 3.0)] * 3 + [TimeInterval(5.0, 5.0)]
        result = marzullo(intervals)
        assert result.count == 3
        assert result.interval.lo == result.interval.hi == 3.0


class TestIntersectToleratingProperties:
    @settings(max_examples=300, deadline=None)
    @given(any_intervals)
    def test_gate_matches_brute_force(self, intervals):
        best = best_cover(intervals)
        n = len(intervals)
        for faults in range(n + 2):
            result = intersect_tolerating(intervals, faults)
            if best >= n - faults:
                assert result is not None
                assert result.count == best
            else:
                assert result is None

    @settings(max_examples=200, deadline=None)
    @given(any_intervals)
    def test_zero_faults_demands_unanimity(self, intervals):
        result = intersect_tolerating(intervals, 0)
        unanimous = best_cover(intervals) == len(intervals)
        assert (result is not None) == unanimous
        if result is not None:
            assert result == marzullo(intervals)

    @settings(max_examples=200, deadline=None)
    @given(any_intervals, st.integers(0, 8))
    def test_monotone_in_faults(self, intervals, faults):
        # A success at budget f cannot become a failure at f+1.
        if intersect_tolerating(intervals, faults) is not None:
            assert intersect_tolerating(intervals, faults + 1) is not None

    def test_negative_faults_raise(self):
        with pytest.raises(ValueError):
            intersect_tolerating([TimeInterval(0.0, 1.0)], -1)


class TestNtpSelectProperties:
    @settings(max_examples=300, deadline=None)
    @given(any_intervals)
    def test_selection_invariants(self, intervals):
        selection = ntp_select(intervals)
        if selection is None:
            return
        n = len(intervals)
        chimers = set(selection.truechimers)
        false = set(selection.falsetickers)
        # Truechimers and falsetickers partition the sources...
        assert chimers | false == set(range(n))
        assert chimers & false == set()
        # ...with the falsetickers a strict minority,
        assert 2 * len(false) < n
        # and every truechimer's midpoint inside the selection.
        lo, hi = selection.interval.lo, selection.interval.hi
        assert lo <= hi
        for index in chimers:
            assert lo <= intervals[index].center <= hi

    def test_empty_input_is_none(self):
        assert ntp_select([]) is None

    def test_disjoint_pair_has_no_majority(self):
        assert (
            ntp_select([TimeInterval(0.0, 1.0), TimeInterval(5.0, 6.0)])
            is None
        )

    def test_majority_survives_falseticker(self):
        intervals = [
            TimeInterval(0.0, 2.0),
            TimeInterval(0.1, 2.1),
            TimeInterval(10.0, 10.5),
        ]
        selection = ntp_select(intervals)
        assert selection is not None
        assert set(selection.truechimers) == {0, 1}
        assert set(selection.falsetickers) == {2}

    def test_unanimous_sources_all_chime(self):
        intervals = [TimeInterval(1.0, 3.0)] * 4
        selection = ntp_select(intervals)
        assert selection is not None
        assert set(selection.truechimers) == {0, 1, 2, 3}
        assert selection.interval.lo == 1.0
        assert selection.interval.hi == 3.0
