"""Unit tests for the analysis package: metrics, groups, convergence, plots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.consistency_graph import (
    consistency_graph,
    consistency_groups,
    correct_groups,
    group_of,
    is_partitioned,
    largest_group,
)
from repro.analysis.convergence import (
    analyze_convergence,
    predicted_convergence_time,
    s_min,
)
from repro.analysis.metrics import (
    asynchronism_series,
    check_bound,
    consistency_violations,
    correctness_violations,
    error_series,
    growth_rate,
    min_error_series,
    offset_series,
    pairwise_asynchronism,
    times,
    worst_true_offset_series,
)
from repro.analysis.plots import render_intervals, render_series, render_table
from repro.analysis.statistics import (
    confidence_interval_mean,
    ratio_of_rates,
    summarize,
)
from repro.core.intervals import TimeInterval
from repro.service.builder import ServiceSnapshot


def snap(time, values, errors):
    offsets = {k: v - time for k, v in values.items()}
    correct = {
        k: abs(offsets[k]) <= errors[k] for k in values
    }
    return ServiceSnapshot(
        time=time, values=values, errors=errors, offsets=offsets, correct=correct
    )


def toy_snapshots():
    return [
        snap(0.0, {"A": 0.0, "B": 0.0}, {"A": 0.0, "B": 0.1}),
        snap(10.0, {"A": 10.001, "B": 9.98}, {"A": 0.01, "B": 0.2}),
        snap(20.0, {"A": 20.002, "B": 19.96}, {"A": 0.02, "B": 0.3}),
    ]


class TestSeries:
    def test_times_and_error_series(self):
        snaps = toy_snapshots()
        assert list(times(snaps)) == [0.0, 10.0, 20.0]
        assert list(error_series(snaps, "A")) == [0.0, 0.01, 0.02]

    def test_offset_series(self):
        snaps = toy_snapshots()
        assert offset_series(snaps, "B")[1] == pytest.approx(-0.02)

    def test_min_error_series(self):
        assert list(min_error_series(toy_snapshots())) == [0.0, 0.01, 0.02]

    def test_asynchronism_series(self):
        snaps = toy_snapshots()
        assert asynchronism_series(snaps)[1] == pytest.approx(0.021)
        assert pairwise_asynchronism(snaps, "A", "B")[1] == pytest.approx(0.021)

    def test_worst_true_offset(self):
        assert worst_true_offset_series(toy_snapshots())[2] == pytest.approx(0.04)

    def test_violations_empty_when_correct(self):
        assert correctness_violations(toy_snapshots()) == []

    def test_violations_reported(self):
        bad = snap(5.0, {"A": 6.0}, {"A": 0.1})
        assert correctness_violations([bad]) == [(5.0, ["A"])]

    def test_consistency_violations(self):
        inconsistent = snap(
            0.0, {"A": 0.0, "B": 10.0}, {"A": 0.1, "B": 0.1}
        )
        assert consistency_violations([inconsistent]) == [0.0]


class TestGrowthAndBounds:
    def test_growth_rate_recovers_line(self):
        t = np.linspace(0, 100, 20)
        fit = growth_rate(t, 3.0 * t + 1.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_growth_rate_needs_two_points(self):
        with pytest.raises(ValueError):
            growth_rate(np.array([1.0]), np.array([1.0]))

    def test_check_bound_holds(self):
        verdict = check_bound(np.array([1.0, 2.0]), np.array([2.0, 2.5]))
        assert verdict.holds and verdict.max_ratio == pytest.approx(0.8)

    def test_check_bound_violation(self):
        verdict = check_bound(np.array([3.0]), np.array([2.0]))
        assert not verdict.holds and verdict.violations == 1

    def test_check_bound_mismatched_lengths(self):
        with pytest.raises(ValueError):
            check_bound(np.array([1.0]), np.array([1.0, 2.0]))

    def test_check_bound_empty(self):
        verdict = check_bound(np.array([]), np.array([]))
        assert verdict.holds and verdict.samples == 0


FIG4 = {
    "S1": TimeInterval(100.0, 104.0),
    "S2": TimeInterval(101.0, 105.0),
    "S3": TimeInterval(103.0, 108.0),
    "S4": TimeInterval(107.0, 110.0),
    "S5": TimeInterval(109.0, 112.0),
    "S6": TimeInterval(109.5, 112.5),
}


class TestConsistencyGroups:
    def test_consistent_service_single_group(self):
        intervals = {"A": TimeInterval(0, 4), "B": TimeInterval(1, 5), "C": TimeInterval(2, 6)}
        groups = consistency_groups(intervals)
        assert len(groups) == 1
        assert groups[0].members == ("A", "B", "C")
        assert groups[0].intersection == TimeInterval(2, 4)
        assert not is_partitioned(intervals)

    def test_figure4_three_groups(self):
        groups = consistency_groups(FIG4)
        assert len(groups) == 3
        members = {group.members for group in groups}
        assert ("S1", "S2", "S3") in members
        assert ("S3", "S4") in members
        assert ("S4", "S5", "S6") in members
        assert is_partitioned(FIG4)

    def test_groups_sorted_largest_first(self):
        groups = consistency_groups(FIG4)
        sizes = [group.size for group in groups]
        assert sizes == sorted(sizes, reverse=True)

    def test_largest_group(self):
        assert largest_group(FIG4).size == 3

    def test_group_of_shared_server(self):
        memberships = group_of(FIG4, "S3")
        assert len(memberships) == 2  # S3 bridges two groups

    def test_correct_groups_oracle(self):
        winners = correct_groups(FIG4, true_time=103.5)
        assert len(winners) == 1
        assert winners[0].members == ("S1", "S2", "S3")

    def test_consistency_graph_edges(self):
        graph = consistency_graph(FIG4)
        assert graph.has_edge("S1", "S2")
        assert not graph.has_edge("S1", "S6")

    def test_largest_group_empty_rejected(self):
        with pytest.raises(ValueError):
            largest_group({})


class TestConvergence:
    def test_s_min(self):
        deltas = {"A": 1e-6, "B": 1e-5, "C": 1e-6}
        assert s_min(deltas) == {"A", "C"}

    def test_predicted_time_formula(self):
        """t_x^0 = t0 + max (E_i - E_k)/(δ_k - δ_i) over i in S_min, k not."""
        errors = {"good": 1.0, "bad": 0.1}
        deltas = {"good": 1e-6, "bad": 1e-3}
        predicted = predicted_convergence_time(errors, deltas, t0=0.0)
        assert predicted == pytest.approx(0.9 / (1e-3 - 1e-6))

    def test_predicted_time_all_in_s_min(self):
        errors = {"a": 1.0, "b": 2.0}
        deltas = {"a": 1e-6, "b": 1e-6}
        assert predicted_convergence_time(errors, deltas, t0=5.0) == 5.0

    def test_predicted_time_name_mismatch(self):
        with pytest.raises(ValueError):
            predicted_convergence_time({"a": 1.0}, {"b": 1e-6})

    def test_analyze_convergence_measures_handover(self):
        deltas = {"good": 1e-6, "bad": 1e-3}
        snaps = [
            snap(0.0, {"good": 0.0, "bad": 0.0}, {"good": 1.0, "bad": 0.1}),
            snap(500.0, {"good": 500.0, "bad": 500.0}, {"good": 1.0005, "bad": 0.6}),
            snap(1000.0, {"good": 1000.0, "bad": 1000.0}, {"good": 1.001, "bad": 1.1}),
        ]
        report = analyze_convergence(snaps, deltas)
        assert report.converged
        assert report.measured_time == 1000.0
        assert report.holder_series == ("bad", "bad", "good")

    def test_analyze_convergence_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze_convergence([], {})


class TestStatistics:
    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.p50 == pytest.approx(2.5)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ratio_of_rates(self):
        assert ratio_of_rates(10.0, 2.0) == 5.0
        assert ratio_of_rates(1.0, 0.0) == float("inf")
        assert ratio_of_rates(0.0, 0.0) == 1.0

    def test_confidence_interval(self):
        lo, hi = confidence_interval_mean([1.0, 2.0, 3.0])
        assert lo < 2.0 < hi

    def test_confidence_interval_single_point(self):
        lo, hi = confidence_interval_mean([2.0])
        assert lo == hi == 2.0


class TestPlots:
    def test_render_intervals_includes_all_labels(self):
        art = render_intervals(FIG4, true_time=103.5)
        for name in FIG4:
            assert name in art
        assert "|" in art  # the true-time mark

    def test_render_intervals_empty(self):
        assert render_intervals({}) == "(no intervals)"

    def test_render_intervals_bar_shape(self):
        art = render_intervals({"X": TimeInterval(0, 10)}, width=40)
        line = art.splitlines()[0]
        assert "[" in line and "]" in line and "*" in line

    def test_render_series(self):
        art = render_series(
            [0, 1, 2], {"err": [0.0, 0.5, 1.0]}, width=20, height=5, title="t"
        )
        assert "t" in art and "err" in art

    def test_render_series_empty(self):
        assert render_series([], {}) == "(no data)"

    def test_render_table_alignment(self):
        table = render_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
