"""Unit tests for the hardened server (validation, retries, adaptive
timeouts, quarantine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clocks.drift import DriftingClock
from repro.core.mm import MMPolicy
from repro.network.delay import ConstantDelay
from repro.network.topology import full_mesh
from repro.network.transport import Network
from repro.service.builder import ServerSpec, build_service
from repro.service.hardening import (
    HardenedTimeServer,
    HardeningConfig,
    NeighbourHealth,
    QuarantinePolicy,
    RetryPolicy,
)
from repro.service.messages import RequestKind, TimeReply
from repro.service.server import TimeServer
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngRegistry

from tests.helpers import make_mesh_service


def lone_hardened(initial_error=0.1, config=None, n=3):
    engine = SimulationEngine()
    network = Network(
        engine, full_mesh(n), RngRegistry(seed=0), lan_delay=ConstantDelay(0.01)
    )
    server = HardenedTimeServer(
        engine,
        "S1",
        DriftingClock(0.0),
        1e-4,
        network,
        policy=None,
        initial_error=initial_error,
        hardening=config,
    )
    network.register(server)
    server.start()
    return engine, network, server


def reply(clock_value, error, server="S2"):
    return TimeReply(
        request_id=1,
        server=server,
        destination="S1",
        clock_value=clock_value,
        error=error,
        kind=RequestKind.POLL,
        delta=1e-5,
    )


class TestValidation:
    def test_sane_reply_accepted(self):
        engine, network, server = lone_hardened()
        assert server._validate_reply(reply(0.01, 0.05)) is None

    def test_nan_value_rejected(self):
        engine, network, server = lone_hardened()
        assert "non-finite" in server._validate_reply(reply(float("nan"), 0.05))

    def test_infinite_error_rejected(self):
        engine, network, server = lone_hardened()
        assert "non-finite" in server._validate_reply(reply(0.0, float("inf")))

    def test_negative_error_rejected(self):
        engine, network, server = lone_hardened()
        assert "negative" in server._validate_reply(reply(0.0, -0.1))

    def test_absurd_error_rejected(self):
        engine, network, server = lone_hardened()
        assert "large" in server._validate_reply(reply(0.0, 1e6))

    def test_implausible_value_rejected(self):
        # Farther off than E_i + E_j + (1+δ)ξ + slack can explain.
        engine, network, server = lone_hardened(initial_error=0.1)
        assert "implausible" in server._validate_reply(reply(50.0, 0.05))

    def test_validation_can_be_disabled(self):
        config = HardeningConfig(validate=False)
        engine, network, server = lone_hardened(config=config)
        assert server._validate_reply(reply(float("nan"), -1.0)) is None

    def test_invalid_replies_decay_health_to_quarantine(self):
        engine, network, server = lone_hardened()
        for _ in range(4):
            assert server._validate_reply(reply(float("nan"), 0.05)) is not None
        health = server.health["S2"]
        assert health.invalid == 4
        assert health.is_quarantined(engine.now)
        assert server.hardening_stats.quarantines == 1


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base=0.1, factor=2.0, cap=0.3, jitter=0.0)
        delays = [policy.delay(k, None) for k in (1, 2, 3, 4)]
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.3),
            pytest.approx(0.3),
        ]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base=1.0, factor=1.0, cap=5.0, jitter=0.25)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert 0.75 <= policy.delay(1, rng) <= 1.25


class TestNeighbourHealth:
    def test_good_replies_pull_score_up(self):
        policy = QuarantinePolicy()
        health = NeighbourHealth(score=0.5)
        health.record_good(policy)
        assert health.score > 0.5

    def test_release_puts_on_probation(self):
        policy = QuarantinePolicy(probation_score=0.5)
        health = NeighbourHealth(score=0.1, quarantined_until=10.0)
        health.release_if_due(5.0, policy)
        assert health.is_quarantined(5.0)
        health.release_if_due(10.0, policy)
        assert not health.is_quarantined(10.0)
        assert health.score == pytest.approx(0.5)


class TestQuarantineTargeting:
    def test_quarantined_neighbour_not_polled(self):
        engine, network, server = lone_hardened(n=4)
        server._health("S2").quarantined_until = engine.now + 100.0
        assert server._poll_targets() == ["S3", "S4"]
        assert server.quarantined_peers() == ["S2"]

    def test_starvation_guard_readmits_best(self):
        engine, network, server = lone_hardened(n=4)
        for name, score in (("S2", 0.2), ("S3", 0.1), ("S4", 0.05)):
            record = server._health(name)
            record.quarantined_until = engine.now + 100.0
            record.score = score
        targets = server._poll_targets()
        # min_peers=2: the two best-scored benched peers are re-admitted.
        assert targets == ["S2", "S3"]
        assert server.hardening_stats.starvation_overrides == 2

    def test_quarantine_disabled_polls_everyone(self):
        config = HardeningConfig(quarantine=None)
        engine, network, server = lone_hardened(n=4, config=config)
        server.health["S2"] = NeighbourHealth(quarantined_until=1e9)
        assert server._poll_targets() == ["S2", "S3", "S4"]


class TestAdaptiveTimeout:
    def test_defaults_to_static_plus_retry_budget_before_samples(self):
        engine, network, server = lone_hardened()
        server._round_timeout = 2.0
        budget = server._retry_budget()
        assert budget == pytest.approx(0.45)  # 0.15 + 0.30, default policy
        assert server._effective_round_timeout() == pytest.approx(2.0 + budget)

    def test_shrinks_with_observed_rtts(self):
        engine, network, server = lone_hardened()
        server._round_timeout = 5.0
        for _ in range(20):
            server._observe_reply(reply(0.0, 0.05), 0.02, 0.0)
        timeout = server._effective_round_timeout()
        assert timeout < 5.0
        assert timeout >= server.hardening.min_timeout

    def test_window_never_exceeds_static(self):
        engine, network, server = lone_hardened()
        server._round_timeout = 0.2
        server._observe_reply(reply(0.0, 0.05), 10.0, 0.0)
        expected = 0.2 + server._retry_budget()
        assert server._effective_round_timeout() == pytest.approx(expected)

    def test_retry_budget_keeps_round_open_on_fast_networks(self):
        # static = 4ξ can be shorter than the first backoff delay; the
        # budget must extend the round or retries would never fire.
        engine, network, server = lone_hardened()
        server._round_timeout = 0.08
        first_retry = server.hardening.retry.delay(1, None)
        assert server._effective_round_timeout() > first_retry


class TestRetriesEndToEnd:
    def test_retries_recover_lost_polls(self):
        plain = make_mesh_service(4, tau=10.0, seed=5, loss_probability=0.35)
        hard = make_mesh_service(
            4, tau=10.0, seed=5, loss_probability=0.35,
            hardening=HardeningConfig(),
        )
        plain.run_until(300.0)
        hard.run_until(300.0)
        plain_replies = sum(
            s.stats.replies_handled for s in plain.servers.values()
        )
        hard_replies = sum(
            s.stats.replies_handled for s in hard.servers.values()
        )
        retries = sum(
            s.hardening_stats.retries_sent for s in hard.servers.values()
        )
        assert retries > 0
        assert hard_replies > plain_replies

    def test_no_retries_on_lossless_network(self):
        config = HardeningConfig(retry=RetryPolicy(max_attempts=1))
        service = make_mesh_service(3, tau=10.0, hardening=config)
        service.run_until(100.0)
        assert all(
            s.hardening_stats.retries_sent == 0
            for s in service.servers.values()
        )


class TestBuilderIntegration:
    def test_hardening_flag_builds_hardened_servers(self):
        service = make_mesh_service(3, hardening=HardeningConfig())
        assert all(
            isinstance(s, HardenedTimeServer) for s in service.servers.values()
        )

    def test_default_build_is_plain(self):
        service = make_mesh_service(3)
        assert all(
            type(s) is TimeServer for s in service.servers.values()
        )

    def test_reference_servers_not_hardened(self):
        graph = full_mesh(3)
        specs = [
            ServerSpec("S1", reference=True, initial_error=0.01),
            ServerSpec("S2", delta=1e-5),
            ServerSpec("S3", delta=1e-5),
        ]
        service = build_service(
            graph, specs, policy=MMPolicy(), hardening=HardeningConfig()
        )
        assert not isinstance(service.servers["S1"], HardenedTimeServer)
        assert isinstance(service.servers["S2"], HardenedTimeServer)


class TestHealthFeedback:
    def test_round_timeout_penalises_silent_neighbour(self):
        # S2's links are cut after build: every round times out on it.
        service = make_mesh_service(
            3, tau=5.0, hardening=HardeningConfig()
        )
        service.network.link("S1", "S2").take_down()
        service.network.link("S2", "S3").take_down()
        service.run_until(200.0)
        s1 = service.servers["S1"]
        assert s1.health["S2"].timeouts > 0
        assert s1.health["S2"].score < 1.0

    def test_good_replies_keep_score_high(self):
        service = make_mesh_service(3, tau=5.0, hardening=HardeningConfig())
        service.run_until(100.0)
        for server in service.servers.values():
            for record in server.health.values():
                assert record.score > 0.9
                assert not record.is_quarantined(service.engine.now)
