"""Grand integration scenario: everything at once.

A two-level internetwork with a reference server, rate-tracking +
recovery-enabled servers, a racing failure, membership churn, packet loss,
and clients querying throughout.  The assertions are the global invariants
a production deployment would page on:

* every healthy, present server stays correct at every checkpoint;
* the service's healthy core remains one consistency group;
* clients using the intersect strategy always receive correct answers;
* the consonance diagnosis names (only) the racing server;
* the run is bit-deterministic for a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import service_report
from repro.clocks.drift import DriftingClock
from repro.clocks.failures import RacingClock
from repro.core.im import IMPolicy
from repro.core.recovery import ThirdServerRecovery
from repro.network.delay import UniformDelay
from repro.network.topology import two_level_internet
from repro.service.builder import ServerSpec, build_service
from repro.service.churn import ChurnController
from repro.service.client import QueryStrategy

HORIZON = 3600.0
FAULTY = "N2-S3"
CLIENT = "N3-WS"


def build_grand_service(seed: int = 71):
    graph = two_level_internet(3, 4)
    lan3 = [f"N3-S{k}" for k in range(1, 5)]
    for server in lan3:
        graph.add_edge(CLIENT, server, kind="lan")

    rng = np.random.default_rng(seed)
    specs = []
    for node in sorted(n for n in graph.nodes if n != CLIENT):
        if node == "N1-S2":
            specs.append(ServerSpec(node, reference=True, initial_error=0.001))
        elif node == FAULTY:
            specs.append(
                ServerSpec(
                    node,
                    delta=1e-5,
                    clock_factory=lambda r, n: RacingClock(
                        DriftingClock(1e-6), fail_at=900.0, racing_skew=5e-3
                    ),
                    rate_tracking=True,
                )
            )
        else:
            delta = float(10 ** rng.uniform(-5.3, -4.3))
            specs.append(
                ServerSpec(
                    node,
                    delta=delta,
                    skew=float(rng.uniform(-0.8, 0.8)) * delta,
                    rate_tracking=True,
                )
            )
    service = build_service(
        graph,
        specs,
        policy=IMPolicy(),
        tau=60.0,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        wan_delay=UniformDelay(0.1),
        loss_probability=0.02,
        recovery_factory=lambda name: ThirdServerRecovery(),
        trace_enabled=True,
    )
    # Churn over non-reference, non-faulty servers on network 3.
    churnable = [service.servers[name] for name in lan3]
    controller = ChurnController(
        service.engine,
        churnable,
        service.rng.stream("churn"),
        interval=400.0,
        mean_downtime=120.0,
        rejoin_error=1.0,
        min_alive=2,
    )
    controller.start()
    client = service.add_client(CLIENT, timeout=2.0)
    client.start()
    return service, client, controller


@pytest.fixture(scope="module")
def grand_run():
    service, client, controller = build_grand_service()
    results = []
    lan3 = [f"N3-S{k}" for k in range(1, 5)]
    for checkpoint in np.arange(300.0, HORIZON + 1.0, 300.0):
        service.run_until(float(checkpoint))
        client.ask(
            lan3,
            QueryStrategy.INTERSECT,
            callback=results.append,
            faults=1,
        )
        service.run_until(float(checkpoint) + 5.0)
    service.run_until(HORIZON + 10.0)
    return service, client, controller, results


class TestGrandScenario:
    def test_healthy_present_servers_stay_correct(self, grand_run):
        service, _client, _controller, _results = grand_run
        snap = service.snapshot()
        for name, server in service.servers.items():
            if name == FAULTY or server.departed:
                continue
            assert snap.correct[name], (name, snap.offsets[name], snap.errors[name])

    def test_faulty_server_is_the_outlier(self, grand_run):
        service, _client, _controller, _results = grand_run
        snap = service.snapshot()
        healthy_offsets = [
            abs(offset)
            for name, offset in snap.offsets.items()
            if name != FAULTY
        ]
        # Recovery keeps yanking it back, but between recoveries it races.
        assert abs(snap.offsets[FAULTY]) >= 0.0  # present in the snapshot
        assert max(healthy_offsets) < 0.2

    def test_churn_actually_happened(self, grand_run):
        _service, _client, controller, _results = grand_run
        assert controller.stats.departures >= 2
        assert controller.stats.rejoins >= 1

    def test_clients_always_correct(self, grand_run):
        _service, _client, _controller, results = grand_run
        assert len(results) >= 10
        for result in results:
            assert result.correct, result

    def test_diagnosis_names_only_the_racer(self, grand_run):
        service, _client, _controller, _results = grand_run
        report = service_report(service, include_diagram=False)
        assert "consonance diagnosis" in report
        if "dissonant servers" in report:
            line = next(
                l for l in report.splitlines() if "dissonant servers" in l
            )
            assert FAULTY in line
            for name in service.servers:
                if name != FAULTY:
                    assert name not in line

    def test_run_is_deterministic(self):
        snapshots = []
        for _ in range(2):
            service, _client, _controller = build_grand_service(seed=71)
            service.run_until(600.0)
            snapshots.append(service.snapshot())
        assert snapshots[0].values == snapshots[1].values
        assert snapshots[0].errors == snapshots[1].errors
