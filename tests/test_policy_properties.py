"""Hypothesis properties of the synchronization policies themselves."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.baselines.averaging import MeanPolicy, MedianPolicy
from repro.baselines.lamport_max import LamportMaxPolicy
from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.core.sync import LocalState, Reply

errors = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
clocks = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
rtts = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
deltas = st.floats(min_value=0.0, max_value=0.01, allow_nan=False)


@st.composite
def states(draw):
    return LocalState(
        clock_value=draw(clocks), error=draw(errors), delta=draw(deltas)
    )


@st.composite
def replies(draw, near: float | None = None):
    center = draw(clocks) if near is None else near + draw(
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
    )
    return Reply(
        server=f"S{draw(st.integers(min_value=2, max_value=9))}",
        clock_value=center,
        error=draw(errors),
        rtt_local=draw(rtts),
    )


class TestMMProperties:
    @given(states(), st.data())
    def test_never_adopts_a_worse_error(self, state, data):
        """Any reset MM performs strictly (weakly) improves the error."""
        reply = data.draw(replies(near=state.clock_value))
        outcome = MMPolicy().on_reply(state, reply)
        if outcome.decision is not None:
            assert outcome.decision.inherited_error <= state.error + 1e-12

    @given(states(), st.data())
    def test_adoption_error_formula(self, state, data):
        reply = data.draw(replies(near=state.clock_value))
        outcome = MMPolicy().on_reply(state, reply)
        if outcome.decision is not None:
            expected = reply.error + (1.0 + state.delta) * reply.rtt_local
            assert outcome.decision.inherited_error == pytest.approx(expected)
            assert outcome.decision.clock_value == reply.clock_value

    @given(states(), st.data())
    def test_monotone_in_reply_error(self, state, data):
        """If MM accepts a reply, it also accepts the same reply with a
        smaller error."""
        reply = data.draw(replies(near=state.clock_value))
        policy = MMPolicy()
        if policy.accepts(state, reply) and reply.error > 0:
            better = Reply(
                server=reply.server,
                clock_value=reply.clock_value,
                error=reply.error / 2.0,
                rtt_local=reply.rtt_local,
            )
            assert policy.accepts(state, better)


class TestIMProperties:
    @given(states(), st.lists(st.data(), min_size=0, max_size=5))
    def test_result_never_worse_than_own_interval(self, state, datas):
        """With the self interval included, IM's new error never exceeds
        the current one (Theorem 6 applied to the local view)."""
        reply_list = [d.draw(replies(near=state.clock_value)) for d in datas]
        outcome = IMPolicy().on_round_complete(state, reply_list)
        if outcome.consistent and outcome.decision is not None:
            assert outcome.decision.inherited_error <= state.error + 1e-9

    @given(states(), st.data())
    def test_single_self_consistent_reply_only_shrinks(self, state, data):
        reply = data.draw(replies(near=state.clock_value))
        outcome = IMPolicy().on_round_complete(state, [reply])
        if outcome.consistent and outcome.decision is not None:
            new = outcome.decision
            # The new interval is a subset of the old one.
            assert new.clock_value - new.inherited_error >= (
                state.clock_value - state.error - 1e-9
            )
            assert new.clock_value + new.inherited_error <= (
                state.clock_value + state.error + 1e-9
            )


class TestBaselineProperties:
    @given(states(), st.lists(st.data(), min_size=1, max_size=5))
    def test_lamport_max_never_steps_backwards(self, state, datas):
        reply_list = [d.draw(replies()) for d in datas]
        outcome = LamportMaxPolicy().on_round_complete(state, reply_list)
        if outcome.decision is not None:
            assert outcome.decision.clock_value >= state.clock_value

    @given(states(), st.lists(st.data(), min_size=1, max_size=5))
    def test_median_adjustment_within_offset_range(self, state, datas):
        reply_list = [d.draw(replies()) for d in datas]
        outcome = MedianPolicy().on_round_complete(state, reply_list)
        if outcome.decision is not None:
            offsets = [0.0] + [
                r.clock_value + r.rtt_local / 2.0 - state.clock_value
                for r in reply_list
            ]
            adjustment = outcome.decision.clock_value - state.clock_value
            assert min(offsets) - 1e-9 <= adjustment <= max(offsets) + 1e-9

    @given(states(), st.lists(st.data(), min_size=1, max_size=5))
    def test_mean_adjustment_within_offset_range(self, state, datas):
        reply_list = [d.draw(replies()) for d in datas]
        outcome = MeanPolicy().on_round_complete(state, reply_list)
        if outcome.decision is not None:
            offsets = [0.0] + [
                r.clock_value + r.rtt_local / 2.0 - state.clock_value
                for r in reply_list
            ]
            adjustment = outcome.decision.clock_value - state.clock_value
            assert min(offsets) - 1e-9 <= adjustment <= max(offsets) + 1e-9
