"""Unit tests for the TimeClient and its query strategies."""

from __future__ import annotations

import pytest

from repro.clocks.drift import DriftingClock
from repro.core.im import IMPolicy
from repro.network.delay import ConstantDelay, UniformDelay
from repro.network.topology import full_mesh, star
from repro.service.builder import ServerSpec, build_service
from repro.service.client import QueryStrategy


def make_service_with_client(
    n_servers=3,
    *,
    errors=(0.5, 0.1, 0.9),
    skews=None,
    one_way=0.01,
    client_kwargs=None,
):
    """A star of answer-only servers around a client hub node ``C``."""
    graph = star(n_servers + 1, prefix="N")
    # Relabel: hub N1 is the client; servers are N2..; give them names.
    specs = []
    for k in range(n_servers):
        skew = 0.0 if skews is None else skews[k]
        specs.append(
            ServerSpec(
                f"N{k + 2}",
                delta=1e-5,
                skew=skew,
                initial_error=errors[k],
                polls=False,
            )
        )
    service = build_service(
        graph,
        specs,
        policy=None,
        tau=60.0,
        seed=0,
        lan_delay=ConstantDelay(one_way),
    )
    client = service.add_client("N1", **(client_kwargs or {}))
    client.start()
    return service, client


class TestStrategies:
    def test_first_reply_uses_first_arrival(self):
        service, client = make_service_with_client()
        results = []
        client.ask(
            ["N2", "N3", "N4"],
            QueryStrategy.FIRST_REPLY,
            callback=results.append,
        )
        service.engine.run(until=1.0)
        assert len(results) == 1
        assert results[0].replies_used == 1

    def test_min_error_picks_smallest_interval(self):
        service, client = make_service_with_client(errors=(0.5, 0.1, 0.9))
        results = []
        client.ask(
            ["N2", "N3", "N4"], QueryStrategy.MIN_ERROR, callback=results.append
        )
        service.engine.run(until=2.0)
        assert len(results) == 1
        # N3 (error 0.1) should win; the claimed error includes the rtt.
        assert results[0].source == "N3"
        assert results[0].error < 0.2

    def test_intersect_beats_min_error(self):
        """Offset intervals whose intersection is smaller than any single
        interval (the Figure 2 right-panel case, client-side)."""
        service, client = make_service_with_client(
            errors=(0.5, 0.5, 0.5), skews=(0.0, 0.0, 0.0)
        )
        # Give the three servers slightly different initial clock offsets by
        # using drifting clocks with distinct epoch offsets.
        results_min, results_int = [], []
        client.ask(
            ["N2", "N3", "N4"], QueryStrategy.MIN_ERROR, callback=results_min.append
        )
        client.ask(
            ["N2", "N3", "N4"], QueryStrategy.INTERSECT, callback=results_int.append
        )
        service.engine.run(until=3.0)
        assert results_int[0].error <= results_min[0].error + 1e-9

    def test_intersect_with_faults_survives_falseticker(self):
        service, client = make_service_with_client(
            errors=(0.1, 0.1, 0.1), skews=None
        )
        # Wreck one server's clock after the fact: huge offset.
        bad = service.servers["N4"]
        bad.clock.set(0.0, 500.0)
        results = []
        client.ask(
            ["N2", "N3", "N4"],
            QueryStrategy.INTERSECT,
            callback=results.append,
            faults=1,
        )
        service.engine.run(until=2.0)
        result = results[0]
        assert result.correct
        assert abs(result.true_offset) < 0.1

    def test_intersect_falls_back_to_ntp_select(self):
        """Budget too small for the liars: INTERSECT degrades to the
        RFC-5905 selection, which stays anchored to the truechimer
        majority instead of trusting the narrowest (liar) interval."""
        service, client = make_service_with_client(
            n_servers=5, errors=(0.1,) * 5, skews=None
        )
        # Two colluding liars with confident (small-error) replies; a
        # budget of one fault cannot cover them both.
        service.servers["N5"].clock.set(0.0, 500.0)
        service.servers["N6"].clock.set(0.0, 500.3)
        results = []
        client.ask(
            ["N2", "N3", "N4", "N5", "N6"],
            QueryStrategy.INTERSECT,
            callback=results.append,
            faults=1,
        )
        service.engine.run(until=2.0)
        result = results[0]
        assert result.source.startswith("ntp-select[")
        assert result.correct
        assert abs(result.true_offset) < 0.2

    def test_intersect_last_resort_is_labelled_fallback(self):
        """No majority at all (every server disagrees): the documented
        MIN_ERROR last resort, clearly labelled in the result source."""
        service, client = make_service_with_client(
            errors=(0.1, 0.1, 0.1), skews=None
        )
        service.servers["N3"].clock.set(0.0, 500.0)
        service.servers["N4"].clock.set(0.0, -500.0)
        results = []
        client.ask(
            ["N2", "N3", "N4"],
            QueryStrategy.INTERSECT,
            callback=results.append,
            faults=0,
        )
        service.engine.run(until=2.0)
        assert results[0].source.startswith("fallback:")

    def test_all_results_recorded(self):
        service, client = make_service_with_client()
        for _ in range(3):
            client.ask(["N2"], QueryStrategy.FIRST_REPLY)
        service.engine.run(until=5.0)
        assert len(client.results) == 3


class TestCorrectnessAccounting:
    def test_claimed_interval_contains_truth(self):
        """Client results from correct servers are correct (the client-side
        analogue of Theorem 5)."""
        service, client = make_service_with_client(
            errors=(0.2, 0.3, 0.4), one_way=0.05
        )
        results = []
        for strategy in QueryStrategy:
            client.ask(["N2", "N3", "N4"], strategy, callback=results.append)
        service.engine.run(until=5.0)
        assert len(results) == 3
        for result in results:
            assert result.correct, result

    def test_drifting_client_clock_still_correct(self):
        service, client = make_service_with_client(
            errors=(0.2, 0.2, 0.2),
            client_kwargs=dict(
                clock=DriftingClock(skew=5e-3), delta=1e-2
            ),
        )
        results = []
        client.ask(["N2", "N3", "N4"], QueryStrategy.INTERSECT, callback=results.append)
        service.engine.run(until=5.0)
        assert results[0].correct


class TestValidation:
    def test_empty_server_list_rejected(self):
        service, client = make_service_with_client()
        with pytest.raises(ValueError):
            client.ask([], QueryStrategy.FIRST_REPLY)

    def test_negative_faults_rejected(self):
        service, client = make_service_with_client()
        with pytest.raises(ValueError):
            client.ask(["N2"], QueryStrategy.INTERSECT, faults=-1)

    def test_timeout_finalises_partial_results(self):
        service, client = make_service_with_client()
        service.network.link("N1", "N4").take_down()
        results = []
        client.ask(
            ["N2", "N3", "N4"], QueryStrategy.MIN_ERROR, callback=results.append
        )
        service.engine.run(until=5.0)
        assert len(results) == 1
        assert results[0].replies_used == 2

    def test_no_replies_yields_explicit_failure(self):
        # A query that hears nothing must fail *explicitly*: the callback
        # fires with a failed result and the failure is recorded, so
        # experiments can count unanswered queries (it used to vanish).
        service, client = make_service_with_client()
        for name in ("N2", "N3", "N4"):
            service.network.link("N1", name).take_down()
        results = []
        client.ask(
            ["N2", "N3", "N4"], QueryStrategy.FIRST_REPLY, callback=results.append
        )
        service.engine.run(until=5.0)
        assert client.results == []
        assert len(results) == 1
        assert len(client.failures) == 1
        failure = results[0]
        assert failure.failed
        assert failure.replies_used == 0
        assert not failure.correct
        assert failure.latency == pytest.approx(client.timeout)

    def test_client_validation(self):
        service, _client = make_service_with_client()
        with pytest.raises(ValueError):
            service.add_client("N1", delta=-1.0)
