"""Unit tests for the Byzantine layer's bookkeeping.

Covers the EWMA reputation tracker (hysteresis classification,
rehabilitation, checkpoint round-trip) and the adaptive fault-budget
controller (evidence-driven raises, clean-streak decay, the known-liar
floor, the 2f < n cap).
"""

from __future__ import annotations

import pytest

from repro.byzantine import (
    FaultBudgetConfig,
    FaultBudgetController,
    ReputationConfig,
    ReputationTracker,
)


class TestReputationTracker:
    def test_classification_needs_min_observations(self):
        tracker = ReputationTracker()
        assert not tracker.observe_falseticker("S9")
        assert not tracker.is_falseticker("S9")
        assert not tracker.observe_falseticker("S9")
        assert not tracker.is_falseticker("S9")
        # Third strike: score below the threshold with enough verdicts.
        assert tracker.observe_falseticker("S9")
        assert tracker.is_falseticker("S9")
        assert tracker.falsetickers() == ("S9",)

    def test_hysteresis_band_and_rehabilitation(self):
        tracker = ReputationTracker()
        for _ in range(3):
            tracker.observe_falseticker("S9")
        # One good round lands inside the hysteresis band: still flagged.
        assert not tracker.observe_truechimer("S9")
        assert tracker.is_falseticker("S9")
        # A second good round crosses truechimer_above: rehabilitated.
        assert tracker.observe_truechimer("S9")
        assert not tracker.is_falseticker("S9")
        assert tracker.falsetickers() == ()

    def test_validation_failures_are_bad_verdicts(self):
        tracker = ReputationTracker()
        for _ in range(3):
            tracker.observe_validation_failure("S9")
        assert tracker.is_falseticker("S9")
        assert tracker.record("S9").validation_failures == 3

    def test_unknown_neighbour_is_trusted(self):
        tracker = ReputationTracker()
        assert not tracker.is_falseticker("never-seen")
        assert tracker.falsetickers() == ()

    def test_encode_restore_round_trip(self):
        tracker = ReputationTracker()
        for _ in range(3):
            tracker.observe_falseticker("S9")
        for _ in range(2):
            tracker.observe_truechimer("S2")
        blob = tracker.encode()
        assert "|" not in blob  # must survive the checkpoint separator
        fresh = ReputationTracker()
        fresh.restore(blob)
        assert fresh.falsetickers() == ("S9",)
        assert fresh.record("S2").observations == 2
        assert fresh.record("S9").score == tracker.record("S9").score

    def test_restore_rejects_malformed_blob(self):
        tracker = ReputationTracker()
        with pytest.raises(ValueError):
            tracker.restore("S1,0.5,3")  # missing the flag field
        with pytest.raises(ValueError):
            tracker.restore("garbage")

    def test_restore_empty_blob_clears_records(self):
        tracker = ReputationTracker()
        tracker.observe_falseticker("S9")
        tracker.restore("")
        assert tracker.falsetickers() == ()
        assert not tracker.records

    def test_config_is_honoured(self):
        config = ReputationConfig(min_observations=1, falseticker_below=0.9)
        tracker = ReputationTracker(config)
        assert tracker.observe_falseticker("S9")
        assert tracker.is_falseticker("S9")


class TestFaultBudgetController:
    def test_untolerated_round_raises_budget(self):
        controller = FaultBudgetController()
        assert controller.value == 1
        controller.note_round(falsetickers=0, tolerated=False, n_sources=5)
        assert controller.value == 2
        assert controller.stats.raises == 1

    def test_jumps_to_observed_falseticker_count(self):
        controller = FaultBudgetController()
        controller.note_round(falsetickers=3, tolerated=True, n_sources=9)
        assert controller.value == 3
        assert controller.stats.raises == 1

    def test_raise_respects_the_cap(self):
        controller = FaultBudgetController()
        controller.note_round(falsetickers=5, tolerated=False, n_sources=5)
        assert controller.value == 2  # (5 - 1) // 2

    def test_decay_after_clean_streak(self):
        controller = FaultBudgetController(
            FaultBudgetConfig(initial=3, minimum=1, decay_after=2)
        )
        for _ in range(4):
            controller.note_round(
                falsetickers=0, tolerated=True, n_sources=5
            )
        assert controller.value == 1
        assert controller.stats.decays == 2
        # Never below the configured minimum.
        for _ in range(4):
            controller.note_round(
                falsetickers=0, tolerated=True, n_sources=5
            )
        assert controller.value == 1

    def test_tolerated_liars_block_decay(self):
        controller = FaultBudgetController(
            FaultBudgetConfig(initial=2, minimum=1, decay_after=2)
        )
        # Rounds that still see (budgeted-for) liars are not clean.
        for _ in range(6):
            controller.note_round(
                falsetickers=1, tolerated=True, n_sources=5
            )
        assert controller.value == 2
        assert controller.stats.decays == 0

    def test_floor_pins_current_budget(self):
        controller = FaultBudgetController()
        assert controller.current(7) == 1
        controller.set_floor(2)  # two classified liars still polled
        assert controller.current(7) == 2
        assert controller.current(3) == 1  # the cap still wins
        controller.set_floor(0)
        assert controller.current(7) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultBudgetController(FaultBudgetConfig(initial=0, minimum=1))
        with pytest.raises(ValueError):
            FaultBudgetController(FaultBudgetConfig(initial=1, minimum=-1))
