"""Remaining-coverage tests: bound series, plots, CLI flags, sweep scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    theorem2_bound_series,
    theorem3_bound_series,
)
from repro.analysis.plots import render_series
from repro.cli import main as cli_main
from repro.core.bounds import ServiceParameters
from repro.core.im import IMPolicy
from repro.experiments.theorem_bounds import _default_deltas

from tests.helpers import make_mesh_service


class TestBoundSeries:
    @pytest.fixture()
    def snapshots(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        return service.sample([50.0, 100.0, 150.0])

    def test_theorem2_series_matches_formula(self, snapshots):
        params = ServiceParameters(xi=0.02, tau=20.0)
        deltas = {"S1": 1e-5, "S2": 1e-5, "S3": 1e-5}
        series = theorem2_bound_series(snapshots, params, deltas, "S1")
        assert len(series) == 3
        for snap, bound in zip(snapshots, series):
            assert bound == pytest.approx(
                snap.min_error + 0.02 + 1e-5 * (20.0 + 0.04)
            )

    def test_theorem3_series_matches_formula(self, snapshots):
        params = ServiceParameters(xi=0.02, tau=20.0)
        series = theorem3_bound_series(snapshots, params, 1e-5, 2e-5)
        for snap, bound in zip(snapshots, series):
            assert bound == pytest.approx(
                2 * snap.min_error + 0.04 + 3e-5 * 20.04
            )

    def test_default_deltas_span_two_decades(self):
        deltas = _default_deltas(5, 1e-6)
        assert deltas[0] == pytest.approx(1e-6)
        assert deltas[-1] == pytest.approx(1e-4)
        assert deltas == sorted(deltas)


class TestRenderSeriesMulti:
    def test_multiple_series_distinct_glyphs(self):
        t = list(range(10))
        art = render_series(
            t,
            {"alpha": [k * 1.0 for k in t], "beta": [k * 2.0 for k in t]},
            width=30,
            height=8,
        )
        assert "o=alpha" in art and "x=beta" in art
        assert "o" in art and "x" in art

    def test_constant_series_does_not_crash(self):
        art = render_series([0, 1, 2], {"flat": [1.0, 1.0, 1.0]})
        assert "flat" in art


class TestCliExtendedFlags:
    def test_simulate_with_discipline(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--servers",
                "3",
                "--discipline",
                "--hours",
                "0.1",
                "--samples",
                "4",
            ]
        )
        assert code == 0

    def test_simulate_with_churn(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--servers",
                "4",
                "--churn",
                "--tau",
                "20",
                "--hours",
                "0.3",
                "--samples",
                "6",
            ]
        )
        assert code == 0

    def test_simulate_report_flag(self, capsys):
        code = cli_main(
            [
                "simulate",
                "--servers",
                "3",
                "--report",
                "--hours",
                "0.05",
                "--samples",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "time service report" in out

    def test_simulate_json_export(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        code = cli_main(
            [
                "simulate",
                "--servers",
                "3",
                "--hours",
                "0.05",
                "--samples",
                "3",
                "--export-json",
                str(path),
            ]
        )
        assert code == 0
        assert path.exists()

    def test_sweep_failure_reporting(self, capsys):
        """An impossible grid cell is reported, not raised."""
        code = cli_main(
            [
                "sweep",
                "--policies",
                "IM",
                "--sizes",
                "1",  # n=1: resolved_skews fine, but mesh of 1 has no edges
                "--taus",
                "30",
            ]
        )
        # Either clean (degenerate but runnable) or reported failure.
        assert code in (0, 1)


class TestSweepScenarioEdges:
    def test_growth_comparison_infinite_ratio_guard(self):
        from repro.sweeps.scenarios import growth_rate_comparison

        metrics = growth_rate_comparison(
            seed=1, n=4, fill=0.9, horizon=3600.0
        )
        assert metrics["ratio"] > 1.0
        assert np.isfinite(metrics["mm_growth"])

    def test_mesh_steady_state_mm_no_resets_homogeneous(self):
        from repro.sweeps.scenarios import mesh_steady_state

        metrics = mesh_steady_state(
            seed=0, policy="MM", n=3, delta=1e-5, tau=30.0, horizon_taus=10.0
        )
        # Homogeneous δ: MM never finds a strictly better neighbour.
        assert metrics["resets_per_round"] == 0.0
