"""Tests for poll-round span tracing: lifecycle, parenting, JSONL export."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.tracing import NULL_TRACER, NullTracer, SpanTracer

pytestmark = pytest.mark.telemetry


def test_span_ids_are_sequential_and_causal():
    tracer = SpanTracer()
    parent = tracer.start(1.0, "poll_round", "S1", round_id=1)
    child = tracer.start(1.0, "poll", "S1", parent=parent, neighbour="S2")
    assert parent.span_id == 1
    assert child.span_id == 2
    assert child.parent_id == parent.span_id
    assert [s.span_id for s in tracer.children(parent)] == [2]


def test_span_lifecycle_and_status():
    tracer = SpanTracer()
    span = tracer.start(5.0, "poll_round", "S1")
    assert span.open
    assert tracer.open_spans() == [span]
    tracer.end(7.5, span, status="reset", source="S2")
    assert not span.open
    assert span.duration == pytest.approx(2.5)
    assert span.status == "reset"
    assert span.attrs["source"] == "S2"
    assert tracer.open_spans() == []


def test_end_is_idempotent_and_none_tolerant():
    tracer = SpanTracer()
    span = tracer.start(1.0, "poll", "S1")
    tracer.end(2.0, span, status="adopted")
    tracer.end(9.0, span, status="rejected")  # second end: no-op
    assert span.end == 2.0
    assert span.status == "adopted"
    tracer.end(3.0, None)  # closing a never-opened leg: no-op
    assert len(tracer) == 1


def test_event_records_zero_duration_span():
    tracer = SpanTracer()
    span = tracer.event(4.0, "reset", "S1", status="sync", origin="S2")
    assert span is not None
    assert span.start == span.end == 4.0
    assert tracer.count("reset") == 1


def test_filter_by_name_and_source():
    tracer = SpanTracer()
    tracer.event(1.0, "reset", "S1")
    tracer.event(2.0, "reset", "S2")
    tracer.event(3.0, "checkpoint", "S1")
    assert len(tracer.filter(name="reset")) == 2
    assert len(tracer.filter(source="S1")) == 2
    assert len(tracer.filter(name="reset", source="S2")) == 1


def test_jsonl_export_is_valid_and_deterministic():
    def build() -> str:
        tracer = SpanTracer()
        root = tracer.start(1.0, "poll_round", "S1", round_id=1)
        tracer.start(1.0, "poll", "S1", parent=root, neighbour="S2")
        tracer.end(2.0, root, status="ok")
        return tracer.to_jsonl()

    a, b = build(), build()
    assert a == b
    rows = [json.loads(line) for line in a.strip().splitlines()]
    assert [row["span_id"] for row in rows] == [1, 2]
    assert rows[1]["parent_id"] == 1
    assert rows[1]["attrs"]["neighbour"] == "S2"


def test_write_jsonl_round_trips(tmp_path):
    tracer = SpanTracer()
    tracer.event(1.0, "reset", "S1")
    path = tmp_path / "spans.jsonl"
    tracer.write_jsonl(path)
    assert path.read_text() == tracer.to_jsonl()


def test_clear_drops_spans_but_keeps_id_sequence():
    # Ids keep advancing across clear() so parent references held by
    # still-open spans stay unique within a run.
    tracer = SpanTracer()
    tracer.event(1.0, "reset", "S1")
    tracer.clear()
    assert len(tracer) == 0
    span = tracer.start(1.0, "poll_round", "S1")
    assert span.span_id == 2


def test_null_tracer_is_inert():
    null = NullTracer()
    assert not null.enabled
    assert null.start(1.0, "poll_round", "S1") is None
    null.end(2.0, None, status="ok")
    assert null.event(1.0, "reset", "S1") is None
    assert len(null) == 0
    assert null.to_jsonl() == ""
    assert NULL_TRACER.start(0.0, "x", "y") is None


def test_disabled_tracer_records_nothing():
    tracer = SpanTracer(enabled=False)
    assert tracer.start(1.0, "poll_round", "S1") is None
    assert len(tracer) == 0
