"""Tests for the exporters: Prometheus text, summaries, JSONL events."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.exporters import (
    METRICS_FILENAME,
    SPANS_FILENAME,
    SUMMARY_FILENAME,
    JsonlEventExporter,
    summary_snapshot,
    to_prometheus_text,
    write_telemetry,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import SpanTracer

pytestmark = pytest.mark.telemetry


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    rounds = reg.counter(
        "repro_sync_rounds_total", "Rounds started", labelnames=("server",)
    )
    rounds.labels(server="S1").inc(3)
    rounds.labels(server="S2").inc(1)
    reg.gauge("repro_server_error_seconds", "Live E_i", labelnames=("server",)).labels(
        server="S1"
    ).set(0.25)
    rtt = reg.histogram(
        "repro_sync_rtt_local_seconds", "Local RTT", buckets=(0.01, 0.1)
    )
    rtt.observe(0.005)
    rtt.observe(0.05)
    rtt.observe(5.0)
    return reg


def test_prometheus_text_families_and_samples():
    text = to_prometheus_text(_populated_registry())
    assert "# HELP repro_sync_rounds_total Rounds started" in text
    assert "# TYPE repro_sync_rounds_total counter" in text
    assert 'repro_sync_rounds_total{server="S1"} 3' in text
    assert 'repro_sync_rounds_total{server="S2"} 1' in text
    assert "# TYPE repro_server_error_seconds gauge" in text
    assert 'repro_server_error_seconds{server="S1"} 0.25' in text


def test_prometheus_histogram_exposition_is_cumulative():
    text = to_prometheus_text(_populated_registry())
    assert 'repro_sync_rtt_local_seconds_bucket{le="0.01"} 1' in text
    assert 'repro_sync_rtt_local_seconds_bucket{le="0.1"} 2' in text
    assert 'repro_sync_rtt_local_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_sync_rtt_local_seconds_count 3" in text
    assert "repro_sync_rtt_local_seconds_sum 5.055" in text


def test_prometheus_text_skips_empty_families():
    reg = MetricsRegistry()
    reg.counter("repro_untouched_total", "never incremented", labelnames=("a",))
    assert "repro_untouched_total" not in to_prometheus_text(reg)


def test_prometheus_text_is_deterministic():
    assert to_prometheus_text(_populated_registry()) == to_prometheus_text(
        _populated_registry()
    )


def test_summary_snapshot_shape():
    reg = _populated_registry()
    tracer = SpanTracer()
    root = tracer.start(1.0, "poll_round", "S1")
    tracer.end(2.0, root, status="ok")
    tracer.start(3.0, "poll_round", "S2")  # left open
    summary = summary_snapshot(reg, tracer, time=3.0)
    assert summary["time"] == 3.0
    metrics = summary["metrics"]
    rounds = metrics["repro_sync_rounds_total"]
    assert {row["labels"]["server"]: row["value"] for row in rounds} == {
        "S1": 3.0,
        "S2": 1.0,
    }
    (histogram,) = metrics["repro_sync_rtt_local_seconds"]
    assert histogram["count"] == 3
    assert histogram["sum"] == pytest.approx(5.055)
    assert "p50" in histogram and "p99" in histogram
    spans = summary["spans"]
    assert spans["total"] == 2
    assert spans["open"] == 1
    assert spans["by_name"] == {"poll_round": 2}


def test_jsonl_event_exporter_frames():
    reg = MetricsRegistry()
    reg.counter("repro_x_total", "x").inc()
    events = JsonlEventExporter()
    events.emit(1.0, "sample", value=1.0)
    events.frame(2.0, reg)
    text = events.to_jsonl()
    rows = [json.loads(line) for line in text.strip().splitlines()]
    assert rows[0]["time"] == 1.0
    assert rows[0]["kind"] == "sample"
    assert rows[1]["time"] == 2.0
    assert rows[1]["kind"] == "summary"
    assert rows[1]["summary"]["metrics"]["repro_x_total"][0]["value"] == 1.0
    assert events.rows(kind="summary") and len(events.rows()) == 2
    # Deterministic: same content twice.
    assert events.to_jsonl() == text


def test_write_telemetry_creates_artifacts(tmp_path):
    reg = _populated_registry()
    tracer = SpanTracer()
    tracer.event(1.0, "reset", "S1")
    out = tmp_path / "telemetry"
    paths = write_telemetry(
        out, reg, tracer, summary_extra={"experiment": "unit"}, time=9.0
    )
    assert sorted(paths) == ["metrics", "spans", "summary"]
    assert (out / METRICS_FILENAME).read_text() == to_prometheus_text(reg)
    assert (out / SPANS_FILENAME).read_text() == tracer.to_jsonl()
    summary = json.loads((out / SUMMARY_FILENAME).read_text())
    assert summary["experiment"] == "unit"
    assert summary["time"] == 9.0


def test_write_telemetry_without_tracer_skips_spans(tmp_path):
    out = tmp_path / "telemetry"
    paths = write_telemetry(out, _populated_registry(), None)
    assert sorted(paths) == ["metrics", "summary"]
    assert not (out / SPANS_FILENAME).exists()
