"""Holdover mode and slew/step safety rails.

Covers the :class:`HoldoverController` pure state machine, the
:class:`SlewingClock` rails (units plus Hypothesis properties over the
disciplined-clock composition), discipline persistence across warm
restarts, the hardened server's empty-neighbour round termination, the
:class:`HoldoverServer` reset rails and degraded refusal, the holdover
telemetry gauges and dashboard section, and a blackout-gauntlet smoke
cell (including replay determinism).
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.disciplined import DisciplinedClock
from repro.clocks.drift import DriftingClock
from repro.clocks.slewing import SlewingClock
from repro.core.mm import MMPolicy
from repro.core.sync import ResetDecision
from repro.experiments.blackout_gauntlet import CELLS, evaluate, run_gauntlet
from repro.holdover import (
    HoldoverConfig,
    HoldoverController,
    HoldoverServer,
    HoldoverState,
)
from repro.network.delay import ConstantDelay, UniformDelay
from repro.network.topology import full_mesh, star
from repro.network.transport import Network
from repro.recovery.store import Checkpoint, StableStore
from repro.service.builder import ServerSpec, build_service
from repro.service.hardening import (
    HardenedTimeServer,
    HardeningConfig,
    RetryPolicy,
)
from repro.service.messages import RequestKind, TimeRequest
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngRegistry
from repro.telemetry import ServiceTelemetry
from repro.telemetry.dashboard import render_dashboard

pytestmark = pytest.mark.holdover


CFG = HoldoverConfig(no_source_window=100.0, trust_horizon=500.0, reintegrate_rounds=2)


def holdover_star(
    n_leaves: int = 2,
    *,
    tau: float = 30.0,
    seed: int = 0,
    cfg: HoldoverConfig | None = None,
    telemetry: ServiceTelemetry | None = None,
):
    """A reference hub with holdover leaves (the gauntlet's shape, small)."""
    graph = star(n_leaves + 1)
    names = sorted(graph.nodes)
    hub, leaves = names[0], names[1:]
    specs = [ServerSpec(hub, reference=True, initial_error=0.005)]
    skews = (6e-5, -8e-5, 5e-5, -4e-5)
    for name, skew in zip(leaves, skews):
        specs.append(
            ServerSpec(
                name, delta=1e-4, skew=skew, initial_error=0.05, holdover=True
            )
        )
    return build_service(
        graph,
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        telemetry=telemetry,
        holdover=cfg,
    )


# --------------------------------------------------------------------------
# Controller: the pure state machine
# --------------------------------------------------------------------------


class TestHoldoverConfig:
    def test_defaults_valid(self):
        HoldoverConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"no_source_window": 0.0},
            {"trust_horizon": -1.0},
            {"reintegrate_rounds": 0},
            {"drift_floor": -1e-9},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HoldoverConfig(**kwargs)


class TestHoldoverController:
    def test_starts_synced_with_zero_age(self):
        ctrl = HoldoverController(CFG)
        assert ctrl.state is HoldoverState.SYNCED
        assert ctrl.holdover_age(50.0) == 0.0
        assert ctrl.expected_error(50.0) == 0.0

    def test_sourced_rounds_keep_synced(self):
        ctrl = HoldoverController(CFG)
        ctrl.note_round(30.0, sources=2, consistent=True)
        ctrl.note_round(60.0, sources=1, consistent=True)
        # A dry round inside the window does not trip holdover.
        ctrl.note_round(120.0, sources=0, consistent=False)
        assert ctrl.state is HoldoverState.SYNCED
        assert ctrl.since_last_source(120.0) == pytest.approx(60.0)

    def test_no_source_window_enters_holdover(self):
        ctrl = HoldoverController(CFG)
        ctrl.note_round(10.0, sources=1, consistent=True)
        ctrl.note_round(115.0, sources=0, consistent=False, error=0.02, drift=3e-5)
        assert ctrl.state is HoldoverState.HOLDOVER
        assert ctrl.transitions[-1][3] == "no_source_window"
        assert ctrl.effective_drift == pytest.approx(3e-5)
        # error + drift * age projection.
        assert ctrl.expected_error(215.0) == pytest.approx(0.02 + 3e-5 * 100.0)

    def test_entry_drift_floored(self):
        ctrl = HoldoverController(CFG)
        ctrl.note_round(200.0, sources=0, consistent=False, error=0.01, drift=0.0)
        assert ctrl.state is HoldoverState.HOLDOVER
        assert ctrl.effective_drift == CFG.drift_floor

    def test_watchdog_tick_enters_holdover_and_then_degrades(self):
        ctrl = HoldoverController(CFG)
        ctrl.tick(99.0)
        assert ctrl.state is HoldoverState.SYNCED
        ctrl.tick(101.0, error=0.05, drift=1e-5)
        assert ctrl.state is HoldoverState.HOLDOVER
        assert ctrl.transitions[-1][3] == "watchdog"
        ctrl.tick(101.0 + CFG.trust_horizon)  # not yet strictly past
        assert ctrl.state is HoldoverState.HOLDOVER
        ctrl.tick(102.0 + CFG.trust_horizon)
        assert ctrl.state is HoldoverState.DEGRADED
        assert ctrl.transitions[-1][3] == "trust_horizon"

    def test_reintegration_requires_consecutive_consistent_rounds(self):
        ctrl = HoldoverController(CFG)
        ctrl.tick(150.0, error=0.05, drift=1e-5)
        assert ctrl.state is HoldoverState.HOLDOVER
        ctrl.note_round(200.0, sources=2, consistent=True)
        assert ctrl.state is HoldoverState.REINTEGRATING
        assert ctrl.reintegration_streak == 1
        # An inconsistent round resets the streak without leaving the state.
        ctrl.note_round(230.0, sources=2, consistent=False)
        assert ctrl.state is HoldoverState.REINTEGRATING
        assert ctrl.reintegration_streak == 0
        ctrl.note_round(260.0, sources=2, consistent=True)
        ctrl.note_round(290.0, sources=2, consistent=True)
        assert ctrl.state is HoldoverState.SYNCED
        assert ctrl.transitions[-1][3] == "revalidated"
        assert ctrl.holdover_age(300.0) == 0.0
        assert ctrl.expected_error(300.0) == 0.0

    def test_flicker_keeps_original_entry_age(self):
        ctrl = HoldoverController(CFG)
        ctrl.tick(150.0, error=0.05, drift=2e-5)
        ctrl.note_round(300.0, sources=1, consistent=True)
        assert ctrl.state is HoldoverState.REINTEGRATING
        # Sources vanish again mid-revalidation: straight back to holdover,
        # with the age still measured from the *first* entry.
        ctrl.note_round(340.0, sources=0, consistent=False, error=9.0, drift=9.0)
        assert ctrl.state is HoldoverState.HOLDOVER
        assert ctrl.transitions[-1][3] == "sources_lost"
        assert ctrl.holdover_age(350.0) == pytest.approx(200.0)
        assert ctrl.effective_drift == pytest.approx(2e-5)  # not re-captured

    def test_degraded_reintegrates_too(self):
        ctrl = HoldoverController(CFG)
        ctrl.tick(150.0, error=0.05, drift=1e-5)
        ctrl.tick(800.0)
        assert ctrl.state is HoldoverState.DEGRADED
        ctrl.note_round(900.0, sources=1, consistent=True)
        assert ctrl.state is HoldoverState.REINTEGRATING
        ctrl.note_round(930.0, sources=1, consistent=True)
        assert ctrl.state is HoldoverState.SYNCED

    def test_reanchor_rebases_the_window(self):
        ctrl = HoldoverController(CFG)
        ctrl.reanchor(500.0)
        ctrl.note_round(550.0, sources=0, consistent=False)
        assert ctrl.state is HoldoverState.SYNCED  # 50 s < window
        ctrl.note_round(601.0, sources=0, consistent=False)
        assert ctrl.state is HoldoverState.HOLDOVER


# --------------------------------------------------------------------------
# SlewingClock: the rails, unit by unit
# --------------------------------------------------------------------------


def perfect_slewing(slew_rate=0.01, panic=0.5, sanity=1000.0):
    return SlewingClock(
        DriftingClock(0.0),
        slew_rate=slew_rate,
        panic_threshold=panic,
        sanity_bound=sanity,
    )


class TestSlewingClock:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slew_rate": 0.0},
            {"slew_rate": 1.0},
            {"panic_threshold": 0.0},
            {"sanity_bound": 0.4, "panic_threshold": 0.5},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SlewingClock(DriftingClock(0.0), **kwargs)

    def test_backward_correction_drains_at_slew_rate(self):
        clock = perfect_slewing(slew_rate=0.01)
        assert clock.read(0.0) == 0.0
        clock.set(0.0, -0.4)
        assert clock.slew_remaining == pytest.approx(-0.4)
        assert clock.slewing
        # After 10 s of inner progress, 0.01 * 10 = 0.1 s has drained.
        assert clock.read(10.0) == pytest.approx(10.0 - 0.1)
        # Full drain needs 0.4 / 0.01 = 40 s of inner progress.
        assert clock.read(41.0) == pytest.approx(41.0 - 0.4)
        assert not clock.slewing
        assert clock.slewed_out == pytest.approx(-0.4)
        assert clock.steps == 0

    def test_backward_slew_never_moves_the_reading_backward(self):
        clock = perfect_slewing(slew_rate=0.01)
        clock.read(0.0)
        clock.set(0.0, -5.0)  # huge, but backward: always slewed
        last = clock.read(0.001)
        for k in range(1, 2000):
            value = clock.read(k * 0.37)
            assert value >= last
            last = value

    def test_small_forward_correction_is_slewed(self):
        clock = perfect_slewing(slew_rate=0.01, panic=0.5)
        clock.read(0.0)
        clock.set(0.0, +0.3)
        assert clock.steps == 0
        assert clock.slew_remaining == pytest.approx(0.3)
        assert clock.read(10.0) == pytest.approx(10.1)

    def test_forward_panic_step_is_instant(self):
        clock = perfect_slewing(panic=0.5)
        clock.read(0.0)
        clock.set(0.0, +0.8)
        assert clock.steps == 1
        assert not clock.slewing
        assert clock.read(0.0) == pytest.approx(0.8)
        # Stepped corrections never count as slewed-out.
        assert clock.slewed_out == 0.0

    def test_insane_reset_refused_and_counted(self):
        clock = perfect_slewing(sanity=1000.0)
        clock.read(5.0)
        clock.set(5.0, 5000.0)
        assert clock.insane_resets == 1
        assert clock.steps == 0
        assert not clock.slewing
        assert clock.read(5.0) == pytest.approx(5.0)  # reading untouched
        clock.set(5.0, -2000.0)
        assert clock.insane_resets == 2

    def test_new_correction_replaces_pending(self):
        clock = perfect_slewing(slew_rate=0.01)
        clock.read(0.0)
        clock.set(0.0, -0.4)
        clock.read(10.0)  # 0.1 drained, -0.3 still pending
        # Re-target: the clock should read 9.9 - 0.1 *now*; the old
        # remainder is superseded, not added.
        clock.set(10.0, clock.read(10.0) - 0.1)
        assert clock.slew_remaining == pytest.approx(-0.1)

    def test_panic_step_discards_pending_remainder(self):
        clock = perfect_slewing(slew_rate=0.01, panic=0.5)
        clock.read(0.0)
        clock.set(0.0, -0.4)
        clock.read(10.0)  # -0.3 still pending
        target = clock.read(10.0) + 2.0
        clock.set(10.0, target)
        assert clock.steps == 1
        assert clock.slew_remaining == 0.0
        assert clock.read(10.0) == pytest.approx(target)
        assert clock.slewed_out == pytest.approx(-0.1)  # only what drained

    def test_no_inner_progress_holds_the_reading(self):
        clock = perfect_slewing()
        clock.read(3.0)
        clock.set(3.0, 2.0)
        assert clock.read(3.0) == clock.read(3.0)

    def test_rate_discipline_delegates_to_inner(self):
        inner = DisciplinedClock(DriftingClock(1e-4))
        clock = SlewingClock(inner)
        clock.read(0.0)
        applied = clock.adjust_rate(10.0, -1e-4)
        assert applied == pytest.approx(-1e-4)
        assert clock.correction == inner.correction == pytest.approx(-1e-4)
        assert clock.effective_skew(1e-4) == inner.effective_skew(1e-4)


# --------------------------------------------------------------------------
# Satellite: Hypothesis properties over the disciplined composition
# --------------------------------------------------------------------------


@st.composite
def discipline_histories(draw):
    """A raw skew plus an arbitrary interleaving of reads/resets/retunes."""
    skew = draw(st.floats(min_value=-1e-3, max_value=1e-3))
    ops = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=20.0),  # dt
                st.sampled_from(["read", "set", "rate"]),
                st.floats(min_value=-2.0, max_value=2.0),  # magnitude
            ),
            min_size=1,
            max_size=40,
        )
    )
    return skew, ops


class TestSlewingProperties:
    @given(discipline_histories())
    @settings(max_examples=200, deadline=None)
    def test_reads_monotone_under_any_interleaving(self, case):
        """The served reading never runs backward, whatever the servo and
        the sync rules throw at the rails (slewed backsets, forward
        steps, rate retunes) — the gauntlet's monotonicity probe, as a
        law."""
        skew, ops = case
        clock = SlewingClock(
            DisciplinedClock(DriftingClock(skew)),
            slew_rate=5e-3,
            panic_threshold=0.5,
            sanity_bound=1000.0,
        )
        t = 0.0
        last = clock.read(t)
        for dt, action, magnitude in ops:
            t += dt
            if action == "set":
                clock.set(t, clock.read(t) + magnitude)
            elif action == "rate":
                # Within DisciplinedClock's ±max_correction clamp.
                clock.adjust_rate(t, magnitude * 0.02)
            value = clock.read(t)
            assert value >= last - 1e-12
            last = value

    @given(
        delta=st.one_of(
            st.floats(min_value=0.01, max_value=0.45),
            st.floats(min_value=-5.0, max_value=-0.01),
        ),
        rate=st.floats(min_value=1e-3, max_value=0.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_slew_completes_at_delta_over_rate(self, delta, rate):
        """A slewed correction of Δ drains in exactly |Δ|/slew_rate
        seconds of inner progress: still pending just before, fully
        converged just after."""
        clock = SlewingClock(
            DriftingClock(0.0), slew_rate=rate, panic_threshold=0.5
        )
        t0 = 10.0
        clock.read(t0)
        clock.set(t0, clock.read(t0) + delta)
        span = abs(delta) / rate
        assert clock.slewing
        clock.read(t0 + 0.5 * span)
        assert clock.slewing  # only half the correction has drained
        clock.read(t0 + span + 1.0)
        assert not clock.slewing
        assert clock.slewed_out == pytest.approx(delta)
        # Converged: the reading tracks inner + delta from here on.
        assert clock.read(t0 + span + 2.0) == pytest.approx(
            t0 + span + 2.0 + delta
        )


# --------------------------------------------------------------------------
# Satellite: discipline state rides the checkpoint
# --------------------------------------------------------------------------


class TestDisciplinePersistence:
    def test_encode_decode_roundtrip_is_exact(self):
        service = holdover_star(seed=3)
        service.run_until(400.0)
        server = service.servers["S2"]
        assert server._estimators, "servo never observed a neighbour"
        blob = server._encode_discipline()
        pre_correction = server.clock.correction
        pre_obs = {
            name: [
                (o.local_time, o.offset, o.reading_error)
                for o in est._obs
            ]
            for name, est in server._estimators.items()
        }
        pre_delta = dict(server._remote_delta)

        # A crash loses RAM and the kernel frequency word.
        server.clock.adjust_rate(server.now, 0.0)
        server._estimators.clear()
        server._remote_delta.clear()

        server._decode_discipline(blob)
        assert server.clock.correction == pytest.approx(pre_correction, abs=0.0)
        assert set(server._estimators) == set(pre_obs)
        for name, observations in pre_obs.items():
            restored = [
                (o.local_time, o.offset, o.reading_error)
                for o in server._estimators[name]._obs
            ]
            assert restored == observations
        assert server._remote_delta == pre_delta

    def test_warm_restart_restores_the_servo(self):
        service = holdover_star(seed=3)
        # The servo needs several discipline periods (4τ each) to clear
        # its own deadband; by 900 s it has stepped at least once.
        service.run_until(900.0)
        server = service.servers["S2"]
        pre = server.clock.correction
        assert pre != 0.0, "servo never converged; test setup is wrong"
        server.crash()
        service.run_until(960.0)
        report = server.restart(cold_error=5.0)
        assert report is not None and report.warm
        # The checkpointed correction is at most one checkpoint period
        # stale; a converged servo's corrections are all the same sign
        # and magnitude order.
        post = server.clock.correction
        assert post != 0.0
        assert post == pytest.approx(pre, rel=0.5, abs=1e-6)
        assert server._estimators
        # The revived server keeps disciplining rather than relearning.
        service.run_until(1100.0)
        assert server.holdover_state is HoldoverState.SYNCED

    def test_garbled_blob_never_blocks_the_warm_restart(self):
        service = holdover_star(seed=3)
        service.run_until(400.0)
        server = service.servers["S2"]
        checkpoint = service.stable_store.read("S2")
        assert checkpoint is not None and checkpoint.discipline
        bad = dataclasses.replace(checkpoint, discipline="0.001~half:a:record")
        server._restore_checkpoint_extras(bad)
        # Fallback: servo state cleared, nothing raised.
        assert server.clock.correction == 0.0
        assert not server._estimators
        assert not server._remote_delta

    def test_legacy_checkpoints_decode_without_discipline(self):
        checkpoint = Checkpoint("S1", 1.0, 0.1, 0.0, 2, 7, "rep", 3, "blob")
        legacy = "|".join(checkpoint.encode().split("|")[:8])
        decoded = Checkpoint.decode(legacy)
        assert decoded.discipline == ""
        assert decoded.fault_budget == 3
        assert Checkpoint.decode(checkpoint.encode()) == checkpoint


# --------------------------------------------------------------------------
# Satellite: empty-neighbour rounds terminate
# --------------------------------------------------------------------------


def lone_hardened(config=None, **kwargs):
    engine = SimulationEngine()
    network = Network(
        engine, full_mesh(3), RngRegistry(seed=0), lan_delay=ConstantDelay(0.01)
    )
    server = HardenedTimeServer(
        engine,
        "S1",
        DriftingClock(0.0),
        1e-4,
        network,
        policy=MMPolicy(),
        # Rounds are driven by hand; park the scheduled poll far away.
        tau=1000.0,
        first_poll_at=900.0,
        initial_error=0.1,
        hardening=config,
        **kwargs,
    )
    network.register(server)
    server.start()
    return engine, network, server


class TestEmptyNeighbourRounds:
    def test_revive_needs_a_pollable_unsent_destination(self):
        engine, network, server = lone_hardened(HardeningConfig())
        round_ = SimpleNamespace(unsent={"S2", "S3"}, outstanding=set())
        assert server._may_revive(round_)
        server._health("S2").quarantined_until = engine.now + 1e9
        assert server._pollable_unsent(round_) == ["S3"]
        server._health("S3").quarantined_until = engine.now + 1e9
        # Every unsent destination benched: no retry can produce a source.
        assert not server._may_revive(round_)
        assert not server._may_revive(
            SimpleNamespace(unsent=set(), outstanding=set())
        )

    def test_all_quarantined_round_closes_at_start(self):
        # Neighbours are unregistered, so every send is refused at send
        # time; with both also quarantined no retry could reach them.
        engine, network, server = lone_hardened(
            HardeningConfig(), round_timeout=500.0
        )
        for name in ("S2", "S3"):
            server._health(name).quarantined_until = engine.now + 1e9
        server._start_round()
        assert server._round.closed, "round held open with nothing to wait for"

    def test_refused_sends_exhaust_retries_without_the_timeout(self):
        engine, network, server = lone_hardened(
            HardeningConfig(retry=RetryPolicy(max_attempts=3, jitter=0.0)),
            round_timeout=500.0,
        )
        server._start_round()
        round_ = server._round
        assert not round_.closed  # pollable unsent peers keep it revivable
        # The retry schedule (0.15 s + 0.3 s, no jitter) exhausts in
        # under a second; the round must close then, not at 500 s.
        engine.run(until=engine.now + 30.0)
        assert round_.closed
        assert server.stats.polls_unsent >= 2


# --------------------------------------------------------------------------
# HoldoverServer: reset rails and degraded refusal
# --------------------------------------------------------------------------


class TestHoldoverServerRails:
    def test_requires_slewing_rails_on_the_clock(self):
        engine = SimulationEngine()
        network = Network(
            engine,
            full_mesh(2),
            RngRegistry(seed=0),
            lan_delay=ConstantDelay(0.01),
        )
        with pytest.raises(TypeError, match="slewing rails"):
            HoldoverServer(
                engine,
                "S1",
                DisciplinedClock(DriftingClock(0.0)),
                1e-4,
                network,
                policy=MMPolicy(),
                tau=30.0,
                store=StableStore(),
            )

    def test_insane_reset_refused_before_any_bookkeeping(self):
        service = holdover_star()
        service.run_until(200.0)
        server = service.servers["S2"]
        before_eps = server._epsilon
        before_resets = server.stats.resets
        before_value = server.clock_value()
        decision = ResetDecision(
            clock_value=before_value + 5000.0, inherited_error=0.01, source="X"
        )
        server._apply_reset(decision, "sync")
        assert server.holdover_stats.insane_resets == 1
        assert server.clock.insane_resets == 1
        assert server.stats.resets == before_resets  # bookkeeping skipped
        assert server._epsilon == before_eps
        assert server.clock_value() == pytest.approx(before_value, abs=1e-3)

    def test_resets_suppressed_while_not_synced(self):
        service = holdover_star()
        service.run_until(200.0)
        server = service.servers["S2"]
        server.holdover.enter_holdover(
            server.clock_value(), error=0.05, drift=1e-5, reason="test"
        )
        before = server.stats.resets
        decision = ResetDecision(
            clock_value=server.clock_value() + 0.01,
            inherited_error=0.01,
            source="S1",
        )
        server._apply_reset(decision, "sync")
        assert server.holdover_stats.suppressed_resets == 1
        assert server.stats.resets == before

    def test_slewed_adoption_widens_epsilon_by_the_pending_drain(self):
        service = holdover_star()
        service.run_until(200.0)
        server = service.servers["S2"]
        assert server.holdover_state is HoldoverState.SYNCED
        decision = ResetDecision(
            clock_value=server.clock_value() - 0.02,
            inherited_error=0.01,
            source="S1",
        )
        server._apply_reset(decision, "sync")
        pending = server.clock.slew_remaining
        assert pending != 0.0
        assert server._epsilon == pytest.approx(0.01 + abs(pending))

    def test_degraded_refuses_clients_but_answers_polls(self):
        service = holdover_star()
        service.run_until(200.0)
        server = service.servers["S2"]
        now_local = server.clock_value()
        server.holdover.enter_holdover(
            now_local, error=0.05, drift=1e-5, reason="test"
        )
        server.holdover.tick(now_local + server.holdover_config.trust_horizon + 1)
        assert server.holdover_state is HoldoverState.DEGRADED
        answered = server.stats.requests_answered
        server._answer(
            TimeRequest(
                request_id=1, origin="C9", destination="S2", kind=RequestKind.CLIENT
            )
        )
        assert server.holdover_stats.degraded_refusals == 1
        assert server.stats.requests_answered == answered
        server._answer(
            TimeRequest(
                request_id=2, origin="S1", destination="S2", kind=RequestKind.POLL
            )
        )
        assert server.holdover_stats.degraded_refusals == 1
        assert server.stats.requests_answered == answered + 1

    def test_discipline_frozen_while_not_synced(self):
        service = holdover_star()
        service.run_until(400.0)
        server = service.servers["S2"]
        server.holdover.enter_holdover(
            server.clock_value(), error=0.05, drift=1e-5, reason="test"
        )
        frozen = server.clock.correction
        adjustments = server.clock.inner.adjustments
        server._discipline_step()
        assert server.clock.correction == frozen
        assert server.clock.inner.adjustments == adjustments


# --------------------------------------------------------------------------
# Telemetry: gauges and the dashboard section
# --------------------------------------------------------------------------


class TestHoldoverTelemetry:
    def test_gauges_and_dashboard_row(self):
        telemetry = ServiceTelemetry(sample_period=30.0)
        service = holdover_star(telemetry=telemetry)
        service.run_until(150.0)
        telemetry.sampler.sample_now()
        registry = telemetry.registry
        assert registry.value("repro_holdover_state", server="S2") == float(
            HoldoverState.SYNCED
        )
        assert registry.value("repro_holdover_age_seconds", server="S2") == 0.0
        assert (
            registry.value("repro_slew_remaining_seconds", server="S2") == 0.0
        )
        frame = render_dashboard(service, telemetry)
        assert "holdover" in frame
        assert "SYNCED" in frame
        assert "slew left" in frame


# --------------------------------------------------------------------------
# The gauntlet itself (smoke cells; the full matrix is the nightly soak)
# --------------------------------------------------------------------------


class TestBlackoutGauntlet:
    def test_total_blackout_cell_passes_acceptance(self):
        cell = CELLS[2]  # total partition: everyone loses every source
        mm = run_gauntlet(cell, "mm", seed=0)
        hold = run_gauntlet(cell, "holdover", seed=0)
        assert evaluate([mm, hold]) == []
        assert hold.peak_error_blackout < mm.peak_error_blackout
        assert hold.monotonicity_violations == 0
        assert hold.violations == 0 and mm.violations == 0
        assert hold.holdover_entries >= 4  # every leaf entered holdover
        assert hold.degraded >= 1  # 600 s blackout > 450 s trust horizon
        assert hold.suppressed_resets >= 1  # staged reintegration bit
        assert hold.insane_resets == 0
        assert hold.time_to_synced > 0  # every leaf revalidated

    def test_replay_is_deterministic(self):
        first = run_gauntlet(CELLS[0], "holdover", seed=1)
        second = run_gauntlet(CELLS[0], "holdover", seed=1)
        assert first.trace_digest == second.trace_digest
        assert first == second

    def test_unknown_arm_rejected(self):
        with pytest.raises(ValueError, match="unknown arm"):
            run_gauntlet(CELLS[0], "ntp", seed=0)
