"""Tests for the error-budget decomposition and the topology study."""

from __future__ import annotations

import pytest

from repro.analysis.error_budget import (
    budget_series,
    render_budget_table,
    reset_budget_from_trace,
    server_budget,
    service_budgets,
)
from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.experiments import topology_study

from tests.helpers import make_mesh_service


class TestErrorBudget:
    def test_components_sum_to_total(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(300.0)
        for budget in service_budgets(service).values():
            assert budget.total == pytest.approx(
                budget.inherited + budget.age_drift
            )

    def test_fresh_reset_is_all_inherited(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0, trace_enabled=True)
        service.run_until(300.0)
        # Find a reset instant and sample right at it.
        resets = service.trace.filter(kind="reset")
        assert resets
        last = resets[-1]
        server = service.servers[last.source]
        budget = server_budget(server)
        # Age since the reset is small (we are shortly after it at most τ).
        assert budget.age <= 25.0

    def test_unsynced_server_is_all_drift(self):
        service = make_mesh_service(2, MMPolicy(), tau=30.0, delta=1e-4)
        # Homogeneous δ: MM never resets; ε stays 0.
        service.run_until(600.0)
        budget = server_budget(service.servers["S1"])
        assert budget.inherited == 0.0
        assert budget.age_drift == pytest.approx(budget.total)
        assert budget.drift_fraction == pytest.approx(1.0)

    def test_budget_series_tracks_sawtooth(self):
        service = make_mesh_service(3, IMPolicy(), tau=30.0)
        series = budget_series(
            service, [60.0, 90.0, 120.0, 150.0], "S1"
        )
        assert len(series) == 4
        # Between resets the age-drift term grows with clock age.
        assert all(b.age >= 0.0 for b in series)

    def test_reset_provenance_from_trace(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0, trace_enabled=True)
        service.run_until(200.0)
        rows = reset_budget_from_trace(service)
        assert rows
        for row in rows:
            assert row.kind in ("sync", "recovery")
            assert row.inherited >= 0.0
            assert row.server in ("S1", "S2", "S3")

    def test_render_budget_table(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(100.0)
        table = render_budget_table(service_budgets(service))
        assert "drift share" in table and "S1" in table


class TestTopologyStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            r.shape: r
            for r in topology_study.run_all(
                shapes=("mesh", "line", "ring"), n=7, horizon=2400.0
            )
        }

    def test_all_topologies_stay_correct(self, results):
        for shape, result in results.items():
            assert result.all_correct, shape

    def test_line_has_positive_gradient(self, results):
        line_result = results["line"]
        assert len(line_result.by_hops) == 6
        assert line_result.gradient > 0
        errors = [row.mean_error for row in line_result.by_hops]
        assert errors[-1] > errors[0]

    def test_mesh_is_flat(self, results):
        mesh_result = results["mesh"]
        assert len(mesh_result.by_hops) == 1  # everyone one hop away
        assert mesh_result.gradient == 0.0

    def test_mesh_beats_line_far_from_reference(self, results):
        mesh_error = results["mesh"].by_hops[0].mean_error
        line_far = results["line"].by_hops[-1].mean_error
        assert line_far > mesh_error

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            topology_study.run_topology("torus")
