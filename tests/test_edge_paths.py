"""Edge-path tests: timeouts, fallbacks, overlapping rounds, lost
recoveries — the corners a long-lived deployment actually visits."""

from __future__ import annotations

import pytest

from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.core.recovery import ThirdServerRecovery
from repro.network.delay import ConstantDelay, UniformDelay
from repro.network.topology import full_mesh, star
from repro.service.builder import ServerSpec, build_service
from repro.service.client import QueryStrategy

from tests.helpers import make_mesh_service


class TestOverlappingRounds:
    def test_slow_network_rounds_still_progress(self):
        """Round trips near τ: each new round force-closes its predecessor
        and the service still synchronizes."""
        specs = [
            ServerSpec("S1", delta=1e-4, skew=8e-5),
            ServerSpec("S2", delta=1e-4, skew=-8e-5),
            ServerSpec("S3", reference=True, initial_error=0.001),
        ]
        service = build_service(
            full_mesh(3),
            specs,
            policy=IMPolicy(),
            tau=4.0,
            seed=0,
            lan_delay=UniformDelay(1.5),  # rtt up to 3 s vs τ = 4 s
            round_timeout=3.9,
        )
        service.run_until(400.0)
        snap = service.snapshot()
        assert snap.all_correct
        assert all(
            s.stats.rounds > 50
            for s in service.servers.values()
            if s.policy is not None
        )

    def test_round_timeout_closes_partial_rounds(self):
        service = make_mesh_service(3, IMPolicy(), tau=30.0, trace_enabled=True)
        # Cut one link: every round at S1 loses S2's (or S3's) reply.
        service.network.link("S1", "S2").take_down()
        service.run_until(300.0)
        server = service.servers["S1"]
        # Rounds complete anyway (by timeout) and resets still happen.
        assert server.stats.rounds >= 9
        assert server.stats.resets > 0
        assert server.is_correct()


class TestRecoveryEdgeCases:
    def _racing_star(self, lose_recovery_replies: bool):
        """S1 races; hub topology so the recovery reply path is S2->S1."""
        specs = [
            ServerSpec("S1", delta=1e-6, skew=0.01),
            ServerSpec("S2", delta=1e-6, skew=0.0, polls=False),
            ServerSpec("S3", delta=1e-6, skew=0.0, polls=False),
        ]
        service = build_service(
            full_mesh(3),
            specs,
            policy=MMPolicy(),
            tau=20.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
            recovery_factory=lambda name: ThirdServerRecovery(),
            trace_enabled=True,
        )
        return service

    def test_lost_recovery_reply_releases_inflight_slot(self):
        service = self._racing_star(lose_recovery_replies=True)
        # Drop every message into S1 after a while: recovery replies lost.
        service.run_until(100.0)
        service.network.link("S1", "S2").loss_probability = 1.0
        service.network.link("S1", "S3").loss_probability = 1.0
        service.run_until(200.0)
        # Heal; recovery must resume (the in-flight slot was timed out,
        # not leaked).
        service.network.link("S1", "S2").loss_probability = 0.0
        service.network.link("S1", "S3").loss_probability = 0.0
        before = service.servers["S1"].stats.recovery_resets
        service.run_until(400.0)
        assert service.servers["S1"].stats.recovery_resets > before

    def test_recovery_with_rng_choice(self):
        import numpy as np

        specs = [
            ServerSpec("S1", delta=1e-6, skew=0.01),
            ServerSpec("S2", delta=1e-6, skew=0.0, polls=False),
            ServerSpec("S3", delta=1e-6, skew=0.0, polls=False),
            ServerSpec("S4", delta=1e-6, skew=0.0, polls=False),
        ]
        service = build_service(
            full_mesh(4),
            specs,
            policy=MMPolicy(),
            tau=20.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
            recovery_factory=lambda name: ThirdServerRecovery(
                rng=np.random.default_rng(0)
            ),
            trace_enabled=True,
        )
        service.run_until(600.0)
        arbiters = {
            row.data["arbiter"]
            for row in service.trace.filter(kind="recovery_start", source="S1")
        }
        # Random choice across episodes exercises more than one arbiter.
        assert len(arbiters) >= 2


class TestClientFallback:
    def test_intersect_falls_back_when_budget_exceeded(self):
        """With more falsetickers than the budget, the client degrades to
        min-error and marks the source as a fallback."""
        graph = star(4, prefix="N")
        specs = [
            ServerSpec("N2", delta=1e-5, skew=0.0, initial_error=0.05, polls=False),
            ServerSpec("N3", delta=1e-5, skew=0.0, initial_error=0.05, polls=False),
            ServerSpec("N4", delta=1e-5, skew=0.0, initial_error=0.05, polls=False),
        ]
        service = build_service(
            graph,
            specs,
            policy=None,
            tau=60.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        # Wreck two of three servers in opposite directions: no pair
        # agreement survives a faults=0 budget.
        service.servers["N3"].clock.set(0.0, 500.0)
        service.servers["N4"].clock.set(0.0, -500.0)
        client = service.add_client("N1")
        client.start()
        results = []
        client.ask(
            ["N2", "N3", "N4"],
            QueryStrategy.INTERSECT,
            callback=results.append,
            faults=0,
        )
        service.engine.run(until=3.0)
        assert len(results) == 1
        assert results[0].source.startswith("fallback:")


class TestNetworkBroadcastTargets:
    def test_explicit_target_list(self):
        service = make_mesh_service(4, MMPolicy())
        from repro.service.messages import TimeRequest

        count = service.network.broadcast(
            "S1",
            lambda dest: TimeRequest(
                request_id=99, origin="S1", destination=dest
            ),
            targets=["S2", "S4"],
        )
        assert count == 2
