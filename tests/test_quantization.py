"""Tests for the tick-granularity experiment."""

from __future__ import annotations

import pytest

from repro.experiments import quantization


class TestQuantizationExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return quantization.run(ticks=(0.01, 0.1), horizon=1200.0)

    def test_naive_bookkeeping_violates(self, rows):
        for row in rows:
            assert row.naive_violations > 0, row

    def test_budgeted_bookkeeping_correct(self, rows):
        for row in rows:
            assert row.budgeted_violations == 0, row

    def test_budgeted_error_scales_with_tick(self, rows):
        small, large = rows
        assert large.budgeted_mean_error > small.budgeted_mean_error
        # The floor is at least the tick itself.
        assert small.budgeted_mean_error >= small.tick

    def test_policy_wrapper_pads_error(self):
        from repro.core.sync import LocalState, Reply

        policy = quantization.TickBudgetedIM(tick=0.5)
        state = LocalState(clock_value=100.0, error=1.0, delta=0.0)
        replies = [Reply(server="A", clock_value=100.0, error=0.4, rtt_local=0.0)]
        outcome = policy.on_round_complete(state, replies)
        assert outcome.decision is not None
        assert outcome.decision.inherited_error == pytest.approx(0.4 + 0.5)

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            quantization.TickBudgetedIM(tick=-1.0)
