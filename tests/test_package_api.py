"""Public-API surface guards.

Every name in every package's ``__all__`` must resolve, the top-level
quickstart names must exist, and the version must be a sane string —
cheap insurance against broken re-exports during refactors.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.clocks",
    "repro.core",
    "repro.experiments",
    "repro.network",
    "repro.ordering",
    "repro.service",
    "repro.simulation",
    "repro.sweeps",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


def test_all_lists_are_sorted_sets():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        names = list(package.__all__)
        assert len(names) == len(set(names)), f"duplicates in {package_name}"


def test_version_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_quickstart_names_importable():
    from repro import (  # noqa: F401
        IMPolicy,
        MMPolicy,
        ServerSpec,
        TimeInterval,
        UniformDelay,
        build_service,
        full_mesh,
        intersect_tolerating,
        marzullo,
        ntp_select,
    )


def test_readme_quickstart_executes():
    """The README's quickstart snippet, verbatim in spirit."""
    from repro import IMPolicy, ServerSpec, UniformDelay, build_service, full_mesh

    delta = 1e-5
    specs = [
        ServerSpec(f"S{k + 1}", delta=delta, skew=0.8 * delta * (k - 1.5) / 1.5)
        for k in range(4)
    ]
    service = build_service(
        full_mesh(4),
        specs,
        policy=IMPolicy(),
        tau=60.0,
        lan_delay=UniformDelay(0.05),
        seed=42,
    )
    service.run_until(3600.0)
    snap = service.snapshot()
    assert snap.all_correct and snap.consistent
    assert set(snap.errors) == {"S1", "S2", "S3", "S4"}
