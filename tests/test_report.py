"""Tests for the operator report and the refined consonance diagnostics."""

from __future__ import annotations

import pytest

from repro.analysis.report import service_report
from repro.clocks.drift import DriftingClock
from repro.clocks.failures import RacingClock
from repro.core.consonance import RateEstimator, RateObservation
from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.network.delay import ConstantDelay
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec, build_service

from tests.helpers import make_mesh_service


class TestServiceReport:
    def test_healthy_service_report_structure(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(300.0)
        report = service_report(service)
        assert "time service report" in report
        for name in ("S1", "S2", "S3"):
            assert name in report
        assert "asynchronism" in report
        assert "network:" in report
        assert "WARNING" not in report

    def test_report_without_oracle_columns(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(100.0)
        report = service_report(service, include_oracle=False)
        assert "offset" not in report
        assert "all correct" not in report

    def test_report_without_diagram(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(100.0)
        with_diagram = service_report(service, include_diagram=True)
        without = service_report(service, include_diagram=False)
        assert len(with_diagram.splitlines()) > len(without.splitlines())

    def test_partitioned_service_warns(self):
        specs = [
            ServerSpec("S1", delta=1e-6, skew=0.0),
            ServerSpec("S2", delta=1e-6, skew=5e-3),  # races away
            ServerSpec("S3", delta=1e-6, skew=0.0),
        ]
        service = build_service(
            full_mesh(3),
            specs,
            policy=MMPolicy(),
            tau=30.0,
            seed=0,
            lan_delay=ConstantDelay(0.005),
        )
        service.run_until(1200.0)
        report = service_report(service)
        assert "WARNING" in report and "consistency groups" in report

    def test_consonance_diagnosis_names_racer(self):
        def racing_factory(rng, name):
            return RacingClock(DriftingClock(1e-6), fail_at=0.0, racing_skew=3e-3)

        specs = [
            ServerSpec("S1", delta=1e-5, skew=0.0, rate_tracking=True),
            ServerSpec("S2", delta=1e-5, skew=2e-6, rate_tracking=True),
            ServerSpec("S3", delta=1e-5, skew=-2e-6, rate_tracking=True),
            ServerSpec(
                "S4", delta=1e-5, clock_factory=racing_factory, rate_tracking=True
            ),
        ]
        service = build_service(
            full_mesh(4),
            specs,
            policy=MMPolicy(),
            tau=30.0,
            seed=1,
            lan_delay=ConstantDelay(0.005),
        )
        service.run_until(900.0)
        report = service_report(service)
        assert "dissonant servers ['S4']" in report

    def test_no_trackers_no_diagnosis_line(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(100.0)
        assert "consonance" not in service_report(service)


class TestRateEstimateStderr:
    def test_linear_data_has_tiny_stderr(self):
        estimator = RateEstimator(min_span=1.0)
        for t in range(0, 200, 10):
            estimator.add(RateObservation(float(t), 1e-4 * t, reading_error=0.1))
        estimate = estimator.estimate()
        assert estimate is not None
        assert estimate.stderr < 1e-12
        # The diagnostic noise exploits the linearity...
        assert estimate.noise < estimate.uncertainty

    def test_jumpy_data_has_large_stderr(self):
        estimator = RateEstimator(min_span=1.0)
        for index, t in enumerate(range(0, 200, 10)):
            jump = 0.5 if index % 4 == 0 else 0.0
            estimator.add(RateObservation(float(t), jump, reading_error=0.1))
        estimate = estimator.estimate()
        assert estimate is not None
        assert estimate.stderr > 1e-4

    def test_two_samples_stderr_falls_back_to_hard_bound(self):
        estimator = RateEstimator(min_span=1.0)
        estimator.add(RateObservation(0.0, 0.0, reading_error=0.2))
        estimator.add(RateObservation(10.0, 0.1, reading_error=0.2))
        estimate = estimator.estimate()
        assert estimate is not None
        assert estimate.stderr == pytest.approx(estimate.uncertainty)

    def test_noise_never_exceeds_hard_bound(self):
        estimator = RateEstimator(min_span=1.0)
        for index, t in enumerate(range(0, 100, 5)):
            estimator.add(
                RateObservation(float(t), (index % 3) * 5.0, reading_error=1e-6)
            )
        estimate = estimator.estimate()
        assert estimate is not None
        assert estimate.noise <= estimate.uncertainty


class TestSelfSuspect:
    def test_coherent_recession_implicates_self(self):
        """A fast clock sees every neighbour drift away the same way."""
        specs = [
            ServerSpec("S1", delta=1e-5, skew=4e-4, rate_tracking=True),
            ServerSpec("S2", delta=1e-5, skew=0.0, polls=False),
            ServerSpec("S3", delta=1e-5, skew=2e-6, polls=False),
            ServerSpec("S4", delta=1e-5, skew=-2e-6, polls=False),
        ]
        service = build_service(
            full_mesh(4),
            specs,
            policy=MMPolicy(),
            tau=30.0,
            seed=2,
            lan_delay=ConstantDelay(0.005),
        )
        service.run_until(900.0)
        assert service.servers["S1"].self_suspect()

    def test_healthy_server_does_not_self_suspect(self):
        service = make_mesh_service(4, MMPolicy(), tau=30.0)
        # Rebuild with tracking via specs is cleaner:
        specs = [
            ServerSpec(f"S{k + 1}", delta=1e-5, skew=(k - 1.5) * 4e-6, rate_tracking=True)
            for k in range(4)
        ]
        service = build_service(
            full_mesh(4),
            specs,
            policy=MMPolicy(),
            tau=30.0,
            seed=3,
            lan_delay=ConstantDelay(0.005),
        )
        service.run_until(900.0)
        for server in service.servers.values():
            assert not server.self_suspect()


class TestBudgetInReport:
    def test_budget_section_optional(self):
        service = make_mesh_service(3, IMPolicy(), tau=20.0)
        service.run_until(100.0)
        plain = service_report(service, include_diagram=False)
        with_budget = service_report(
            service, include_diagram=False, include_budget=True
        )
        assert "error budget" not in plain
        assert "error budget:" in with_budget
        assert "inherited" in with_budget
