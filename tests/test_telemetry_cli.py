"""CLI tests for the telemetry plane: figure1, top, --telemetry-out."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

pytestmark = pytest.mark.telemetry


def test_parser_accepts_telemetry_flags(tmp_path):
    parser = build_parser()
    args = parser.parse_args(
        ["figure1", "--telemetry-out", str(tmp_path), "--seed", "3"]
    )
    assert args.telemetry_out == str(tmp_path)
    assert args.seed == 3
    args = parser.parse_args(["simulate", "--telemetry-out", str(tmp_path)])
    assert args.telemetry_out == str(tmp_path)
    args = parser.parse_args(["chaos", "--telemetry-out", str(tmp_path)])
    assert args.telemetry_out == str(tmp_path)
    args = parser.parse_args(["top", "--horizon", "600", "--refresh", "120"])
    assert args.horizon == 600.0
    assert args.refresh == 120.0


@pytest.mark.slow
def test_figure1_command_writes_artifacts(tmp_path, capsys):
    out = tmp_path / "telemetry"
    code = main(["figure1", "--telemetry-out", str(out)])
    assert code == 0
    printed = capsys.readouterr().out
    assert "Figure 1 servers under rule IM" in printed
    assert "Theorem 7" in printed
    assert (out / "metrics.prom").exists()
    assert (out / "spans.jsonl").exists()
    summary = json.loads((out / "summary.json").read_text())
    assert summary["experiment"] == "figure1"
    assert summary["seed"] == 7
    metrics_text = (out / "metrics.prom").read_text()
    assert "repro_sync_rounds_total" in metrics_text
    assert "repro_edge_asynchronism_seconds" in metrics_text


@pytest.mark.slow
def test_top_command_renders_frames(capsys):
    code = main(
        [
            "top",
            "--servers",
            "3",
            "--horizon",
            "300",
            "--refresh",
            "150",
            "--no-clear",
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert printed.count("repro top ·") == 2
    assert "2 frames over 300 simulated seconds." in printed


@pytest.mark.slow
def test_simulate_telemetry_out(tmp_path, capsys):
    out = tmp_path / "telemetry"
    code = main(
        [
            "simulate",
            "--servers",
            "3",
            "--hours",
            "0.1",
            "--telemetry-out",
            str(out),
        ]
    )
    assert code == 0
    assert "wrote telemetry" in capsys.readouterr().out
    assert (out / "metrics.prom").exists()
    assert (out / "spans.jsonl").exists()
    assert (out / "summary.json").exists()


@pytest.mark.slow
@pytest.mark.chaos
def test_chaos_telemetry_out(tmp_path, capsys):
    out = tmp_path / "soak"
    code = main(
        [
            "chaos",
            "--seeds",
            "1",
            "--policies",
            "mm",
            "--horizon",
            "600",
            "--telemetry-out",
            str(out),
        ]
    )
    assert code == 0
    run_dir = out / "mm-seed0"
    metrics_text = (run_dir / "metrics.prom").read_text()
    assert "repro_invariant_checks_total" in metrics_text
    summary = json.loads((run_dir / "summary.json").read_text())
    assert summary["policy"] == "MM"
    assert summary["violations"] == 0
