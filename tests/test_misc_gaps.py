"""Gap-filling tests: messages, reference servers, builder options, CLI
failure paths, export of live runs, and the cold-start experiment."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.export import trace_to_csv
from repro.cli import main as cli_main
from repro.core.im import IMPolicy
from repro.core.intervals import TimeInterval
from repro.core.mm import MMPolicy
from repro.experiments import cold_start
from repro.network.delay import ConstantDelay
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec, build_service
from repro.service.messages import RequestKind, TimeReply, TimeRequest
from repro.service.reference import ReferenceServer

from tests.helpers import make_mesh_service


class TestMessages:
    def test_reply_interval_property(self):
        reply = TimeReply(
            request_id=1,
            server="S1",
            destination="C",
            clock_value=10.0,
            error=0.5,
        )
        assert reply.interval == TimeInterval(9.5, 10.5)

    def test_request_kinds(self):
        assert RequestKind.POLL.value == "poll"
        assert RequestKind.CLIENT.value == "client"
        assert RequestKind.RECOVERY.value == "recovery"

    def test_messages_are_immutable(self):
        request = TimeRequest(request_id=1, origin="A", destination="B")
        with pytest.raises(AttributeError):
            request.origin = "C"  # type: ignore[misc]

    def test_reply_carries_claimed_delta(self):
        """Replies carry δ_j for the Section 5 consonance machinery."""
        service = make_mesh_service(2, MMPolicy(), tau=10.0, delta=3e-5)
        replies = []
        original_send = service.network.send

        def spy(source, destination, message):
            if isinstance(message, TimeReply):
                replies.append(message)
            return original_send(source, destination, message)

        service.network.send = spy  # type: ignore[method-assign]
        service.run_until(30.0)
        assert replies
        assert all(r.delta == pytest.approx(3e-5) for r in replies)


class TestReferenceServer:
    def test_constant_error_forever(self):
        specs = [
            ServerSpec("S1", delta=1e-5, skew=5e-6),
            ServerSpec("S2", reference=True, initial_error=0.02),
        ]
        service = build_service(
            full_mesh(2),
            specs,
            policy=MMPolicy(),
            tau=30.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        service.run_until(2000.0)
        ref = service.servers["S2"]
        assert isinstance(ref, ReferenceServer)
        value, error = ref.report()
        assert value == pytest.approx(2000.0)
        assert error == pytest.approx(0.02)

    def test_reference_anchors_the_service(self):
        specs = [
            ServerSpec("S1", delta=1e-4, skew=8e-5),
            ServerSpec("S2", reference=True, initial_error=0.001),
        ]
        service = build_service(
            full_mesh(2),
            specs,
            policy=MMPolicy(),
            tau=30.0,
            seed=0,
            lan_delay=ConstantDelay(0.005),
        )
        service.run_until(3600.0)
        snap = service.snapshot()
        # Without the reference S1 would drift 8e-5*3600 = 0.29 s.
        assert abs(snap.offsets["S1"]) < 0.02


class TestBuilderOptions:
    def test_round_timeout_override(self):
        service = make_mesh_service(3, IMPolicy(), round_timeout=0.2)
        service.run_until(200.0)
        assert all(s.stats.rounds > 0 for s in service.servers.values())

    def test_loss_probability_passthrough(self):
        service = make_mesh_service(3, IMPolicy(), loss_probability=1.0)
        service.run_until(200.0)
        # All messages lost: nobody ever handles a reply.
        assert all(
            s.stats.replies_handled == 0 for s in service.servers.values()
        )

    def test_no_stagger_all_first_polls_at_tau(self):
        service = make_mesh_service(3, IMPolicy(), tau=40.0, stagger_polls=False)
        service.run_until(39.0)
        assert all(s.stats.rounds == 0 for s in service.servers.values())
        service.run_until(41.0)
        assert all(s.stats.rounds == 1 for s in service.servers.values())


class TestTraceExportLiveRun:
    def test_export_real_trace(self, tmp_path):
        service = make_mesh_service(3, IMPolicy(), tau=20.0, trace_enabled=True)
        service.run_until(200.0)
        path = tmp_path / "run.csv"
        written = trace_to_csv(service.trace, path)
        assert written == len(service.trace)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        kinds = {row["kind"] for row in rows}
        assert "reset" in kinds


class TestCliFailurePaths:
    def test_exit_code_one_when_incorrect(self, capsys):
        """A service with skews beyond the claimed bound exits non-zero."""
        code = cli_main(
            [
                "simulate",
                "--servers",
                "3",
                "--policy",
                "im",
                "--delta",
                "1e-6",
                "--fill",
                "50",  # skews 50x the claimed bound: incorrect service
                "--hours",
                "0.3",
                "--samples",
                "5",
            ]
        )
        assert code == 1

    def test_figures_all(self, capsys):
        assert cli_main(["figures", "all"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out


class TestColdStart:
    @pytest.fixture(scope="class")
    def results(self):
        return {r.policy: r for r in cold_start.run(horizon=2400.0)}

    def test_correct_throughout(self, results):
        for result in results.values():
            assert result.correct_throughout

    def test_both_settle_fast(self, results):
        for result in results.values():
            assert result.settle_rounds is not None
            assert result.settle_rounds <= 3.0

    def test_asynchronism_collapses(self, results):
        for result in results.values():
            assert result.initial_asynchronism > 10.0
            assert result.steady_asynchronism < 0.05

    def test_steady_error_floor_is_best_source(self, results):
        """The service cannot be more certain than its best clock: the
        radio-checked server's ±0.3 s bound is the floor."""
        for result in results.values():
            assert 0.25 < result.steady_max_error < 0.45


class TestDelayAsymmetry:
    @pytest.fixture(scope="class")
    def matrix(self):
        from repro.experiments import delay_asymmetry

        return {
            (r.policy, r.asymmetric): r
            for r in delay_asymmetry.run(horizon=1200.0)
        }

    def test_im_stays_correct_under_asymmetry(self, matrix):
        assert matrix[("IM", True)].correct

    def test_baselines_pick_up_systematic_bias(self, matrix):
        """Midpoint compensation converts asymmetry into a positive bias
        of roughly (E[rho] - E[sigma]) / 2 ~ 9.5 ms."""
        for policy in ("median", "mean", "first-reply"):
            symmetric = matrix[(policy, False)]
            asymmetric = matrix[(policy, True)]
            assert asymmetric.mean_offset > 5 * abs(symmetric.mean_offset)
            assert asymmetric.mean_offset > 0.003

    def test_im_bias_smaller_than_baselines(self, matrix):
        im_bias = abs(matrix[("IM", True)].mean_offset)
        for policy in ("median", "mean", "first-reply"):
            assert im_bias < abs(matrix[(policy, True)].mean_offset)

    def test_reverse_delay_only_affects_reverse_direction(self):
        import numpy as np

        from repro.network.delay import ConstantDelay
        from repro.network.link import Link

        link = Link(
            delay=ConstantDelay(0.001), reverse_delay=ConstantDelay(0.5)
        )
        rng = np.random.default_rng(0)
        assert link.try_send(rng, forward=True) == 0.001
        assert link.try_send(rng, forward=False) == 0.5
