"""Unit tests for RNG streams and trace recording."""

from __future__ import annotations

import numpy as np

from repro.simulation.rng import RngRegistry
from repro.simulation.trace import TraceRecorder


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=7).stream("x").uniform(size=8)
        b = RngRegistry(seed=7).stream("x").uniform(size=8)
        assert np.array_equal(a, b)

    def test_different_names_decorrelated(self):
        reg = RngRegistry(seed=7)
        a = reg.stream("x").uniform(size=8)
        b = reg.stream("y").uniform(size=8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=7).stream("x").uniform(size=8)
        b = RngRegistry(seed=8).stream("x").uniform(size=8)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=7)
        assert reg.stream("x") is reg.stream("x")

    def test_stream_independent_of_creation_order(self):
        first = RngRegistry(seed=7)
        first.stream("a")
        a_then = first.stream("b").uniform(size=4)
        second = RngRegistry(seed=7)
        b_only = second.stream("b").uniform(size=4)
        assert np.array_equal(a_then, b_only)

    def test_fork_decorrelates(self):
        reg = RngRegistry(seed=7)
        child = reg.fork("replica")
        a = reg.stream("x").uniform(size=8)
        b = child.stream("x").uniform(size=8)
        assert not np.array_equal(a, b)

    def test_fork_deterministic(self):
        a = RngRegistry(seed=7).fork("r").stream("x").uniform(size=4)
        b = RngRegistry(seed=7).fork("r").stream("x").uniform(size=4)
        assert np.array_equal(a, b)


class TestTraceRecorder:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "reset", "S1", new_error=0.5)
        trace.record(2.0, "reset", "S2", new_error=0.7)
        trace.record(3.0, "reject", "S1")
        assert len(trace) == 3
        assert trace.count("reset") == 2
        assert [r.source for r in trace.filter(kind="reset")] == ["S1", "S2"]
        assert [r.time for r in trace.filter(source="S1")] == [1.0, 3.0]

    def test_predicate_filter(self):
        trace = TraceRecorder()
        trace.record(1.0, "reset", "S1", new_error=0.5)
        trace.record(2.0, "reset", "S1", new_error=0.1)
        rows = trace.filter(predicate=lambda r: r.data["new_error"] < 0.3)
        assert len(rows) == 1 and rows[0].time == 2.0

    def test_series_extraction(self):
        trace = TraceRecorder()
        trace.record(1.0, "sample", "S1", error=0.1)
        trace.record(2.0, "sample", "S1", error=0.2)
        trace.record(3.0, "sample", "S1")  # missing field skipped
        series = trace.series("error", kind="sample", source="S1")
        assert series.shape == (2, 2)
        assert series[1, 1] == 0.2

    def test_empty_series(self):
        trace = TraceRecorder()
        assert trace.series("missing").shape == (0, 2)

    def test_disabled_recorder_drops_rows(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "reset", "S1")
        assert len(trace) == 0

    def test_kinds_and_clear(self):
        trace = TraceRecorder()
        trace.record(1.0, "b", "S1")
        trace.record(1.0, "a", "S1")
        assert trace.kinds == ["a", "b"]
        trace.clear()
        assert len(trace) == 0 and trace.kinds == []
