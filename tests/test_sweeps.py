"""Tests for the parameter-sweep framework."""

from __future__ import annotations

import pytest

from repro.sweeps.grid import ParameterGrid, point_label
from repro.sweeps.runner import run_sweep
from repro.sweeps.scenarios import growth_rate_comparison, mesh_steady_state


class TestParameterGrid:
    def test_product_size_and_order(self):
        grid = ParameterGrid.of(a=[1, 2], b=["x", "y", "z"])
        assert len(grid) == 6
        points = list(grid)
        assert points[0] == {"a": 1, "b": "x"}
        assert points[-1] == {"a": 2, "b": "z"}

    def test_deterministic_iteration(self):
        grid = ParameterGrid.of(b=[1], a=[2, 3])
        assert list(grid) == list(grid)
        assert grid.names == ("a", "b")  # sorted

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            ParameterGrid.of(a=[])

    def test_extend_adds_axis(self):
        grid = ParameterGrid.of(a=[1]).extend(b=[1, 2])
        assert len(grid) == 2

    def test_extend_replaces_axis(self):
        grid = ParameterGrid.of(a=[1, 2]).extend(a=[9])
        assert list(grid) == [{"a": 9}]

    def test_subset_pins_value(self):
        grid = ParameterGrid.of(a=[1, 2], b=[3, 4]).subset(a=2)
        assert list(grid) == [{"a": 2, "b": 3}, {"a": 2, "b": 4}]

    def test_subset_validation(self):
        grid = ParameterGrid.of(a=[1, 2])
        with pytest.raises(KeyError):
            grid.subset(z=1)
        with pytest.raises(ValueError):
            grid.subset(a=99)

    def test_point_label_stable(self):
        assert point_label({"b": 2, "a": 1}) == "a=1,b=2"


class TestRunSweep:
    def test_maps_scenario_over_grid(self):
        calls = []

        def scenario(*, seed, x):
            calls.append((seed, x))
            return {"double": 2 * x}

        grid = ParameterGrid.of(x=[1, 2, 3])
        result = run_sweep(scenario, grid)
        assert len(result.points) == 3
        assert [p.metrics["double"] for p in result.points] == [2, 4, 6]
        assert not result.failures

    def test_replications_get_distinct_seeds(self):
        seeds = []

        def scenario(*, seed, x):
            seeds.append(seed)
            return {"v": seed}

        grid = ParameterGrid.of(x=[1, 2])
        run_sweep(scenario, grid, replications=3)
        assert len(set(seeds)) == 6

    def test_failures_captured_not_raised(self):
        def scenario(*, seed, x):
            if x == 2:
                raise RuntimeError("boom")
            return {"v": x}

        result = run_sweep(scenario, ParameterGrid.of(x=[1, 2, 3]))
        assert len(result.failures) == 1
        assert "boom" in result.failures[0].error
        assert len([p for p in result.points if p.ok]) == 2

    def test_aggregate_means_replications(self):
        counter = iter(range(100))

        def scenario(*, seed, x):
            return {"v": x * 10 + next(counter) % 2}

        result = run_sweep(
            scenario, ParameterGrid.of(x=[1]), replications=2
        )
        rows = result.aggregate()
        assert len(rows) == 1
        assert rows[0]["replications"] == 2
        assert rows[0]["v"] == pytest.approx(10.5)

    def test_to_table_renders(self):
        result = run_sweep(
            lambda *, seed, x: {"v": x}, ParameterGrid.of(x=[1, 2])
        )
        table = result.to_table()
        assert "x" in table and "v" in table

    def test_on_point_callback(self):
        seen = []
        run_sweep(
            lambda *, seed, x: {"v": x},
            ParameterGrid.of(x=[1, 2]),
            on_point=seen.append,
        )
        assert len(seen) == 2

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            run_sweep(lambda *, seed: {}, ParameterGrid.of(a=[1]), replications=0)


class TestServiceScenarios:
    def test_mesh_steady_state_metrics(self):
        metrics = mesh_steady_state(seed=0, n=4, tau=30.0, horizon_taus=20.0)
        assert metrics["correct"] == 1.0
        assert 0.0 < metrics["mean_error"] < 1.0
        assert metrics["worst_offset"] < metrics["max_error"]

    def test_mesh_sweep_error_grows_with_xi(self):
        grid = ParameterGrid.of(one_way=[0.005, 0.05])
        result = run_sweep(mesh_steady_state, grid, base_seed=1)
        rows = result.aggregate()
        assert rows[0]["mean_error"] < rows[1]["mean_error"]

    def test_growth_comparison_tracks_fill(self):
        low = growth_rate_comparison(seed=0, fill=0.5, horizon=2 * 3600.0)
        high = growth_rate_comparison(seed=0, fill=0.9, horizon=2 * 3600.0)
        # Higher fill -> IM grows slower -> larger MM/IM ratio.
        assert high["ratio"] > low["ratio"]
        assert low["ratio"] == pytest.approx(2.0, rel=0.4)
        assert high["ratio"] == pytest.approx(10.0, rel=0.4)
