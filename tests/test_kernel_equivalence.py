"""Differential suite: vectorized kernels vs the scalar core oracles.

The batched engine's determinism story rests on the claim that every
vectorized decision in :mod:`repro.kernel` is *bit-equivalent* to the scalar
code it replaces — not approximately equal, byte-for-byte equal, because the
trace digests of scalar and batched runs are compared directly.  This suite
enforces the claim with Hypothesis:

* :func:`repro.kernel.marzullo_vec` / :func:`intersect_tolerating_vec` vs
  ``core/marzullo.py``'s endpoint sweep, on free floats and a small integer
  grid (degenerate points, exact-touch ties at sweep boundaries), dense and
  ragged;
* :func:`repro.kernel.mm2_eval` vs ``MMPolicy.on_reply`` across the
  ``inflate_rtt`` × ``strict_improvement`` flag grid;
* :func:`repro.kernel.im2_round` vs ``IMPolicy`` across the
  ``include_self`` × ``widen_both_edges`` × ``reset_to`` ×
  ``allow_point_intersection`` grid, including edge attribution (the
  ``"S2∩S3"`` trace source) and first-candidate tie-breaking;
* rejection parity: NaN edges, negative errors, and inverted transit
  intervals raise ``ValueError`` in the kernel exactly where the scalar
  :class:`~repro.core.intervals.TimeInterval` constructor would have raised.

Equality assertions use ``==`` on floats deliberately: the kernels promise
identical IEEE 754 evaluation order, so any drift is a bug.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.im import IMPolicy
from repro.core.intervals import TimeInterval
from repro.core.marzullo import intersect_tolerating, marzullo
from repro.core.mm import MMPolicy
from repro.core.sync import LocalState, Reply
from repro.kernel import (
    SELF_SLOT,
    im2_round,
    intersect_tolerating_vec,
    interval_edges,
    marzullo_vec,
    mm2_eval,
    stack_intervals,
    transit_edges,
)

pytestmark = pytest.mark.kernel

# Free floats exercise arithmetic; the integer grid forces zero-width
# intervals and exact ties (the cases sweeps and argmax/argmin hide in).
coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
widths = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
rtt_values = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
drift_rates = st.floats(min_value=0.0, max_value=0.01, allow_nan=False)

grid_coords = st.integers(-4, 4).map(float)
grid_widths = st.integers(0, 3).map(float)
grid_rtts = st.sampled_from([0.0, 1.0])


# --------------------------------------------------------------- strategies


@st.composite
def interval_rows(draw, max_rows=5, max_k=6):
    """A ragged batch: list of rows, each a non-empty list of intervals."""
    gridded = draw(st.booleans())
    lo_s = grid_coords if gridded else coords
    w_s = grid_widths if gridded else widths
    rows = []
    for _ in range(draw(st.integers(1, max_rows))):
        row = []
        for _ in range(draw(st.integers(1, max_k))):
            lo = draw(lo_s)
            row.append(TimeInterval(lo, lo + draw(w_s)))
        rows.append(row)
    return rows


@st.composite
def sync_rounds(draw, max_rows=4, max_k=5):
    """Stacked poll rounds: per-row LocalState + k replies, dense ``(n, k)``."""
    gridded = draw(st.booleans())
    c_s = grid_coords if gridded else coords
    e_s = grid_widths if gridded else widths
    r_s = grid_rtts if gridded else rtt_values
    d_s = st.just(0.0) if gridded else drift_rates
    n = draw(st.integers(1, max_rows))
    k = draw(st.integers(1, max_k))
    states = [LocalState(draw(c_s), draw(e_s), draw(d_s)) for _ in range(n)]
    replies = [
        [Reply(f"R{j}", draw(c_s), draw(e_s), draw(r_s)) for j in range(k)]
        for _ in range(n)
    ]
    return states, replies


def _stack_rounds(states, replies):
    sv = np.array([s.clock_value for s in states])
    se = np.array([s.error for s in states])
    sd = np.array([s.delta for s in states])
    rv = np.array([[r.clock_value for r in row] for row in replies])
    re = np.array([[r.error for r in row] for row in replies])
    rx = np.array([[r.rtt_local for r in row] for row in replies])
    return sv, se, sd, rv, re, rx


# ------------------------------------------------------------ Marzullo sweep


class TestMarzulloVecDifferential:
    @settings(max_examples=300, deadline=None)
    @given(interval_rows())
    def test_ragged_batch_matches_scalar_sweep(self, rows):
        lo, hi, valid = stack_intervals(rows)
        batch = marzullo_vec(lo, hi, valid)
        for i, row in enumerate(rows):
            oracle = marzullo(row)
            assert batch.lo[i] == oracle.interval.lo
            assert batch.hi[i] == oracle.interval.hi
            assert batch.count[i] == oracle.count

    @settings(max_examples=200, deadline=None)
    @given(interval_rows(max_rows=3, max_k=4), st.integers(0, 5))
    def test_tolerating_gate_matches_scalar(self, rows, faults):
        lo, hi, valid = stack_intervals(rows)
        batch = intersect_tolerating_vec(lo, hi, faults, valid)
        for i, row in enumerate(rows):
            oracle = intersect_tolerating(row, faults)
            if oracle is None:
                assert not batch.ok[i]
            else:
                assert batch.ok[i]
                assert batch.lo[i] == oracle.interval.lo
                assert batch.hi[i] == oracle.interval.hi
                assert batch.count[i] == oracle.count

    def test_dense_path_matches_scalar_sweep(self):
        # No mask at all: the dense fast path, including exact-touch ties.
        rows = [
            [TimeInterval(0.0, 1.0), TimeInterval(1.0, 2.0)],
            [TimeInterval(3.0, 3.0), TimeInterval(3.0, 3.0)],
            [TimeInterval(-1.0, 4.0), TimeInterval(0.0, 0.0)],
        ]
        lo = np.array([[iv.lo for iv in row] for row in rows])
        hi = np.array([[iv.hi for iv in row] for row in rows])
        batch = marzullo_vec(lo, hi)
        for i, row in enumerate(rows):
            oracle = marzullo(row)
            assert batch.interval(i) == oracle.interval
            assert batch.count[i] == oracle.count

    def test_infinite_edges_match_scalar(self):
        # ±inf edges are legal intervals in both implementations.
        rows = [[TimeInterval(-math.inf, math.inf), TimeInterval(0.0, 1.0)]]
        lo, hi, valid = stack_intervals(rows)
        batch = marzullo_vec(lo, hi, valid)
        oracle = marzullo(rows[0])
        assert batch.interval(0) == oracle.interval
        assert batch.count[0] == oracle.count == 2

    def test_nan_rejected_like_timeinterval(self):
        with pytest.raises(ValueError, match="NaN"):
            marzullo_vec(np.array([[0.0, np.nan]]), np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError, match="NaN"):
            TimeInterval(np.nan, 2.0)

    def test_inverted_interval_rejected_like_timeinterval(self):
        with pytest.raises(ValueError, match="exceeds"):
            marzullo_vec(np.array([[2.0]]), np.array([[1.0]]))
        with pytest.raises(ValueError, match="exceeds"):
            TimeInterval(2.0, 1.0)

    def test_masked_slots_do_not_leak_into_sweep(self):
        # A padded slot with garbage edges must be invisible under the mask.
        lo = np.array([[0.0, 999.0], [0.0, 1.0]])
        hi = np.array([[1.0, 999.0], [1.0, 2.0]])
        valid = np.array([[True, False], [True, True]])
        batch = marzullo_vec(lo, hi, valid)
        assert batch.count[0] == 1
        assert batch.interval(0) == TimeInterval(0.0, 1.0)
        assert batch.count[1] == 2

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            marzullo_vec(np.zeros((2, 0)), np.zeros((2, 0)))
        with pytest.raises(ValueError):
            stack_intervals([])
        with pytest.raises(ValueError):
            stack_intervals([[]])
        with pytest.raises(ValueError):
            marzullo_vec(
                np.zeros((1, 2)),
                np.ones((1, 2)),
                np.array([[False, False]]),
            )
        with pytest.raises(ValueError):
            intersect_tolerating_vec(np.zeros((1, 1)), np.ones((1, 1)), -1)


# ------------------------------------------------------------------ rule MM-2


class TestMM2Differential:
    @settings(max_examples=300, deadline=None)
    @given(sync_rounds(), st.booleans(), st.booleans())
    def test_verdicts_match_on_reply(self, round_, inflate, strict):
        states, replies = round_
        policy = MMPolicy(inflate_rtt=inflate, strict_improvement=strict)
        sv, se, sd, rv, re, rx = _stack_rounds(states, replies)
        verdicts = mm2_eval(
            sv, se, sd, rv, re, rx,
            inflate_rtt=inflate, strict_improvement=strict,
        )
        for i, state in enumerate(states):
            for j, reply in enumerate(replies[i]):
                outcome = policy.on_reply(state, reply)
                assert bool(verdicts.consistent[i, j]) == outcome.consistent
                assert verdicts.candidate[i, j] == policy.adoption_error(
                    state, reply
                )
                accepted = outcome.decision is not None
                assert bool(verdicts.accepts[i, j]) == accepted
                if accepted:
                    # Adopting resets to <C_j, candidate> exactly.
                    assert outcome.decision.clock_value == rv[i, j]
                    assert (
                        outcome.decision.inherited_error
                        == verdicts.candidate[i, j]
                    )

    def test_tie_at_equal_error_follows_flag(self):
        # candidate == E_i: the paper's <= accepts, the strict ablation not.
        state = LocalState(clock_value=10.0, error=2.0, delta=0.0)
        reply = Reply("R0", clock_value=10.0, error=2.0, rtt_local=0.0)
        sv, se, sd, rv, re, rx = _stack_rounds([state], [[reply]])
        lax = mm2_eval(sv, se, sd, rv, re, rx)
        strict = mm2_eval(sv, se, sd, rv, re, rx, strict_improvement=True)
        assert bool(lax.accepts[0, 0])
        assert not bool(strict.accepts[0, 0])
        assert MMPolicy().on_reply(state, reply).decision is not None
        assert (
            MMPolicy(strict_improvement=True).on_reply(state, reply).decision
            is None
        )

    def test_negative_state_error_rejected_like_scalar(self):
        state = LocalState(clock_value=0.0, error=-1.0, delta=0.0)
        reply = Reply("R0", clock_value=0.0, error=0.0, rtt_local=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            MMPolicy().on_reply(state, reply)
        with pytest.raises(ValueError, match="non-negative"):
            interval_edges(np.array([0.0]), np.array([-1.0]))

    def test_inverted_transit_rejected_like_scalar(self):
        # A reply claiming a negative error inverts the transit interval.
        state = LocalState(clock_value=0.0, error=1.0, delta=0.0)
        reply = Reply("R0", clock_value=0.0, error=-5.0, rtt_local=0.0)
        with pytest.raises(ValueError, match="exceeds"):
            MMPolicy().on_reply(state, reply)
        with pytest.raises(ValueError, match="exceeds"):
            transit_edges(
                np.array([[0.0]]),
                np.array([[-5.0]]),
                np.array([[0.0]]),
                np.array([0.0]),
            )

    def test_nan_reply_rejected_like_scalar(self):
        state = LocalState(clock_value=0.0, error=1.0, delta=0.0)
        reply = Reply("R0", clock_value=math.nan, error=0.0, rtt_local=0.0)
        with pytest.raises(ValueError, match="NaN"):
            MMPolicy().on_reply(state, reply)
        with pytest.raises(ValueError, match="NaN"):
            transit_edges(
                np.array([[math.nan]]),
                np.array([[0.0]]),
                np.array([[0.0]]),
                np.array([0.0]),
            )


# ------------------------------------------------------------------ rule IM-2

IM_FLAG_GRID = [
    dict(
        include_self=inc, widen_both_edges=wide,
        reset_to=reset, allow_point_intersection=point,
    )
    for inc in (True, False)
    for wide in (True, False)
    for reset in ("midpoint", "trailing")
    for point in (True, False)
]


def _slot_name(slot: int, names) -> str:
    return "self" if slot == SELF_SLOT else names[slot]


class TestIM2Differential:
    @settings(max_examples=200, deadline=None)
    @given(sync_rounds(max_rows=3, max_k=4), st.sampled_from(IM_FLAG_GRID))
    def test_round_matches_policy(self, round_, flags):
        states, replies = round_
        policy = IMPolicy(**flags)
        sv, se, sd, rv, re, rx = _stack_rounds(states, replies)
        result = im2_round(sv, se, sd, rv, re, rx, **flags)
        names = [r.server for r in replies[0]]
        for i, state in enumerate(states):
            a, b, source = policy.intersection(state, replies[i])
            assert result.a[i] == a
            assert result.b[i] == b
            a_name = _slot_name(int(result.a_slot[i]), names)
            b_name = _slot_name(int(result.b_slot[i]), names)
            vec_source = (
                a_name if a_name == b_name else f"{a_name}∩{b_name}"
            )
            assert vec_source == source
            outcome = policy.on_round_complete(state, replies[i])
            assert bool(result.consistent[i]) == outcome.consistent
            if outcome.decision is not None:
                assert result.new_value[i] == outcome.decision.clock_value
                assert (
                    result.new_error[i] == outcome.decision.inherited_error
                )

    @settings(max_examples=200, deadline=None)
    @given(sync_rounds(max_rows=3, max_k=4), st.data())
    def test_ragged_rows_match_policy_on_present_replies(self, round_, data):
        # Mask some slots out; the oracle sees only the surviving replies in
        # the same arrival order.
        states, replies = round_
        n, k = len(replies), len(replies[0])
        mask = np.array(
            [
                [data.draw(st.booleans(), label=f"valid[{i}][{j}]") for j in range(k)]
                for i in range(n)
            ]
        )
        policy = IMPolicy()
        sv, se, sd, rv, re, rx = _stack_rounds(states, replies)
        result = im2_round(sv, se, sd, rv, re, rx, valid=mask)
        for i, state in enumerate(states):
            kept = [r for j, r in enumerate(replies[i]) if mask[i, j]]
            a, b, _ = policy.intersection(state, kept)
            assert result.a[i] == a
            assert result.b[i] == b
            outcome = policy.on_round_complete(state, kept)
            assert bool(result.consistent[i]) == outcome.consistent

    def test_self_is_last_tiebreak_candidate(self):
        # A reply tying the self interval on both edges must win both
        # attributions: arrival order beats the self candidate.
        state = LocalState(clock_value=5.0, error=1.0, delta=0.0)
        reply = Reply("R0", clock_value=5.0, error=1.0, rtt_local=0.0)
        policy = IMPolicy()
        _, _, source = policy.intersection(state, [reply])
        assert source == "R0"
        sv, se, sd, rv, re, rx = _stack_rounds([state], [[reply]])
        result = im2_round(sv, se, sd, rv, re, rx)
        assert int(result.a_slot[0]) == 0
        assert int(result.b_slot[0]) == 0

    def test_empty_round_with_self_matches_policy(self):
        # Zero replies, include_self=True: intersect with [-E, +E] alone.
        state = LocalState(clock_value=7.0, error=3.0, delta=0.0)
        a, b, source = IMPolicy().intersection(state, [])
        result = im2_round(
            np.array([7.0]), np.array([3.0]), np.array([0.0]),
            np.zeros((1, 0)), np.zeros((1, 0)), np.zeros((1, 0)),
        )
        assert result.a[0] == a == -3.0
        assert result.b[0] == b == 3.0
        assert source == "self"
        assert int(result.a_slot[0]) == SELF_SLOT

    def test_empty_round_without_self_raises_like_policy(self):
        state = LocalState(clock_value=0.0, error=1.0, delta=0.0)
        with pytest.raises(ValueError, match="no replies"):
            IMPolicy(include_self=False).intersection(state, [])
        with pytest.raises(ValueError, match="no replies"):
            im2_round(
                np.array([0.0]), np.array([1.0]), np.array([0.0]),
                np.zeros((1, 0)), np.zeros((1, 0)), np.zeros((1, 0)),
                include_self=False,
            )

    def test_point_intersection_verdict_follows_flag(self):
        # Two replies touching at exactly one offset: b == a.
        state = LocalState(clock_value=0.0, error=10.0, delta=0.0)
        replies = [
            Reply("R0", clock_value=-1.0, error=1.0, rtt_local=0.0),
            Reply("R1", clock_value=1.0, error=1.0, rtt_local=0.0),
        ]
        sv, se, sd, rv, re, rx = _stack_rounds([state], [replies])
        lax = im2_round(sv, se, sd, rv, re, rx)
        strict = im2_round(
            sv, se, sd, rv, re, rx, allow_point_intersection=False
        )
        assert lax.a[0] == lax.b[0] == 0.0
        assert bool(lax.consistent[0])
        assert not bool(strict.consistent[0])
        assert IMPolicy().on_round_complete(state, replies).consistent
        assert not IMPolicy(
            allow_point_intersection=False
        ).on_round_complete(state, replies).consistent

    def test_bad_reset_to_rejected_like_policy(self):
        with pytest.raises(ValueError, match="reset_to"):
            IMPolicy(reset_to="leading")
        with pytest.raises(ValueError, match="reset_to"):
            im2_round(
                np.array([0.0]), np.array([1.0]), np.array([0.0]),
                np.zeros((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)),
                reset_to="leading",
            )
