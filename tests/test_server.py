"""Unit tests for the TimeServer process (rules MM-1/IM-1 and the round
machinery)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.clocks.drift import DriftingClock
from repro.clocks.failures import StuckOnResetClock
from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.core.recovery import ThirdServerRecovery
from repro.network.delay import ConstantDelay, UniformDelay
from repro.network.topology import full_mesh
from repro.network.transport import Network
from repro.service.builder import ServerSpec, build_service
from repro.service.messages import RequestKind, TimeReply, TimeRequest
from repro.service.server import TimeServer
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngRegistry

from tests.helpers import make_mesh_service


def lone_server(delta=1e-4, skew=0.0, initial_error=0.5, epsilon_clock=None):
    """A single answer-only server on a 2-node graph (for MM-1 tests)."""
    engine = SimulationEngine()
    graph = full_mesh(2)
    network = Network(
        engine, graph, RngRegistry(seed=0), lan_delay=ConstantDelay(0.01)
    )
    clock = epsilon_clock or DriftingClock(skew)
    server = TimeServer(
        engine,
        "S1",
        clock,
        delta,
        network,
        policy=None,
        initial_error=initial_error,
    )
    network.register(server)
    server.start()
    return engine, network, server


class TestRuleMM1:
    def test_initial_report(self):
        engine, network, server = lone_server(initial_error=0.5)
        value, error = server.report()
        assert value == pytest.approx(0.0)
        assert error == pytest.approx(0.5)

    def test_error_grows_with_clock_age(self):
        """E_i(t) = ε_i + (C_i(t) - r_i)·δ_i."""
        engine, network, server = lone_server(delta=1e-3, initial_error=0.5)
        engine.advance_to(100.0)
        value, error = server.report()
        assert error == pytest.approx(0.5 + 100.0 * 1e-3, rel=1e-6)

    def test_error_growth_uses_local_clock_age(self):
        """A fast clock's error grows slightly faster in real time."""
        engine, network, server = lone_server(
            delta=1e-3, skew=0.5, initial_error=0.0
        )
        engine.advance_to(100.0)
        _value, error = server.report()
        assert error == pytest.approx(150.0 * 1e-3, rel=1e-6)

    def test_is_correct_oracle(self):
        engine, network, server = lone_server(
            delta=1e-3, skew=5e-4, initial_error=0.0
        )
        engine.advance_to(100.0)
        assert server.is_correct()  # |offset| = 0.05 <= E = ~0.1

    def test_answers_requests_with_report(self):
        engine, network, server = lone_server(initial_error=0.25)
        replies = []

        class Probe(TimeServer):
            def on_message(self, message, sender):
                replies.append(message)

        probe = Probe(
            engine, "S2", DriftingClock(0.0), 0.0, network, policy=None
        )
        network.register(probe)
        probe.start()
        network.send(
            "S2",
            "S1",
            TimeRequest(request_id=7, origin="S2", destination="S1"),
        )
        engine.run()
        assert len(replies) == 1
        assert replies[0].request_id == 7
        assert replies[0].server == "S1"
        assert replies[0].error >= 0.25


class TestPollingRounds:
    def test_mm_resets_toward_better_neighbour(self):
        """A server with a large error adopts a reference-grade neighbour."""
        graph = full_mesh(2)
        specs = [
            ServerSpec("S1", delta=1e-4, skew=5e-5, initial_error=5.0),
            ServerSpec("S2", delta=0.0, skew=0.0, initial_error=0.0, polls=False),
        ]
        service = build_service(
            graph,
            specs,
            policy=MMPolicy(),
            tau=10.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        service.run_until(60.0)
        server = service.servers["S1"]
        assert server.stats.resets >= 1
        _value, error = server.report()
        assert error < 1.0  # slashed from 5.0 toward the neighbour's 0

    def test_mm_never_adopts_worse(self):
        graph = full_mesh(2)
        specs = [
            ServerSpec("S1", delta=1e-6, skew=0.0, initial_error=0.0),
            ServerSpec("S2", delta=1e-6, skew=0.0, initial_error=9.0, polls=False),
        ]
        service = build_service(
            graph, specs, policy=MMPolicy(), tau=10.0, seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        service.run_until(100.0)
        assert service.servers["S1"].stats.resets == 0

    def test_im_resets_every_round(self, im_service):
        im_service.run_until(200.0)
        for server in im_service.servers.values():
            assert server.stats.resets == server.stats.rounds

    def test_round_counts(self, mm_service):
        mm_service.run_until(100.0)
        server = mm_service.servers["S1"]
        # Staggered first poll at τ/4 = 7.5, then every τ = 30 s.
        assert server.stats.rounds == 4

    def test_stopped_server_ignores_requests(self):
        engine, network, server = lone_server()
        server.stop()
        before = server.stats.requests_answered
        server.deliver(
            TimeRequest(request_id=1, origin="S2", destination="S1"), None
        )
        assert server.stats.requests_answered == before

    def test_late_replies_dropped(self):
        """Replies arriving after their round closed are ignored."""
        service = make_mesh_service(3, MMPolicy(), one_way=0.01, tau=30.0)
        service.run_until(300.0)
        # No crash and sane accounting: handled <= rounds * (n-1).
        for server in service.servers.values():
            assert server.stats.replies_handled <= server.stats.rounds * 2

    def test_validation_errors(self):
        engine = SimulationEngine()
        graph = full_mesh(2)
        network = Network(
            engine, graph, RngRegistry(0), lan_delay=ConstantDelay(0.01)
        )
        with pytest.raises(ValueError):
            TimeServer(
                engine, "S1", DriftingClock(0.0), -1.0, network
            )
        with pytest.raises(ValueError):
            TimeServer(
                engine,
                "S1",
                DriftingClock(0.0),
                1e-5,
                network,
                policy=MMPolicy(),
                tau=0.0,
            )
        with pytest.raises(ValueError):
            TimeServer(
                engine,
                "S1",
                DriftingClock(0.0),
                1e-5,
                network,
                initial_error=-1.0,
            )


class TestResetBookkeeping:
    def test_reset_reads_back_clock(self):
        """r_i comes from the clock, so a stuck clock corrupts the error —
        the paper's 'refusing to change its value when reset' hazard."""
        graph = full_mesh(2)
        stuck_clock = StuckOnResetClock(DriftingClock(skew=0.01), fail_at=0.0)
        specs = [
            ServerSpec(
                "S1",
                delta=1e-4,
                clock_factory=lambda rng, name: stuck_clock,
                initial_error=5.0,
            ),
            ServerSpec("S2", delta=0.0, skew=0.0, polls=False),
        ]
        service = build_service(
            graph, specs, policy=MMPolicy(), tau=10.0, seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        service.run_until(50.0)
        server = service.servers["S1"]
        if server.stats.resets:
            # The server *believes* it adopted S2's small error, but the
            # clock kept racing: the oracle sees an incorrect server.
            assert not server.is_correct()

    def test_recovery_unconditional_adoption(self):
        """On inconsistency, the server adopts the arbiter regardless of
        error size (Section 3's rule)."""
        graph = full_mesh(3)
        specs = [
            # S1 races far beyond its claimed bound.
            ServerSpec("S1", delta=1e-6, skew=0.01),
            ServerSpec("S2", delta=1e-6, skew=0.0, polls=False),
            ServerSpec("S3", delta=1e-6, skew=0.0, polls=False, initial_error=2.0),
        ]
        service = build_service(
            graph,
            specs,
            policy=MMPolicy(),
            tau=20.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
            recovery_factory=lambda name: ThirdServerRecovery(),
            trace_enabled=True,
        )
        service.run_until(600.0)
        server = service.servers["S1"]
        assert server.stats.inconsistencies > 0
        assert server.stats.recovery_resets > 0
        # After recovery the racing server is near the truth again at the
        # recovery instants (it keeps racing in between).
        recoveries = service.trace.filter(
            kind="reset",
            source="S1",
            predicate=lambda row: row.data.get("reset_kind") == "recovery",
        )
        assert recoveries
        for row in recoveries:
            assert abs(row.data["new_value"] - row.time) < 1.0


class TestReplyHygiene:
    """Duplicate, stale, and undeliverable-poll handling."""

    @staticmethod
    def _poll_reply(server, origin="S2"):
        return TimeReply(
            request_id=server._round.round_id,
            server=origin,
            destination=server.name,
            clock_value=1.0,
            error=0.05,
            kind=RequestKind.POLL,
            delta=1e-5,
            nonce=server._round.nonces.get(origin, 0),
        )

    def test_duplicate_reply_counted_once(self):
        service = make_mesh_service(2, tau=1000.0)
        s1 = service.servers["S1"]
        service.run_until(1.0)
        s1._start_round()
        good = self._poll_reply(s1)
        s1._handle_reply(good)
        assert s1.stats.replies_handled == 1
        s1._handle_reply(good)  # retransmission of the same reply
        assert s1.stats.replies_handled == 1

    def test_stale_request_id_ignored(self):
        service = make_mesh_service(2, tau=1000.0)
        s1 = service.servers["S1"]
        service.run_until(1.0)
        s1._start_round()
        good = self._poll_reply(s1)
        from dataclasses import replace

        s1._handle_reply(replace(good, request_id=good.request_id + 999))
        assert s1.stats.replies_handled == 0

    def test_unknown_sender_ignored(self):
        service = make_mesh_service(3, tau=1000.0)
        s1 = service.servers["S1"]
        service.run_until(1.0)
        s1._start_round()
        s1._round.outstanding.discard("S3")
        s1._handle_reply(self._poll_reply(s1, origin="S3"))
        assert s1.stats.replies_handled == 0

    def test_all_sends_failing_closes_round_immediately(self):
        service = make_mesh_service(2, tau=1000.0)
        service.run_until(1.0)
        service.network.link("S1", "S2").take_down()
        s1 = service.servers["S1"]
        s1._start_round()
        # The transport refused every poll: nothing can ever answer, so
        # the round must not sit open until the timeout.
        assert s1.stats.polls_unsent == 1
        assert s1._round.closed
        assert s1.stats.rounds == 1


class TestChurn:
    def _rejoin_round_time(self, name, rejoin_at=50.0):
        service = make_mesh_service(3, tau=30.0)
        server = service.servers[name]
        service.run_until(rejoin_at)
        server.leave()
        times = []
        original = server._start_round

        def recording():
            times.append(service.engine.now)
            original()

        server._start_round = recording
        server.rejoin(1.0)
        service.run_until(rejoin_at + 40.0)
        return times[0]

    def test_rejoin_stagger_deterministic(self):
        assert self._rejoin_round_time("S1") == self._rejoin_round_time("S1")

    def test_rejoin_stagger_decorrelated_across_servers(self):
        t1 = self._rejoin_round_time("S1")
        t2 = self._rejoin_round_time("S2")
        assert t1 != t2
        # Both restart within (τ/2, τ] of the rejoin instant.
        for t in (t1, t2):
            assert 50.0 + 15.0 <= t <= 50.0 + 30.0

    def test_recovery_timeout_releases_inflight_and_counts(self):
        engine = SimulationEngine()
        network = Network(
            engine, full_mesh(3), RngRegistry(seed=0),
            lan_delay=ConstantDelay(0.01),
        )
        recovery = ThirdServerRecovery()
        server = TimeServer(
            engine,
            "S1",
            DriftingClock(0.0),
            1e-4,
            network,
            policy=None,
            initial_error=0.5,
            recovery=recovery,
        )
        network.register(server)
        server.start()
        server._recovery_inflight = (42, "S2", 0.0)
        server._recovery_timeout(42)
        assert server._recovery_inflight is None
        assert recovery.stats.recoveries_timed_out == 1
        # A stale timeout for an already-settled attempt is a no-op.
        server._recovery_timeout(42)
        assert recovery.stats.recoveries_timed_out == 1

    def test_leave_abandons_inflight_recovery(self):
        engine = SimulationEngine()
        network = Network(
            engine, full_mesh(3), RngRegistry(seed=0),
            lan_delay=ConstantDelay(0.01),
        )
        recovery = ThirdServerRecovery()
        server = TimeServer(
            engine,
            "S1",
            DriftingClock(0.0),
            1e-4,
            network,
            policy=None,
            initial_error=0.5,
            recovery=recovery,
        )
        network.register(server)
        server.start()
        server._recovery_inflight = (7, "S3", 0.0)
        server.leave()
        assert server._recovery_inflight is None
        assert recovery.stats.recoveries_timed_out == 1
