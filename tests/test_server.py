"""Unit tests for the TimeServer process (rules MM-1/IM-1 and the round
machinery)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.clocks.drift import DriftingClock
from repro.clocks.failures import StuckOnResetClock
from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.core.recovery import ThirdServerRecovery
from repro.network.delay import ConstantDelay, UniformDelay
from repro.network.topology import full_mesh
from repro.network.transport import Network
from repro.service.builder import ServerSpec, build_service
from repro.service.messages import RequestKind, TimeRequest
from repro.service.server import TimeServer
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import RngRegistry

from tests.helpers import make_mesh_service


def lone_server(delta=1e-4, skew=0.0, initial_error=0.5, epsilon_clock=None):
    """A single answer-only server on a 2-node graph (for MM-1 tests)."""
    engine = SimulationEngine()
    graph = full_mesh(2)
    network = Network(
        engine, graph, RngRegistry(seed=0), lan_delay=ConstantDelay(0.01)
    )
    clock = epsilon_clock or DriftingClock(skew)
    server = TimeServer(
        engine,
        "S1",
        clock,
        delta,
        network,
        policy=None,
        initial_error=initial_error,
    )
    network.register(server)
    server.start()
    return engine, network, server


class TestRuleMM1:
    def test_initial_report(self):
        engine, network, server = lone_server(initial_error=0.5)
        value, error = server.report()
        assert value == pytest.approx(0.0)
        assert error == pytest.approx(0.5)

    def test_error_grows_with_clock_age(self):
        """E_i(t) = ε_i + (C_i(t) - r_i)·δ_i."""
        engine, network, server = lone_server(delta=1e-3, initial_error=0.5)
        engine.advance_to(100.0)
        value, error = server.report()
        assert error == pytest.approx(0.5 + 100.0 * 1e-3, rel=1e-6)

    def test_error_growth_uses_local_clock_age(self):
        """A fast clock's error grows slightly faster in real time."""
        engine, network, server = lone_server(
            delta=1e-3, skew=0.5, initial_error=0.0
        )
        engine.advance_to(100.0)
        _value, error = server.report()
        assert error == pytest.approx(150.0 * 1e-3, rel=1e-6)

    def test_is_correct_oracle(self):
        engine, network, server = lone_server(
            delta=1e-3, skew=5e-4, initial_error=0.0
        )
        engine.advance_to(100.0)
        assert server.is_correct()  # |offset| = 0.05 <= E = ~0.1

    def test_answers_requests_with_report(self):
        engine, network, server = lone_server(initial_error=0.25)
        replies = []

        class Probe(TimeServer):
            def on_message(self, message, sender):
                replies.append(message)

        probe = Probe(
            engine, "S2", DriftingClock(0.0), 0.0, network, policy=None
        )
        network.register(probe)
        probe.start()
        network.send(
            "S2",
            "S1",
            TimeRequest(request_id=7, origin="S2", destination="S1"),
        )
        engine.run()
        assert len(replies) == 1
        assert replies[0].request_id == 7
        assert replies[0].server == "S1"
        assert replies[0].error >= 0.25


class TestPollingRounds:
    def test_mm_resets_toward_better_neighbour(self):
        """A server with a large error adopts a reference-grade neighbour."""
        graph = full_mesh(2)
        specs = [
            ServerSpec("S1", delta=1e-4, skew=5e-5, initial_error=5.0),
            ServerSpec("S2", delta=0.0, skew=0.0, initial_error=0.0, polls=False),
        ]
        service = build_service(
            graph,
            specs,
            policy=MMPolicy(),
            tau=10.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        service.run_until(60.0)
        server = service.servers["S1"]
        assert server.stats.resets >= 1
        _value, error = server.report()
        assert error < 1.0  # slashed from 5.0 toward the neighbour's 0

    def test_mm_never_adopts_worse(self):
        graph = full_mesh(2)
        specs = [
            ServerSpec("S1", delta=1e-6, skew=0.0, initial_error=0.0),
            ServerSpec("S2", delta=1e-6, skew=0.0, initial_error=9.0, polls=False),
        ]
        service = build_service(
            graph, specs, policy=MMPolicy(), tau=10.0, seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        service.run_until(100.0)
        assert service.servers["S1"].stats.resets == 0

    def test_im_resets_every_round(self, im_service):
        im_service.run_until(200.0)
        for server in im_service.servers.values():
            assert server.stats.resets == server.stats.rounds

    def test_round_counts(self, mm_service):
        mm_service.run_until(100.0)
        server = mm_service.servers["S1"]
        # Staggered first poll at τ/4 = 7.5, then every τ = 30 s.
        assert server.stats.rounds == 4

    def test_stopped_server_ignores_requests(self):
        engine, network, server = lone_server()
        server.stop()
        before = server.stats.requests_answered
        server.deliver(
            TimeRequest(request_id=1, origin="S2", destination="S1"), None
        )
        assert server.stats.requests_answered == before

    def test_late_replies_dropped(self):
        """Replies arriving after their round closed are ignored."""
        service = make_mesh_service(3, MMPolicy(), one_way=0.01, tau=30.0)
        service.run_until(300.0)
        # No crash and sane accounting: handled <= rounds * (n-1).
        for server in service.servers.values():
            assert server.stats.replies_handled <= server.stats.rounds * 2

    def test_validation_errors(self):
        engine = SimulationEngine()
        graph = full_mesh(2)
        network = Network(
            engine, graph, RngRegistry(0), lan_delay=ConstantDelay(0.01)
        )
        with pytest.raises(ValueError):
            TimeServer(
                engine, "S1", DriftingClock(0.0), -1.0, network
            )
        with pytest.raises(ValueError):
            TimeServer(
                engine,
                "S1",
                DriftingClock(0.0),
                1e-5,
                network,
                policy=MMPolicy(),
                tau=0.0,
            )
        with pytest.raises(ValueError):
            TimeServer(
                engine,
                "S1",
                DriftingClock(0.0),
                1e-5,
                network,
                initial_error=-1.0,
            )


class TestResetBookkeeping:
    def test_reset_reads_back_clock(self):
        """r_i comes from the clock, so a stuck clock corrupts the error —
        the paper's 'refusing to change its value when reset' hazard."""
        graph = full_mesh(2)
        stuck_clock = StuckOnResetClock(DriftingClock(skew=0.01), fail_at=0.0)
        specs = [
            ServerSpec(
                "S1",
                delta=1e-4,
                clock_factory=lambda rng, name: stuck_clock,
                initial_error=5.0,
            ),
            ServerSpec("S2", delta=0.0, skew=0.0, polls=False),
        ]
        service = build_service(
            graph, specs, policy=MMPolicy(), tau=10.0, seed=0,
            lan_delay=ConstantDelay(0.01),
        )
        service.run_until(50.0)
        server = service.servers["S1"]
        if server.stats.resets:
            # The server *believes* it adopted S2's small error, but the
            # clock kept racing: the oracle sees an incorrect server.
            assert not server.is_correct()

    def test_recovery_unconditional_adoption(self):
        """On inconsistency, the server adopts the arbiter regardless of
        error size (Section 3's rule)."""
        graph = full_mesh(3)
        specs = [
            # S1 races far beyond its claimed bound.
            ServerSpec("S1", delta=1e-6, skew=0.01),
            ServerSpec("S2", delta=1e-6, skew=0.0, polls=False),
            ServerSpec("S3", delta=1e-6, skew=0.0, polls=False, initial_error=2.0),
        ]
        service = build_service(
            graph,
            specs,
            policy=MMPolicy(),
            tau=20.0,
            seed=0,
            lan_delay=ConstantDelay(0.01),
            recovery_factory=lambda name: ThirdServerRecovery(),
            trace_enabled=True,
        )
        service.run_until(600.0)
        server = service.servers["S1"]
        assert server.stats.inconsistencies > 0
        assert server.stats.recovery_resets > 0
        # After recovery the racing server is near the truth again at the
        # recovery instants (it keeps racing in between).
        recoveries = service.trace.filter(
            kind="reset",
            source="S1",
            predicate=lambda row: row.data.get("reset_kind") == "recovery",
        )
        assert recoveries
        for row in recoveries:
            assert abs(row.data["new_value"] - row.time) < 1.0
