"""Unit tests for declarative service assembly and snapshots."""

from __future__ import annotations

import pytest

from repro.clocks.drift import DriftingClock
from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.network.delay import ConstantDelay
from repro.network.topology import full_mesh
from repro.service.builder import ServerSpec, build_service
from repro.service.reference import ReferenceServer

from tests.helpers import make_mesh_service


class TestBuildService:
    def test_duplicate_names_rejected(self):
        specs = [ServerSpec("S1"), ServerSpec("S1")]
        with pytest.raises(ValueError):
            build_service(full_mesh(2), specs, policy=MMPolicy())

    def test_unknown_names_rejected(self):
        specs = [ServerSpec("S1"), ServerSpec("S9")]
        with pytest.raises(ValueError):
            build_service(full_mesh(2), specs, policy=MMPolicy())

    def test_policy_and_factory_mutually_exclusive(self):
        specs = [ServerSpec("S1"), ServerSpec("S2")]
        with pytest.raises(ValueError):
            build_service(
                full_mesh(2),
                specs,
                policy=MMPolicy(),
                policy_factory=lambda name: IMPolicy(),
            )

    def test_reference_spec_builds_reference_server(self):
        specs = [ServerSpec("S1"), ServerSpec("S2", reference=True, initial_error=0.01)]
        service = build_service(
            full_mesh(2), specs, policy=MMPolicy(), lan_delay=ConstantDelay(0.01)
        )
        assert isinstance(service.servers["S2"], ReferenceServer)
        _value, error = service.servers["S2"].report()
        assert error == pytest.approx(0.01)

    def test_clock_factory_used(self):
        sentinel = DriftingClock(skew=0.123)
        specs = [
            ServerSpec("S1", clock_factory=lambda rng, name: sentinel),
            ServerSpec("S2"),
        ]
        service = build_service(
            full_mesh(2), specs, policy=MMPolicy(), lan_delay=ConstantDelay(0.01)
        )
        assert service.servers["S1"].clock is sentinel

    def test_policy_factory_per_server(self):
        policies = {"S1": MMPolicy(), "S2": IMPolicy()}
        specs = [ServerSpec("S1"), ServerSpec("S2")]
        service = build_service(
            full_mesh(2),
            specs,
            policy_factory=lambda name: policies[name],
            lan_delay=ConstantDelay(0.01),
        )
        assert service.servers["S1"].policy is policies["S1"]
        assert service.servers["S2"].policy is policies["S2"]

    def test_stagger_phases_distinct(self):
        service = make_mesh_service(4, MMPolicy(), tau=40.0)
        service.run_until(39.9)  # all first polls happen inside one τ
        rounds = [s.stats.rounds for s in service.servers.values()]
        assert all(r == 1 for r in rounds)

    def test_unstarted_service(self):
        specs = [ServerSpec("S1"), ServerSpec("S2")]
        service = build_service(
            full_mesh(2),
            specs,
            policy=MMPolicy(),
            lan_delay=ConstantDelay(0.01),
            start=False,
        )
        assert not any(s.started for s in service.servers.values())
        service.start()
        assert all(s.started for s in service.servers.values())


class TestSnapshots:
    def test_snapshot_fields_consistent(self):
        service = make_mesh_service(3)
        service.run_until(100.0)
        snap = service.snapshot()
        assert snap.time == 100.0
        for name in ("S1", "S2", "S3"):
            assert snap.offsets[name] == pytest.approx(
                snap.values[name] - 100.0
            )
            interval = snap.interval(name)
            assert interval.center == pytest.approx(snap.values[name])
            assert interval.error == pytest.approx(snap.errors[name])

    def test_snapshot_aggregates(self):
        service = make_mesh_service(3)
        service.run_until(100.0)
        snap = service.snapshot()
        assert snap.min_error == min(snap.errors.values())
        assert snap.max_error == max(snap.errors.values())
        values = list(snap.values.values())
        assert snap.asynchronism == pytest.approx(max(values) - min(values))

    def test_sample_advances_time(self):
        service = make_mesh_service(3)
        snaps = service.sample([10.0, 20.0, 30.0])
        assert [snap.time for snap in snaps] == [10.0, 20.0, 30.0]
        assert service.engine.now == 30.0

    def test_server_names_filter(self):
        specs = [
            ServerSpec("S1"),
            ServerSpec("S2", reference=True),
        ]
        service = build_service(
            full_mesh(2), specs, policy=MMPolicy(), lan_delay=ConstantDelay(0.01)
        )
        assert service.server_names() == ["S1", "S2"]
        assert service.server_names(polling_only=True) == ["S1"]

    def test_determinism_same_seed(self):
        a = make_mesh_service(4, MMPolicy(), seed=5)
        b = make_mesh_service(4, MMPolicy(), seed=5)
        a.run_until(500.0)
        b.run_until(500.0)
        assert a.snapshot().errors == b.snapshot().errors
        assert a.snapshot().values == b.snapshot().values

    def test_different_seeds_differ(self):
        a = make_mesh_service(4, IMPolicy(), seed=5)
        b = make_mesh_service(4, IMPolicy(), seed=6)
        a.run_until(500.0)
        b.run_until(500.0)
        assert a.snapshot().errors != b.snapshot().errors
