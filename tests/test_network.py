"""Unit tests for topologies, delay models, links, and the transport."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.network.delay import (
    BimodalDelay,
    ConstantDelay,
    TruncatedExponentialDelay,
    UniformDelay,
)
from repro.network.link import Link
from repro.network.topology import (
    full_mesh,
    line,
    neighbours,
    random_connected,
    ring,
    star,
    two_level_internet,
    validate_topology,
)
from repro.network.transport import Network
from repro.simulation.engine import SimulationEngine
from repro.simulation.process import SimProcess
from repro.simulation.rng import RngRegistry


class TestTopologies:
    def test_full_mesh(self):
        graph = full_mesh(4)
        assert sorted(graph.nodes) == ["S1", "S2", "S3", "S4"]
        assert graph.number_of_edges() == 6

    def test_ring_degree_two(self):
        graph = ring(5)
        assert all(graph.degree(node) == 2 for node in graph)

    def test_line_endpoints(self):
        graph = line(4)
        degrees = sorted(dict(graph.degree).values())
        assert degrees == [1, 1, 2, 2]

    def test_star_hub(self):
        graph = star(5)
        assert graph.degree("S1") == 4

    def test_random_connected_always_connected(self):
        rng = np.random.default_rng(0)
        for p in (0.0, 0.05, 0.5):
            graph = random_connected(12, p, rng)
            assert nx.is_connected(graph)

    def test_two_level_internet_structure(self):
        graph = two_level_internet(3, 4)
        assert graph.number_of_nodes() == 12
        # LAN edges within each network: full mesh of 4 = 6 per network.
        lan = [e for e in graph.edges(data=True) if e[2].get("kind") == "lan"]
        wan = [e for e in graph.edges(data=True) if e[2].get("kind") == "wan"]
        assert len(lan) == 18
        assert len(wan) == 3  # ring of 3 gateways
        assert nx.is_connected(graph)

    def test_two_level_single_network(self):
        graph = two_level_internet(1, 3)
        assert graph.number_of_edges() == 3

    def test_two_level_extra_gateway_links(self):
        rng = np.random.default_rng(0)
        base = two_level_internet(4, 2)
        extra = two_level_internet(4, 2, rng=rng, extra_gateway_links=2)
        assert extra.number_of_edges() == base.number_of_edges() + 2

    def test_validate_topology(self):
        with pytest.raises(ValueError):
            validate_topology(nx.Graph())
        disconnected = nx.Graph()
        disconnected.add_nodes_from(["A", "B"])
        with pytest.raises(ValueError):
            validate_topology(disconnected)

    def test_neighbours_sorted(self):
        graph = full_mesh(3)
        assert neighbours(graph, "S2") == ["S1", "S3"]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            ring(2)
        with pytest.raises(ValueError):
            star(1)
        with pytest.raises(ValueError):
            two_level_internet(0, 3)


class TestDelayModels:
    def test_constant(self):
        rng = np.random.default_rng(0)
        model = ConstantDelay(0.25)
        assert model.sample(rng) == 0.25
        assert model.round_trip_bound == 0.5

    def test_uniform_within_bounds(self):
        rng = np.random.default_rng(0)
        model = UniformDelay(0.1, minimum=0.02)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(0.02 <= s <= 0.1 for s in samples)

    def test_uniform_zero_minimum_default(self):
        """The paper's assumption: minimum message delay is zero."""
        assert UniformDelay(0.1).minimum == 0.0

    def test_truncated_exponential_respects_bound(self):
        rng = np.random.default_rng(0)
        model = TruncatedExponentialDelay(mean=0.05, bound=0.1)
        samples = [model.sample(rng) for _ in range(500)]
        assert all(0.0 <= s <= 0.1 for s in samples)

    def test_bimodal_mixture(self):
        rng = np.random.default_rng(0)
        model = BimodalDelay(
            ConstantDelay(0.01), ConstantDelay(0.5), slow_probability=0.3
        )
        samples = [model.sample(rng) for _ in range(1000)]
        slow_fraction = sum(1 for s in samples if s == 0.5) / len(samples)
        assert 0.2 < slow_fraction < 0.4
        assert model.bound == 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)
        with pytest.raises(ValueError):
            UniformDelay(0.1, minimum=0.2)
        with pytest.raises(ValueError):
            TruncatedExponentialDelay(mean=0.0, bound=1.0)
        with pytest.raises(ValueError):
            BimodalDelay(ConstantDelay(0), ConstantDelay(0), 1.5)


class TestLink:
    def test_delivery_samples_delay(self):
        rng = np.random.default_rng(0)
        link = Link(delay=ConstantDelay(0.1))
        assert link.try_send(rng) == 0.1
        assert link.stats.delivered == 1

    def test_loss(self):
        rng = np.random.default_rng(0)
        link = Link(delay=ConstantDelay(0.1), loss_probability=1.0)
        assert link.try_send(rng) is None
        assert link.stats.lost == 1

    def test_down_link_blocks(self):
        rng = np.random.default_rng(0)
        link = Link(delay=ConstantDelay(0.1))
        link.take_down()
        assert link.try_send(rng) is None
        assert link.stats.blocked == 1
        link.bring_up()
        assert link.try_send(rng) == 0.1

    def test_partitioned_blocks(self):
        rng = np.random.default_rng(0)
        link = Link(delay=ConstantDelay(0.1))
        link.partitioned = True
        assert not link.available
        assert link.try_send(rng) is None


class Sink(SimProcess):
    """Records deliveries."""

    def __init__(self, engine, name):
        super().__init__(engine, name)
        self.received = []

    def on_message(self, message, sender):
        self.received.append((self.engine.now, message))


def make_network(graph=None, **kwargs):
    engine = SimulationEngine()
    if graph is None:
        graph = full_mesh(3)
    network = Network(
        engine,
        graph,
        RngRegistry(seed=0),
        lan_delay=kwargs.pop("lan_delay", ConstantDelay(0.1)),
        **kwargs,
    )
    sinks = {}
    for name in network.names:
        sink = Sink(engine, name)
        sink.start()
        network.register(sink)
        sinks[name] = sink
    return engine, network, sinks


class TestTransport:
    def test_send_delivers_after_delay(self):
        engine, network, sinks = make_network()
        assert network.send("S1", "S2", "hello")
        engine.run()
        assert sinks["S2"].received == [(0.1, "hello")]

    def test_send_to_non_adjacent_dropped_without_long_haul(self):
        graph = line(3)  # S1-S2-S3
        engine, network, sinks = make_network(graph)
        assert not network.send("S1", "S3", "hello")
        engine.run()
        assert sinks["S3"].received == []

    def test_long_haul_reaches_non_adjacent(self):
        graph = line(3)
        engine, network, sinks = make_network(graph, long_haul=ConstantDelay(0.5))
        assert network.send("S1", "S3", "hello")
        engine.run()
        assert sinks["S3"].received == [(0.5, "hello")]

    def test_broadcast_hits_all_neighbours(self):
        engine, network, sinks = make_network()
        count = network.broadcast("S1", lambda dest: f"to-{dest}")
        engine.run()
        assert count == 2
        assert sinks["S2"].received[0][1] == "to-S2"
        assert sinks["S3"].received[0][1] == "to-S3"

    def test_partition_blocks_cross_group(self):
        engine, network, sinks = make_network()
        network.partition([["S1"], ["S2", "S3"]])
        assert not network.send("S1", "S2", "x")
        assert network.send("S2", "S3", "y")
        engine.run()
        assert sinks["S2"].received == []
        assert sinks["S3"].received != []

    def test_heal_restores_links(self):
        engine, network, sinks = make_network()
        network.partition([["S1"], ["S2", "S3"]])
        network.heal()
        assert network.send("S1", "S2", "x")

    def test_wan_delay_selected_by_edge_kind(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", kind="wan")
        engine = SimulationEngine()
        network = Network(
            engine,
            graph,
            RngRegistry(seed=0),
            lan_delay=ConstantDelay(0.01),
            wan_delay=ConstantDelay(0.4),
        )
        sink = Sink(engine, "B")
        sink.start()
        network.register(sink)
        network.register(Sink(engine, "A"))
        network.send("A", "B", "x")
        engine.run()
        assert sink.received == [(0.4, "x")]

    def test_xi_reflects_worst_delay_class(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", kind="wan")
        engine = SimulationEngine()
        network = Network(
            engine,
            graph,
            RngRegistry(seed=0),
            lan_delay=ConstantDelay(0.01),
            wan_delay=ConstantDelay(0.4),
            long_haul=ConstantDelay(1.0),
        )
        assert network.xi == pytest.approx(2.0)

    def test_duplicate_registration_rejected(self):
        engine, network, sinks = make_network()
        with pytest.raises(ValueError):
            network.register(Sink(engine, "S1"))

    def test_unknown_node_registration_rejected(self):
        engine, network, sinks = make_network()
        with pytest.raises(KeyError):
            network.register(Sink(engine, "S99"))

    def test_loss_probability_drops_messages(self):
        engine, network, sinks = make_network(loss_probability=1.0)
        assert not network.send("S1", "S2", "x")
        assert network.stats.dropped == 1

    def test_stats_track_delivery(self):
        engine, network, sinks = make_network()
        network.send("S1", "S2", "x")
        engine.run()
        assert network.stats.sent == 1
        assert network.stats.delivered == 1


class TestMessageTaps:
    """add_tap/remove_tap: the interception point the chaos injector uses."""

    def test_pass_through_tap_leaves_delivery_alone(self):
        engine, network, sinks = make_network()
        seen = []

        def observer(source, destination, message, delay):
            seen.append((source, destination, message, delay))
            return None

        network.add_tap(observer)
        assert network.send("S1", "S2", "hello")
        engine.run()
        assert seen == [("S1", "S2", "hello", 0.1)]
        assert sinks["S2"].received == [(0.1, "hello")]
        assert network.stats.tapped == 0

    def test_rewrite_tap_replaces_message(self):
        engine, network, sinks = make_network()
        network.add_tap(lambda s, d, m, dly: [(m.upper(), dly)])
        network.send("S1", "S2", "hello")
        engine.run()
        assert sinks["S2"].received == [(0.1, "HELLO")]
        assert network.stats.tapped == 1

    def test_drop_tap_fails_the_send(self):
        engine, network, sinks = make_network()
        network.add_tap(lambda s, d, m, dly: [])
        dropped_before = network.stats.dropped
        assert not network.send("S1", "S2", "hello")
        engine.run()
        assert sinks["S2"].received == []
        assert network.stats.dropped == dropped_before + 1

    def test_duplicate_tap_delivers_twice(self):
        engine, network, sinks = make_network()
        network.add_tap(lambda s, d, m, dly: [(m, dly), (m, dly + 0.5)])
        network.send("S1", "S2", "hello")
        engine.run()
        assert sinks["S2"].received == [(0.1, "hello"), (0.6, "hello")]

    def test_taps_compose_in_registration_order(self):
        engine, network, sinks = make_network()
        network.add_tap(lambda s, d, m, dly: [(m + "-a", dly)])
        network.add_tap(lambda s, d, m, dly: [(m + "-b", dly)])
        network.send("S1", "S2", "x")
        engine.run()
        assert sinks["S2"].received == [(0.1, "x-a-b")]

    def test_remove_tap_restores_plain_delivery(self):
        engine, network, sinks = make_network()
        tap = lambda s, d, m, dly: []
        network.add_tap(tap)
        assert not network.send("S1", "S2", "one")
        network.remove_tap(tap)
        network.remove_tap(tap)  # removing twice is harmless
        assert network.send("S1", "S2", "two")
        engine.run()
        assert sinks["S2"].received == [(0.1, "two")]
