"""Unit tests for SimProcess lifecycle and messaging hooks."""

from __future__ import annotations

from repro.simulation.process import SimProcess


class Recorder(SimProcess):
    """Test double that records lifecycle and messages."""

    def __init__(self, engine, name="P"):
        super().__init__(engine, name)
        self.events = []

    def on_start(self):
        self.events.append("start")

    def on_stop(self):
        self.events.append("stop")

    def on_message(self, message, sender):
        self.events.append(("msg", message))


class TestLifecycle:
    def test_start_is_idempotent(self, engine):
        proc = Recorder(engine)
        proc.start()
        proc.start()
        assert proc.events == ["start"]
        assert proc.started and proc.running

    def test_stop_is_idempotent(self, engine):
        proc = Recorder(engine)
        proc.start()
        proc.stop()
        proc.stop()
        assert proc.events == ["start", "stop"]
        assert not proc.running

    def test_stop_cancels_periodic_tasks(self, engine):
        proc = Recorder(engine)
        proc.start()
        fired = []
        proc.every(1.0, lambda: fired.append(engine.now))
        engine.run(until=2.5)
        proc.stop()
        engine.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_guarded_callback_noop_after_stop(self, engine):
        proc = Recorder(engine)
        proc.start()
        fired = []
        proc.call_after(1.0, lambda: fired.append(1))
        proc.stop()
        engine.run()
        assert fired == []


class TestMessaging:
    def test_deliver_dispatches_when_running(self, engine):
        proc = Recorder(engine)
        proc.start()
        proc.deliver("hello", proc)
        assert ("msg", "hello") in proc.events

    def test_deliver_dropped_before_start(self, engine):
        proc = Recorder(engine)
        proc.deliver("hello", proc)
        assert proc.events == []

    def test_deliver_dropped_after_stop(self, engine):
        proc = Recorder(engine)
        proc.start()
        proc.stop()
        proc.deliver("hello", proc)
        assert ("msg", "hello") not in proc.events


class TestScheduling:
    def test_call_at_and_now(self, engine):
        proc = Recorder(engine)
        proc.start()
        seen = []
        proc.call_at(4.0, lambda: seen.append(proc.now))
        engine.run()
        assert seen == [4.0]

    def test_every_first_at(self, engine):
        proc = Recorder(engine)
        proc.start()
        fired = []
        proc.every(2.0, lambda: fired.append(engine.now), first_at=0.5)
        engine.run(until=5.0)
        assert fired == [0.5, 2.5, 4.5]
