"""Integration tests: every experiment reproduces its paper claim."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablations,
    correctness,
    drift_recovery,
    figure1,
    figure2,
    figure3,
    figure4,
    partition,
    tenfold,
    theorem4,
    theorem8,
)
from repro.experiments.scenarios import MeshScenario


class TestScenarioBuilder:
    def test_default_skews_inside_bound(self):
        scenario = MeshScenario(n=5, delta=1e-4)
        for skew, delta in zip(scenario.resolved_skews(), scenario.resolved_deltas()):
            assert abs(skew) < delta

    def test_explicit_lengths_validated(self):
        with pytest.raises(ValueError):
            MeshScenario(n=3, deltas=[1e-5]).resolved_deltas()
        with pytest.raises(ValueError):
            MeshScenario(n=3, skews=[0.0]).resolved_skews()

    def test_names_and_xi(self):
        scenario = MeshScenario(n=2, one_way=0.05)
        assert scenario.names() == ["S1", "S2"]
        assert scenario.xi == pytest.approx(0.1)


class TestFigure1:
    def test_all_intervals_stay_correct(self):
        result = figure1.run()
        assert result.all_correct

    def test_widths_grow_at_two_delta(self):
        """Lemma 1: width grows at 2δ per real second (±δ² slop)."""
        result = figure1.run()
        t0, t1 = result.snapshots[0].time, result.snapshots[-1].time
        for name, delta, _skew in figure1.FIGURE1_SERVERS:
            w0 = result.intervals_at(0)[name].width
            w1 = result.intervals_at(-1)[name].width
            expected = 2.0 * delta * (t1 - t0)
            assert w1 - w0 == pytest.approx(expected, rel=1e-3)

    def test_centres_shift_at_actual_skew(self):
        result = figure1.run()
        t0, t1 = result.snapshots[0].time, result.snapshots[-1].time
        for name, _delta, skew in figure1.FIGURE1_SERVERS:
            c0 = result.intervals_at(0)[name].center - t0
            c1 = result.intervals_at(-1)[name].center - t1
            assert c1 - c0 == pytest.approx(skew * (t1 - t0), rel=1e-6)

    def test_diagrams_rendered(self):
        result = figure1.run()
        assert len(result.diagrams) == 3
        assert all("S1" in d for d in result.diagrams)


class TestFigure2:
    def test_theorem6_holds(self):
        assert figure2.run().theorem6_holds

    def test_nested_case_edges_same_server(self):
        result = figure2.run()
        assert result.nested.same_server_edges
        assert result.nested.intersection.width == pytest.approx(
            result.nested.smallest_width
        )

    def test_overlap_case_beats_smallest(self):
        result = figure2.run()
        assert not result.overlapping.same_server_edges
        assert (
            result.overlapping.intersection.width
            < result.overlapping.smallest_width
        )


class TestFigure3:
    def test_state_is_consistent(self):
        assert figure3.run().consistent

    def test_mm_recovers_im_does_not(self):
        result = figure3.run()
        assert result.mm_correct
        assert not result.im_correct

    def test_mm_chooses_s3(self):
        assert figure3.run().mm_source == "S3"

    def test_im_result_is_s2_s3_intersection(self):
        result = figure3.run()
        assert set(result.im_source.split("∩")) == {"S2", "S3"}


class TestFigure4:
    def test_not_globally_consistent(self):
        assert not figure4.run().globally_consistent

    def test_exactly_three_groups(self):
        result = figure4.run()
        assert len(result.groups) == 3

    def test_exactly_one_group_contains_truth(self):
        result = figure4.run()
        assert len(result.correct) == 1


class TestTheorem4:
    def test_converges_within_predicted_bound(self):
        result = theorem4.run()
        assert result.report.converged
        assert result.within_bound

    def test_final_holder_is_most_accurate(self):
        result = theorem4.run()
        assert result.report.holder_series[-1] == "S1"


class TestTheorem8:
    def test_expected_error_decreases_with_n(self):
        result = theorem8.run_monte_carlo(trials=1500)
        assert result.monotone_decreasing

    def test_large_n_approaches_e0(self):
        result = theorem8.run_monte_carlo(trials=1500)
        largest = max(result.mean_error)
        assert result.mean_error[largest] < 2.0 * result.e0
        assert result.mean_error[1] == pytest.approx(
            result.single_clock_error, rel=0.05
        )

    def test_overspecification_growth_matches_prediction(self):
        for row in theorem8.run_overspecified(trials=1500):
            assert row.measured_excess == pytest.approx(
                row.limit_growth, abs=0.02
            )


class TestTenfold:
    def test_ratio_is_about_ten(self):
        result = tenfold.run(horizon=3.0 * 3600.0, samples=60)
        assert 7.0 < result.ratio < 13.0

    def test_fits_are_clean_lines(self):
        result = tenfold.run(horizon=3.0 * 3600.0, samples=60)
        assert result.mm.r_squared > 0.99
        assert result.im.r_squared > 0.95


class TestDriftRecovery:
    def test_inconsistencies_drive_recoveries(self):
        result = drift_recovery.run(tau=120.0, horizon=3600.0)
        assert result.inconsistencies > 0
        assert result.recoveries > 0

    def test_recovery_keeps_racing_clock_bounded(self):
        result = drift_recovery.run(tau=120.0, horizon=3600.0)
        assert result.b_kept_bounded

    def test_worst_offset_grows_with_tau(self):
        rows = drift_recovery.sweep_tau(taus=(60.0, 600.0), horizon=3600.0)
        assert rows[1].worst_offset > rows[0].worst_offset * 2


class TestPartition:
    def test_service_partitions(self):
        result = partition.run()
        assert result.partitioned

    def test_recovery_poisoning_observed(self):
        result = partition.run()
        assert result.poisoned_recoveries > 0

    def test_good_core_survives(self):
        assert partition.run().core_still_correct

    def test_consonance_diagnosis(self):
        assert partition.run().diagnosis_correct


class TestCorrectnessSuite:
    def test_all_valid_runs_correct(self):
        for run in correctness.run_suite(seeds=(0, 1), sizes=(3,), horizon=900.0):
            assert run.correct, run

    def test_invalid_control_violates(self):
        control = correctness.run_invalid_bound_control(horizon=900.0)
        assert control.violations > 0


class TestAblations:
    def test_mm_inflation_prevents_unsafe_resets(self):
        result = ablations.run_mm_inflation()
        assert result.violations_with == 0
        assert result.violations_without > 0

    def test_im_variants_ordered(self):
        by_name = {v.name: v for v in ablations.run_im_variants(horizon=1800.0)}
        assert by_name["widen-both-edges"].ratio_to_paper > 1.0
        assert by_name["no-self-interval"].ratio_to_paper > 1.0
        assert by_name["trailing-reset"].ratio_to_paper > 1.0

    def test_tau_sweep_monotone(self):
        rows = ablations.run_tau_sweep(taus=(30.0, 120.0))
        assert rows[1].mean_error > rows[0].mean_error
        assert rows[1].max_asynchronism > rows[0].max_asynchronism
