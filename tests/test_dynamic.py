"""Dynamic-topology subsystem tests.

Covers the live-mutation layer end to end: re-runnable topology
validation, raw network edge mutation, the DynamicTopology guard and
stash/restore semantics, mid-round pruning when a neighbour departs
between request and reply, churn steering clear of scheduled fault
windows, the gradient policy's correctness envelope, the stabilizer's
phase clock, the injector's topology events, the local-skew telemetry,
and the dynamic gauntlet's determinism.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.im import IMPolicy
from repro.core.mm import MMPolicy
from repro.core.sync import LocalState, Reply
from repro.dynamic import (
    DynamicTopology,
    EdgeChurnController,
    GradientPolicy,
    LocalSkewMonitor,
    MobilityProcess,
    WaypointMobility,
)
from repro.faults import EdgeChurn, FaultSchedule, ServerCrash, attach_chaos
from repro.faults.schedule import ClockFreeze
from repro.network.topology import line, ring, validate_topology
from repro.recovery import SelfStabilizingRecovery
from repro.recovery.stabilizer import StabilizerConfig
from repro.service.builder import ServerSpec, build_service
from repro.service.churn import ChurnController
from repro.experiments.dynamic_gauntlet import run_gauntlet
from repro.telemetry import ServiceTelemetry
from tests.helpers import make_mesh_service

pytestmark = pytest.mark.dynamic


def make_service(graph, policy=None, *, tau=30.0, seed=0, **kwargs):
    """A service over an arbitrary graph with the standard drift spread."""
    names = sorted(graph.nodes)
    n = len(names)
    specs = [
        ServerSpec(name, delta=1e-5, skew=(k - (n - 1) / 2) * 2e-6)
        for k, name in enumerate(names)
    ]
    return build_service(
        graph,
        specs,
        policy=policy if policy is not None else MMPolicy(),
        tau=tau,
        seed=seed,
        **kwargs,
    )


# ---------------------------------------------------------------- validation


class TestValidateTopology:
    def test_disconnection_names_isolated_component(self):
        graph = nx.Graph()
        graph.add_nodes_from(["S1", "S2", "S3"])
        graph.add_edge("S1", "S2")
        with pytest.raises(
            ValueError, match=r"isolated component: \{S3\} \(1 of 3 servers\)"
        ):
            validate_topology(graph)

    def test_smallest_component_is_the_one_named(self):
        graph = nx.Graph()
        graph.add_edges_from([("S1", "S2"), ("S2", "S3"), ("S4", "S5")])
        with pytest.raises(ValueError, match=r"\{S4, S5\} \(2 of 5 servers\)"):
            validate_topology(graph)

    def test_present_subset_restricts_the_check(self):
        graph = nx.Graph()
        graph.add_nodes_from(["S1", "S2", "S3"])
        graph.add_edge("S1", "S2")
        # S3 departed: the remaining members are connected.
        validate_topology(graph, present=["S1", "S2"])

    def test_rerunnable_across_mutations(self):
        graph = ring(4)
        validate_topology(graph)
        graph.remove_edge("S1", "S2")  # ring minus one edge: a line
        validate_topology(graph)
        graph.remove_edge("S3", "S4")
        with pytest.raises(ValueError, match="isolated component"):
            validate_topology(graph)
        graph.add_edge("S1", "S2")
        validate_topology(graph)

    def test_empty_graph_and_empty_present(self):
        with pytest.raises(ValueError, match="no servers"):
            validate_topology(nx.Graph())
        graph = nx.Graph()
        graph.add_node("S1")
        with pytest.raises(ValueError, match="no present servers"):
            validate_topology(graph, present=[])


# ----------------------------------------------------------- raw edge churn


class TestNetworkMutation:
    def test_remove_edge_bumps_version_and_gates_sends(self):
        service = make_mesh_service(3, tau=1000.0)
        net = service.network
        before = net.topology_version
        net.remove_edge("S1", "S2")
        assert net.topology_version == before + 1
        assert not net.graph.has_edge("S1", "S2")
        assert net.send("S1", "S2", object()) is False

    def test_add_edge_is_idempotent_and_reuses_the_link(self):
        service = make_mesh_service(3, tau=1000.0)
        net = service.network
        link_before = net.link("S1", "S2")
        net.remove_edge("S1", "S2")
        net.add_edge("S1", "S2")
        assert net.link("S1", "S2") is link_before
        version = net.topology_version
        net.add_edge("S1", "S2")  # no-op: no version bump
        assert net.topology_version == version

    def test_add_edge_rejects_unknown_nodes_and_self_edges(self):
        service = make_mesh_service(2, tau=1000.0)
        with pytest.raises(KeyError):
            service.network.add_edge("S1", "S9")
        with pytest.raises(ValueError):
            service.network.add_edge("S1", "S1")


# ------------------------------------------------------------ dynamic layer


class TestDynamicTopology:
    def test_guard_refuses_disconnecting_removal(self):
        service = make_service(line(3), tau=1000.0)
        dyn = DynamicTopology.for_service(service)
        assert dyn.remove_edge("S1", "S2") is False
        assert dyn.stats.removals_refused == 1
        assert service.network.graph.has_edge("S1", "S2")

    def test_forced_removal_fails_validation_naming_the_component(self):
        service = make_service(line(3), tau=1000.0)
        dyn = DynamicTopology.for_service(service)
        with pytest.raises(ValueError, match=r"isolated component: \{S1\}"):
            dyn.remove_edge("S1", "S2", force=True)

    def test_ring_tolerates_one_removal_then_refuses_the_second(self):
        service = make_service(ring(4), tau=1000.0)
        dyn = DynamicTopology.for_service(service)
        assert dyn.remove_edge("S1", "S2") is True
        # The graph is now a line: every remaining edge is a bridge.
        assert dyn.remove_edge("S3", "S4") is False
        dyn.check()  # still connected

    def test_leave_stashes_edges_and_join_restores_them(self):
        service = make_service(ring(4), tau=1000.0)
        dyn = DynamicTopology.for_service(service)
        edges_before = dyn.edges()
        assert dyn.leave("S2") is True
        assert service.servers["S2"].departed
        assert not service.network.graph.has_edge("S1", "S2")
        dyn.check()  # remaining members still connected
        assert dyn.join("S2", initial_error=2.0) is True
        assert not service.servers["S2"].departed
        assert dyn.edges() == edges_before

    def test_leave_refused_for_cut_vertex(self):
        service = make_service(line(3), tau=1000.0)
        dyn = DynamicTopology.for_service(service)
        assert dyn.leave("S2") is False
        assert dyn.stats.leaves_refused == 1
        assert not service.servers["S2"].departed

    def test_rewire_retains_a_backbone_rather_than_disconnect(self):
        service = make_service(ring(4), tau=1000.0)
        dyn = DynamicTopology.for_service(service)
        # The desired edge set splits {S1,S2} from {S3,S4}; the guard
        # must keep at least one old edge bridging the halves.
        dyn.rewire([("S1", "S2"), ("S3", "S4")])
        assert ("S1", "S2") in dyn.edges()
        assert ("S3", "S4") in dyn.edges()
        dyn.check()
        assert dyn.stats.removals_refused >= 1

    def test_mutations_are_trace_recorded(self):
        service = make_service(ring(4), tau=1000.0)
        dyn = DynamicTopology.for_service(service)
        dyn.remove_edge("S1", "S2")
        dyn.add_edge("S1", "S2")
        dyn.leave("S3")
        kinds = {row.kind for row in service.trace.filter(source="topology")}
        assert {"edge_remove", "edge_add", "node_leave"} <= kinds


# ------------------------------------------------- mid-round neighbour loss


class TestMidRoundPruning:
    def test_departure_mid_round_prunes_the_pending_slot(self):
        service = make_mesh_service(3, tau=1000.0)
        service.run_until(1.0)
        dyn = DynamicTopology.for_service(service)
        s1 = service.servers["S1"]
        s1._start_round()
        assert "S2" in s1._round.outstanding
        dyn.remove_edge("S1", "S2")
        assert s1.stats.polls_pruned == 1
        assert "S2" not in s1._round.outstanding
        # S3 is still owed a reply: the round stays open and completes
        # normally once it arrives.
        assert not s1._round.closed
        service.run_until(2.0)
        assert s1._round.closed
        assert s1.stats.rounds == 1

    def test_only_neighbour_departing_closes_the_round(self):
        service = make_mesh_service(2, tau=1000.0)
        service.run_until(1.0)
        dyn = DynamicTopology.for_service(
            service, guard_connectivity=False, validate=False
        )
        s1 = service.servers["S1"]
        s1._start_round()
        dyn.remove_edge("S1", "S2")
        # Nothing can ever answer: the round must not wait for a timeout.
        assert s1.stats.polls_pruned == 1
        assert s1._round.closed
        assert s1.stats.rounds == 1

    def test_detach_notification_without_open_round_is_a_noop(self):
        service = make_mesh_service(3, tau=1000.0)
        service.run_until(1.0)
        s2 = service.servers["S2"]
        s2.neighbour_detached("S1")
        assert s2.stats.polls_pruned == 0

    def test_hardened_server_never_retries_a_pruned_neighbour(self):
        from repro.service.hardening import HardeningConfig

        service = make_mesh_service(3, tau=1000.0, hardening=HardeningConfig())
        service.run_until(1.0)
        dyn = DynamicTopology.for_service(service)
        s1 = service.servers["S1"]
        s1._start_round()
        dyn.remove_edge("S1", "S2")
        sent_before = service.network.stats.sent
        service.run_until(30.0)
        assert s1._round.closed
        assert s1.stats.polls_pruned == 1
        # Any traffic after the prune is S3's reply (and S3-S2 rounds);
        # no poll may target S2 from S1.  The trace is authoritative:
        polls_to_s2 = [
            row
            for row in service.trace.filter(source="S1")
            if row.time > 1.0 and row.data.get("server") == "S2"
            and row.kind in ("poll_retry", "poll_sent")
        ]
        assert polls_to_s2 == []
        assert service.network.stats.sent >= sent_before


# ---------------------------------------------- churn avoids fault windows


class TestChurnFaultAwareness:
    def _run(self, schedule, seed=0, margin=5.0):
        service = make_mesh_service(3, tau=30.0, seed=seed)
        picked = []
        for server in service.servers.values():
            original = server.leave

            def leave(original=original, name=server.name):
                picked.append(name)
                original()

            server.leave = leave
        controller = ChurnController(
            service.engine,
            list(service.servers.values()),
            np.random.default_rng(42),
            interval=20.0,
            mean_downtime=5.0,
            min_alive=1,
            fault_schedule=schedule,
            fault_margin=margin,
        )
        controller.start()
        service.run_until(600.0)
        return picked, controller

    def test_never_picks_a_server_in_an_active_fault_window(self):
        schedule = FaultSchedule(
            [
                ServerCrash(at=0.0, server="S1", downtime=10_000.0),
                ClockFreeze(at=0.0, server="S2", duration=10_000.0),
            ]
        )
        picked, controller = self._run(schedule)
        assert controller.stats.departures > 0
        assert controller.stats.avoided_faulted > 0
        assert set(picked) == {"S3"}

    def test_draws_identical_without_a_schedule(self):
        baseline, _ = self._run(None)
        empty, _ = self._run(FaultSchedule([]))
        assert baseline == empty
        assert baseline  # the comparison is not vacuous

    def test_all_faulted_skips_the_tick(self):
        schedule = FaultSchedule(
            [
                ServerCrash(at=0.0, server=name, downtime=10_000.0)
                for name in ("S1", "S2", "S3")
            ]
        )
        picked, controller = self._run(schedule)
        assert picked == []
        assert controller.stats.departures == 0
        assert controller.stats.skipped > 0


# ------------------------------------------------------------ gradient arm


class TestGradientPolicy:
    STATE = LocalState(clock_value=100.0, error=0.05, delta=1e-4)

    def _replies(self):
        return [
            Reply(server="S2", clock_value=100.04, error=0.03, rtt_local=0.02),
            Reply(server="S3", clock_value=100.05, error=0.03, rtt_local=0.02),
            Reply(server="S4", clock_value=99.99, error=0.04, rtt_local=0.02),
        ]

    def test_decision_stays_inside_the_intersection(self):
        policy = GradientPolicy(error_margin=0.5)
        replies = self._replies()
        outcome = policy.on_round_complete(self.STATE, replies)
        assert outcome.consistent and outcome.decision is not None
        a, b, _ = IMPolicy().intersection(self.STATE, replies)
        offset = outcome.decision.clock_value - self.STATE.clock_value
        assert a <= offset <= b
        # Theorem 5 bookkeeping: the inherited error covers the whole
        # intersection from the chosen point.
        assert outcome.decision.inherited_error == pytest.approx(
            max(offset - a, b - offset)
        )

    def test_error_growth_is_bounded_by_the_margin(self):
        margin = 0.5
        replies = self._replies()
        grad = GradientPolicy(error_margin=margin).on_round_complete(
            self.STATE, replies
        )
        im = IMPolicy().on_round_complete(self.STATE, replies)
        assert grad.decision.inherited_error <= (
            1.0 + margin
        ) * im.decision.inherited_error + 1e-12

    def test_zero_margin_degenerates_to_im(self):
        replies = self._replies()
        grad = GradientPolicy(error_margin=0.0).on_round_complete(
            self.STATE, replies
        )
        im = IMPolicy().on_round_complete(self.STATE, replies)
        assert grad.decision.clock_value == pytest.approx(
            im.decision.clock_value
        )
        assert grad.decision.source == im.decision.source

    def test_inconsistent_rounds_delegate_to_im(self):
        replies = [
            Reply(server="S2", clock_value=200.0, error=0.01, rtt_local=0.02)
        ]
        grad = GradientPolicy().on_round_complete(self.STATE, replies)
        im = IMPolicy().on_round_complete(self.STATE, replies)
        assert grad.consistent == im.consistent
        assert grad.conflicting == im.conflicting

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            GradientPolicy(error_margin=1.5)

    def test_service_run_stays_correct_and_consistent(self):
        service = make_service(ring(5), GradientPolicy(), tau=30.0)
        snapshots = service.sample([0.0, 300.0, 600.0])
        final = snapshots[-1]
        assert final.all_correct
        assert final.consistent


# ---------------------------------------------------- stabilizer phase clock


class _StubCensus:
    def support(self, name, now_local, exclude=()):
        return None  # no census data: censusless fallback path


class _StubServer:
    def __init__(self, now_local=1000.0):
        self._now = now_local
        self.last_merge_local = None
        self.census = _StubCensus()

    def clock_value(self):
        return self._now

    def dissonant_neighbours(self):
        return set()

    def epoch_of(self, name):
        return 0


class TestStabilizerPhaseClock:
    NEIGHBOURS = ["B1", "B2", "C"]

    def _held_strategy(self, phase_limit):
        strategy = SelfStabilizingRecovery(
            config=StabilizerConfig(phase_limit=phase_limit)
        )
        server = _StubServer(now_local=1000.0)
        server.last_merge_local = 900.0  # inside the 240 s merge hold
        strategy.bind(server)
        return strategy

    def test_phase_clock_bounds_consecutive_holds(self):
        strategy = self._held_strategy(phase_limit=2)
        assert strategy.choose_arbiter("G1", self.NEIGHBOURS, ()) is None
        assert strategy.stabilizer_stats.held == 1
        # Second consecutive hold hits the limit: the repair proceeds.
        assert strategy.choose_arbiter("G1", self.NEIGHBOURS, ()) is not None
        assert strategy.stabilizer_stats.phase_repairs == 1
        # The streak reset: the next decision is held again.
        assert strategy.choose_arbiter("G1", self.NEIGHBOURS, ()) is None
        assert strategy.stabilizer_stats.held == 2

    def test_zero_limit_disables_the_phase_clock(self):
        strategy = self._held_strategy(phase_limit=0)
        for _ in range(10):
            assert strategy.choose_arbiter("G1", self.NEIGHBOURS, ()) is None
        assert strategy.stabilizer_stats.held == 10
        assert strategy.stabilizer_stats.phase_repairs == 0


# --------------------------------------------------- injector topology events


class TestInjectorTopologyEvents:
    def test_edge_churn_event_mutates_the_graph(self):
        service = make_mesh_service(3, tau=1000.0)
        schedule = FaultSchedule(
            [EdgeChurn(at=1.0, a="S1", b="S2", action="remove")]
        )
        dyn = DynamicTopology.for_service(service)
        attach_chaos(service, schedule, monitor=False, dynamic=dyn)
        service.run_until(5.0)
        assert not service.network.graph.has_edge("S1", "S2")

    def test_edge_churn_skipped_without_dynamic_layer(self):
        service = make_mesh_service(3, tau=1000.0)
        schedule = FaultSchedule(
            [EdgeChurn(at=1.0, a="S1", b="S2", action="remove")]
        )
        attach_chaos(service, schedule, monitor=False)
        service.run_until(5.0)
        assert service.network.graph.has_edge("S1", "S2")
        notes = [
            row.data.get("note", "")
            for row in service.trace.filter(kind="fault")
        ]
        assert any("no dynamic topology" in note for note in notes)


# ------------------------------------------------------- drivers & monitors


class TestDrivers:
    def test_edge_churn_controller_keeps_the_service_connected(self):
        service = make_service(ring(5), tau=30.0)
        dyn = DynamicTopology.for_service(service)
        churn = EdgeChurnController(
            service.engine,
            dyn,
            service.rng.stream("dynamic/edge-churn"),
            interval=20.0,
            mean_downtime=15.0,
        )
        churn.start()
        service.run_until(600.0)
        assert churn.stats.removed > 0
        assert churn.stats.restored > 0
        dyn.check()  # never left disconnected

    def test_mobility_rewires_by_proximity_deterministically(self):
        model_a = WaypointMobility(
            ["S1", "S2", "S3"], np.random.default_rng(5), radius=0.5
        )
        model_b = WaypointMobility(
            ["S1", "S2", "S3"], np.random.default_rng(5), radius=0.5
        )
        for _ in range(10):
            model_a.step(20.0)
            model_b.step(20.0)
        assert model_a.desired_edges() == model_b.desired_edges()
        for a, b in model_a.desired_edges():
            xa, ya = model_a.position(a)
            xb, yb = model_a.position(b)
            assert (xa - xb) ** 2 + (ya - yb) ** 2 <= 0.5**2 + 1e-12

    def test_mobility_process_drives_the_live_graph(self):
        service = make_service(ring(4), tau=30.0)
        dyn = DynamicTopology.for_service(service)
        model = WaypointMobility(
            sorted(service.servers),
            service.rng.stream("dynamic/mobility"),
            radius=0.4,
            speed=0.01,
        )
        MobilityProcess(service.engine, dyn, model, period=20.0).start()
        service.run_until(600.0)
        assert dyn.mobility is model
        assert dyn.stats.rewires > 0
        dyn.check()

    def test_local_skew_monitor_counts_breaches(self):
        service = make_service(ring(4), tau=1000.0)
        monitor = LocalSkewMonitor(
            service.engine, service, bound=1e-12, period=5.0
        )
        monitor.start()
        service.run_until(20.0)
        # The drift spread separates the clocks immediately; a zero-ish
        # bound must be breached on live edges only.
        assert monitor.stats.samples > 0
        assert monitor.stats.breaches > 0
        assert all("-" in edge for edge in monitor.stats.breached_edges)


# ------------------------------------------------------- telemetry coverage


class TestLocalSkewTelemetry:
    def test_gauges_and_breach_counter_export(self):
        telemetry = ServiceTelemetry(
            spans=False, sample_period=5.0, local_skew_bound=1e-12
        )
        service = make_mesh_service(3, tau=30.0, telemetry=telemetry)
        service.run_until(60.0)
        telemetry.sampler.sample_now()
        reg = telemetry.registry
        assert reg.value("repro_local_skew_bound_seconds") == pytest.approx(
            1e-12
        )
        assert reg.value("repro_edge_local_skew_seconds", edge="S1-S2") > 0
        assert reg.value("repro_local_skew_breaches_total") > 0

    def test_sampler_tracks_topology_mutations(self):
        telemetry = ServiceTelemetry(
            spans=False, sample_period=5.0, local_skew_bound=10.0
        )
        service = make_mesh_service(3, tau=30.0, telemetry=telemetry)
        dyn = DynamicTopology.for_service(service)
        service.run_until(20.0)
        telemetry.sampler.sample_now()
        assert (
            telemetry.registry.value(
                "repro_edge_local_skew_seconds", edge="S1-S2"
            )
            is not None
        )
        dyn.remove_edge("S1", "S2")
        dyn.add_edge("S1", "S3")  # already present: no-op
        service.run_until(40.0)
        telemetry.sampler.sample_now()
        # The removed edge's series stops being updated (stale value is
        # not an assertion target); the surviving edges still sample.
        assert (
            telemetry.registry.value(
                "repro_edge_local_skew_seconds", edge="S1-S3"
            )
            is not None
        )


# ------------------------------------------------------------ the gauntlet


class TestGauntlet:
    def test_deterministic_and_clean(self):
        kwargs = dict(churn_interval=40.0, mobility=True, horizon=200.0)
        first = run_gauntlet("gradient", 0, **kwargs)
        second = run_gauntlet("gradient", 0, **kwargs)
        assert first.trace_digest == second.trace_digest
        assert first == second
        assert first.violations == 0
        assert first.exemptions == 0
        assert first.skew_breaches == 0
        assert first.skew_samples > 0

    def test_seeds_differ(self):
        kwargs = dict(churn_interval=40.0, mobility=True, horizon=200.0)
        a = run_gauntlet("IM", 0, **kwargs)
        b = run_gauntlet("IM", 1, **kwargs)
        assert a.trace_digest != b.trace_digest

    def test_mm_free_run_breaches_where_gradient_holds(self):
        kwargs = dict(churn_interval=60.0, mobility=False, horizon=900.0)
        mm = run_gauntlet("MM", 0, **kwargs)
        grad = run_gauntlet("gradient", 0, **kwargs)
        assert mm.skew_breaches > 0
        assert grad.skew_breaches == 0
        assert grad.max_local_skew < mm.max_local_skew
        assert mm.violations == 0 and grad.violations == 0
