"""Unit and soak tests for the chaos subsystem (schedule/injector/monitor)."""

from __future__ import annotations

import math

import pytest

from repro.clocks.failures import RacingClock, StoppedClock
from repro.experiments import chaos_soak
from repro.faults import (
    ByzantineReplies,
    ClockFreeze,
    ClockRace,
    ClockStep,
    DelaySpike,
    FaultSchedule,
    InvariantMonitor,
    LinkFlap,
    LossBurst,
    MessageDuplication,
    PartitionFault,
    ServerCrash,
    attach_chaos,
)
from repro.service.messages import TimeReply

from tests.helpers import make_mesh_service

NAMES = ["S1", "S2", "S3", "S4"]
EDGES = [("S1", "S2"), ("S1", "S3"), ("S2", "S3"), ("S3", "S4")]


class TestSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            [
                LinkFlap(at=9.0, a="S1", b="S2", downtime=1.0),
                ClockStep(at=2.0, server="S1", offset=1.0),
            ]
        )
        assert [event.at for event in schedule] == [2.0, 9.0]

    def test_same_seed_same_timeline(self):
        kwargs = dict(names=NAMES, edges=EDGES, horizon=3600.0)
        one = FaultSchedule.random(seed=5, **kwargs)
        two = FaultSchedule.random(seed=5, **kwargs)
        assert one.describe() == two.describe()
        assert one.signature() == two.signature()
        assert len(one) > 0

    def test_different_seeds_differ(self):
        kwargs = dict(names=NAMES, edges=EDGES, horizon=3600.0)
        assert (
            FaultSchedule.random(seed=1, **kwargs).signature()
            != FaultSchedule.random(seed=2, **kwargs).signature()
        )

    def test_warmup_respected(self):
        schedule = FaultSchedule.random(
            seed=3, names=NAMES, edges=EDGES, horizon=3600.0, warmup=300.0
        )
        assert all(event.at >= 300.0 for event in schedule)

    def test_fault_windows_taint_semantics(self):
        schedule = FaultSchedule(
            [
                ClockStep(at=10.0, server="S1", offset=1.0),
                ClockFreeze(at=20.0, server="S2", duration=5.0),
                ByzantineReplies(at=30.0, server="S3", duration=5.0, offset=1.0),
                ServerCrash(at=40.0, server="S4", downtime=5.0),
            ]
        )
        windows = {w.server: w for w in schedule.server_fault_windows()}
        assert windows["S1"].taints_self and windows["S1"].end == 10.0
        assert windows["S2"].taints_self and windows["S2"].end == 25.0
        assert not windows["S3"].taints_self  # the liar's own clock is honest
        assert "S4" not in windows  # crashes are exempt live, not tainted

    def test_clock_windows_never_overlap_per_server(self):
        schedule = FaultSchedule.random(
            seed=7,
            names=["S1", "S2"],
            edges=[("S1", "S2")],
            horizon=7200.0,
            server_fault_rate=40.0,
        )
        spans: dict[str, list[tuple[float, float]]] = {}
        for w in schedule.server_fault_windows():
            spans.setdefault(w.server, []).append((w.start, w.end))
        for intervals in spans.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2


def make_chaos_service(schedule, *, n=3, monitor=False, **kwargs):
    service = make_mesh_service(n, tau=10.0, **kwargs)
    injector, watcher = attach_chaos(service, schedule, monitor=monitor)
    return service, injector, watcher


class TestInjector:
    def test_link_flap_down_then_up(self):
        schedule = FaultSchedule([LinkFlap(at=1.0, a="S1", b="S2", downtime=5.0)])
        service, injector, _ = make_chaos_service(schedule)
        link = service.network.link("S1", "S2")
        service.run_until(2.0)
        assert not link.up
        service.run_until(7.0)
        assert link.up

    def test_overlapping_flaps_reference_counted(self):
        schedule = FaultSchedule(
            [
                LinkFlap(at=1.0, a="S1", b="S2", downtime=10.0),
                LinkFlap(at=3.0, a="S1", b="S2", downtime=2.0),
            ]
        )
        service, injector, _ = make_chaos_service(schedule)
        link = service.network.link("S1", "S2")
        service.run_until(6.0)  # the short flap ended, the long one holds
        assert not link.up
        service.run_until(12.0)
        assert link.up

    def test_delay_spike_restored_exactly(self):
        schedule = FaultSchedule(
            [DelaySpike(at=1.0, a="S1", b="S2", scale=4.0, extra=0.2, duration=3.0)]
        )
        service, injector, _ = make_chaos_service(schedule)
        link = service.network.link("S1", "S2")
        service.run_until(2.0)
        assert link.delay_scale == pytest.approx(4.0)
        assert link.delay_extra == pytest.approx(0.2)
        service.run_until(5.0)
        assert link.delay_scale == pytest.approx(1.0)
        assert link.delay_extra == pytest.approx(0.0)

    def test_loss_bursts_compose(self):
        schedule = FaultSchedule(
            [
                LossBurst(at=1.0, a="S1", b="S2", probability=0.5, duration=10.0),
                LossBurst(at=2.0, a="S1", b="S2", probability=0.5, duration=2.0),
            ]
        )
        service, injector, _ = make_chaos_service(schedule)
        link = service.network.link("S1", "S2")
        service.run_until(3.0)
        assert link.fault_loss == pytest.approx(0.75)
        service.run_until(5.0)
        assert link.fault_loss == pytest.approx(0.5)
        service.run_until(12.0)
        assert link.fault_loss == pytest.approx(0.0)

    def test_partition_and_heal(self):
        schedule = FaultSchedule(
            [PartitionFault(at=1.0, groups=(("S1",), ("S2", "S3")), duration=4.0)]
        )
        service, injector, _ = make_chaos_service(schedule)
        service.run_until(2.0)
        assert not service.network.send("S1", "S2", "x")
        service.run_until(6.0)
        assert service.network.send("S1", "S2", "x")

    def test_clock_step_moves_clock(self):
        schedule = FaultSchedule([ClockStep(at=5.0, server="S1", offset=2.5)])
        service, injector, _ = make_chaos_service(schedule, n=2)
        server = service.servers["S1"]
        service.run_until(4.0)
        before = server.clock.read(4.0)
        service.run_until(6.0)
        assert server.clock.read(6.0) == pytest.approx(before + 2.0 + 2.5, abs=1e-3)

    def test_clock_freeze_wraps_and_detaches(self):
        schedule = FaultSchedule([ClockFreeze(at=5.0, server="S1", duration=10.0)])
        service, injector, _ = make_chaos_service(schedule, n=2)
        server = service.servers["S1"]
        inner = server.clock
        service.run_until(6.0)
        assert isinstance(server.clock, StoppedClock)
        frozen = server.clock.read(6.0)
        service.run_until(16.0)
        assert server.clock is inner  # unwrapped back to the real clock
        # ... resuming from the frozen value: still ~10 s behind true time.
        assert server.clock.read(16.0) == pytest.approx(frozen + 1.0, abs=1e-2)

    def test_clock_race_wraps(self):
        schedule = FaultSchedule(
            [ClockRace(at=5.0, server="S1", skew=0.5, duration=4.0)]
        )
        service, injector, _ = make_chaos_service(schedule, n=2)
        server = service.servers["S1"]
        service.run_until(6.0)
        assert isinstance(server.clock, RacingClock)
        service.run_until(10.0)
        # Raced ahead by ~0.5 s/s for 4 s, kept after detach.
        assert server.clock.read(10.0) - 10.0 == pytest.approx(2.0, abs=0.51)

    def test_overlapping_clock_faults_skipped(self):
        schedule = FaultSchedule(
            [
                ClockFreeze(at=5.0, server="S1", duration=10.0),
                ClockRace(at=7.0, server="S1", skew=0.5, duration=2.0),
            ]
        )
        service, injector, _ = make_chaos_service(schedule, n=2)
        service.run_until(8.0)
        assert isinstance(service.servers["S1"].clock, StoppedClock)

    def test_server_crash_and_rejoin(self):
        schedule = FaultSchedule(
            [ServerCrash(at=5.0, server="S1", downtime=10.0, rejoin_error=1.5)]
        )
        service, injector, _ = make_chaos_service(schedule)
        service.run_until(6.0)
        assert service.servers["S1"].departed
        service.run_until(16.0)
        assert not service.servers["S1"].departed
        _value, error = service.servers["S1"].report()
        assert error >= 1.5 - 1e-9

    def test_byzantine_tap_rewrites_replies(self):
        schedule = FaultSchedule(
            [ByzantineReplies(at=0.0, server="S2", duration=50.0, offset=7.0)]
        )
        service, injector, _ = make_chaos_service(schedule, n=2)
        received = []

        def observe(source, destination, message, delay):
            if source == "S2" and isinstance(message, TimeReply):
                received.append((service.engine.now, message))
            return None

        # Let the Byzantine tap install first (event at t=0) so ours runs
        # after it and observes the rewritten replies.
        service.run_until(0.001)
        service.network.add_tap(observe)
        service.run_until(25.0)
        assert received and injector.stats.lies_told >= len(received)
        # Each lie reads ~7 s ahead of true time (drift/delay are ms).
        assert all(
            abs(m.clock_value - (t + 7.0)) < 0.5 for t, m in received
        )

    def test_fault_timeline_recorded_to_trace(self):
        schedule = FaultSchedule([LinkFlap(at=1.0, a="S1", b="S2", downtime=2.0)])
        service, injector, _ = make_chaos_service(schedule)
        service.run_until(3.0)
        rows = service.trace.filter(kind="fault")
        assert len(rows) == 1 and "LinkFlap" in rows[0].data["event"]


class TestMonitor:
    def test_catches_unexcused_clock_step(self):
        # The monitor is NOT told about the fault: the stepped server's
        # interval no longer contains true time and must be flagged.
        schedule = FaultSchedule([ClockStep(at=5.0, server="S1", offset=3.0)])
        service, injector, _ = make_chaos_service(schedule, n=2)
        watcher = InvariantMonitor(
            service.engine, service.servers, service.trace, None, period=2.0
        )
        watcher.start()
        service.run_until(12.0)
        assert watcher.stats.correctness_violations > 0
        assert service.trace.count("invariant_violation") > 0

    def test_exempts_scheduled_fault(self):
        schedule = FaultSchedule([ClockStep(at=5.0, server="S1", offset=3.0)])
        service, injector, watcher = make_chaos_service(
            schedule, n=3, monitor=True
        )
        service.run_until(12.0)
        assert watcher.stats.total_violations == 0
        assert watcher.is_dirty("S1")
        assert watcher.stats.exemptions > 0

    def test_taint_propagates_and_clean_reset_clears(self):
        schedule = FaultSchedule([ClockStep(at=5.0, server="S1", offset=3.0)])
        service = make_mesh_service(3, tau=1e9)  # no organic rounds
        _injector, watcher = attach_chaos(service, schedule)
        service.run_until(6.0)
        assert watcher.is_dirty("S1")
        # S3 resets from the tainted S1 (within the grace window of the
        # step): the taint propagates.  S1 then resets from the clean S2:
        # its own taint clears.
        service.trace.record(
            6.5, "reset", "S3", from_server="S1∩self", new_error=0.1
        )
        service.trace.record(
            7.0, "reset", "S1", from_server="S2", new_error=0.1
        )
        service.run_until(12.0)
        assert watcher.is_dirty("S3")
        assert not watcher.is_dirty("S1")

    def test_reset_sources_parsing(self):
        parse = InvariantMonitor.reset_sources
        assert parse("S2") == ["S2"]
        assert parse("S2∩S3") == ["S2", "S3"]
        assert parse("S2∩self") == ["S2", "self"]
        assert parse("recovery:S3") == ["S3"]

    def test_consistency_violation_detected(self):
        service = make_mesh_service(2, tau=1e9)  # rounds never fire
        for name, offset in (("S1", -1.0), ("S2", 1.0)):
            server = service.servers[name]
            server.clock.set(0.0, offset)
            server._epsilon = 0.1
        watcher = InvariantMonitor(
            service.engine, service.servers, service.trace, None, period=1.0
        )
        watcher.start()
        service.run_until(2.0)
        assert watcher.stats.correctness_violations > 0
        assert watcher.stats.consistency_violations > 0


class TestSoak:
    def test_deterministic_replay(self):
        one = chaos_soak.run_soak("MM", seed=4, horizon=600.0)
        two = chaos_soak.run_soak("MM", seed=4, horizon=600.0)
        assert one.schedule_signature == two.schedule_signature
        assert one.trace_digest == two.trace_digest
        assert one.violations == 0

    @pytest.mark.chaos
    @pytest.mark.parametrize("policy", ["MM", "IM"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_soak_zero_violations(self, policy, seed):
        outcome = chaos_soak.run_soak(policy, seed, horizon=1200.0)
        assert outcome.events_applied > 0
        assert outcome.violations == 0
        assert outcome.survival_rate == pytest.approx(1.0)

    @pytest.mark.chaos
    def test_hardening_beats_baseline_under_attack(self):
        comparison = chaos_soak.compare_hardening(0, horizon=1200.0)
        # The plain baseline keeps tripping over the liar, forever.
        assert comparison.baseline_inconsistencies > 10 * max(
            1, comparison.hardened_inconsistencies
        )
        # Hardened honest servers stay bounded: with the reference anchor
        # the error never approaches the unanchored growth 0.05 + δ·t.
        assert comparison.hardened_worst_error < 0.15
        assert comparison.hardened_honest_correct >= comparison.baseline_honest_correct
        assert comparison.hardened_invalid_replies > 0
        assert comparison.hardened_quarantines > 0
        assert comparison.hardened_retries > 0


class TestTraceDigest:
    def test_digest_changes_with_content(self):
        from repro.simulation.trace import TraceRecorder

        one = TraceRecorder()
        one.record(1.0, "reset", "S1", new_error=0.5)
        two = TraceRecorder()
        two.record(1.0, "reset", "S1", new_error=0.25)
        assert chaos_soak.trace_digest(one) != chaos_soak.trace_digest(two)

    def test_digest_empty_is_zero(self):
        from repro.simulation.trace import TraceRecorder

        assert chaos_soak.trace_digest(TraceRecorder()) == 0


def test_corruption_produces_rejectable_garbage():
    # With rng=None the corruption tap garbles every TimeReply with NaN;
    # hardened servers must reject every one before the policy sees it
    # (a plain server would crash computing a NaN interval).
    from repro.faults import MessageCorruption
    from repro.faults.injector import FaultInjector
    from repro.service.hardening import HardeningConfig

    service = make_mesh_service(2, tau=10.0, hardening=HardeningConfig())
    schedule = FaultSchedule(
        [MessageCorruption(at=0.0, probability=1.0, duration=100.0)]
    )
    garbled = []
    injector = FaultInjector(
        service.engine,
        service.network,
        service.servers,
        schedule,
        rng=None,
        trace=service.trace,
    )
    injector.start()
    # Let the corruption tap install (event at t=0) before observing.
    service.run_until(0.001)
    service.network.add_tap(
        lambda s, d, m, dly: garbled.append(m)
        if isinstance(m, TimeReply)
        else None
    )
    service.run_until(30.0)
    assert garbled and all(math.isnan(m.clock_value) for m in garbled)
    assert all(
        server.stats.invalid_replies > 0
        for server in service.servers.values()
    )


def test_duplication_doubles_delivery():
    schedule = FaultSchedule(
        [MessageDuplication(at=0.0, probability=1.0, duration=100.0, extra_delay=0.01)]
    )
    service = make_mesh_service(2, tau=10.0)
    injector = attach_chaos(service, schedule, monitor=False)[0]
    service.run_until(25.0)
    assert injector.stats.messages_duplicated > 0
    # Duplicates hit the round machinery's duplicate guard, not the policy:
    # no round can handle more than one reply per polled neighbour.
    for server in service.servers.values():
        assert server.stats.replies_handled <= server.stats.rounds
