"""Tests for trace/snapshot export and the CLI."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis.export import (
    snapshots_to_csv,
    snapshots_to_json,
    trace_to_csv,
    trace_to_json,
)
from repro.cli import build_parser, main
from repro.core.im import IMPolicy
from repro.simulation.trace import TraceRecorder

from tests.helpers import make_mesh_service


@pytest.fixture
def sample_trace():
    trace = TraceRecorder()
    trace.record(1.0, "reset", "S1", new_error=0.5, from_server="S2")
    trace.record(2.0, "reject", "S1")
    trace.record(3.0, "reset", "S2", new_error=0.1, from_server="S1")
    return trace


@pytest.fixture
def sample_snapshots():
    service = make_mesh_service(3, IMPolicy(), tau=20.0)
    return service.sample([50.0, 100.0, 150.0])


class TestTraceExport:
    def test_csv_roundtrip(self, sample_trace, tmp_path):
        path = tmp_path / "trace.csv"
        assert trace_to_csv(sample_trace, path) == 3
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["kind"] == "reset"
        assert rows[0]["new_error"] == "0.5"
        assert rows[1]["new_error"] == ""  # missing field -> empty cell

    def test_json_roundtrip(self, sample_trace, tmp_path):
        path = tmp_path / "trace.json"
        assert trace_to_json(sample_trace, path) == 3
        payload = json.loads(path.read_text())
        assert payload[2] == {
            "time": 3.0,
            "kind": "reset",
            "source": "S2",
            "new_error": 0.1,
            "from_server": "S1",
        }

    def test_empty_trace(self, tmp_path):
        trace = TraceRecorder()
        assert trace_to_csv(trace, tmp_path / "empty.csv") == 0
        assert trace_to_json(trace, tmp_path / "empty.json") == 0


class TestSnapshotExport:
    def test_csv_long_form(self, sample_snapshots, tmp_path):
        path = tmp_path / "snaps.csv"
        written = snapshots_to_csv(sample_snapshots, path)
        assert written == 3 * 3  # 3 snapshots x 3 servers
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert {row["server"] for row in rows} == {"S1", "S2", "S3"}
        assert all(row["correct"] == "1" for row in rows)

    def test_json_structure(self, sample_snapshots, tmp_path):
        path = tmp_path / "snaps.json"
        assert snapshots_to_json(sample_snapshots, path) == 3
        payload = json.loads(path.read_text())
        assert payload[0]["time"] == 50.0
        assert set(payload[0]["errors"]) == {"S1", "S2", "S3"}


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--policy", "mm"])
        assert args.policy == "mm"

    def test_simulate_returns_zero_when_correct(self, capsys):
        code = main(
            [
                "simulate",
                "--servers",
                "3",
                "--policy",
                "im",
                "--hours",
                "0.2",
                "--samples",
                "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "asynchronism" in out
        assert "all correct True" in out

    def test_simulate_exports_csv(self, tmp_path, capsys):
        path = tmp_path / "out.csv"
        code = main(
            [
                "simulate",
                "--servers",
                "3",
                "--hours",
                "0.1",
                "--samples",
                "5",
                "--export-csv",
                str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5 * 3

    def test_simulate_all_policies(self, capsys):
        for policy in ("mm", "im", "max", "median", "mean", "first"):
            code = main(
                [
                    "simulate",
                    "--servers",
                    "3",
                    "--policy",
                    policy,
                    "--hours",
                    "0.1",
                    "--samples",
                    "4",
                ]
            )
            assert code == 0, policy

    def test_simulate_topologies(self, capsys):
        for topology in ("mesh", "ring", "line", "star", "internet", "random"):
            code = main(
                [
                    "simulate",
                    "--topology",
                    topology,
                    "--servers",
                    "6",
                    "--hours",
                    "0.05",
                    "--samples",
                    "3",
                ]
            )
            assert code == 0, topology

    def test_simulate_with_reference_and_recovery(self, capsys):
        code = main(
            [
                "simulate",
                "--servers",
                "4",
                "--reference",
                "1",
                "--recovery",
                "--rate-tracking",
                "--hours",
                "0.1",
                "--samples",
                "4",
            ]
        )
        assert code == 0

    def test_figures_subcommand(self, capsys):
        assert main(["figures", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 6" in out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "tenfold" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "figure4"]) == 0
        out = capsys.readouterr().out
        assert "consistency groups" in out


class TestCliSweep:
    def test_sweep_subcommand(self, capsys):
        code = main(
            [
                "sweep",
                "--policies",
                "IM",
                "--sizes",
                "3",
                "--taus",
                "30",
                "--replications",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_error" in out
        assert "IM" in out
