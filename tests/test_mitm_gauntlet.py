"""MITM gauntlet acceptance: the ISSUE's headline criteria, in miniature.

Runs the full cell × arm matrix at one seed and asserts the contract:
the plain arm is poisoned where the theory says it must be, the
authenticated arm never accepts a forged or replayed message and stays
invariant-clean everywhere, the defenses demonstrably fired, and the
whole thing replays bit-identically.
"""

from __future__ import annotations

import pytest

from repro.experiments.mitm_gauntlet import (
    ARMS,
    CELLS,
    GauntletCell,
    evaluate,
    run_gauntlet,
    run_matrix,
)

pytestmark = pytest.mark.security


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(seeds=(0,))


def _pick(matrix, cell, arm):
    (outcome,) = [o for o in matrix if o.cell == cell and o.arm == arm]
    return outcome


class TestAcceptance:
    def test_matrix_passes_evaluation(self, matrix):
        assert evaluate(matrix) == []

    def test_plain_arm_poisoned_by_tamper_and_delay(self, matrix):
        for cell in ("tamper", "delay"):
            outcome = _pick(matrix, cell, "plain")
            assert outcome.violations > 0
            assert outcome.accepted_tainted > 0

    def test_delay_attack_moves_plain_victim_a_full_period(self, matrix):
        # The held-back data is one poll period (10 s) old: the poisoned
        # victim's true offset approaches τ while its claimed error is
        # tiny — the paper's ξ assumption broken as hard as possible.
        assert _pick(matrix, "delay", "plain").peak_true_offset > 5.0

    def test_authenticated_arm_clean_everywhere(self, matrix):
        for cell in CELLS:
            outcome = _pick(matrix, cell.label, "authenticated")
            assert outcome.violations == 0
            assert outcome.accepted_tainted == 0

    def test_defenses_fired_where_expected(self, matrix):
        assert _pick(matrix, "tamper", "authenticated").auth_failures > 0
        assert _pick(matrix, "replay", "authenticated").replay_drops > 0
        for cell in ("delay", "spoof"):
            assert _pick(matrix, cell, "authenticated").delay_detections > 0

    def test_adversary_actually_attacked_every_cell(self, matrix):
        for outcome in matrix:
            attacks = (
                outcome.tampered
                + outcome.replayed
                + outcome.swallowed
                + outcome.spoofed
            )
            assert attacks > 0, f"{outcome.cell}/{outcome.arm}: no attacks"

    def test_quarantine_escalation_in_authenticated_tamper_cell(self, matrix):
        assert _pick(matrix, "tamper", "authenticated").quarantines > 0


class TestDeterminism:
    def test_same_seed_same_digest(self):
        first = run_gauntlet(CELLS[0], "authenticated", seed=3)
        second = run_gauntlet(CELLS[0], "authenticated", seed=3)
        assert first.trace_digest == second.trace_digest
        assert first == second

    def test_distinct_seeds_distinct_digests(self):
        a = run_gauntlet(CELLS[0], "plain", seed=0)
        b = run_gauntlet(CELLS[0], "plain", seed=1)
        assert a.trace_digest != b.trace_digest


class TestValidation:
    def test_unknown_arm_rejected(self):
        with pytest.raises(ValueError):
            run_gauntlet(CELLS[0], "ntp", seed=0)

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError):
            run_gauntlet(GauntletCell("weird", "weird"), ARMS[0], seed=0)
