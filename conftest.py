"""Repo-level pytest configuration: make ``src/`` importable in-place.

The offline environment lacks ``wheel``, so PEP-660 editable installs are
unavailable; this keeps ``pip install -e .`` optional for running the test
suite from a checkout.
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
