"""Diagnosing a sick service by its clock *rates* (Section 5 in action).

A service can be inconsistent without revealing who is wrong — Figure 4's
moral.  The paper's proposal: examine the *rates*.  Two clocks whose
separation rate exceeds the sum of their claimed drift bounds cannot both
be honest about their bounds, and unlike consistency, a rate measurement
directly implicates the fast-moving party when compared across many peers.

This example runs a mesh where one server's oscillator silently degrades
(an :class:`AgingClock` that ramps far past its claimed bound) and another
suffers a step failure to a racing rate.  Rate-tracking servers watch their
neighbours; the printed operator report shows the consonance diagnosis
naming the culprits — before and after the intervals themselves have
visibly partitioned.

Run:
    python examples/consonance_diagnosis.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import MMPolicy, ServerSpec, ThirdServerRecovery, UniformDelay, build_service, full_mesh
from repro.analysis.report import service_report
from repro.clocks import AgingClock, DriftingClock, RacingClock

DELTA = 1e-5  # claimed by everyone (~0.9 s/day)


def aging_factory(rng, name):
    """An oscillator that silently degrades: the skew ramps 1e-7 per
    second, crossing the claimed bound within a minute and reaching 50×
    the bound by the second checkpoint."""
    return AgingClock(initial_skew=5e-6, aging_rate=1e-7, terminal_skew=1e-3)


def racing_factory(rng, name):
    """A clock that steps to a racing rate at t = 1200 s."""
    return RacingClock(DriftingClock(1e-6), fail_at=1200.0, racing_skew=2e-3)


def main() -> None:
    names = [f"S{k + 1}" for k in range(6)]
    specs = []
    for k, name in enumerate(names):
        if name == "S5":
            specs.append(
                ServerSpec(name, delta=DELTA, clock_factory=aging_factory,
                           rate_tracking=True)
            )
        elif name == "S6":
            specs.append(
                ServerSpec(name, delta=DELTA, clock_factory=racing_factory,
                           rate_tracking=True)
            )
        else:
            specs.append(
                ServerSpec(name, delta=DELTA, skew=(k - 2) * 2e-6,
                           rate_tracking=True)
            )
    service = build_service(
        full_mesh(6),
        specs,
        policy=MMPolicy(),
        tau=60.0,
        seed=31,
        lan_delay=UniformDelay(0.01),
        recovery_factory=lambda name: ThirdServerRecovery(),
        trace_enabled=True,
    )

    for checkpoint in (900.0, 2400.0, 5400.0):
        service.run_until(checkpoint)
        print("=" * 74)
        print(service_report(service, include_diagram=False))
        print()

    print("=" * 74)
    print(
        "Two detection paths fire: S6's raw racing rate is flagged by a\n"
        "majority of its peers, while S5 — whose drift is masked from its\n"
        "peers because recovery keeps yanking it back — convicts *itself*:\n"
        "its own free-running timescale sees every neighbour recede\n"
        "coherently.  Exactly the Section 5 argument for maintaining\n"
        "consonance alongside consistency."
    )


if __name__ == "__main__":
    main()
