"""A joint parameter study with the sweep framework.

How do MM and IM respond — together — to service size, poll period, and
network delay?  Theorems 2, 3 and 7 answer pointwise; this study maps the
response surface empirically with `repro.sweeps`: a 2×3×2×2 grid, three
replications per point at decorrelated seeds, aggregated into one table.

Run:
    python examples/parameter_study.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.sweeps import ParameterGrid, mesh_steady_state, run_sweep


def main() -> None:
    grid = ParameterGrid.of(
        policy=["MM", "IM"],
        n=[3, 6, 12],
        tau=[30.0, 120.0],
        one_way=[0.002, 0.05],
    )
    print(
        f"Sweeping {len(grid)} grid points × 3 replications "
        "(steady-state, full mesh, δ = 1e-5)..."
    )
    done = 0

    def progress(point):
        nonlocal done
        done += 1
        if done % 12 == 0:
            print(f"  {done}/{len(grid) * 3} runs")

    result = run_sweep(
        mesh_steady_state, grid, replications=3, base_seed=101, on_point=progress
    )
    assert not result.failures, result.failures
    print()
    print(result.to_table())

    rows = result.aggregate()

    def mean_over(**match):
        vals = [
            row["mean_error"]
            for row in rows
            if all(row[k] == v for k, v in match.items())
        ]
        return sum(vals) / len(vals)

    print("\nHeadlines from the surface:")
    print(
        f"  IM mean error vs MM (all cells):      "
        f"{mean_over(policy='IM'):.4f} vs {mean_over(policy='MM'):.4f} s"
    )
    print(
        f"  IM error, fast vs slow network:       "
        f"{mean_over(policy='IM', one_way=0.002):.4f} vs "
        f"{mean_over(policy='IM', one_way=0.05):.4f} s (the ξ floor)"
    )
    print(
        f"  IM error, τ=30 vs τ=120:              "
        f"{mean_over(policy='IM', tau=30.0):.4f} vs "
        f"{mean_over(policy='IM', tau=120.0):.4f} s (the δτ term)"
    )


if __name__ == "__main__":
    main()
