"""Marzullo's algorithm and the NTP clock-select, on hostile inputs.

Algorithm IM intersects *all* intervals, so one falseticker poisons it
(Figure 3).  The thesis's generalisation — find the interval contained in
the most source intervals — is what NTP adopted.  This example pits the
plain intersection, Marzullo's f-tolerant intersection, and the NTP-style
selection against a server population with a growing fraction of
falsetickers, scoring each on oracle correctness.

Run:
    python examples/ntp_style_selection.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro import TimeInterval, intersect_all, intersect_tolerating, ntp_select
from repro.analysis.plots import render_intervals, render_table

TRUE_TIME = 1000.0
N_SERVERS = 9
TRIALS = 400


def sample_population(rng, falsetickers: int) -> list[TimeInterval]:
    """N intervals: the honest ones contain the true time, the rest lie."""
    intervals = []
    for k in range(N_SERVERS - falsetickers):
        error = rng.uniform(0.05, 0.5)
        offset = rng.uniform(-error, error)  # correct: |offset| <= error
        intervals.append(
            TimeInterval.from_center_error(TRUE_TIME + offset, error)
        )
    for k in range(falsetickers):
        error = rng.uniform(0.05, 0.3)
        lie = rng.choice([-1, 1]) * rng.uniform(2.0, 20.0)
        intervals.append(
            TimeInterval.from_center_error(TRUE_TIME + lie, error)
        )
    rng.shuffle(intervals)
    return intervals


def main() -> None:
    rng = np.random.default_rng(3)

    print("One draw with 2 falsetickers out of 9 (true time marked '|'):")
    example = sample_population(np.random.default_rng(6), falsetickers=2)
    labelled = {f"S{k + 1}": iv for k, iv in enumerate(example)}
    result = ntp_select(example)
    if result is not None:
        labelled["ntp∩"] = result.interval
    print(render_intervals(labelled, true_time=TRUE_TIME, width=70))
    if result is not None:
        print(f"falsetickers identified: "
              f"{[f'S{i + 1}' for i in result.falsetickers]}\n")

    rows = []
    for falsetickers in range(0, 5):
        plain_ok = marz_ok = ntp_ok = 0
        for _ in range(TRIALS):
            population = sample_population(rng, falsetickers)
            plain = intersect_all(population)
            if plain is not None and plain.contains(TRUE_TIME):
                plain_ok += 1
            tolerant = intersect_tolerating(population, faults=falsetickers)
            if tolerant is not None and tolerant.interval.contains(TRUE_TIME):
                marz_ok += 1
            selected = ntp_select(population)
            if selected is not None and selected.interval.contains(TRUE_TIME):
                ntp_ok += 1
        rows.append(
            [
                falsetickers,
                f"{plain_ok / TRIALS:.0%}",
                f"{marz_ok / TRIALS:.0%}",
                f"{ntp_ok / TRIALS:.0%}",
            ]
        )
    print(f"Correct-result rate over {TRIALS} random draws, 9 servers:")
    print(
        render_table(
            [
                "falsetickers",
                "plain intersection (IM)",
                "Marzullo f-tolerant",
                "NTP select",
            ],
            rows,
        )
    )
    print(
        "\nPlain intersection collapses as soon as one server lies; the "
        "f-tolerant sweep — Marzullo's algorithm — keeps returning a "
        "correct interval while the honest servers hold a majority."
    )


if __name__ == "__main__":
    main()
