"""Quickstart: build a small time service and watch both algorithms work.

Builds a four-server full mesh of drifting clocks, runs it for a simulated
hour under algorithm IM (intersection) and again under algorithm MM
(minimum maximum error), and prints what each server believes — its clock
value, its self-reported maximum error, and the oracle truth.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import (
    IMPolicy,
    MMPolicy,
    ServerSpec,
    UniformDelay,
    build_service,
    full_mesh,
)
from repro.analysis.plots import render_intervals, render_table


def run_policy(policy, label: str) -> None:
    """Build, run for an hour, and report."""
    graph = full_mesh(4)
    # Four clocks: claimed bound ~0.9 s/day each, actual skews spread
    # across ±80% of the bound.
    delta = 1e-5
    specs = [
        ServerSpec(f"S{k + 1}", delta=delta, skew=0.8 * delta * (k - 1.5) / 1.5)
        for k in range(4)
    ]
    service = build_service(
        graph,
        specs,
        policy=policy,
        tau=60.0,  # poll neighbours once a minute
        seed=42,
        lan_delay=UniformDelay(0.05),  # one-way delay up to 50 ms
    )
    service.run_until(3600.0)
    snap = service.snapshot()

    print(f"\n=== {label} after one simulated hour ===")
    rows = [
        [
            name,
            snap.values[name],
            snap.errors[name],
            snap.offsets[name],
            snap.correct[name],
        ]
        for name in sorted(snap.values)
    ]
    print(
        render_table(
            ["server", "clock C_i", "claimed error E_i", "true offset", "correct"],
            rows,
            precision=6,
        )
    )
    print(f"asynchronism (max |C_i - C_j|): {snap.asynchronism * 1e3:.2f} ms")
    print(f"service consistent: {snap.consistent}")
    print("\nintervals (| marks the true time):")
    print(render_intervals(snap.intervals(), true_time=snap.time))


def main() -> None:
    run_policy(IMPolicy(), "Algorithm IM (intersection)")
    run_policy(MMPolicy(), "Algorithm MM (minimize maximum error)")
    print(
        "\nNote how IM keeps both the errors and the asynchronism far "
        "smaller: the intersection recovers the information in how far the "
        "clocks have actually drifted apart (paper, Section 4)."
    )


if __name__ == "__main__":
    main()
