"""Ordering distributed events with interval timestamps.

The paper's introduction names event ordering as a primary use of a time
service.  Point timestamps from drifting clocks silently order events
wrongly; interval timestamps — the very pair `<C, E>` a Marzullo-Owicki
server reports — are honest: disjoint intervals give a *certain* order,
overlapping ones admit they cannot tell.

The scenario: three application nodes, each stamping its events at its
local time server.  A burst of events a few milliseconds apart (inside the
uncertainty) and a sequence of well-separated events are both stamped with
(a) naive point timestamps and (b) interval timestamps, then checked
against the oracle's true order.  Finally the TrueTime-style commit-wait
shows how long a writer must pause to make its timestamp order certain.

Run:
    python examples/event_ordering.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import IMPolicy, ServerSpec, UniformDelay, build_service, full_mesh
from repro.analysis.plots import render_table
from repro.ordering import TimestampAuthority, certain_order, commit_wait


def main() -> None:
    delta = 1e-4  # sloppy workstation clocks make the effect visible
    specs = [
        ServerSpec(f"S{k + 1}", delta=delta, skew=0.85 * delta * (k - 1))
        for k in range(3)
    ]
    service = build_service(
        full_mesh(3),
        specs,
        policy=IMPolicy(),
        tau=60.0,
        seed=4,
        lan_delay=UniformDelay(0.01),
    )
    service.run_until(600.0)
    authorities = {
        name: TimestampAuthority(service.servers[name])
        for name in ("S1", "S2", "S3")
    }

    # --- a burst: events 5 ms apart, round-robin across nodes.
    burst = []
    for index in range(5):
        issuer = f"S{index % 3 + 1}"
        service.run_until(service.engine.now + 0.005)
        burst.append((service.engine.now, issuer, authorities[issuer].now()))

    print("Burst of events 5 ms apart (uncertainty is tens of ms):")
    rows = []
    for true_time, issuer, ts in burst:
        rows.append([f"{true_time:.3f}", issuer, ts.interval.center, ts.interval.error])
    print(render_table(["true time", "node", "stamp C", "stamp E"], rows, precision=6))

    stamps = [ts for _t, _issuer, ts in burst]
    point_order = sorted(range(5), key=lambda k: stamps[k].interval.center)
    true_order = list(range(5))  # minted in true-time order
    _certain, indeterminate = certain_order(stamps)
    print(f"\n  naive point order:   {point_order}"
          + ("  <- WRONG" if point_order != true_order else ""))
    print(f"  interval verdict:    {len(indeterminate)} of 10 pairs "
          "indeterminate — the honest answer at this spacing")

    # --- well-separated events: certainty returns.
    spaced = []
    for index in range(4):
        issuer = f"S{index % 3 + 1}"
        service.run_until(service.engine.now + 5.0)
        spaced.append(authorities[issuer].now())
    _order, indeterminate = certain_order(spaced)
    print(f"\nEvents 5 s apart: {len(indeterminate)} indeterminate pairs — "
          "every order certain.")

    # --- commit-wait.
    writer = authorities["S1"].now()
    wait = commit_wait(writer)
    service.run_until(service.engine.now + wait + 1e-6)
    reader = authorities["S2"].now()
    print(
        f"\nCommit-wait: a writer stamped with E = {writer.interval.error:.4f} s "
        f"holds for {wait:.3f} s; a reader stamping afterwards is then "
        f"certainly later: {writer.definitely_before(reader)}."
    )
    print(
        "\nThis is the paper's interval representation doing the job "
        "TrueTime popularised twenty-nine years later."
    )


if __name__ == "__main__":
    main()
