"""Chaos soak: a fault storm with the correctness oracle watching.

Three acts:

1. Build a five-server mesh, sample a seeded fault schedule (link flaps,
   loss bursts, partitions, crashes, stepped/frozen/racing clocks, a
   Byzantine liar), replay it with the injector, and let the invariant
   monitor assert — every five simulated seconds — that each *non-faulty*
   server's interval still contains true time.
2. Replay the identical seeds and show the run is bit-for-bit
   reproducible (same schedule signature, same trace digest).
3. Pit a plain service against a hardened one under a targeted attack
   (30% loss, flapping links, a liar that underreports its error) and
   compare what each paid.

Run:
    python examples/chaos_soak.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.analysis.plots import render_table
from repro.experiments.chaos_soak import compare_hardening, run_soak


def act_one_and_two() -> None:
    print("=" * 72)
    print("Act 1 — soak: seeded fault storm, oracle on")
    print("=" * 72)
    headers = [
        "policy", "seed", "faults", "checks", "violations",
        "exempt", "survive", "digest",
    ]
    rows = []
    digests = {}
    for policy in ("MM", "IM"):
        for seed in (0, 1):
            outcome = run_soak(policy, seed, horizon=900.0)
            digests[(policy, seed)] = outcome.trace_digest
            rows.append(
                [
                    policy,
                    seed,
                    outcome.events_applied,
                    outcome.checks,
                    outcome.violations,
                    outcome.exemptions,
                    f"{outcome.survival_rate:.2f}",
                    f"{outcome.trace_digest:08x}",
                ]
            )
            assert outcome.violations == 0
    print(render_table(headers, rows))
    print("zero violations: every un-excused interval contained true time.")

    print()
    print("=" * 72)
    print("Act 2 — determinism: same seeds, same storm, same trace")
    print("=" * 72)
    again = run_soak("MM", 0, horizon=900.0)
    print(f"first run digest : {digests[('MM', 0)]:08x}")
    print(f"second run digest: {again.trace_digest:08x}")
    assert again.trace_digest == digests[("MM", 0)]


def act_three() -> None:
    print()
    print("=" * 72)
    print("Act 3 — hardening: plain vs hardened under a targeted attack")
    print("=" * 72)
    c = compare_hardening(seed=0, horizon=1200.0)
    headers = [
        "service", "inconsistencies", "invalid caught", "quarantines",
        "retries", "worst err (s)", "honest correct",
    ]
    rows = [
        [
            "plain", c.baseline_inconsistencies, "-", "-", "-",
            f"{c.baseline_worst_error:.4f}", f"{c.baseline_honest_correct:.4f}",
        ],
        [
            "hardened", c.hardened_inconsistencies, c.hardened_invalid_replies,
            c.hardened_quarantines, c.hardened_retries,
            f"{c.hardened_worst_error:.4f}", f"{c.hardened_honest_correct:.4f}",
        ],
    ]
    print(render_table(headers, rows))
    print(
        "The plain service raises inconsistency alarms without bound and\n"
        "believes the liar's precise-looking intervals; the hardened one\n"
        "rejects the lies as implausible, quarantines the liar, retries\n"
        "through the loss, and keeps every honest server correct."
    )


if __name__ == "__main__":
    act_one_and_two()
    act_three()
