"""Monotonic client clocks over a backward-stepping time service.

The service is free to step clocks backwards (algorithm IM regularly does,
whenever the intersection midpoint lands behind the local clock), but a
client may need monotonic time — for timeouts, leases, or event ordering.
The paper's suggestion (Section 1.1): run the monotonic clock "more slowly
when the nonmonotonic clock is set backwards."

This example runs a two-server IM service whose fast clock keeps getting
stepped back, attaches a MonotonicClock adapter, and shows that the adapter
(a) never decreases while the raw clock repeatedly does, and (b) tracks the
raw clock closely between steps.

Run:
    python examples/monotonic_client.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import IMPolicy, MonotonicClock, ServerSpec, UniformDelay, build_service, full_mesh
from repro.analysis.plots import render_table


def main() -> None:
    delta = 5e-4  # deliberately sloppy clocks so the steps are visible
    specs = [
        ServerSpec("S1", delta=delta, skew=+0.9 * delta),  # fast: stepped back
        ServerSpec("S2", delta=delta, skew=-0.9 * delta),
    ]
    service = build_service(
        full_mesh(2),
        specs,
        policy=IMPolicy(),
        tau=30.0,
        seed=1,
        lan_delay=UniformDelay(0.005),
    )
    fast_server = service.servers["S1"]
    mono = MonotonicClock(fast_server.clock, slew=0.5)

    # Step the engine event by event and read both clocks after every
    # event: consecutive readings straddle each reset, so backward steps of
    # the raw clock are actually observable (they are milliseconds — far
    # smaller than any fixed-grid sampling interval).
    sample_times, raw_readings, mono_readings = [], [], []
    horizon = 300.0
    while service.engine.now < horizon and service.engine.step():
        t = service.engine.now
        sample_times.append(t)
        raw_readings.append(fast_server.clock.read(t))
        mono_readings.append(mono.read(t))

    raw_steps_back = sum(
        1 for a, b in zip(raw_readings, raw_readings[1:]) if b < a
    )
    mono_steps_back = sum(
        1 for a, b in zip(mono_readings, mono_readings[1:]) if b < a
    )
    worst_gap = max(
        m - r for m, r in zip(mono_readings, raw_readings)
    )

    print("Two-server IM service; S1 runs fast and is stepped back at "
          "every round.\n")
    rows = []
    stride = max(1, len(sample_times) // 10)
    for index in range(0, len(sample_times), stride):
        rows.append(
            [
                sample_times[index],
                raw_readings[index],
                mono_readings[index],
                mono_readings[index] - raw_readings[index],
            ]
        )
    print(
        render_table(
            ["real time", "raw C_S1", "monotonic view", "mono - raw"],
            rows,
            precision=7,
        )
    )
    print(f"\nbackward steps in the raw clock:      {raw_steps_back}")
    print(f"backward steps in the monotonic view: {mono_steps_back}")
    print(f"worst lead of the monotonic view:     {worst_gap * 1e3:.2f} ms")
    assert mono_steps_back == 0
    print(
        "\nThe adapter amortises each backward step by running at half rate "
        "until the raw clock catches up — exactly the paper's construction."
    )


if __name__ == "__main__":
    main()
