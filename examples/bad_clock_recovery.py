"""The paper's Section 3 war story, replayed: a clock an hour-per-day fast.

Two time servers share a LAN.  Both claim their clocks drift at most one
second per day — but server B's crystal is actually about four percent fast
(roughly an hour per day).  Every time either server polls, B's reply is
wildly inconsistent with A's interval; MM-2 ignores inconsistent replies,
so without recovery B just keeps racing away.

With the paper's third-server recovery rule, each inconsistency makes the
server fetch the time unconditionally from a reference server on another
network (over a slow WAN path), which yanks B back near the truth — until
it races off again.  The printout shows the sawtooth and the anecdote's
moral: the longer the poll period, the further off B gets before each
reset.

Run:
    python examples/bad_clock_recovery.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import networkx as nx

from repro import MMPolicy, ServerSpec, ThirdServerRecovery, UniformDelay, build_service
from repro.analysis.plots import render_series, render_table

ONE_SECOND_PER_DAY = 1.0 / 86400.0
FOUR_PERCENT = 0.04


def run_once(tau: float, horizon: float = 3600.0):
    graph = nx.Graph()
    graph.add_edge("A", "B", kind="lan")
    graph.add_edge("A", "R", kind="wan")
    graph.add_edge("B", "R", kind="wan")
    specs = [
        ServerSpec("A", delta=ONE_SECOND_PER_DAY, skew=0.0),
        ServerSpec("B", delta=ONE_SECOND_PER_DAY, skew=FOUR_PERCENT),
        ServerSpec("R", reference=True, initial_error=0.001),
    ]
    service = build_service(
        graph,
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=11,
        lan_delay=UniformDelay(0.01),
        wan_delay=UniformDelay(0.25),
        recovery_factory=lambda name: ThirdServerRecovery(remote_servers=("R",)),
        trace_enabled=True,
    )
    times, offsets = [], []
    step = max(tau / 10.0, 5.0)
    t = 0.0
    while t <= horizon:
        service.run_until(t)
        snap = service.snapshot()
        times.append(t)
        offsets.append(abs(snap.offsets["B"]))
        t += step
    recoveries = service.trace.filter(
        kind="reset",
        predicate=lambda row: row.data.get("reset_kind") == "recovery",
    )
    return times, offsets, len(recoveries)


def main() -> None:
    print("Section 3 anecdote: server B is ~4% fast with a claimed bound of "
          "1 s/day.\n")
    times, offsets, recoveries = run_once(tau=300.0)
    print(render_series(
        times,
        {"|offset of B| (s)": offsets},
        width=64,
        height=10,
        title=f"B's offset sawtooth (τ = 300 s, {recoveries} recoveries)",
    ))

    print("\nThe moral — 'the servers did not check their neighbor very "
          "often, so\nthe time of the inaccurate clock would be very far "
          "off by the time it reset':\n")
    rows = []
    for tau in (60.0, 300.0, 900.0):
        _t, offs, recs = run_once(tau=tau)
        rows.append([tau, recs, max(offs)])
    print(render_table(["poll period τ (s)", "recoveries", "worst offset (s)"], rows))


if __name__ == "__main__":
    main()
