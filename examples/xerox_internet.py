"""A Xerox-Research-Internet-scale scenario.

The paper's setting: "thousands of personal workstations ... hundreds of
public processors" acting as time servers across multiple interconnected
local networks.  This example builds a two-level internetwork — five local
networks of six servers each, gateways in a ring — gives one network a
radio-clock reference server, runs algorithm IM for two simulated hours,
and then has a workstation client on a *different* network query the
service with all three client strategies.

Run:
    python examples/xerox_internet.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from repro import (
    IMPolicy,
    QueryStrategy,
    ServerSpec,
    UniformDelay,
    build_service,
    two_level_internet,
)
from repro.analysis.plots import render_table

NETWORKS = 5
SERVERS_PER_NETWORK = 6
HORIZON = 2.0 * 3600.0  # two simulated hours
CLIENT = "N4-WS1"  # a workstation on network 4, far from the reference


def main() -> None:
    graph = two_level_internet(NETWORKS, SERVERS_PER_NETWORK)
    # Graft the client workstation onto network 4's LAN.
    lan4 = [f"N4-S{k}" for k in range(1, SERVERS_PER_NETWORK + 1)]
    for server in lan4:
        graph.add_edge(CLIENT, server, kind="lan")

    rng = np.random.default_rng(7)
    specs = []
    for node in sorted(n for n in graph.nodes if n != CLIENT):
        if node == "N1-S2":
            # One machine on network 1 has a radio receiver: the standard.
            specs.append(ServerSpec(node, reference=True, initial_error=0.001))
            continue
        delta = float(10 ** rng.uniform(-5.5, -4.0))  # 0.3..9 s/day bounds
        skew = float(rng.uniform(-0.8, 0.8)) * delta
        specs.append(ServerSpec(node, delta=delta, skew=skew))

    service = build_service(
        graph,
        specs,
        policy=IMPolicy(),
        tau=120.0,
        seed=7,
        lan_delay=UniformDelay(0.01),  # fast LANs
        wan_delay=UniformDelay(0.25),  # slow gateway hops
    )
    client = service.add_client(CLIENT, timeout=2.0)
    client.start()
    service.run_until(HORIZON)

    snap = service.snapshot()
    print(
        f"Service state after {HORIZON / 3600:.0f} simulated hours "
        f"({len(specs)} servers on {NETWORKS} networks):"
    )
    rows = []
    for net in range(1, NETWORKS + 1):
        members = [n for n in snap.values if n.startswith(f"N{net}-")]
        errors = [snap.errors[m] for m in members]
        offsets = [abs(snap.offsets[m]) for m in members]
        rows.append(
            [
                f"N{net}",
                len(members),
                min(errors),
                max(errors),
                max(offsets),
                all(snap.correct[m] for m in members),
            ]
        )
    print(
        render_table(
            ["network", "servers", "min E", "max E", "worst |offset|", "correct"],
            rows,
        )
    )
    print(
        f"\nglobal asynchronism: {snap.asynchronism * 1e3:.1f} ms; "
        f"consistent: {snap.consistent}"
    )

    # --- The workstation asks its local time servers.
    print(f"\nClient {CLIENT} queries its six LAN servers:")
    results = {}
    for strategy in QueryStrategy:
        client.ask(
            lan4,
            strategy,
            callback=lambda r, s=strategy: results.__setitem__(s, r),
            faults=1 if strategy is QueryStrategy.INTERSECT else 0,
        )
        service.run_until(service.engine.now + 5.0)
    rows = [
        [
            strategy.value,
            results[strategy].true_offset,
            results[strategy].error,
            results[strategy].correct,
        ]
        for strategy in QueryStrategy
    ]
    print(
        render_table(
            ["strategy", "estimate - true time", "claimed error", "correct"],
            rows,
        )
    )
    print(
        "\nThe intersection strategy gives the tightest correct estimate — "
        "the client-side benefit of interval-reporting servers."
    )


if __name__ == "__main__":
    main()
