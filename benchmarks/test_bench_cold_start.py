"""Benchmark: cold-start convergence from operator-set clocks."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import cold_start


def test_bench_cold_start(benchmark):
    """Both algorithms pull a ±15 s service together within ~1 round while
    staying correct throughout (honest initial errors)."""
    results = benchmark.pedantic(
        cold_start.run, kwargs=dict(horizon=2400.0), rounds=1
    )
    for result in results:
        assert result.correct_throughout
        assert result.settle_rounds is not None and result.settle_rounds <= 3.0
    print("\nCold start:")
    print(
        render_table(
            ["policy", "initial asyn (s)", "settle (rounds)", "steady asyn (s)"],
            [
                [r.policy, r.initial_asynchronism, r.settle_rounds, r.steady_asynchronism]
                for r in results
            ],
        )
    )
