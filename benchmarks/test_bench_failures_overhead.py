"""Benchmarks for the failure-injection matrix, the overhead sweeps, and
the frequency-discipline comparison."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import discipline, failures, overhead


def test_bench_failure_matrix(benchmark):
    """Section 1.1's failure menu under MM/IM ± recovery."""
    outcomes = benchmark.pedantic(
        failures.run_matrix, kwargs=dict(horizon=2400.0), rounds=1
    )
    mm_cells = [o for o in outcomes if o.policy == "MM"]
    assert all(o.healthy_correct for o in mm_cells)
    print("\nFailure matrix:")
    print(
        render_table(
            ["failure", "policy", "recovery", "healthy ok", "faulty |offset|"],
            [
                [o.failure, o.policy, o.recovery, o.healthy_correct, o.faulty_final_offset]
                for o in outcomes
            ],
        )
    )


def test_bench_overhead_tradeoff(benchmark):
    """Messages per server-hour vs steady error across τ."""
    rows = benchmark.pedantic(
        overhead.sweep_tau, kwargs=dict(taus=(30.0, 60.0, 120.0, 240.0)), rounds=1
    )
    assert rows[-1].worst_offset > rows[0].worst_offset
    print("\nCost vs accuracy:")
    print(
        render_table(
            ["τ (s)", "msgs/server/h", "mean E (s)", "worst |offset| (s)"],
            [
                [r.tau, r.messages_per_server_hour, r.mean_error, r.worst_offset]
                for r in rows
            ],
        )
    )


def test_bench_loss_robustness(benchmark):
    """Correctness survives heavy packet loss; the error floor rises."""
    rows = benchmark.pedantic(
        overhead.sweep_loss, kwargs=dict(losses=(0.0, 0.2, 0.5, 0.8)), rounds=1
    )
    assert all(r.correct for r in rows)
    print("\nLoss robustness:")
    print(
        render_table(
            ["loss", "reply rate", "mean E (s)", "worst |offset| (s)"],
            [[r.loss, r.reply_rate, r.mean_error, r.worst_offset] for r in rows],
        )
    )


def test_bench_frequency_discipline(benchmark):
    """The Section 5 loop closed: discipline shrinks true offsets."""
    result = benchmark.pedantic(
        discipline.run, kwargs=dict(horizon=4.0 * 3600.0), rounds=1
    )
    assert result.offset_improvement > 2.0
    print(
        f"\nDiscipline: worst offset {result.plain.worst_true_offset:.2e} s "
        f"-> {result.disciplined.worst_true_offset:.2e} s "
        f"(×{result.offset_improvement:.1f}); claimed errors unchanged "
        f"({result.plain.mean_claimed_error:.2e} vs "
        f"{result.disciplined.mean_claimed_error:.2e})"
    )
