"""Benchmarks regenerating Figures 1–4.

Each test re-runs the corresponding experiment under pytest-benchmark,
asserts the paper's claim, and prints the reproduced diagram.
"""

from __future__ import annotations

from repro.experiments import figure1, figure2, figure3, figure4


def test_bench_figure1_error_growth(benchmark):
    """Figure 1 — growth of maximum errors of three correct servers."""
    result = benchmark(figure1.run)
    assert result.all_correct
    print("\nFigure 1 — Growth of Maximum Errors")
    for snap, diagram in zip(result.snapshots, result.diagrams):
        print(f"t = {snap.time:.0f} s")
        print(diagram)


def test_bench_figure2_intersections(benchmark):
    """Figure 2 — the two intersection cases + Theorem 6."""
    result = benchmark(figure2.run)
    assert result.theorem6_holds
    assert result.nested.same_server_edges
    assert not result.overlapping.same_server_edges
    print("\nFigure 2 — Intersections of Maximum Errors")
    print("nested case:")
    print(result.nested.diagram)
    print("overlapping case:")
    print(result.overlapping.diagram)


def test_bench_figure3_mm_vs_im_recovery(benchmark):
    """Figure 3 — MM recovers correctness, IM locks onto S2 ∩ S3."""
    result = benchmark(figure3.run)
    assert result.consistent
    assert result.mm_correct and not result.im_correct
    print("\nFigure 3 — consistent but partially incorrect state")
    print(result.diagram)
    print(f"MM -> {result.mm_source} (correct={result.mm_correct}); "
          f"IM -> {result.im_source} (correct={result.im_correct})")


def test_bench_figure4_consistency_groups(benchmark):
    """Figure 4 — the inconsistent six-server service and its 3 groups."""
    result = benchmark(figure4.run)
    assert not result.globally_consistent
    assert len(result.groups) == 3
    print("\nFigure 4 — An Inconsistent Time Service")
    print(result.diagram)
    for group in result.groups:
        print(f"group {{{', '.join(group.members)}}} ∩ = {group.intersection}")
