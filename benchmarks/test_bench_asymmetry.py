"""Benchmark: delay asymmetry — interval exchange vs midpoint compensation."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import delay_asymmetry


def test_bench_delay_asymmetry(benchmark):
    """Asymmetric paths bias midpoint-compensating baselines by ~(ρ-σ)/2;
    the interval exchange absorbs the asymmetry inside its claimed error."""
    rows = benchmark.pedantic(
        delay_asymmetry.run, kwargs=dict(horizon=1200.0), rounds=1
    )
    by_key = {(r.policy, r.asymmetric): r for r in rows}
    assert by_key[("IM", True)].correct
    for policy in ("median", "mean", "first-reply"):
        assert by_key[(policy, True)].mean_offset > abs(
            by_key[("IM", True)].mean_offset
        )
    print("\nDelay asymmetry:")
    print(
        render_table(
            ["policy", "asymmetric", "mean offset (s)", "worst |offset| (s)"],
            [
                [r.policy, r.asymmetric, r.mean_offset, r.worst_offset]
                for r in rows
            ],
        )
    )
