"""Benchmarks: tick-granularity study and the joint parameter sweep."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import quantization
from repro.sweeps import ParameterGrid, mesh_steady_state, run_sweep


def test_bench_quantization(benchmark):
    """Read-out granularity: cumulative floor bias vs budgeted bookkeeping."""
    rows = benchmark.pedantic(
        quantization.run, kwargs=dict(horizon=1200.0), rounds=1
    )
    assert all(r.naive_violations > 0 for r in rows)
    assert all(r.budgeted_violations == 0 for r in rows)
    print("\nTick granularity:")
    print(
        render_table(
            ["tick (s)", "naive violations", "budgeted violations", "budgeted mean E"],
            [
                [r.tick, r.naive_violations, r.budgeted_violations, r.budgeted_mean_error]
                for r in rows
            ],
        )
    )


def test_bench_parameter_surface(benchmark):
    """The MM/IM response surface over (n, τ, ξ)."""

    def run_surface():
        grid = ParameterGrid.of(
            policy=["MM", "IM"],
            n=[3, 8],
            tau=[30.0, 120.0],
            one_way=[0.005, 0.05],
        )
        return run_sweep(mesh_steady_state, grid, replications=1, base_seed=3)

    result = benchmark.pedantic(run_surface, rounds=1)
    assert not result.failures
    rows = result.aggregate()
    assert all(row["correct"] == 1.0 for row in rows)
    print("\nResponse surface (steady state):")
    print(result.to_table())
