"""Benchmarks for Theorems 2, 3 and 7 — bound compliance sweeps."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments.scenarios import MeshScenario
from repro.experiments.theorem_bounds import (
    _default_deltas,
    run_im_bounds,
    run_mm_bounds,
)


def test_bench_theorem2_mm_error_bound(benchmark):
    """Theorem 2: E_i < E_M + ξ + δ_i(τ + 2ξ) on an MM mesh."""
    scenario = MeshScenario(n=5, deltas=_default_deltas(5, 1e-5), tau=60.0, seed=0)
    result = benchmark.pedantic(
        run_mm_bounds, args=(scenario,), kwargs=dict(horizon=1800.0), rounds=1
    )
    assert result.theorem2 is not None and result.theorem2.holds
    print(
        f"\nTheorem 2: holds over {result.theorem2.samples} samples; "
        f"max measured/bound = {result.theorem2.max_ratio:.3f}"
    )


def test_bench_theorem3_mm_asynchronism_bound(benchmark):
    """Theorem 3: |C_i - C_j| < 2E_M + 2ξ + (δ_i + δ_j)(τ + 2ξ)."""
    scenario = MeshScenario(n=5, deltas=_default_deltas(5, 1e-5), tau=60.0, seed=0)
    result = benchmark.pedantic(
        run_mm_bounds, args=(scenario,), kwargs=dict(horizon=1800.0), rounds=1
    )
    assert result.theorem3 is not None and result.theorem3.holds
    print(
        f"\nTheorem 3: holds over worst pair; "
        f"max measured/bound = {result.theorem3.max_ratio:.3f}"
    )


def test_bench_theorem7_im_asynchronism_bound(benchmark):
    """Theorem 7: |C_i - C_j| <= ξ + (δ_i + δ_j)τ on an IM mesh."""
    scenario = MeshScenario(n=5, deltas=_default_deltas(5, 1e-5), tau=60.0, seed=0)
    result = benchmark.pedantic(
        run_im_bounds, args=(scenario,), kwargs=dict(horizon=1800.0), rounds=1
    )
    assert result.theorem7 is not None and result.theorem7.holds
    print(
        f"\nTheorem 7: holds over worst pair; "
        f"max measured/bound = {result.theorem7.max_ratio:.3f}"
    )


def test_bench_bounds_sweep_table(benchmark):
    """The full n × τ sweep table for all three bounds."""

    def sweep_small():
        rows = []
        for n in (3, 6):
            for tau in (30.0, 120.0):
                scenario = MeshScenario(
                    n=n, deltas=_default_deltas(n, 1e-5), tau=tau, seed=0
                )
                mm = run_mm_bounds(scenario, horizon=1200.0, samples=60)
                im = run_im_bounds(scenario, horizon=1200.0, samples=60)
                rows.append(
                    [
                        f"n={n} τ={tau:g}",
                        mm.theorem2.holds,
                        mm.theorem2.max_ratio,
                        mm.theorem3.holds,
                        mm.theorem3.max_ratio,
                        im.theorem7.holds,
                        im.theorem7.max_ratio,
                    ]
                )
        return rows

    rows = benchmark.pedantic(sweep_small, rounds=1)
    assert all(row[1] and row[3] and row[5] for row in rows)
    print("\nBound-compliance sweep (measured/bound ratios, all < 1):")
    print(
        render_table(
            ["scenario", "T2", "T2 ratio", "T3", "T3 ratio", "T7", "T7 ratio"],
            rows,
        )
    )
