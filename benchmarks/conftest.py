"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's figures/claims and prints the
reproduced artefact (run ``pytest benchmarks/ --benchmark-only -s`` to see
them).  Heavy simulations use ``benchmark.pedantic`` with one round so the
timing is of the full experiment, not a hot-loop microbenchmark.
"""

import sys
from pathlib import Path

SRC = Path(__file__).parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
