"""Benchmarks for the recovery subsystem: stable-store checkpoint I/O and
the self-stabilizing group-merge convergence of the Figure 4 repair."""

from __future__ import annotations

from repro.experiments import figure4_repair
from repro.recovery import Checkpoint, StableStore


def test_bench_checkpoint_write_restore(benchmark):
    """Raw checkpoint cycle: encode + CRC + store + read-back + verify."""

    def cycle(iterations: int = 1000) -> int:
        store = StableStore()
        hits = 0
        for k in range(iterations):
            store.write(
                Checkpoint(
                    server="S1",
                    clock_value=1000.0 + k,
                    error=0.02 + 1e-5 * k,
                    rate_estimate=0.0,
                    epoch=k % 7,
                    sequence=k,
                )
            )
            if store.read("S1") is not None:
                hits += 1
        return hits

    hits = benchmark.pedantic(cycle, rounds=3)
    assert hits == 1000
    print(f"\nCheckpoint cycle: {hits}/1000 write+read round trips verified")


def test_bench_crash_restart(benchmark):
    """A full simulated crash/restart: the warm path must revive correct."""
    row = benchmark.pedantic(
        figure4_repair.run_soak, kwargs=dict(seed=1), rounds=1
    )
    assert row.warm_restarts >= 1 and row.warm_all_correct
    assert row.correctness_violations == 0
    print(
        f"\nCrash soak (seed 1): {row.restarts} restarts "
        f"({row.warm_restarts} warm, {row.cold_restarts} cold), "
        f"all warm correct: {row.warm_all_correct}"
    )


def test_bench_group_merge_convergence(benchmark):
    """The Figure 4 repair: the stabilized arm must end in one group of
    non-faulty servers with zero correctness violations."""
    result = benchmark.pedantic(
        figure4_repair.run, kwargs=dict(self_stabilizing=True), rounds=1
    )
    assert result.merged
    assert result.correctness_violations == 0
    print(
        f"\nGroup merge: {len(result.groups_good)} non-faulty group(s); "
        f"census detected split at t={result.census_detection_time}; "
        f"{result.total_recoveries} recoveries "
        f"({result.poisoned_recoveries} poisoned)"
    )
