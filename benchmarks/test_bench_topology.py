"""Benchmark: the topology / distance-from-reference study."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import topology_study


def test_bench_topology_gradient(benchmark):
    """Error grows with hop distance from the standard; mesh/star are flat."""
    results = benchmark.pedantic(
        topology_study.run_all, kwargs=dict(n=9, horizon=2400.0), rounds=1
    )
    by_shape = {r.shape: r for r in results}
    assert all(r.all_correct for r in results)
    assert by_shape["line"].gradient > 0
    assert by_shape["mesh"].gradient == 0.0
    print("\nTopology study (per-hop mean error):")
    for result in results:
        rows = [
            [row.hops, row.servers, row.mean_error, row.worst_offset]
            for row in result.by_hops
        ]
        print(f"{result.shape} (gradient {result.gradient:.2e} s/hop):")
        print(
            render_table(
                ["hops", "servers", "mean E (s)", "worst |offset| (s)"], rows
            )
        )
