"""Benchmarks for the DESIGN.md ablations."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import ablations


def test_bench_mm_rtt_inflation(benchmark):
    """The (1 + δ)ξ inflation is load-bearing for reset safety."""
    result = benchmark.pedantic(ablations.run_mm_inflation, rounds=1)
    assert result.violations_with == 0
    assert result.violations_without > 0
    print(
        f"\nMM inflation ablation: paper rule 0 unsafe resets, raw-ξ "
        f"variant {result.violations_without}/{result.resets_checked}"
    )


def test_bench_im_design_variants(benchmark):
    """Each IM deviation inflates the steady-state error."""
    variants = benchmark.pedantic(ablations.run_im_variants, rounds=1)
    by_name = {v.name: v for v in variants}
    assert by_name["widen-both-edges"].ratio_to_paper > 1.0
    assert by_name["no-self-interval"].ratio_to_paper > 1.0
    assert by_name["trailing-reset"].ratio_to_paper > 1.0
    print("\nIM variant ablation (steady-state mean error):")
    print(
        render_table(
            ["variant", "mean error (s)", "×paper"],
            [[v.name, v.mean_error, v.ratio_to_paper] for v in variants],
        )
    )


def test_bench_tau_sensitivity(benchmark):
    """Steady-state error and asynchronism degrade with the poll period."""
    rows = benchmark.pedantic(ablations.run_tau_sweep, rounds=1)
    assert rows[-1].mean_error > rows[0].mean_error
    print("\nτ sensitivity (IM):")
    print(
        render_table(
            ["τ (s)", "mean error (s)", "max asynchronism (s)"],
            [[r.tau, r.mean_error, r.max_asynchronism] for r in rows],
        )
    )
