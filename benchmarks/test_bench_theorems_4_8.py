"""Benchmarks for Theorem 4 (convergence) and Theorem 8 (expected error)."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import theorem4, theorem8


def test_bench_theorem4_convergence(benchmark):
    """Theorem 4: the min-error holder ends up in S_min, within t_x^0."""
    result = benchmark.pedantic(theorem4.run, rounds=1)
    assert result.report.converged
    assert result.within_bound
    print(
        f"\nTheorem 4: converged at t = {result.report.measured_time:.0f} s "
        f"(predicted worst case {result.report.predicted_time:.0f} s)"
    )


def test_bench_theorem8_error_vs_n(benchmark):
    """Theorem 8: lim E(e) = e0 as n grows."""
    result = benchmark.pedantic(
        theorem8.run_monte_carlo, kwargs=dict(trials=4000), rounds=1
    )
    assert result.monotone_decreasing
    print("\nTheorem 8 — E(intersection half-width) vs n "
          f"(e0 = {result.e0}, δΔ = {result.delta * result.elapsed:g}):")
    rows = [
        [n, result.mean_error[n], result.mean_error[n] / result.e0]
        for n in sorted(result.mean_error)
    ]
    print(render_table(["n", "E(e)", "E(e)/e0"], rows))


def test_bench_theorem8_overspecification(benchmark):
    """The prose corollary: error growth equals the overspecification."""
    rows = benchmark.pedantic(
        theorem8.run_overspecified, kwargs=dict(trials=4000), rounds=1
    )
    for row in rows:
        assert abs(row.measured_excess - row.limit_growth) < 0.02
    print("\nOverspecified bounds — measured vs predicted growth:")
    print(
        render_table(
            ["actual/claimed", "predicted", "measured"],
            [[r.fraction, r.limit_growth, r.measured_excess] for r in rows],
        )
    )
