"""Benchmarks for the overload subsystem: admission fast-path throughput
and the flash-crowd comparison's headline numbers."""

from __future__ import annotations

from repro.experiments import flash_crowd
from repro.load.admission import TokenBucket, TokenBucketConfig
from repro.load.capacity import QueuedItem, RequestQueue, ServiceClass


def test_bench_admission_fast_path(benchmark):
    """The per-request gate: token-bucket check + priority queue churn.

    This is the cost a defended server pays on *every* client arrival, so
    it has to stay trivially cheap next to the 8 ms service time.
    """

    def churn(n: int = 20_000) -> int:
        bucket = TokenBucket(TokenBucketConfig(rate=1e9, burst=64.0))
        queue = RequestQueue(limit=64, prioritized=True)
        served = 0
        for k in range(n):
            now = k * 1e-6
            if not bucket.try_admit(now):
                continue
            queue.push(
                QueuedItem(
                    service_class=ServiceClass.CLIENT,
                    message=None,
                    sender="C",
                    arrived=now,
                )
            )
            if queue.pop() is not None:
                served += 1
        return served

    served = benchmark.pedantic(churn, rounds=3)
    assert served == 20_000
    print(f"\nAdmission fast path: {served} admit+push+pop cycles")


def test_bench_flash_crowd_comparison(benchmark):
    """The full two-arm flash crowd under one seed, with the headline
    numbers (goodput, p99, degraded correctness) printed for the record."""
    comparison = benchmark.pedantic(
        flash_crowd.run_comparison, kwargs=dict(seed=11), rounds=1
    )
    assert comparison.passed
    plain, controlled = comparison.plain, comparison.controlled
    print(
        f"\nFlash crowd (seed 11): plain goodput {plain.goodput:.0f}/s "
        f"(p99 {plain.p99_latency * 1e3:.0f} ms, "
        f"{plain.sync_plane_violations} sync-plane violations) vs "
        f"controlled {controlled.goodput:.0f}/s "
        f"(p99 {controlled.p99_latency * 1e3:.0f} ms, 0 violations, "
        f"{controlled.degraded_correct}/{controlled.degraded_replies} "
        "degraded replies oracle-correct)"
    )
