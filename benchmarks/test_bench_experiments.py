"""Benchmarks for the paper's narrated experiments: correctness suite, the
ten-times-slower claim, the 4%-fast recovery anecdote, and the partition
breakdown."""

from __future__ import annotations

from repro.analysis.plots import render_table
from repro.experiments import correctness, drift_recovery, partition, tenfold


def test_bench_correctness_suite(benchmark):
    """Theorems 1 & 5 as a randomized suite: zero violations expected."""
    runs = benchmark.pedantic(
        correctness.run_suite,
        kwargs=dict(seeds=(0, 1), sizes=(3, 6), horizon=1200.0),
        rounds=1,
    )
    assert all(run.correct for run in runs)
    print(f"\nCorrectness suite: {len(runs)} runs, 0 violations.")
    control = correctness.run_invalid_bound_control(horizon=1200.0)
    assert control.violations > 0
    print(
        f"Invalid-bound control: {control.violations}/{control.samples} "
        "violating samples (as the paper warns)."
    )


def test_bench_tenfold_error_growth(benchmark):
    """Section 4: 'the error grew ten times slower' under IM than MM."""
    result = benchmark.pedantic(
        tenfold.run, kwargs=dict(horizon=4.0 * 3600.0, samples=80), rounds=1
    )
    assert 7.0 < result.ratio < 13.0
    print(
        f"\nError growth: MM {result.mm.slope:.2e} s/s vs IM "
        f"{result.im.slope:.2e} s/s -> ratio {result.ratio:.1f} (paper: ~10)"
    )


def test_bench_recovery_anecdote(benchmark):
    """Section 3: the 4%-fast clock, inconsistency, third-server recovery."""
    result = benchmark.pedantic(
        drift_recovery.run, kwargs=dict(tau=300.0, horizon=7200.0), rounds=1
    )
    assert result.inconsistencies > 0
    assert result.recoveries > 0
    assert result.b_kept_bounded
    print(
        f"\nRecovery anecdote: {result.inconsistencies} inconsistencies, "
        f"{result.recoveries} recoveries, worst offset "
        f"{result.worst_offset_b:.2f} s"
    )
    rows = drift_recovery.sweep_tau(taus=(60.0, 300.0, 900.0), horizon=3600.0)
    print(
        render_table(
            ["τ (s)", "recoveries", "worst offset (s)"],
            [[r.tau, r.recoveries, r.worst_offset] for r in rows],
        )
    )
    assert rows[-1].worst_offset > rows[0].worst_offset


def test_bench_partition_breakdown(benchmark):
    """Section 5: recovery breaks down with two bad neighbours; the
    service partitions into consistency groups (the Figure 4 state)."""
    result = benchmark.pedantic(partition.run, rounds=1)
    assert result.partitioned
    assert result.poisoned_recoveries > 0
    assert result.diagnosis_correct
    print(
        f"\nPartition breakdown: {len(result.groups)} consistency groups, "
        f"{result.poisoned_recoveries}/{result.total_recoveries} poisoned "
        f"recoveries, consonance suspects = {result.suspects}"
    )
