"""Engine-throughput trajectory benchmark (``BENCH_engine.json``).

Times fixed workloads under the three defense postures (plain, hardened,
authenticated) and records events/sec for each, so speedups and
regressions are tracked PR over PR (ROADMAP item 2).  The committed
``BENCH_engine.json`` at the repo root is the trajectory file; re-run
this benchmark to refresh it.

Two workloads, two numbers:

* ``service`` — the deployed shape: a figure-1-class MM mesh plus an
  open-loop client population querying it (serving clients is what the
  service exists to do).  The client plane is anonymous by default
  (``SecurityConfig.authenticate_clients``): no MAC on the query, none
  on the answer (the client shares no cluster key to check one with),
  so the auth layer's cost lands only on the sync plane it protects.
  This is the headline ``auth_overhead_pct`` and must stay **under
  20 %**.
* ``sync_mesh`` — the adversarial worst case: sync traffic only, every
  event a signed+verified peer message.  Tracked as
  ``sync_overhead_pct`` so the per-message cost of the auth layer
  (canonical encoding + keyed BLAKE2b + replay/delay guards) has its
  own trajectory; a pure-Python MAC pipeline cannot hide here.

A third workload, ``live_loopback``, times the *runtime plane*: an
in-process UDP mesh on :class:`~repro.runtime.engine.WallClockEngine`
instances — real datagrams, real ``time.monotonic()`` deadlines.  Its
events/sec is not comparable to the simulated workloads (a wall-clock
engine *waits* for τ instead of skipping over it), so it carries its
own absolute trajectory rather than an overhead percentage.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.core.mm import MMPolicy
from repro.network.delay import UniformDelay
from repro.network.topology import full_mesh
from repro.security import Keyring, SecurityConfig
from repro.service.builder import ServerSpec, build_service
from repro.service.client import QueryStrategy
from repro.service.hardening import HardeningConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_engine.json"

ARMS = ("plain", "hardened", "authenticated")
N_SERVERS = 8
DELTA = 1e-5
TAU = 10.0
ONE_WAY = 0.01
SEED = 0
OVERHEAD_BUDGET_PCT = 20.0
REPEATS = 2  # best-of, to shave scheduler noise off the trajectory file

SYNC_HORIZON = 3600.0
SERVICE_HORIZON = 600.0
N_CLIENTS = 8
QUERY_PERIOD = 0.25  # per client: 4 queries/s, two servers each


def _merge_report(updates: dict) -> dict:
    """Deep-merge ``updates`` into ``BENCH_engine.json`` and rewrite it.

    Dict values merge recursively, anything else overwrites — so each
    benchmark refreshes only its own workloads/keys and per-arm
    trajectories accumulate across PRs instead of being clobbered by
    whichever test ran last.
    """

    def merge(base: dict, extra: dict) -> dict:
        for key, value in extra.items():
            if isinstance(value, dict) and isinstance(base.get(key), dict):
                merge(base[key], value)
            else:
                base[key] = value
        return base

    report = (
        json.loads(BENCH_PATH.read_text())
        if BENCH_PATH.exists()
        else {"benchmark": "engine-throughput", "workloads": {}}
    )
    merge(report, updates)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _build(arm: str, *, clients: bool):
    skews = [((-1) ** k) * DELTA * 0.8 * (k + 1) / N_SERVERS for k in range(N_SERVERS)]
    specs = [
        ServerSpec(name=f"S{k + 1}", delta=DELTA, skew=skews[k])
        for k in range(N_SERVERS)
    ]
    graph = full_mesh(N_SERVERS)
    if clients:
        for k in range(N_CLIENTS):
            hub = f"C{k + 1}"
            graph.add_node(hub)
            graph.add_edge(hub, f"S{k % N_SERVERS + 1}")
            graph.add_edge(hub, f"S{(k + 1) % N_SERVERS + 1}")
    extra = {}
    if arm == "hardened":
        extra["hardening"] = HardeningConfig()
    elif arm == "authenticated":
        extra["hardening"] = HardeningConfig()
        extra["security"] = SecurityConfig(keyring=Keyring.from_secret("bench-engine"))
    service = build_service(
        graph,
        specs,
        policy=MMPolicy(),
        tau=TAU,
        seed=SEED,
        lan_delay=UniformDelay(ONE_WAY),
        **extra,
    )
    if clients:
        for k in range(N_CLIENTS):
            targets = [f"S{k % N_SERVERS + 1}", f"S{(k + 1) % N_SERVERS + 1}"]
            client = service.add_client(f"C{k + 1}")
            client.start()  # the service started before the clients joined
            _drive(client, targets, offset=QUERY_PERIOD * (k + 1) / N_CLIENTS)
    return service


def _drive(client, targets, offset: float) -> None:
    def tick() -> None:
        client.ask(targets, strategy=QueryStrategy.FIRST_REPLY)
        client.call_after(QUERY_PERIOD, tick)

    client.engine.schedule_after(offset, tick)


def _time_arm(arm: str, *, clients: bool, horizon: float) -> dict:
    best = None
    for _ in range(REPEATS):
        service = _build(arm, clients=clients)
        start = time.perf_counter()
        service.run_until(horizon)
        wall = time.perf_counter() - start
        events = service.engine.events_processed
        assert service.snapshot().all_correct, f"{arm}: mesh diverged"
        if clients:
            served = sum(len(c.results) for c in service.clients)
            assert served > 0.9 * horizon / QUERY_PERIOD * N_CLIENTS
        if best is None or wall < best["wall_seconds"]:
            best = {
                "wall_seconds": round(wall, 6),
                "events": events,
                "events_per_sec": round(events / wall, 1),
            }
    return best


def _overhead_pct(arms: dict) -> float:
    plain = arms["plain"]["events_per_sec"]
    return round((plain - arms["authenticated"]["events_per_sec"]) / plain * 100.0, 2)


def test_bench_engine_defense_postures(benchmark):
    """Events/sec per posture on the service and sync-mesh workloads."""

    def run_all():
        return {
            "service": {
                arm: _time_arm(arm, clients=True, horizon=SERVICE_HORIZON)
                for arm in ARMS
            },
            "sync_mesh": {
                arm: _time_arm(arm, clients=False, horizon=SYNC_HORIZON)
                for arm in ARMS
            },
        }

    workloads = benchmark.pedantic(run_all, rounds=1)
    overhead = _overhead_pct(workloads["service"])
    sync_overhead = _overhead_pct(workloads["sync_mesh"])

    report = {
        "workloads": {
            "service": {
                "topology": f"full_mesh({N_SERVERS}) + {N_CLIENTS} client hubs",
                "policy": "mm",
                "tau": TAU,
                "delta": DELTA,
                "one_way": ONE_WAY,
                "horizon": SERVICE_HORIZON,
                "query_period": QUERY_PERIOD,
                "seed": SEED,
                "arms": workloads["service"],
            },
            "sync_mesh": {
                "topology": f"full_mesh({N_SERVERS})",
                "policy": "mm",
                "tau": TAU,
                "delta": DELTA,
                "one_way": ONE_WAY,
                "horizon": SYNC_HORIZON,
                "seed": SEED,
                "arms": workloads["sync_mesh"],
            },
        },
        "auth_overhead_pct": overhead,
        "sync_overhead_pct": sync_overhead,
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
    }
    _merge_report(report)
    print(f"\n[bench-engine] wrote {BENCH_PATH}")
    for workload, arms in workloads.items():
        for arm, row in arms.items():
            print(
                f"[bench-engine] {workload:>9}/{arm:<13}:"
                f" {row['events_per_sec']:>10} events/s"
            )
    print(f"[bench-engine] service overhead: {overhead:.1f}%"
          f"   sync-mesh overhead: {sync_overhead:.1f}%")

    assert overhead < OVERHEAD_BUDGET_PCT, (
        f"authenticated service path costs {overhead:.1f}% "
        f"(budget {OVERHEAD_BUDGET_PCT}%)"
    )


# --------------------------------------------------------------------------
# Live loopback: the runtime plane's absolute trajectory.

LIVE_NODES = 3
LIVE_TAU = 0.25
LIVE_DURATION = 3.0  # wall seconds of real traffic per measurement


def _live_configs():
    from repro.experiments.live_gauntlet import _free_ports

    names = [f"S{k + 1}" for k in range(LIVE_NODES)]
    ports = _free_ports(len(names))
    peers = {name: ["127.0.0.1", port] for name, port in zip(names, ports)}
    edges = [[a, b] for i, a in enumerate(names) for b in names[i + 1:]]
    epoch = time.monotonic()
    return {
        name: dict(
            name=name,
            host="127.0.0.1",
            port=peers[name][1],
            peers=peers,
            edges=edges,
            epoch=epoch,
            kind="plain",
            tau=LIVE_TAU,
            delta=1e-4,
            skew=(-1) ** index * 5e-5,
            initial_offset=0.001 * index,
            initial_error=0.05,
            one_way_bound=0.05,
            poll_phase=0.1 + 0.05 * index,
            probe_period=0.05,
            seed=index,
        )
        for index, name in enumerate(names)
    }


async def _run_live_mesh() -> dict:
    from repro.runtime.node import build_node

    configs = _live_configs()
    nodes = [build_node(configs[name]) for name in configs]
    runners = []
    try:
        for node in nodes:
            await node.transport.start((node.config["host"], node.config["port"]))
            node.server.start()
            node.probe.start()
            runners.append(asyncio.ensure_future(node.engine.run()))
        start = time.perf_counter()
        await asyncio.sleep(LIVE_DURATION)
        wall = time.perf_counter() - start
        events = sum(node.engine.events_processed for node in nodes)
        rounds = sum(node.server.stats.rounds for node in nodes)
        assert rounds >= LIVE_NODES, "live mesh never completed a poll round"
        assert all(node.probe.mm1_violations == 0 for node in nodes)
        return {
            "wall_seconds": round(wall, 6),
            "events": events,
            "events_per_sec": round(events / wall, 1),
            "poll_rounds": rounds,
        }
    finally:
        for node in nodes:
            node.engine.stop()
        for runner in runners:
            try:
                await asyncio.wait_for(runner, timeout=2.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                runner.cancel()
        for node in nodes:
            node.transport.close()


def test_bench_engine_live_loopback(benchmark):
    """Events/sec of an in-process UDP mesh on wall-clock engines."""

    result = benchmark.pedantic(lambda: asyncio.run(_run_live_mesh()), rounds=1)

    _merge_report(
        {
            "workloads": {
                "live_loopback": {
                    "topology": f"full_mesh({LIVE_NODES}) on UDP loopback (in-process)",
                    "policy": "mm",
                    "tau": LIVE_TAU,
                    "duration": LIVE_DURATION,
                    "arms": {"plain": result},
                }
            }
        }
    )
    print(f"\n[bench-engine] live_loopback/plain: "
          f"{result['events_per_sec']} events/s "
          f"({result['poll_rounds']} poll rounds in {result['wall_seconds']:.2f}s)")


# --------------------------------------------------------------------------
# Vectorized kernel: bulk mode on the sync_mesh workload.

KERNEL_SPEEDUP_FLOOR = 10.0


def test_bench_engine_scale_kernel(benchmark):
    """Bulk-kernel events/sec on the sync-mesh workload (>= 10x scalar).

    Same topology, specs, policy and per-horizon event ledger as the
    ``sync_mesh``/plain arm — only the engine differs — so the ratio is a
    pure engine speedup, tracked as ``workloads.scale_kernel``.  Two noise
    defenses: the scalar arm is re-timed here, interleaved with the kernel
    runs, so the ratio is a same-instant comparison immune to session
    load; and the kernel leg runs a 10x horizon so both legs are ~1 s+ of
    wall clock — a single scheduler preemption cannot swing the ratio.
    """
    from repro.kernel import build_kernel_service

    kernel_horizon = 10.0 * SYNC_HORIZON
    skews = [((-1) ** k) * DELTA * 0.8 * (k + 1) / N_SERVERS for k in range(N_SERVERS)]
    specs = [
        ServerSpec(name=f"S{k + 1}", delta=DELTA, skew=skews[k])
        for k in range(N_SERVERS)
    ]

    def kernel_run():
        return build_kernel_service(
            full_mesh(N_SERVERS),
            specs,
            policy=MMPolicy(),
            tau=TAU,
            seed=SEED,
            lan_delay=UniformDelay(ONE_WAY),
            mode="bulk",
            trace_enabled=False,
        )

    def run_best() -> dict:
        best = {}
        for _ in range(REPEATS):
            legs = {
                "scalar_plain": (_build("plain", clients=False), SYNC_HORIZON),
                "bulk": (kernel_run(), kernel_horizon),
            }
            for leg, (service, horizon) in legs.items():
                start = time.perf_counter()
                service.run_until(horizon)
                wall = time.perf_counter() - start
                events = getattr(
                    service, "engine", service
                ).events_processed
                assert service.snapshot().all_correct, f"{leg}: mesh diverged"
                if leg not in best or wall < best[leg]["wall_seconds"]:
                    best[leg] = {
                        "wall_seconds": round(wall, 6),
                        "events": events,
                        "horizon": horizon,
                        "events_per_sec": round(events / wall, 1),
                    }
        return best

    arms = benchmark.pedantic(run_best, rounds=1)
    bulk, scalar = arms["bulk"], arms["scalar_plain"]
    speedup = bulk["events_per_sec"] / scalar["events_per_sec"]

    # Ledger parity on the *matched* horizon: same rounds, same deliveries.
    short = kernel_run()
    short.run_until(SYNC_HORIZON)
    assert short.events_processed == scalar["events"], (
        f"kernel event ledger diverged: "
        f"{short.events_processed} != {scalar['events']}"
    )

    _merge_report(
        {
            "workloads": {
                "scale_kernel": {
                    "topology": f"full_mesh({N_SERVERS})",
                    "policy": "mm",
                    "engine": "kernel-bulk",
                    "tau": TAU,
                    "delta": DELTA,
                    "one_way": ONE_WAY,
                    "seed": SEED,
                    "arms": arms,
                    "speedup_vs_scalar": round(speedup, 2),
                }
            }
        }
    )
    print(
        f"\n[bench-engine] scale_kernel/bulk: {bulk['events_per_sec']} "
        f"events/s ({speedup:.1f}x the scalar plain arm's "
        f"{scalar['events_per_sec']} events/s, same instant)"
    )
    assert speedup >= KERNEL_SPEEDUP_FLOOR, (
        f"bulk kernel is only {speedup:.1f}x the scalar engine "
        f"(floor {KERNEL_SPEEDUP_FLOOR}x)"
    )
