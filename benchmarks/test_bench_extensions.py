"""Benchmarks for the extension experiments: churn robustness and the
Section 5 rate-tracking fix for arbiter poisoning."""

from __future__ import annotations

from repro.experiments import churn, partition


def test_bench_churn_robustness(benchmark):
    """Membership churn: present servers stay correct; rejoiners
    reconverge within a handful of poll periods."""
    result = benchmark.pedantic(
        churn.run, kwargs=dict(horizon=3600.0), rounds=1
    )
    assert result.departures > 0 and result.rejoins > 0
    assert result.present_violations == 0
    assert result.worst_reconvergence < 10.0
    print(
        f"\nChurn: {result.departures} departures / {result.rejoins} rejoins; "
        f"0 violations; worst reconvergence {result.worst_reconvergence:.1f} τ; "
        f"median error {result.median_error:.4f} s "
        f"(control {result.control_median_error:.4f} s)"
    )


def test_bench_rate_tracking_fix(benchmark):
    """Section 5 operationalised: excluding dissonant arbiters eliminates
    recovery poisoning and rescues the dragged server."""
    comparison = benchmark.pedantic(partition.run_comparison, rounds=1)
    assert comparison.poisoning_eliminated
    assert comparison.g1_rescued
    print(
        f"\nRate-tracking fix: poisoned recoveries "
        f"{comparison.without.poisoned_recoveries} -> "
        f"{comparison.with_tracking.poisoned_recoveries}; "
        f"G1 offset {comparison.without.g1_final_offset:.2f} s -> "
        f"{comparison.with_tracking.g1_final_offset:.3f} s"
    )
