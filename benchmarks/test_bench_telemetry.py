"""Telemetry overhead budgets: off vs NullRegistry vs full registry.

The telemetry plane rides the simulator's hottest paths (every poll, every
reply, every engine event), so its cost is a budgeted, regression-tested
quantity — not a hope:

* **NullRegistry** (``ServiceTelemetry(registry=NullRegistry())`` — the
  supported "compiled out" configuration, which short-circuits every
  server to the no-op handle) must stay within **2%** of a run with
  telemetry fully off;
* **full registry** (live registry, engine observer, gauge sampler — the
  whole metrics plane) must stay within **15%**;
* the **full plane** (metrics plus the span tracer) carries the span
  allocation surcharge on top and gets its own looser budget of **35%**,
  so span-path regressions are still caught.

Methodology, tuned for noisy shared runners:

* arms are *interleaved* within each repetition, so machine-load drift
  hits every arm equally instead of whichever arm ran last;
* each arm is timed with :func:`time.process_time` (CPU seconds) — the
  workload is deterministic and CPU-bound, and CPU time is immune to
  scheduler preemption, the dominant noise source on shared hardware;
* the per-arm estimate is the minimum over all repetitions: for a
  deterministic workload the minimum is the least-noise estimator.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import figure1
from repro.telemetry import (
    NULL_SERVICE_TELEMETRY,
    NullRegistry,
    ServiceTelemetry,
)

pytestmark = pytest.mark.telemetry

#: Run the figure-1 population for four simulated hours per repetition.
TIMES = (14400.0,)
REPETITIONS = 9
NULL_BUDGET = 0.02
REGISTRY_BUDGET = 0.15
PLANE_BUDGET = 0.35
#: Absolute slack (seconds) so timer granularity and residual cache noise
#: cannot flip a ratio; small next to a repetition's ~80ms runtime.
JITTER = 0.003

#: The sampler period the instrumented figure-1 run defaults to (τ).
SAMPLE_PERIOD = 60.0

#: Arm name -> factory for the telemetry argument of one run.
ARMS = {
    "off": lambda: NULL_SERVICE_TELEMETRY,
    "null": lambda: ServiceTelemetry(registry=NullRegistry()),
    "registry": lambda: ServiceTelemetry(
        spans=False, sample_period=SAMPLE_PERIOD
    ),
    "plane": lambda: None,  # run_instrumented builds the full plane
}


def _time_once(make_telemetry) -> float:
    start = time.process_time()
    figure1.run_instrumented(times=TIMES, telemetry=make_telemetry())
    return time.process_time() - start


def test_bench_telemetry_overhead_budgets():
    # Warm every arm once (imports, allocator, branch caches), then take
    # interleaved minima.
    for make_telemetry in ARMS.values():
        _time_once(make_telemetry)
    best = {name: float("inf") for name in ARMS}
    for _ in range(REPETITIONS):
        for name, make_telemetry in ARMS.items():
            best[name] = min(best[name], _time_once(make_telemetry))

    off = best["off"]
    overhead = {name: (best[name] - off) / off for name in ARMS}
    print(
        f"\ntelemetry overhead (interleaved min of {REPETITIONS}, CPU "
        "time): "
        + " ".join(
            f"{name}={best[name] * 1e3:.1f}ms ({overhead[name]:+.1%})"
            for name in ARMS
        )
    )
    assert best["null"] <= off * (1.0 + NULL_BUDGET) + JITTER, (
        f"NullRegistry overhead {overhead['null']:.1%} exceeds "
        f"{NULL_BUDGET:.0%} budget"
    )
    assert best["registry"] <= off * (1.0 + REGISTRY_BUDGET) + JITTER, (
        f"full-registry overhead {overhead['registry']:.1%} exceeds "
        f"{REGISTRY_BUDGET:.0%} budget"
    )
    assert best["plane"] <= off * (1.0 + PLANE_BUDGET) + JITTER, (
        f"full-plane (registry + spans) overhead {overhead['plane']:.1%} "
        f"exceeds {PLANE_BUDGET:.0%} budget"
    )


def test_bench_full_run_instrumented(benchmark):
    """Absolute cost of one fully-telemetered figure-1 run (for trending)."""
    result = benchmark.pedantic(
        lambda: figure1.run_instrumented(times=(3600.0,)),
        rounds=1,
        iterations=1,
    )
    assert result[0].all_correct
