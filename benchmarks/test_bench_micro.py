"""Microbenchmarks of the core algorithms and the simulation substrate.

These are genuine hot loops (unlike the experiment benchmarks, which time a
whole scenario once): interval intersection, Marzullo's sweep, the event
engine, and a full service round.
"""

from __future__ import annotations

import numpy as np

from repro.core.im import IMPolicy
from repro.core.intervals import TimeInterval, intersect_all
from repro.core.marzullo import marzullo, ntp_select
from repro.core.mm import MMPolicy
from repro.core.sync import LocalState, Reply
from repro.simulation.engine import SimulationEngine

from repro.experiments.scenarios import MeshScenario, build_mesh_service


def _random_intervals(n: int, seed: int = 0) -> list[TimeInterval]:
    rng = np.random.default_rng(seed)
    los = rng.uniform(0.0, 100.0, n)
    widths = rng.uniform(0.1, 50.0, n)
    return [TimeInterval(lo, lo + w) for lo, w in zip(los, widths)]


def test_bench_intersect_all_1000(benchmark):
    ivs = _random_intervals(1000)
    # Overlapping family: shift everything to share [49, 51].
    ivs = [iv.hull(TimeInterval(49.0, 51.0)) for iv in ivs]
    result = benchmark(intersect_all, ivs)
    assert result is not None


def test_bench_marzullo_sweep_1000(benchmark):
    ivs = _random_intervals(1000)
    result = benchmark(marzullo, ivs)
    assert result.count >= 1


def test_bench_ntp_select_100(benchmark):
    ivs = _random_intervals(100, seed=3)
    benchmark(ntp_select, ivs)


def test_bench_mm_reply_evaluation(benchmark):
    policy = MMPolicy()
    state = LocalState(clock_value=100.0, error=1.0, delta=1e-5)
    reply = Reply(server="S2", clock_value=100.1, error=0.4, rtt_local=0.05)
    outcome = benchmark(policy.on_reply, state, reply)
    assert outcome.consistent


def test_bench_im_round_32_replies(benchmark):
    policy = IMPolicy()
    state = LocalState(clock_value=100.0, error=1.0, delta=1e-5)
    rng = np.random.default_rng(1)
    replies = [
        Reply(
            server=f"S{k}",
            clock_value=100.0 + rng.uniform(-0.1, 0.1),
            error=0.5,
            rtt_local=rng.uniform(0.0, 0.1),
        )
        for k in range(32)
    ]
    outcome = benchmark(policy.on_round_complete, state, replies)
    assert outcome.consistent


def test_bench_engine_100k_events(benchmark):
    def run_events():
        engine = SimulationEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for k in range(100_000):
            engine.schedule_at(float(k), tick)
        engine.run()
        return count

    assert benchmark.pedantic(run_events, rounds=1) == 100_000


def test_bench_service_hour_8_servers(benchmark):
    """End-to-end throughput: one simulated hour of an 8-server IM mesh."""

    def run_service():
        scenario = MeshScenario(n=8, delta=1e-5, tau=60.0, seed=0)
        service = build_mesh_service(scenario, IMPolicy())
        service.run_until(3600.0)
        return service.snapshot()

    snap = benchmark.pedantic(run_service, rounds=1)
    assert snap.all_correct
