"""Discrete-event simulation substrate.

This package is the "testbed" substitute for the paper's Xerox Research
Internet: a deterministic discrete-event engine (:class:`SimulationEngine`),
simulated actors (:class:`SimProcess`), reproducible named random streams
(:class:`RngRegistry`), and trace collection (:class:`TraceRecorder`).
"""

from .engine import PeriodicTask, SchedulingError, SimulationEngine
from .events import Event, EventSequencer
from .process import SimProcess
from .rng import RngRegistry
from .scheduler import Scheduler
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventSequencer",
    "PeriodicTask",
    "RngRegistry",
    "Scheduler",
    "SchedulingError",
    "SimProcess",
    "SimulationEngine",
    "TraceRecord",
    "TraceRecorder",
]
