"""Event primitives for the discrete-event simulation engine.

The simulator advances a single scalar *real time* axis ``t`` (seconds, as a
float).  Real time plays the role of the paper's *perfect clock*: a clock is
*correct* at ``t0`` when its reading equals ``t0`` (Marzullo & Owicki,
Section 2.1).  Every scheduled action is an :class:`Event` carrying the real
time at which it fires, a strictly increasing sequence number used to break
ties deterministically, and a zero-argument callback.

Events may be cancelled; cancellation is lazy (the event stays in the heap
and is skipped when popped), which keeps both operations O(log n).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


#: Type of event callbacks.  Callbacks take no arguments; any state they
#: need is bound at scheduling time (usually via a closure or functools.partial).
EventCallback = Callable[[], Any]


@dataclass(order=True)
class Event:
    """A single scheduled occurrence in simulated real time.

    Events order by ``(time, seq)``.  The sequence number guarantees a total,
    deterministic order even when many events share a fire time, which in
    turn makes every simulation run exactly reproducible for a fixed seed.

    Attributes:
        time: Real time (seconds) at which the event fires.
        seq: Tie-breaking sequence number assigned by the engine.
        callback: Zero-argument callable invoked when the event fires.
        label: Optional human-readable tag used by traces and debugging.
        cancelled: Lazily-set cancellation flag; cancelled events are
            silently discarded when they reach the head of the queue.
    """

    time: float
    seq: int
    callback: EventCallback = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the engine skips it when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        tag = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{tag} {state}>"


class EventSequencer:
    """Produces the strictly increasing sequence numbers used for tie-breaks.

    A dedicated object (rather than a bare ``itertools.count`` inside the
    engine) so that checkpoint/restore and engine forking can share or reset
    the counter explicitly.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._last = start - 1

    def next(self) -> int:
        """Return the next sequence number."""
        self._last = next(self._counter)
        return self._last

    @property
    def last(self) -> int:
        """The most recently issued sequence number."""
        return self._last
