"""Trace recording for simulations.

Experiments need time series of per-server state (clock value, error bound,
resets, inconsistencies) sampled both at events and on fixed grids.  A
:class:`TraceRecorder` collects typed :class:`TraceRecord` rows cheaply and
offers filtered views and numpy export for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """One trace row.

    Attributes:
        time: Real time of the observation.
        kind: Record category, e.g. ``"reset"``, ``"sample"``, ``"reject"``,
            ``"inconsistent"``, ``"send"``, ``"recv"``.
        source: Name of the process the record concerns.
        data: Free-form payload (small dict of floats/strings).
    """

    time: float
    kind: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only store of :class:`TraceRecord` rows with filtered views.

    Example:
        >>> trace = TraceRecorder()
        >>> trace.record(1.0, "reset", "S1", new_error=0.5)
        >>> [r.data["new_error"] for r in trace.filter(kind="reset")]
        [0.5]
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._counts: Dict[str, int] = {}

    def record(self, time: float, kind: str, source: str, **data: Any) -> None:
        """Append one row (no-op when the recorder is disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time, kind, source, data))
        self._counts[kind] = self._counts.get(kind, 0) + 1

    # ----------------------------------------------------------------- views

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def count(self, kind: str) -> int:
        """Number of rows of the given kind."""
        return self._counts.get(kind, 0)

    @property
    def kinds(self) -> List[str]:
        """Sorted list of distinct record kinds present."""
        return sorted(self._counts)

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Rows matching all the given criteria, in time order."""
        result = []
        for row in self._records:
            if kind is not None and row.kind != kind:
                continue
            if source is not None and row.source != source:
                continue
            if predicate is not None and not predicate(row):
                continue
            result.append(row)
        return result

    def series(
        self, field_name: str, kind: Optional[str] = None, source: Optional[str] = None
    ) -> np.ndarray:
        """Return a ``(n, 2)`` array of ``(time, value)`` for a data field.

        Rows lacking the field are skipped.
        """
        pairs = [
            (row.time, float(row.data[field_name]))
            for row in self.filter(kind=kind, source=source)
            if field_name in row.data
        ]
        if not pairs:
            return np.empty((0, 2))
        return np.asarray(pairs, dtype=float)

    def clear(self) -> None:
        """Drop all rows."""
        self._records.clear()
        self._counts.clear()
