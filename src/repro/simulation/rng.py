"""Deterministic, named random-number streams.

Every source of randomness in the simulator — clock drift draws, message
delays, packet loss, topology generation — pulls from a *named stream* owned
by an :class:`RngRegistry`.  Streams are derived from a single root seed via
``numpy``'s ``SeedSequence.spawn`` keyed by the stream name, so:

* two runs with the same root seed are bit-identical, and
* adding a new consumer of randomness (a new stream name) does not perturb
  the draws seen by existing streams — experiments stay comparable across
  code versions.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory and cache for named ``numpy.random.Generator`` streams.

    Example:
        >>> reg = RngRegistry(seed=42)
        >>> a1 = reg.stream("delay/S1").uniform()
        >>> reg2 = RngRegistry(seed=42)
        >>> a2 = reg2.stream("delay/S1").uniform()
        >>> a1 == a2
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same generator object within one
        registry, so consumers can hold either the name or the generator.
        """
        if name not in self._streams:
            # Key the child seed on a stable hash of the stream name so that
            # stream identity does not depend on creation order.
            name_key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(name_key,))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """Return a new registry whose streams are independent of this one.

        Useful for running replicated experiments: ``registry.fork("rep3")``
        gives a full set of streams decorrelated from the parent's.
        """
        salt_key = zlib.crc32(salt.encode("utf-8"))
        return RngRegistry(seed=(self._seed * 1_000_003 + salt_key) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
