"""Simulated processes.

A :class:`SimProcess` is a named actor bound to a
:class:`~repro.simulation.engine.SimulationEngine`.  It provides scheduling
helpers, a lifecycle (started / stopped), and a small mailbox abstraction
used by the network transport to deliver messages.

Time servers, clients, and reference sources are all ``SimProcess``
subclasses.  The base class deliberately stays minimal: the paper's
algorithms are reactive (poll timers and reply handlers), so a callback
style fits better than coroutine-based processes.

The engine is addressed through the :class:`~repro.simulation.scheduler.
Scheduler` seam only (``now`` plus the ``schedule_*`` verbs), so the
same process — and everything layered on it, up to the hardened and
authenticated servers — runs unmodified on the discrete-event
:class:`~repro.simulation.engine.SimulationEngine` or on the live
wall-clock :class:`~repro.runtime.engine.WallClockEngine`.
"""

from __future__ import annotations

from typing import Any, Optional

from .engine import PeriodicTask
from .events import Event, EventCallback
from .scheduler import Scheduler


class SimProcess:
    """Base class for simulated actors.

    Attributes:
        name: Unique human-readable identifier (e.g. ``"S1"``).
        engine: The engine driving this process — anything satisfying
            the :class:`~repro.simulation.scheduler.Scheduler` seam.
    """

    def __init__(self, engine: Scheduler, name: str) -> None:
        self.engine = engine
        self.name = name
        self._started = False
        self._stopped = False
        self._periodic_tasks: list[PeriodicTask] = []

    # ------------------------------------------------------------- lifecycle

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run."""
        return self._started

    @property
    def running(self) -> bool:
        """Whether the process is started and not stopped."""
        return self._started and not self._stopped

    def start(self) -> None:
        """Start the process; idempotent."""
        if self._started:
            return
        self._started = True
        self.on_start()

    def stop(self) -> None:
        """Stop the process and cancel its periodic tasks; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        for task in self._periodic_tasks:
            task.cancel()
        self.on_stop()

    def on_start(self) -> None:
        """Hook: called once when the process starts."""

    def on_stop(self) -> None:
        """Hook: called once when the process stops."""

    # ------------------------------------------------------------ scheduling

    @property
    def now(self) -> float:
        """Current real time as seen by the engine."""
        return self.engine.now

    def call_after(self, delay: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` after ``delay`` seconds, tagged with our name."""
        return self.engine.schedule_after(
            delay, self._guard(callback), label=self.name
        )

    def call_at(self, time: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` at absolute time ``time``, tagged with our name."""
        return self.engine.schedule_at(time, self._guard(callback), label=self.name)

    def every(
        self,
        period: float,
        callback: EventCallback,
        *,
        first_at: Optional[float] = None,
        jitter=None,
    ) -> PeriodicTask:
        """Schedule a periodic callback owned by this process.

        The task is cancelled automatically when the process stops.
        """
        task = self.engine.schedule_periodic(
            period,
            self._guard(callback),
            first_at=first_at,
            label=self.name,
            jitter=jitter,
        )
        self._periodic_tasks.append(task)
        return task

    def _guard(self, callback: EventCallback) -> EventCallback:
        """Wrap a callback so it is a no-op once the process has stopped."""

        def guarded() -> Any:
            if self._stopped:
                return None
            return callback()

        return guarded

    # -------------------------------------------------------------- messages

    def deliver(self, message: Any, sender: "SimProcess") -> None:
        """Entry point used by the transport to hand a message to this process.

        Dispatches to :meth:`on_message` unless the process has stopped
        (a stopped server silently drops traffic, modelling a crashed or
        departed time server — the paper's "servers can frequently join or
        leave the service").
        """
        if not self.running:
            return
        self.on_message(message, sender)

    def on_message(self, message: Any, sender: "SimProcess") -> None:
        """Hook: handle a delivered message.  Default drops it."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else ("stopped" if self._stopped else "new")
        return f"<{type(self).__name__} {self.name} {state}>"
