"""The discrete-event simulation engine.

:class:`SimulationEngine` owns the real-time axis and an event heap.  All the
substrates in this repository — drifting clocks, the message-passing network,
the time servers — are driven by callbacks scheduled on one engine instance.

Design notes
------------

* Real time is a ``float`` number of seconds.  The paper ignores terms of
  order ``δ²`` and our δ values are ~1e-6..1e-2, so double precision is far
  more than adequate for the horizons simulated here (hours to weeks).
* Determinism: events at equal times fire in scheduling order (see
  :mod:`repro.simulation.events`), and all randomness flows through named
  :class:`~repro.simulation.rng.RngRegistry` streams.  Two runs with the same
  seed produce identical traces.
* The engine never advances time backwards.  Scheduling an event in the past
  raises :class:`SchedulingError` — this catches a whole class of sign bugs
  in delay models.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from .events import Event, EventCallback, EventSequencer


class SchedulingError(ValueError):
    """Raised when an event is scheduled before the current simulation time."""


class SimulationEngine:
    """A deterministic discrete-event simulator.

    Example:
        >>> engine = SimulationEngine()
        >>> fired = []
        >>> _ = engine.schedule_at(1.5, lambda: fired.append(engine.now))
        >>> _ = engine.schedule_after(0.5, lambda: fired.append(engine.now))
        >>> engine.run()
        >>> fired
        [0.5, 1.5]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._sequencer = EventSequencer()
        self._running = False
        self._stopped = False
        self._events_processed = 0
        self._observer: Optional[Callable[["SimulationEngine", Event], None]] = None

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        """Current real (perfect-clock) time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap, including cancelled ones."""
        return sum(1 for event in self._heap if event.active)

    @property
    def heap_depth(self) -> int:
        """Raw heap size (cancelled events included) — O(1), for telemetry."""
        return len(self._heap)

    def set_observer(
        self, observer: Optional[Callable[["SimulationEngine", Event], None]]
    ) -> None:
        """Install a per-event observer (or None to remove it).

        The observer is called as ``observer(engine, event)`` after each
        event's callback runs — the telemetry plane's engine hook.  At most
        one observer is supported; it must not schedule or cancel events.
        """
        self._observer = observer

    # ------------------------------------------------------------ scheduling

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire at absolute real time ``time``.

        Args:
            time: Absolute fire time; must be >= :attr:`now`.
            callback: Zero-argument callable.
            label: Optional tag recorded on the event for tracing.

        Returns:
            The scheduled :class:`Event`, which the caller may cancel.

        Raises:
            SchedulingError: If ``time`` precedes the current time.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before current time "
                f"t={self._now}"
            )
        event = Event(float(time), self._sequencer.next(), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Raises:
            SchedulingError: If ``delay`` is negative.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        *,
        first_at: Optional[float] = None,
        label: str = "",
        jitter: Optional[Callable[[], float]] = None,
    ) -> "PeriodicTask":
        """Schedule ``callback`` to fire every ``period`` seconds.

        Args:
            period: Nominal seconds between firings; must be positive.
            callback: Zero-argument callable run at every firing.
            first_at: Absolute time of the first firing.  Defaults to
                ``now + period``.
            label: Tag for tracing.
            jitter: Optional callable returning an additive perturbation to
                each inter-firing gap (may be negative but the effective gap
                is clamped to be positive).

        Returns:
            A :class:`PeriodicTask` handle; call ``.cancel()`` to stop.
        """
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        task = PeriodicTask(self, period, callback, label=label, jitter=jitter)
        start = self._now + period if first_at is None else first_at
        task.start(start)
        return task

    # --------------------------------------------------------------- running

    def step(self) -> bool:
        """Fire the single next active event.

        Returns:
            True if an event fired, False if the heap held no active events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._events_processed += 1
            if self._observer is not None:
                self._observer(self, event)
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Run events in order until exhaustion, a time horizon, or a budget.

        Args:
            until: If given, stop once the next active event would fire
                strictly after ``until`` and set :attr:`now` to ``until``.
            max_events: If given, fire at most this many events.

        The engine may be re-entered: calling :meth:`run` again resumes from
        the current state.  :meth:`stop` requests an early exit.
        """
        self._stopped = False
        self._running = True
        fired = 0
        try:
            while not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                event = self._peek_active()
                if event is None:
                    break
                if until is not None and event.time > until:
                    break
                self.step()
                fired += 1
            if until is not None and self._now < until:
                # No event remains inside the horizon: advance time to it so
                # callers can sample clocks exactly at the horizon.
                next_event = self._peek_active()
                if next_event is None or next_event.time > until:
                    self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request that a running :meth:`run` loop exit after the current event."""
        self._stopped = True

    def _peek_active(self) -> Optional[Event]:
        """Return the next active event without firing it, dropping cancelled ones."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------- utilities

    def advance_to(self, time: float) -> None:
        """Run all events up to ``time`` and leave :attr:`now` == ``time``.

        Convenience wrapper over :meth:`run` used heavily by experiments that
        sample metrics on a fixed real-time grid.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot advance to t={time} before current time t={self._now}"
            )
        self.run(until=time)

    def sample_grid(
        self, start: float, stop: float, step: float
    ) -> Iterable[float]:
        """Yield grid times, advancing the simulation to each before yielding.

        Example:
            >>> engine = SimulationEngine()
            >>> [round(t, 3) for t in engine.sample_grid(0.0, 1.0, 0.5)]
            [0.0, 0.5, 1.0]
        """
        if step <= 0:
            raise SchedulingError(f"grid step must be positive, got {step}")
        t = start
        while t <= stop + 1e-12:
            self.advance_to(t)
            yield self._now
            t += step


class PeriodicTask:
    """Handle for a recurring event chain created by ``schedule_periodic``.

    Each firing schedules the next, so cancellation takes effect immediately
    and period/jitter changes would be straightforward to add.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        period: float,
        callback: EventCallback,
        *,
        label: str = "",
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        self._engine = engine
        self._period = period
        self._callback = callback
        self._label = label
        self._jitter = jitter
        self._current: Optional[Event] = None
        self._cancelled = False
        self._firings = 0

    @property
    def firings(self) -> int:
        """How many times the task has fired."""
        return self._firings

    @property
    def cancelled(self) -> bool:
        """Whether the task has been stopped."""
        return self._cancelled

    def start(self, first_at: float) -> None:
        """Arm the first firing at absolute time ``first_at``."""
        if self._cancelled:
            return
        self._current = self._engine.schedule_at(
            first_at, self._fire, label=self._label
        )

    def cancel(self) -> None:
        """Stop the task; the pending firing (if any) is cancelled."""
        self._cancelled = True
        if self._current is not None:
            self._current.cancel()

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._firings += 1
        self._callback()
        if self._cancelled:
            return
        gap = self._period
        if self._jitter is not None:
            gap = max(1e-9, gap + self._jitter())
        self._current = self._engine.schedule_after(
            gap, self._fire, label=self._label
        )
