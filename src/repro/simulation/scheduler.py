"""The clock-source seam shared by the simulator and the live runtime.

Every duration the policy layers compute — poll periods, round
deadlines, retry backoffs, quarantine cooldowns, holdover horizons,
client attempt timeouts — flows through exactly one surface: the
engine's ``now`` / ``schedule_*`` methods, reached via
:class:`~repro.simulation.process.SimProcess`.  This module names that
surface so both time axes implement it:

* :class:`~repro.simulation.engine.SimulationEngine` — the discrete-event
  axis, where ``now`` is the heap's virtual time;
* :class:`~repro.runtime.engine.WallClockEngine` — the live axis, where
  ``now`` is ``time.monotonic()`` against a shared epoch and deadlines
  are armed on a wall-clock :class:`~repro.runtime.timeouts.TimeoutManager`.

The audit contract (ISSUE 9, satellite 1): policy code must never read
wall time directly, never assume ``now`` is virtual, and never do
duration arithmetic on anything but values obtained from this seam (or
from local clocks read *at* seam times).  ``service/hardening.py``,
``load/client.py``, and ``holdover/controller.py`` all satisfy this —
hardening and the resilient client take ``now`` as an argument or use
``SimProcess.now`` / ``call_after``, and the holdover controller is a
pure state machine fed the caller's clock readings — which is what lets
the runtime plane run the policy core unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

from .events import Event, EventCallback

__all__ = ["Scheduler"]


@runtime_checkable
class Scheduler(Protocol):
    """What a process needs from its engine: one time axis, four verbs.

    Structural (duck-typed) — both engines satisfy it without inheriting
    from it, and ``isinstance(engine, Scheduler)`` works for seam checks
    in tests.
    """

    @property
    def now(self) -> float:
        """Current time on this engine's axis, in seconds."""
        ...

    def schedule_at(
        self, time: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Arm ``callback`` at absolute axis time ``time``."""
        ...

    def schedule_after(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> Event:
        """Arm ``callback`` ``delay`` seconds from ``now``."""
        ...

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        *,
        first_at: Optional[float] = None,
        label: str = "",
        jitter: Optional[Callable[[], float]] = None,
    ):
        """Arm a recurring callback; returns a cancellable task handle."""
        ...

    def stop(self) -> None:
        """Request that a running engine loop exit."""
        ...
