"""The telemetry plane: in-sim metrics, poll-round tracing, exporters.

The paper's theorems are statements about live quantities — error bounds
``E_i`` (Theorems 2/3), per-edge asynchronism vs ``ξ + (δ_i + δ_j)τ``
(Theorem 7) — that this package measures *online* instead of replaying
snapshots after the fact:

* :mod:`~repro.telemetry.registry` — labelled counter/gauge/histogram
  families with a streaming P² quantile sketch and a zero-cost
  :class:`~repro.telemetry.registry.NullRegistry`;
* :mod:`~repro.telemetry.tracing` — structured poll-round spans with
  causal parent ids and JSONL export;
* :mod:`~repro.telemetry.exporters` — Prometheus text exposition, JSONL
  event streams, summary snapshots;
* :mod:`~repro.telemetry.instruments` — the wiring: per-server handles,
  the engine observer, the periodic gauge sampler, and the
  :class:`~repro.telemetry.instruments.ServiceTelemetry` bundle that
  :func:`~repro.service.builder.build_service` accepts;
* :mod:`~repro.telemetry.dashboard` — the ``repro top`` terminal view.

See ``docs/observability.md`` for the metric catalogue and span schema.
"""

from .dashboard import render_dashboard, run_top
from .exporters import (
    JsonlEventExporter,
    METRICS_FILENAME,
    SPANS_FILENAME,
    SUMMARY_FILENAME,
    summary_snapshot,
    to_prometheus_text,
    write_telemetry,
)
from .instruments import (
    NULL_SERVER_TELEMETRY,
    NULL_SERVICE_TELEMETRY,
    EngineInstruments,
    RoundTelemetry,
    ServerTelemetry,
    ServiceTelemetry,
    TelemetrySampler,
)
from .registry import (
    NULL_REGISTRY,
    Counter,
    CounterBackedStats,
    CounterField,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    NullRegistry,
    P2Quantile,
    default_buckets,
)
from .tracing import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "Counter",
    "CounterBackedStats",
    "CounterField",
    "EngineInstruments",
    "Gauge",
    "Histogram",
    "JsonlEventExporter",
    "METRICS_FILENAME",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SERVER_TELEMETRY",
    "NULL_SERVICE_TELEMETRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "P2Quantile",
    "RoundTelemetry",
    "SPANS_FILENAME",
    "SUMMARY_FILENAME",
    "ServerTelemetry",
    "ServiceTelemetry",
    "Span",
    "SpanTracer",
    "TelemetrySampler",
    "default_buckets",
    "render_dashboard",
    "run_top",
    "summary_snapshot",
    "to_prometheus_text",
    "write_telemetry",
]
