"""``repro top`` — a terminal dashboard over the live metrics registry.

Renders periodic frames while a simulated service runs: per-server sync
counters and the live ``E_i`` gauge, per-edge asynchronism against the
Theorem 7 bound, engine throughput, and (when present) queue depths.
The renderer is a pure function over the registry, so tests can assert
on frames without a terminal; the CLI loop just advances the simulation
one refresh interval at a time and reprints.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

__all__ = ["render_dashboard", "run_top"]


def _render_table(headers, rows):
    # Imported lazily: analysis pulls in service.builder, which pulls in
    # the servers, which import this package — a cycle at import time.
    from ..analysis.plots import render_table

    return render_table(headers, rows)


#: ANSI: move cursor home and clear the screen below (no scrollback spam).
_CLEAR = "\x1b[H\x1b[J"


def _fmt(value: float, unit: str = "") -> str:
    if value != value:  # NaN
        return "-"
    if unit == "s":
        if abs(value) >= 1.0:
            return f"{value:.3f}s"
        return f"{value * 1e3:.3f}ms"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def _server_rows(service, registry) -> List[List[object]]:
    rows: List[List[object]] = []
    for name in sorted(service.servers):
        server = service.servers[name]
        stats = server.stats
        rows.append(
            [
                name + ("†" if server.departed else ""),
                _fmt(registry.value("repro_server_error_seconds", server=name), "s"),
                stats.rounds,
                int(registry.value("repro_sync_adoptions_total", server=name)),
                stats.rejects,
                stats.resets,
                stats.inconsistencies,
                stats.requests_answered,
            ]
        )
    return rows


def _edge_rows(registry) -> List[List[object]]:
    asyn = registry.get("repro_edge_asynchronism_seconds")
    bound = registry.get("repro_edge_asynchronism_bound_seconds")
    if asyn is None:
        return []
    rows = []
    for labelvalues, child in asyn.samples():
        edge = labelvalues[0]
        limit = (
            bound.labels(edge=edge).value if bound is not None else math.nan
        )
        flag = "BREACH" if (limit == limit and child.value > limit) else ""
        rows.append([edge, _fmt(child.value, "s"), _fmt(limit, "s"), flag])
    return rows


def render_dashboard(service, telemetry, *, clear: bool = False) -> str:
    """One dashboard frame as a string.

    Args:
        service: The :class:`~repro.service.builder.SimulatedService`.
        telemetry: Its :class:`~repro.telemetry.instruments.ServiceTelemetry`.
        clear: Prefix the ANSI clear-screen sequence (interactive mode).
    """
    registry = telemetry.registry
    t = service.engine.now
    lines: List[str] = []
    if clear:
        lines.append(_CLEAR.rstrip("\n"))
    events = service.engine.events_processed
    eps = registry.value("repro_engine_events_per_second")
    heap = registry.value("repro_engine_heap_depth")
    lines.append(
        f"repro top · t={t:.1f}s · events={events} "
        f"({_fmt(eps)}/sim-s) · heap={int(heap)} · "
        f"spans={len(telemetry.tracer)}"
    )
    lines.append("")
    lines.append(
        _render_table(
            ["server", "E_i", "rounds", "adopt", "reject", "resets", "incons", "answered"],
            _server_rows(service, registry),
        )
    )
    edge_rows = _edge_rows(registry)
    if edge_rows:
        breaches = int(registry.value("repro_theorem7_breaches_total"))
        lines.append("")
        lines.append(f"asynchronism vs Theorem 7 bound (breaches: {breaches})")
        lines.append(
            _render_table(["edge", "|C_i-C_j|", "bound", ""], edge_rows)
        )
    state = registry.get("repro_holdover_state")
    if state is not None and list(state.samples()):
        state_names = {0: "SYNCED", 1: "HOLDOVER", 2: "DEGRADED", 3: "REINTEGRATING"}
        rows = []
        for labelvalues, child in state.samples():
            name = labelvalues[0]
            age = registry.value("repro_holdover_age_seconds", server=name)
            slew = registry.value("repro_slew_remaining_seconds", server=name)
            rows.append(
                [
                    name,
                    state_names.get(int(child.value), str(int(child.value))),
                    _fmt(age, "s") if age == age else "-",
                    _fmt(slew, "s") if slew == slew else "-",
                    int(
                        registry.value(
                            "repro_insane_resets_total", server=name
                        )
                    ),
                ]
            )
        lines.append("")
        lines.append(
            _render_table(
                ["server", "holdover", "age", "slew left", "insane"], rows
            )
        )
    auth = registry.get("repro_auth_failures_total")
    if auth is not None and list(auth.samples()):
        rows = []
        for labelvalues, child in auth.samples():
            name = labelvalues[0]
            epoch = registry.value("repro_security_key_epoch", server=name)
            rows.append(
                [
                    name,
                    int(child.value),
                    int(registry.value("repro_replay_drops_total", server=name)),
                    int(
                        registry.value(
                            "repro_delay_attack_detections_total", server=name
                        )
                    ),
                    int(registry.value("repro_delay_widens_total", server=name)),
                    int(epoch) if epoch == epoch else "-",
                ]
            )
        lines.append("")
        lines.append(
            _render_table(
                [
                    "server",
                    "mac fail",
                    "replay drop",
                    "delay det",
                    "widened",
                    "key epoch",
                ],
                rows,
            )
        )
    depth = registry.get("repro_load_queue_depth")
    if depth is not None and list(depth.samples()):
        rows = [
            [labelvalues[0], int(child.value)]
            for labelvalues, child in depth.samples()
        ]
        lines.append("")
        lines.append(_render_table(["queue", "depth"], rows))
    violations = registry.get("repro_invariant_checks_total")
    if violations is not None:
        rows = [
            [",".join(labelvalues), int(child.value)]
            for labelvalues, child in violations.samples()
        ]
        if rows:
            lines.append("")
            lines.append(_render_table(["invariant check,outcome", "count"], rows))
    return "\n".join(lines) + "\n"


def run_top(
    service,
    telemetry,
    *,
    horizon: float,
    refresh: float = 30.0,
    interactive: bool = True,
    emit: Optional[Callable[[str], None]] = None,
) -> int:
    """Advance the simulation in refresh-sized steps, printing one frame each.

    Args:
        service: The running service.
        telemetry: Its telemetry bundle.
        horizon: Absolute simulated end time.
        refresh: Simulated seconds between frames.
        interactive: Clear the screen between frames.
        emit: Frame sink (defaults to ``print``); tests pass a collector.

    Returns:
        The number of frames rendered.
    """
    if refresh <= 0:
        raise ValueError(f"refresh must be positive, got {refresh}")
    sink = emit if emit is not None else lambda frame: print(frame, end="")
    frames = 0
    t = service.engine.now
    while t < horizon:
        t = min(t + refresh, horizon)
        service.run_until(t)
        if telemetry.sampler is not None:
            telemetry.sampler.sample_now()
        sink(render_dashboard(service, telemetry, clear=interactive))
        frames += 1
    return frames
