"""The in-sim metrics registry: labelled counter/gauge/histogram families.

The paper's guarantees are statements about numbers — error bounds
(Theorems 2/3), asynchronism (Theorem 7), round/reset behaviour — that the
repo historically could only inspect *after* a run by replaying trace
snapshots.  This module supplies the online half: a Prometheus-style
metrics registry that every layer of the simulation writes into as it
runs, cheap enough to leave wired in permanently.

Design notes
------------

* **Families and children.**  ``registry.counter(name, help, labelnames)``
  returns a :class:`MetricFamily`; ``family.labels(server="S1")`` returns
  the child instrument for that label combination (created on first use).
  A family with no label names has a single anonymous child reachable via
  ``family.labels()`` — or just call ``inc``/``set``/``observe`` on the
  family itself, which proxies to it.
* **Scoped views.**  :meth:`MetricsRegistry.scoped` returns a view that
  injects constant labels (e.g. ``server="S1"``) into every family it
  creates, so a per-server component can hold what looks like its own
  registry while all samples aggregate into the service-wide one.
* **Null objects.**  :class:`NullRegistry` (and the null instruments it
  hands out) implement the full interface as no-ops, so disabled
  telemetry costs one attribute lookup and an empty method call on the
  hot path — no ``if telemetry is not None`` branching at call sites.
* **Determinism.**  Nothing here reads wall clocks or draws randomness;
  all values come from the simulation.  Export order is sorted, so two
  identical-seed runs serialize byte-identical snapshots.
* **Histograms** use fixed log-spaced buckets (cumulative, Prometheus
  style) plus a streaming P² quantile sketch for p50/p99 — O(1) memory
  and deterministic, unlike sampling reservoirs.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "CounterField",
    "CounterBackedStats",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "P2Quantile",
    "default_buckets",
]

LabelValues = Tuple[str, ...]


def default_buckets() -> Tuple[float, ...]:
    """The default fixed log buckets: 1e-6 .. 1e3 seconds, decade steps
    with a 1-2-5 subdivision — wide enough for event gaps and RTTs alike.
    """
    buckets: List[float] = []
    for exponent in range(-6, 4):
        for mantissa in (1.0, 2.0, 5.0):
            buckets.append(mantissa * 10.0**exponent)
    return tuple(buckets)


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Tracks one quantile ``q`` in O(1) space with deterministic updates —
    exactly what an always-on telemetry plane needs.  Until five samples
    have arrived the estimate is exact (sorted buffer).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._initial: List[float] = []
        # Marker heights, positions, and desired positions (5 markers).
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one sample into the estimate."""
        self.count += 1
        if len(self._initial) < 5:
            bisect.insort(self._initial, value)
            if len(self._initial) == 5:
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.q,
                    1.0 + 4.0 * self.q,
                    3.0 + 2.0 * self.q,
                    5.0,
                ]
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for k in range(cell + 1, 5):
            positions[k] += 1.0
        for k in range(5):
            self._desired[k] += self._increments[k]
        # Adjust the three interior markers toward their desired positions.
        for k in (1, 2, 3):
            delta = self._desired[k] - positions[k]
            if (delta >= 1.0 and positions[k + 1] - positions[k] > 1.0) or (
                delta <= -1.0 and positions[k - 1] - positions[k] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(k, step)
                if heights[k - 1] < candidate < heights[k + 1]:
                    heights[k] = candidate
                else:
                    heights[k] = self._linear(k, step)
                positions[k] += step

    def _parabolic(self, k: int, step: float) -> float:
        h, p = self._heights, self._positions
        return h[k] + step / (p[k + 1] - p[k - 1]) * (
            (p[k] - p[k - 1] + step) * (h[k + 1] - h[k]) / (p[k + 1] - p[k])
            + (p[k + 1] - p[k] - step) * (h[k] - h[k - 1]) / (p[k] - p[k - 1])
        )

    def _linear(self, k: int, step: float) -> float:
        h, p = self._heights, self._positions
        j = k + int(step)
        return h[k] + step * (h[j] - h[k]) / (p[j] - p[k])

    @property
    def value(self) -> float:
        """The current quantile estimate (NaN before any sample)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return math.nan
        # Exact quantile over the (< 5) buffered samples.
        rank = self.q * (len(self._initial) - 1)
        low = int(rank)
        high = min(low + 1, len(self._initial) - 1)
        frac = rank - low
        return self._initial[low] * (1.0 - frac) + self._initial[high] * frac


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, live ``E_i``...)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed log-bucket histogram plus a P² sketch for p50/p99.

    Buckets are cumulative at export time (Prometheus ``le`` semantics);
    internally each bucket stores its own count.

    ``observe`` sits on the simulator's hottest paths (every engine
    event, every poll reply), so samples are buffered and folded lazily:
    the bucket bisect, the running sum, and the P² sketch updates all
    happen on the next *read* (or when the buffer hits its cap), in
    arrival order — every reader sees exactly the state eager folding
    would have produced, and the hot path is a bare ``list.append``.
    """

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_sketches", "_pending")

    #: Fold the buffer at this size so memory stays bounded even on runs
    #: that never read the histogram back.
    FLUSH_AT = 4096

    def __init__(
        self,
        buckets: Optional[Sequence[float]] = None,
        quantiles: Sequence[float] = (0.5, 0.99),
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else default_buckets()
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot: +Inf
        self._sum = 0.0
        self._count = 0
        self._sketches = {q: P2Quantile(q) for q in quantiles}
        self._pending: List[float] = []

    def observe(self, value: float) -> None:
        """Record one sample (folded lazily on the next read)."""
        pending = self._pending
        pending.append(value)
        if len(pending) >= self.FLUSH_AT:
            self._fold()

    def _fold(self) -> None:
        """Fold buffered samples into buckets, sum, and sketches."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        counts = self._counts
        bounds = self._bounds
        locate = bisect.bisect_left
        total = self._sum
        for value in pending:
            counts[locate(bounds, value)] += 1
            total += value
        self._sum = total
        self._count += len(pending)
        for sketch in self._sketches.values():
            fold = sketch.observe
            for value in pending:
                fold(value)

    @property
    def count(self) -> int:
        self._fold()
        return self._count

    @property
    def sum(self) -> float:
        self._fold()
        return self._sum

    @property
    def value(self) -> float:
        """Alias so generic export code can treat any instrument alike."""
        self._fold()
        return float(self._count)

    def quantile(self, q: float) -> float:
        """The sketch's estimate for quantile ``q`` (must be tracked)."""
        self._fold()
        return self._sketches[q].value

    @property
    def quantiles(self) -> Dict[float, float]:
        """All tracked quantile estimates."""
        self._fold()
        return {q: sketch.value for q, sketch in self._sketches.items()}

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ending with +Inf."""
        self._fold()
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, self._counts):
            running += count
            rows.append((bound, running))
        rows.append((math.inf, self._count))
        return rows


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, across label combinations."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        constant_labels: Mapping[str, str],
        **instrument_kwargs,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self._constant = dict(constant_labels)
        self._kwargs = instrument_kwargs
        self._children: Dict[LabelValues, object] = {}

    def labels(self, **labels: str):
        """The child instrument for one label combination."""
        expected = set(self.labelnames) - set(self._constant)
        if set(labels) != expected:
            raise ValueError(
                f"{self.name}: expected labels {sorted(expected)}, "
                f"got {sorted(labels)}"
            )
        merged = dict(self._constant)
        merged.update({k: str(v) for k, v in labels.items()})
        key = tuple(merged[name] for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = _INSTRUMENTS[self.kind](**self._kwargs)
            self._children[key] = child
        return child

    # Convenience proxies for label-free families -------------------------

    def _solo(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def samples(self) -> Iterable[Tuple[LabelValues, object]]:
        """``(label_values, child)`` pairs in sorted label order."""
        return sorted(self._children.items())

    def total(self) -> float:
        """Sum of all children's scalar values (count for histograms)."""
        return sum(child.value for _labels, child in self._children.items())


class MetricsRegistry:
    """The service-wide family store.

    Re-registering a name returns the existing family (so every server can
    independently ask for ``repro_sync_rounds_total``), but mismatched
    type/labelnames raise — silent divergence would corrupt the export.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List = []

    # --------------------------------------------------------- collectors

    def add_collector(self, fn) -> None:
        """Register a flush hook run before any read.

        Hot instrumentation sites (the per-event engine observer, the
        per-round server handles) accumulate into plain attributes and
        register a collector that folds the pending values into their
        counter children; readers (:meth:`families`, :meth:`get`,
        :meth:`value`) trigger the folds, so every read still sees
        exactly the state eager increments would have produced.
        """
        self._collectors.append(fn)

    def collect(self) -> None:
        """Run every registered collector (idempotent between writes)."""
        for fn in self._collectors:
            fn()

    # -------------------------------------------------------- registration

    def _get_or_create(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Sequence[str],
        constant_labels: Mapping[str, str],
        **kwargs,
    ) -> MetricFamily:
        family = self._families.get(name)
        names = tuple(labelnames)
        if family is not None:
            if family.kind != kind or family.labelnames != names:
                raise ValueError(
                    f"metric {name!r} re-registered as {kind}{names}, "
                    f"was {family.kind}{family.labelnames}"
                )
            return family
        family = MetricFamily(name, kind, help_text, names, constant_labels, **kwargs)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._get_or_create(name, "counter", help_text, labelnames, {})

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._get_or_create(name, "gauge", help_text, labelnames, {})

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        quantiles: Sequence[float] = (0.5, 0.99),
    ) -> MetricFamily:
        """Get or create a histogram family."""
        return self._get_or_create(
            name,
            "histogram",
            help_text,
            labelnames,
            {},
            buckets=buckets,
            quantiles=quantiles,
        )

    # -------------------------------------------------------------- views

    def scoped(self, **constant_labels: str) -> "ScopedRegistry":
        """A view that stamps ``constant_labels`` onto every family."""
        return ScopedRegistry(self, {k: str(v) for k, v in constant_labels.items()})

    @property
    def enabled(self) -> bool:
        """Real registries record; the :class:`NullRegistry` does not."""
        return True

    def families(self) -> List[MetricFamily]:
        """All families, sorted by name (export order)."""
        self.collect()
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        """Look a family up by name (None when absent)."""
        self.collect()
        return self._families.get(name)

    def value(self, name: str, **labels: str) -> float:
        """Shortcut: one child's scalar value (0.0 for missing children)."""
        self.collect()
        family = self._families.get(name)
        if family is None:
            return 0.0
        try:
            return family.labels(**labels).value
        except ValueError:
            return 0.0


class ScopedRegistry:
    """A label-injecting view over a :class:`MetricsRegistry`.

    Each family it creates carries the scope's constant labels merged into
    the label names, so ``scoped(server="S1").counter("x", labelnames=("rule",))``
    exports as ``x{rule=..., server="S1"}`` — per-server registries that
    aggregate into the service-wide one for free.
    """

    def __init__(self, parent: MetricsRegistry, constant_labels: Dict[str, str]):
        self._parent = parent
        self._constant = constant_labels

    def _merged_names(self, labelnames: Sequence[str]) -> Tuple[str, ...]:
        extra = tuple(name for name in labelnames if name not in self._constant)
        return tuple(sorted(self._constant)) + extra

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        family = self._parent._get_or_create(
            name, "counter", help_text, self._merged_names(labelnames), {}
        )
        return _ScopedFamily(family, self._constant)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        family = self._parent._get_or_create(
            name, "gauge", help_text, self._merged_names(labelnames), {}
        )
        return _ScopedFamily(family, self._constant)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
        quantiles: Sequence[float] = (0.5, 0.99),
    ) -> MetricFamily:
        family = self._parent._get_or_create(
            name,
            "histogram",
            help_text,
            self._merged_names(labelnames),
            {},
            buckets=buckets,
            quantiles=quantiles,
        )
        return _ScopedFamily(family, self._constant)

    def scoped(self, **constant_labels: str) -> "ScopedRegistry":
        merged = dict(self._constant)
        merged.update({k: str(v) for k, v in constant_labels.items()})
        return ScopedRegistry(self._parent, merged)

    def add_collector(self, fn) -> None:
        self._parent.add_collector(fn)

    @property
    def enabled(self) -> bool:
        return True


class _ScopedFamily:
    """A family view with the scope's labels pre-bound."""

    __slots__ = ("_family", "_constant")

    def __init__(self, family: MetricFamily, constant: Dict[str, str]) -> None:
        self._family = family
        self._constant = constant

    def labels(self, **labels: str):
        merged = dict(self._constant)
        merged.update(labels)
        return self._family.labels(**merged)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> float:
        return self.labels().value


class _NullInstrument:
    """One object standing in for counter, gauge, and histogram alike."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels: str) -> "_NullInstrument":
        return self

    def quantile(self, q: float) -> float:
        return math.nan

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled-telemetry registry: every call is a cheap no-op.

    Hands out one shared :class:`_NullInstrument` for everything, so the
    instrumented hot paths (`inc`, `observe`, `set`) cost an attribute
    lookup and an empty call — measured under 2% on a figure-1-scale run
    by ``benchmarks/test_bench_telemetry.py``.
    """

    def counter(self, name: str, help_text: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help_text: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, help_text: str = "", labelnames=(), buckets=None, quantiles=()
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def scoped(self, **constant_labels: str) -> "NullRegistry":
        return self

    def add_collector(self, fn) -> None:
        pass

    @property
    def enabled(self) -> bool:
        return False

    def families(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def value(self, name: str, **labels: str) -> float:
        return 0.0


NULL_REGISTRY = NullRegistry()


class CounterField:
    """A stats attribute backed by a registry counter.

    Lets the pre-telemetry stats objects (``HardeningStats``,
    ``LoadStats``) keep their exact public surface — plain integer
    attribute reads and ``stats.field += 1`` writes — while the values
    live in (and export from) the metrics registry.  Assigning a smaller
    value than the current count raises: these are counters.
    """

    __slots__ = ("name", "help")

    def __init__(self, help_text: str = "") -> None:
        self.help = help_text
        self.name = ""  # filled by __set_name__

    def __set_name__(self, owner, name: str) -> None:
        self.name = name

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return int(instance._counters[self.name].value)

    def __set__(self, instance, value: int) -> None:
        counter = instance._counters[self.name]
        delta = value - counter.value
        if delta < 0:
            raise ValueError(
                f"{type(instance).__name__}.{self.name} is a counter; "
                f"cannot go from {counter.value:g} to {value}"
            )
        if delta:
            counter.inc(delta)


class CounterBackedStats:
    """Base for stats bundles whose fields are :class:`CounterField`\\ s.

    Subclasses declare fields as class attributes::

        class LoadStats(CounterBackedStats):
            prefix = "repro_load_"
            busy_replies = CounterField("BUSY replies sent")

    Constructed with no arguments the bundle owns a private real registry
    (identical observable behaviour to the old ``@dataclass`` counters);
    constructed with a scoped service registry its counts also appear in
    the service-wide export.  A :class:`NullRegistry` is refused — the
    thin views must keep counting even when exporting is off.
    """

    prefix = "repro_"

    def __init__(self, registry=None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        if not registry.enabled:
            raise ValueError(
                f"{type(self).__name__} needs a recording registry; "
                "pass None for a private one"
            )
        self._counters = {}
        for klass in reversed(type(self).__mro__):
            for name, attr in vars(klass).items():
                if isinstance(attr, CounterField):
                    family = registry.counter(
                        f"{self.prefix}{name}_total", attr.help
                    )
                    self._counters[name] = family.labels()

    def fields(self) -> Dict[str, int]:
        """All counter fields as a plain dict (debugging/tests)."""
        return {name: int(c.value) for name, c in sorted(self._counters.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.fields().items())
        return f"{type(self).__name__}({body})"
