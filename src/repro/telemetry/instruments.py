"""Instrumentation: binding the registry and tracer to the simulation.

This module is the glue between the passive containers
(:mod:`repro.telemetry.registry`, :mod:`repro.telemetry.tracing`) and the
simulated system:

* :class:`ServerTelemetry` — the per-server handle a
  :class:`~repro.service.server.TimeServer` calls from its hot paths
  (round open, reply, reset, answer).  The disabled singleton
  :data:`NULL_SERVER_TELEMETRY` makes every call a no-op, so the server
  code carries no ``if telemetry:`` branches.
* :class:`EngineInstruments` — the engine event observer (events fired,
  inter-event gap, heap depth).
* :class:`TelemetrySampler` — a :class:`~repro.simulation.process.SimProcess`
  that periodically samples the gauges the theorems are about: live
  ``E_i`` per server (Theorems 2/3), oracle per-edge asynchronism against
  the Theorem 7 bound ``ξ + (δ_i + δ_j)·τ``, queue depths, reputation
  scores, fault budgets, and merge epochs.
* :class:`ServiceTelemetry` — the bundle a
  :func:`~repro.service.builder.build_service` call owns: one registry,
  one tracer, one event stream, per-server handles, and export helpers.

Metric names follow Prometheus conventions (``repro_`` prefix, base
units, ``_total`` for counters); the full catalogue is in
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..simulation.process import SimProcess
from .exporters import JsonlEventExporter, summary_snapshot, write_telemetry
from .registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from .tracing import NULL_TRACER, Span, SpanTracer

__all__ = [
    "EngineInstruments",
    "NULL_SERVER_TELEMETRY",
    "NULL_SERVICE_TELEMETRY",
    "RoundTelemetry",
    "ServerTelemetry",
    "ServiceTelemetry",
    "TelemetrySampler",
]


class RoundTelemetry:
    """Per-round span context: the round span plus one leg span per
    neighbour still awaiting a verdict."""

    __slots__ = ("span", "legs")

    def __init__(self, span: Optional[Span]) -> None:
        self.span = span
        self.legs: Dict[str, Span] = {}


class ServerTelemetry:
    """The per-server instrument handle.

    Args:
        registry: A (scoped) registry; pass a
            :class:`~repro.telemetry.registry.NullRegistry` view to count
            nothing.
        tracer: The shared span tracer (``NULL_TRACER`` to trace nothing).
        server: The owning server's name (span source).
    """

    def __init__(
        self,
        registry,
        tracer: SpanTracer,
        server: str,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.server = server
        self.enabled = bool(registry.enabled or tracer.enabled)
        # Hot methods skip the tracer entirely when spans are off, and
        # call through pre-bound methods when they are on.
        self._spans_on = tracer.enabled
        self._tracer_start = tracer.start
        self._tracer_end = tracer.end
        # Children are pre-bound (``.labels()``) so the hot path is a bare
        # ``Counter.inc`` — no per-call label merging.
        # -- sync plane -------------------------------------------------
        self._rounds = registry.counter(
            "repro_sync_rounds_total", "Rule MM-2/IM-2 rounds started"
        ).labels()
        self._polls = registry.counter(
            "repro_sync_polls_total",
            "Poll requests handed to the transport",
            ("outcome",),
        )
        self._replies = registry.counter(
            "repro_sync_replies_total",
            "Poll replies by verdict",
            ("verdict",),
        )
        self._rtt = registry.histogram(
            "repro_sync_rtt_local_seconds",
            "Local-clock round-trip times xi^i_j of accepted replies",
        ).labels()
        # The inflation is (1+δ)·ξ^i_j — a scaled copy of the RTT, so the
        # RTT family's sketches already carry the quantile story; skip the
        # per-reply P² folds here.
        self._inflation = registry.histogram(
            "repro_sync_inflation_seconds",
            "The (1+delta)*xi round-trip inflation applied to adopted errors",
            quantiles=(),
        ).labels()
        resets = registry.counter(
            "repro_clock_resets_total",
            "Clock resets applied, by kind (sync/recovery)",
            ("kind",),
        )
        self._reset_children = {
            "sync": resets.labels(kind="sync"),
            "recovery": resets.labels(kind="recovery"),
        }
        self._adoptions = registry.counter(
            "repro_sync_adoptions_total",
            "Rule MM-2/IM-2 reply adoptions (sync resets)",
        ).labels()
        self._inconsistencies = registry.counter(
            "repro_sync_inconsistencies_total",
            "Detected inconsistencies (Section 3 trigger)",
        ).labels()
        self._error_gauge = registry.gauge(
            "repro_server_error_seconds",
            "Live rule MM-1 error bound E_i",
            ("server",),
        ).labels()
        self._answers = registry.counter(
            "repro_requests_answered_total",
            "Requests answered, by request kind",
            ("kind",),
        )
        # -- recovery (Section 3 + crash-recovery subsystem) ------------
        self._recoveries = registry.counter(
            "repro_recovery_attempts_total",
            "Third-server recovery attempts, by outcome",
            ("outcome",),
        )
        self._checkpoints = registry.counter(
            "repro_recovery_checkpoints_total",
            "Durable checkpoints written to the stable store",
        ).labels()
        self._restarts = registry.counter(
            "repro_recovery_restarts_total",
            "Crash restarts, by kind (warm/cold)",
            ("kind",),
        )
        self._merges = registry.counter(
            "repro_recovery_merges_total",
            "Epoch-numbered consistency-group merges adopted",
        ).labels()
        self._epoch_gauge = registry.gauge(
            "repro_recovery_epoch", "Current merge epoch", ("server",)
        ).labels()
        # -- byzantine layer --------------------------------------------
        self._demotions = registry.counter(
            "repro_byzantine_demotions_total",
            "Neighbours demoted from the poll set as falsetickers",
        ).labels()
        # Lazily cached children for the remaining label lookups.
        self._answer_children: Dict[Any, Any] = {}
        self._verdict_children: Dict[str, Any] = {}
        self._poll_sent = self._polls.labels(outcome="sent")
        self._poll_unsent = self._polls.labels(outcome="unsent")
        # Hot-path batching: the per-round methods bump these plain
        # attributes and the registered collector folds them into the
        # counter children right before any registry read, so the hot
        # path is integer arithmetic instead of method dispatch.
        self._n_rounds = 0
        self._n_poll_sent = 0
        self._n_poll_unsent = 0
        self._n_verdicts: Dict[str, int] = {}
        self._n_adoptions = 0
        self._n_resets: Dict[str, int] = {"sync": 0, "recovery": 0}
        # id(kind) -> [kind, count] (see answered()).
        self._n_answers: Dict[int, list] = {}
        registry.add_collector(self._flush_pending)

    def _flush_pending(self) -> None:
        """Fold the batched hot-path counts into the counter children."""
        if self._n_rounds:
            self._rounds.inc(self._n_rounds)
            self._n_rounds = 0
        if self._n_poll_sent:
            self._poll_sent.inc(self._n_poll_sent)
            self._n_poll_sent = 0
        if self._n_poll_unsent:
            self._poll_unsent.inc(self._n_poll_unsent)
            self._n_poll_unsent = 0
        verdicts = self._n_verdicts
        if verdicts:
            for verdict, count in verdicts.items():
                self._verdict(verdict).inc(count)
            verdicts.clear()
        if self._n_adoptions:
            self._adoptions.inc(self._n_adoptions)
            self._n_adoptions = 0
        resets = self._n_resets
        if resets["sync"]:
            self._reset_children["sync"].inc(resets["sync"])
            resets["sync"] = 0
        if resets["recovery"]:
            self._reset_children["recovery"].inc(resets["recovery"])
            resets["recovery"] = 0
        answers = self._n_answers
        if answers:
            for kind, count in answers.values():
                child = self._answer_children.get(kind)
                if child is None:
                    child = self._answers.labels(
                        kind=getattr(kind, "name", str(kind)).lower()
                    )
                    self._answer_children[kind] = child
                child.inc(count)
            answers.clear()

    def stats_registry(self):
        """The scoped registry for counter-backed stats bundles, or None.

        :class:`~repro.telemetry.registry.CounterBackedStats` refuses null
        registries (the thin stats views must keep counting when telemetry
        is off), so disabled handles return None and the bundle builds its
        own private registry.
        """
        return self.registry if self.registry.enabled else None

    # ------------------------------------------------------------- rounds

    def round_started(self, t: float, round_id: int) -> Optional[RoundTelemetry]:
        """A synchronization round opened; returns the round context."""
        self._n_rounds += 1
        if not self._spans_on:
            return None
        span = self._tracer_start(
            t, "poll_round", self.server, round_id=round_id
        )
        return RoundTelemetry(span)

    def poll_sent(
        self,
        ctx: Optional[RoundTelemetry],
        t: float,
        neighbour: str,
        accepted: bool,
    ) -> None:
        """One poll request left (or failed to leave) for ``neighbour``."""
        if accepted:
            self._n_poll_sent += 1
        else:
            self._n_poll_unsent += 1
        if ctx is None:
            return
        leg = self._tracer_start(
            t, "poll", self.server, parent=ctx.span, neighbour=neighbour
        )
        if accepted:
            ctx.legs[neighbour] = leg
        else:
            self._tracer_end(t, leg, status="unsent")

    def reply_invalid(
        self,
        ctx: Optional[RoundTelemetry],
        t: float,
        neighbour: str,
        reason: str,
    ) -> None:
        """A reply was rejected by validation before the policy saw it."""
        verdicts = self._n_verdicts
        verdicts["invalid"] = verdicts.get("invalid", 0) + 1
        if ctx is not None:
            self._tracer_end(
                t, ctx.legs.pop(neighbour, None), status="invalid", reason=reason
            )

    def reply_observed(
        self,
        ctx: Optional[RoundTelemetry],
        t: float,
        neighbour: str,
        rtt_local: float,
        inflation: float,
    ) -> None:
        """A valid reply arrived; records ξ^i_j and the (1+δ)ξ inflation."""
        self._rtt.observe(rtt_local)
        self._inflation.observe(inflation)
        if ctx is not None:
            leg = ctx.legs.get(neighbour)
            if leg is not None:
                leg.annotate(rtt_local=rtt_local, inflation=inflation)

    def reply_verdict(
        self,
        ctx: Optional[RoundTelemetry],
        t: float,
        neighbour: str,
        verdict: str,
        **attrs: Any,
    ) -> None:
        """The policy's per-reply decision (rule MM-2's accept/reject, or
        ``received`` for batch policies that decide at round close)."""
        verdicts = self._n_verdicts
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
        if ctx is not None:
            self._tracer_end(
                t, ctx.legs.pop(neighbour, None), status=verdict, **attrs
            )

    def _verdict(self, verdict: str):
        child = self._verdict_children.get(verdict)
        if child is None:
            child = self._replies.labels(verdict=verdict)
            self._verdict_children[verdict] = child
        return child

    def round_closed(
        self,
        ctx: Optional[RoundTelemetry],
        t: float,
        status: str,
        **attrs: Any,
    ) -> None:
        """The round completed; unanswered legs close as timeouts."""
        if ctx is None:
            return
        if ctx.legs:
            for neighbour in sorted(ctx.legs):
                self._tracer_end(t, ctx.legs[neighbour], status="timeout")
            ctx.legs.clear()
        self._tracer_end(t, ctx.span, status=status, **attrs)

    # ------------------------------------------------- resets and answers

    def reset(
        self,
        t: float,
        kind: str,
        source: str,
        new_error: float,
        ctx: Optional[RoundTelemetry] = None,
    ) -> None:
        """A clock reset was applied (rule MM-2/IM-2 adoption or recovery)."""
        resets = self._n_resets
        resets[kind if kind in resets else "sync"] += 1
        if kind == "sync":
            self._n_adoptions += 1
        self._error_gauge.set(new_error)
        if self._spans_on:
            self.tracer.event(
                t,
                "reset",
                self.server,
                parent=None if ctx is None else ctx.span,
                status=kind,
                origin=source,
                new_error=new_error,
            )

    def inconsistency(self, t: float, conflicting: Tuple[str, ...]) -> None:
        """Rule MM-2/IM-2 flagged an inconsistent neighbour set."""
        self._inconsistencies.inc()
        self.tracer.event(
            t,
            "inconsistency",
            self.server,
            conflicting=",".join(conflicting),
        )

    def answered(self, kind: Any) -> None:
        """A request was answered (hot path: a dict bump, folded later).

        Keyed by ``id(kind)`` — request kinds are enum singletons and
        hashing an Enum goes through a Python-level ``__hash__``, which
        is most of this method's cost at C-level dict speed.
        """
        entry = self._n_answers.get(id(kind))
        if entry is None:
            self._n_answers[id(kind)] = entry = [kind, 0]
        entry[1] += 1

    def error_bound(self, value: float) -> None:
        """Update the live E_i gauge."""
        self._error_gauge.set(value)

    # ----------------------------------------------------------- recovery

    def recovery(self, t: float, outcome: str, arbiter: str = "") -> None:
        """A Section 3 recovery attempt changed state."""
        self._recoveries.labels(outcome=outcome).inc()
        if outcome != "started":
            return
        self.tracer.event(t, "recovery", self.server, arbiter=arbiter)

    def checkpoint(self, t: float) -> None:
        """A durable checkpoint was written."""
        self._checkpoints.inc()

    def restart(self, t: float, warm: bool) -> None:
        """The server restarted from a crash."""
        self._restarts.labels(kind="warm" if warm else "cold").inc()
        self.tracer.event(t, "restart", self.server, status="warm" if warm else "cold")

    def merge(self, t: float, epoch: int) -> None:
        """An epoch-numbered group merge was adopted."""
        self._merges.inc()
        self._epoch_gauge.set(epoch)

    def epoch(self, value: int) -> None:
        """Update the merge-epoch gauge."""
        self._epoch_gauge.set(value)

    # ---------------------------------------------------------- byzantine

    def demotion(self, t: float, neighbour: str) -> None:
        """A neighbour was demoted from the poll set as a falseticker."""
        self._demotions.inc()
        self.tracer.event(t, "demotion", self.server, neighbour=neighbour)


class _NullServerTelemetry(ServerTelemetry):
    """Every instrument call a no-op; every span context None."""

    def __init__(self) -> None:
        super().__init__(NULL_REGISTRY, NULL_TRACER, "")
        self.enabled = False

    def round_started(self, t, round_id):
        return None

    def poll_sent(self, ctx, t, neighbour, accepted):
        pass

    def reply_invalid(self, ctx, t, neighbour, reason):
        pass

    def reply_observed(self, ctx, t, neighbour, rtt_local, inflation):
        pass

    def reply_verdict(self, ctx, t, neighbour, verdict, **attrs):
        pass

    def round_closed(self, ctx, t, status, **attrs):
        pass

    def reset(self, t, kind, source, new_error, ctx=None):
        pass

    def inconsistency(self, t, conflicting):
        pass

    def answered(self, kind):
        pass

    def error_bound(self, value):
        pass

    def recovery(self, t, outcome, arbiter=""):
        pass

    def checkpoint(self, t):
        pass

    def restart(self, t, warm):
        pass

    def merge(self, t, epoch):
        pass

    def epoch(self, value):
        pass

    def demotion(self, t, neighbour):
        pass


#: Shared disabled handle: the default for every server.
NULL_SERVER_TELEMETRY = _NullServerTelemetry()


class EngineInstruments:
    """The engine's event observer: counts, cadence, heap depth.

    Wired via :meth:`~repro.simulation.engine.SimulationEngine.set_observer`;
    the callback runs once per fired event, so it stays tiny: plain-int
    accumulation flushed into the instruments by a registry collector.
    It also drives the :class:`TelemetrySampler` grid, which keeps the
    sampler's periodic off the engine heap entirely.
    """

    def __init__(self, registry) -> None:
        self._events = registry.counter(
            "repro_engine_events_total", "Simulation events fired"
        ).labels()
        # No quantile sketches: this histogram folds once per engine event
        # (the hottest call site in the whole plane), and the bucket
        # counts already characterise the cadence.
        self._gap = registry.histogram(
            "repro_engine_event_gap_seconds",
            "Sim-time gap between consecutive events (event-loop cadence)",
            quantiles=(),
        ).labels()
        self._heap = registry.gauge(
            "repro_engine_heap_depth", "Events pending on the engine heap"
        ).labels()
        self._last_time: Optional[float] = None
        # The observer fires once per engine event, so per-event work is a
        # bare int bump + list append; the registered collector folds the
        # backlog into the real instruments on the next registry read.
        self._pending_events = 0
        self._pending_gaps: List[float] = []
        self._engine = None
        # Set by ServiceTelemetry.attach: the gauge sampler that
        # piggybacks on this observer instead of injecting its own
        # periodic events into the engine heap.
        self.sampler: Optional[TelemetrySampler] = None
        registry.add_collector(self._flush_pending)

    def _flush_pending(self) -> None:
        """Fold the batched per-event counts into the instruments."""
        if self._pending_events:
            self._events.inc(self._pending_events)
            self._pending_events = 0
        gaps = self._pending_gaps
        if gaps:
            self._pending_gaps = []
            observe = self._gap.observe
            for gap in gaps:
                observe(gap)
        if self._engine is not None:
            self._heap.set(self._engine.heap_depth)

    def on_event(self, engine, event) -> None:
        """Called by the engine after each event fires."""
        self._pending_events += 1
        t = event.time
        last = self._last_time
        if last is not None:
            self._pending_gaps.append(t - last)
        self._last_time = t
        self._engine = engine
        sampler = self.sampler
        if sampler is not None and t >= sampler.next_due:
            sampler.on_grid(t)


class TelemetrySampler(SimProcess):
    """Periodic gauge sampling: the numbers the theorems bound, live.

    Every ``period`` simulated seconds it reads, without disturbing:

    * each server's rule MM-1 error bound ``E_i`` (Theorems 2/3) and the
      oracle true offset ``|C_i - t|``;
    * for every topology edge between polling servers, the oracle
      asynchronism ``|C_i - C_j|`` against the Theorem 7 bound
      ``ξ + (δ_i + δ_j)·τ`` — breaches increment
      ``repro_theorem7_breaches_total`` (expected only inside fault
      windows);
    * when ``local_skew_bound`` is set, the same per-edge quantity as the
      gradient literature's *local skew* (``repro_edge_local_skew_seconds``)
      against that stated bound — breaches increment
      ``repro_local_skew_breaches_total``.  Distinct from the Theorem 7
      gauge in two ways: the bound is a single service-wide statement
      (the dynamic gauntlet's acceptance criterion) rather than a
      per-edge constant, and the edge set tracks live topology mutation
      (the roster rebuilds whenever ``network.topology_version`` moves);
    * engine throughput (events/sec of simulated time);
    * run-queue depth for load-aware servers, reputation/budget for
      Byzantine servers, merge epochs for self-stabilizing ones.
    """

    def __init__(
        self,
        engine,
        service,
        registry,
        *,
        period: float = 5.0,
        oracle: bool = True,
        events: Optional[JsonlEventExporter] = None,
        tracer: Optional[SpanTracer] = None,
        summary_every: int = 0,
        local_skew_bound: Optional[float] = None,
        name: str = "telemetry",
    ) -> None:
        super().__init__(engine, name)
        if period <= 0:
            raise ValueError(f"sampler period must be positive, got {period}")
        self.service = service
        self.registry = registry
        self.period = period
        self.oracle = oracle
        self.events = events
        self.tracer = tracer
        self.summary_every = summary_every
        self._samples = 0
        # The engine observer (EngineInstruments.on_event) compares each
        # event time against this grid and calls on_grid when it is
        # crossed — piggybacking keeps the sampler off the engine heap,
        # so an instrumented run fires exactly the same events as a bare
        # one.  Runs without an observer (registry disabled, or no
        # events at all) sample only on explicit sample_now() calls.
        self.next_due = engine.now + period
        self._last_events: Optional[Tuple[float, int]] = None
        # labels() validates and merges label dicts on every call; at one
        # call per gauge per server per sample that dominates the sampler,
        # so children are pre-bound per roster (see _rebuild_roster) and
        # only rebuilt when service membership changes.  _children memoises
        # the remaining dynamic lookups (per-neighbour reputation).
        self._children: Dict[tuple, object] = {}
        self._roster_keys: Optional[frozenset] = None
        self._server_rows: List[tuple] = []
        self._edge_rows: List[tuple] = []
        self._edge_version: Optional[int] = None
        self.local_skew_bound = local_skew_bound
        reg = registry
        self._error = reg.gauge(
            "repro_server_error_seconds",
            "Live rule MM-1 error bound E_i",
            ("server",),
        )
        self._offset = reg.gauge(
            "repro_server_true_offset_seconds",
            "Oracle |C_i(t) - t| (not observable in a real deployment)",
            ("server",),
        )
        self._edge_asyn = reg.gauge(
            "repro_edge_asynchronism_seconds",
            "Oracle per-edge asynchronism |C_i - C_j|",
            ("edge",),
        )
        self._edge_bound = reg.gauge(
            "repro_edge_asynchronism_bound_seconds",
            "Theorem 7 bound xi + (delta_i + delta_j) * tau",
            ("edge",),
        )
        self._breaches = reg.counter(
            "repro_theorem7_breaches_total",
            "Edge-samples where asynchronism exceeded the Theorem 7 bound",
        )
        self._edge_skew = reg.gauge(
            "repro_edge_local_skew_seconds",
            "Oracle local skew |C_i - C_j| over currently live edges",
            ("edge",),
        )
        self._skew_bound_gauge = reg.gauge(
            "repro_local_skew_bound_seconds",
            "Stated service-wide local-skew bound (dynamic gauntlet)",
        )
        self._skew_breaches = reg.counter(
            "repro_local_skew_breaches_total",
            "Edge-samples where local skew exceeded the stated bound",
        )
        if local_skew_bound is not None:
            self._skew_bound_gauge.set(local_skew_bound)
        self._eps = reg.gauge(
            "repro_engine_events_per_second",
            "Events fired per simulated second, over the last sample window",
        )
        self._queue_depth = reg.gauge(
            "repro_load_queue_depth", "Run-queue occupancy", ("server",)
        )
        self._reputation = reg.gauge(
            "repro_byzantine_reputation_score",
            "EWMA truechimer reputation per neighbour edge",
            ("server", "neighbour"),
        )
        self._budget = reg.gauge(
            "repro_byzantine_fault_budget",
            "Adaptive FT-IM fault budget value",
            ("server",),
        )
        self._epoch = reg.gauge(
            "repro_recovery_epoch", "Current merge epoch", ("server",)
        )
        self._holdover_state = reg.gauge(
            "repro_holdover_state",
            "Holdover machine state (0 SYNCED, 1 HOLDOVER, 2 DEGRADED, "
            "3 REINTEGRATING)",
            ("server",),
        )
        self._holdover_age = reg.gauge(
            "repro_holdover_age_seconds",
            "Local seconds since sources were last trusted (0 while SYNCED)",
            ("server",),
        )
        self._slew_remaining = reg.gauge(
            "repro_slew_remaining_seconds",
            "Signed correction still to be amortised by the slewing clock",
            ("server",),
        )

    # ------------------------------------------------------------ lifecycle

    def on_grid(self, t: float) -> None:
        """The observer crossed the sampling grid: advance it and sample."""
        period = self.period
        due = self.next_due
        while due <= t:
            due += period
        self.next_due = due
        self.sample_now(t)

    # ------------------------------------------------------------- sampling

    def _child(self, family, **labels):
        key = (id(family), *sorted(labels.items()))
        child = self._children.get(key)
        if child is None:
            child = family.labels(**labels)
            self._children[key] = child
        return child

    def _rebuild_roster(self, servers) -> None:
        """Pre-bind every per-server and per-edge gauge child.

        ``labels()`` validation and the duck-typed subsystem probing are
        too slow to repeat every sample, so both run once per membership
        change.  Which subsystem gauges a server carries is fixed at
        construction (queue / reputation / budget / epoch are constructor
        attributes), and the Theorem 7 bound is constant per edge (δ, ξ,
        τ are fixed at build time) — its gauge is set here, once.  The
        rebuild also re-reads the (possibly mutated) edge set; live
        topology changes re-trigger it via ``network.topology_version``.
        """
        self._roster_keys = frozenset(servers)
        self._edge_version = getattr(
            self.service.network, "topology_version", None
        )
        oracle = self.oracle
        rows = []
        for name in sorted(servers):
            server = servers[name]
            extras = []
            if getattr(server, "queue", None) is not None:
                queue_set = self._child(self._queue_depth, server=name).set
                extras.append(
                    lambda s=server, set_=queue_set: set_(len(s.queue))
                )
            if getattr(server, "reputation", None) is not None:
                extras.append(
                    lambda s=server, n=name: self._sample_reputation(n, s)
                )
            if getattr(server, "budget_controller", None) is not None:
                budget_set = self._child(self._budget, server=name).set
                extras.append(
                    lambda s=server, set_=budget_set: set_(
                        s.budget_controller.value
                    )
                )
            if getattr(server, "epoch", None) is not None:
                epoch_set = self._child(self._epoch, server=name).set
                extras.append(
                    lambda s=server, set_=epoch_set: set_(s.epoch)
                )
            if getattr(server, "holdover", None) is not None:
                state_set = self._child(self._holdover_state, server=name).set
                age_set = self._child(self._holdover_age, server=name).set
                extras.append(
                    lambda s=server, st=state_set, ag=age_set: (
                        st(int(s.holdover_state)),
                        ag(s.holdover_age_now()),
                    )
                )
            if hasattr(getattr(server, "clock", None), "slew_remaining"):
                slew_set = self._child(self._slew_remaining, server=name).set
                # getattr at sample time: the injector may have swapped a
                # failure wrapper over the slewing clock mid-window.
                extras.append(
                    lambda s=server, set_=slew_set: set_(
                        getattr(s.clock, "slew_remaining", 0.0)
                    )
                )
            rows.append(
                (
                    name,
                    server,
                    self._child(self._error, server=name).set,
                    self._child(self._offset, server=name).set
                    if oracle
                    else None,
                    tuple(extras),
                )
            )
        self._server_rows = rows
        edge_rows = []
        if oracle:
            tau = self.service.tau
            xi = self.service.xi
            for a, b in self.service.network.graph.edges:
                a, b = sorted((str(a), str(b)))
                sa, sb = servers.get(a), servers.get(b)
                if sa is None or sb is None:
                    continue
                if sa.policy is None or sb.policy is None:
                    continue
                edge = f"{a}-{b}"
                asyn_set = self._child(self._edge_asyn, edge=edge).set
                bound = None
                if tau is not None:
                    bound = xi + (sa.delta + sb.delta) * tau
                    self._child(self._edge_bound, edge=edge).set(bound)
                skew_set = (
                    self._child(self._edge_skew, edge=edge).set
                    if self.local_skew_bound is not None
                    else None
                )
                edge_rows.append((a, b, asyn_set, bound, skew_set))
        self._edge_rows = sorted(edge_rows, key=lambda row: row[:2])

    def _sample_reputation(self, name: str, server) -> None:
        """Per-neighbour reputation gauges (children memoised lazily —
        the record set can grow as neighbours are first classified)."""
        for neighbour, record in sorted(server.reputation.records.items()):
            self._child(
                self._reputation, server=name, neighbour=neighbour
            ).set(record.score)

    def sample_now(self, t: Optional[float] = None) -> None:
        """Take one sample of every gauge (``t`` defaults to sim-now)."""
        if t is None:
            t = self.now
        self._samples += 1
        servers = self.service.servers
        version = getattr(self.service.network, "topology_version", None)
        if servers.keys() != self._roster_keys or version != self._edge_version:
            self._rebuild_roster(servers)
        values: Dict[str, float] = {}
        for name, server, error_set, offset_set, extras in self._server_rows:
            if server.departed:
                continue
            value, error = server.report()
            values[name] = value
            error_set(error)
            if offset_set is not None:
                offset_set(abs(value - t))
            for extra in extras:
                extra()
        if self.oracle:
            breaches = 0
            skew_breaches = 0
            skew_bound = self.local_skew_bound
            for a, b, asyn_set, bound, skew_set in self._edge_rows:
                va = values.get(a)
                if va is None:
                    continue
                vb = values.get(b)
                if vb is None:
                    continue
                asyn = va - vb
                if asyn < 0.0:
                    asyn = -asyn
                asyn_set(asyn)
                if bound is not None and asyn > bound:
                    breaches += 1
                if skew_set is not None:
                    # Local skew is the same oracle quantity over the
                    # *live* edge set, judged against the stated
                    # service-wide bound instead of Theorem 7's per-edge
                    # constant.
                    skew_set(asyn)
                    if skew_bound is not None and asyn > skew_bound:
                        skew_breaches += 1
            if breaches:
                self._breaches.inc(breaches)
            if skew_breaches:
                self._skew_breaches.inc(skew_breaches)
        engine_events = self.engine.events_processed
        if self._last_events is not None:
            last_t, last_count = self._last_events
            window = t - last_t
            if window > 0:
                self._eps.set((engine_events - last_count) / window)
        self._last_events = (t, engine_events)
        if self.events is not None and self.summary_every and (
            self._samples % self.summary_every == 0
        ):
            self.events.frame(t, self.registry, self.tracer)


class ServiceTelemetry:
    """One service's whole telemetry plane: registry + tracer + exporters.

    Pass an instance to :func:`~repro.service.builder.build_service` via
    ``telemetry=``; the builder hands each server a scoped
    :class:`ServerTelemetry`, wires the engine observer, and starts the
    gauge sampler.  Export any time with :meth:`write` (or build the
    Prometheus text / summary dict directly).

    Args:
        registry: Use a specific registry (defaults to a fresh one; pass
            a :class:`~repro.telemetry.registry.NullRegistry` to measure
            the no-op overhead).
        spans: Record spans (disable for metric-only runs).
        oracle: Sample oracle gauges (true offsets, per-edge asynchronism
            vs the Theorem 7 bound).
        sample_period: Seconds of simulated time between gauge samples.
        summary_every: Append a JSONL summary frame every N samples
            (0 disables the periodic frames).
        local_skew_bound: Stated service-wide local-skew bound; enables
            the per-edge ``repro_edge_local_skew_seconds`` gauges and the
            ``repro_local_skew_breaches_total`` counter (dynamic runs).
    """

    def __init__(
        self,
        *,
        registry=None,
        spans: bool = True,
        oracle: bool = True,
        sample_period: float = 5.0,
        summary_every: int = 0,
        local_skew_bound: Optional[float] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        record_spans = spans and self.registry.enabled
        self.tracer = SpanTracer() if record_spans else NULL_TRACER
        self.events = JsonlEventExporter()
        self.oracle = oracle
        self.sample_period = sample_period
        self.summary_every = summary_every
        self.local_skew_bound = local_skew_bound
        self.sampler: Optional[TelemetrySampler] = None

    @property
    def enabled(self) -> bool:
        """Whether anything is being recorded at all."""
        return self.registry.enabled or self.tracer.enabled

    # -------------------------------------------------------------- wiring

    def server(self, name: str) -> ServerTelemetry:
        """The scoped per-server handle (a null handle when disabled)."""
        if not self.enabled:
            return NULL_SERVER_TELEMETRY
        return ServerTelemetry(
            self.registry.scoped(server=name), self.tracer, name
        )

    def attach(self, service) -> None:
        """Wire the engine observer and hook the gauge sampler onto it."""
        if not self.enabled:
            return
        self.sampler = TelemetrySampler(
            service.engine,
            service,
            self.registry,
            period=self.sample_period,
            oracle=self.oracle,
            events=self.events,
            tracer=self.tracer,
            summary_every=self.summary_every,
            local_skew_bound=self.local_skew_bound,
        )
        if self.registry.enabled:
            instruments = EngineInstruments(self.registry)
            instruments.sampler = self.sampler
            service.engine.set_observer(instruments.on_event)

    # -------------------------------------------------------------- export

    def summary(self, *, time: Optional[float] = None) -> Dict[str, Any]:
        """Headline numbers (see :func:`summary_snapshot`)."""
        return summary_snapshot(self.registry, self.tracer, time=time)

    def write(
        self,
        directory,
        *,
        summary_extra: Optional[Dict[str, Any]] = None,
        time: Optional[float] = None,
    ) -> Dict[str, str]:
        """Write ``metrics.prom``, ``spans.jsonl``, ``summary.json``."""
        return write_telemetry(
            directory,
            self.registry,
            self.tracer if self.tracer.enabled else None,
            summary_extra=summary_extra,
            time=time,
        )


class _NullServiceTelemetry(ServiceTelemetry):
    """The disabled bundle: null registry, null tracer, no sampler."""

    def __init__(self) -> None:
        super().__init__(registry=NullRegistry(), spans=False)

    def server(self, name: str) -> ServerTelemetry:
        return NULL_SERVER_TELEMETRY

    def attach(self, service) -> None:
        pass


#: Shared disabled bundle: what ``build_service(telemetry=None)`` uses.
NULL_SERVICE_TELEMETRY = _NullServiceTelemetry()
