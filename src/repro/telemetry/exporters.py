"""Exporters: Prometheus text exposition, JSONL events, summary snapshots.

Three complementary formats for the same registry:

* :func:`to_prometheus_text` — the standard text exposition format
  (``# HELP`` / ``# TYPE`` / sample lines), suitable for scraping or for
  diffing two runs byte-for-byte (families and label sets are sorted).
* :class:`JsonlEventExporter` — an append-only event stream; experiments
  subscribe it to a :class:`~repro.simulation.trace.TraceRecorder`-like
  feed or write rows directly.
* :func:`summary_snapshot` — a compact JSON dict of headline numbers
  (totals per family, histogram p50/p99) for dashboards and CI artifacts.

:func:`write_telemetry` bundles all three into an output directory:
``metrics.prom``, ``spans.jsonl``, ``summary.json``.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Optional

from .registry import Histogram, MetricsRegistry
from .tracing import SpanTracer

__all__ = [
    "to_prometheus_text",
    "summary_snapshot",
    "JsonlEventExporter",
    "write_telemetry",
    "METRICS_FILENAME",
    "SPANS_FILENAME",
    "SUMMARY_FILENAME",
]

METRICS_FILENAME = "metrics.prom"
SPANS_FILENAME = "spans.jsonl"
SUMMARY_FILENAME = "summary.json"


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (+Inf, integers without .0)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames, labelvalues, extra: str = "") -> str:
    parts = [
        f'{name}="{value}"' for name, value in zip(labelnames, labelvalues)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Deterministic: families sort by name, children by label values, so
    identical-seed runs render identical snapshots.
    """
    lines: List[str] = []
    for family in registry.families():
        if not list(family.samples()):
            continue
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.samples():
            labels = _format_labels(family.labelnames, labelvalues)
            if isinstance(child, Histogram):
                for bound, cumulative in child.cumulative_buckets():
                    le = _format_labels(
                        family.labelnames,
                        labelvalues,
                        extra=f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def summary_snapshot(
    registry: MetricsRegistry,
    tracer: Optional[SpanTracer] = None,
    *,
    time: Optional[float] = None,
) -> Dict[str, Any]:
    """Headline numbers as a JSON-serialisable dict.

    Scalars appear per label combination; histograms contribute count,
    sum, and the sketch's p50/p99.  Span counts by name ride along when a
    tracer is given.
    """
    metrics: Dict[str, Any] = {}
    for family in registry.families():
        rows = []
        for labelvalues, child in family.samples():
            labels = dict(zip(family.labelnames, labelvalues))
            if isinstance(child, Histogram):
                row: Dict[str, Any] = {
                    "labels": labels,
                    "count": child.count,
                    "sum": child.sum,
                }
                for q, estimate in sorted(child.quantiles.items()):
                    row[f"p{int(q * 100)}"] = (
                        None if math.isnan(estimate) else estimate
                    )
            else:
                row = {"labels": labels, "value": child.value}
            rows.append(row)
        if rows:
            metrics[family.name] = rows
    summary: Dict[str, Any] = {"metrics": metrics}
    if time is not None:
        summary["time"] = time
    if tracer is not None:
        by_name: Dict[str, int] = {}
        for span in tracer:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        summary["spans"] = {
            "total": len(tracer),
            "by_name": dict(sorted(by_name.items())),
            "open": len(tracer.open_spans()),
        }
    return summary


class JsonlEventExporter:
    """An append-only JSONL event stream with periodic summary frames.

    Rows are arbitrary dicts stamped with the caller-provided simulation
    time; :meth:`frame` appends a full :func:`summary_snapshot` as an
    event of kind ``"summary"`` — the "periodic summary snapshots" the
    soak jobs archive.
    """

    def __init__(self) -> None:
        self._rows: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def emit(self, time: float, kind: str, **data: Any) -> None:
        """Append one event row."""
        row = {"time": time, "kind": kind}
        row.update(data)
        self._rows.append(row)

    def frame(
        self,
        time: float,
        registry: MetricsRegistry,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        """Append a summary frame of the registry's current state."""
        self.emit(time, "summary", summary=summary_snapshot(registry, tracer))

    def rows(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """All rows, optionally filtered by kind."""
        if kind is None:
            return list(self._rows)
        return [row for row in self._rows if row.get("kind") == kind]

    def to_jsonl(self) -> str:
        """Deterministic JSONL (sorted keys)."""
        return "\n".join(
            json.dumps(row, sort_keys=True) for row in self._rows
        ) + ("\n" if self._rows else "")

    def write_jsonl(self, path) -> int:
        """Write the stream to ``path``; returns the row count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self._rows)


def write_telemetry(
    directory,
    registry: MetricsRegistry,
    tracer: Optional[SpanTracer] = None,
    *,
    summary_extra: Optional[Dict[str, Any]] = None,
    time: Optional[float] = None,
) -> Dict[str, str]:
    """Write the full telemetry artifact bundle into ``directory``.

    Creates the directory if needed and writes ``metrics.prom`` (always),
    ``spans.jsonl`` (when a tracer is given), and ``summary.json``.

    Returns:
        Mapping of artifact kind to the path written.
    """
    os.makedirs(directory, exist_ok=True)
    written: Dict[str, str] = {}
    metrics_path = os.path.join(directory, METRICS_FILENAME)
    with open(metrics_path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus_text(registry))
    written["metrics"] = metrics_path
    if tracer is not None:
        spans_path = os.path.join(directory, SPANS_FILENAME)
        tracer.write_jsonl(spans_path)
        written["spans"] = spans_path
    summary = summary_snapshot(registry, tracer, time=time)
    if summary_extra:
        summary.update(summary_extra)
    summary_path = os.path.join(directory, SUMMARY_FILENAME)
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, sort_keys=True, indent=2)
        handle.write("\n")
    written["summary"] = summary_path
    return written
