"""Structured spans for the synchronization plane.

Rules MM-2/IM-2 are *round-shaped*: a server opens a poll round, fans a
request out to each neighbour, and folds the replies back in — accepting,
rejecting, or resetting.  The trace recorder keeps flat rows; spans keep
the *shape*: a ``poll_round`` span parents one ``poll`` span per
neighbour, each annotated with what the policy decided about that
neighbour's reply and the ``(1+δ)·ξ^i_j`` round-trip inflation the rules
applied.  Resets and recoveries hang off the round that caused them.

Spans carry causal parent ids and serialize to JSONL, one object per
line, sorted-key — so two identical-seed runs export byte-identical
files (the determinism contract every experiment digest relies on).

Schema (one JSON object per line)::

    {"span_id": 7, "parent_id": 3, "name": "poll",
     "source": "S1", "start": 120.0, "end": 120.104,
     "status": "accepted", "attrs": {"neighbour": "S2", ...}}

``span_id`` values are sequential per tracer; ``parent_id`` is null for
roots.  ``status`` is ``"ok"`` until :meth:`SpanTracer.end` overrides it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One span: a named, attributed interval of simulated time.

    A plain ``__slots__`` class rather than a dataclass: one is built per
    poll leg, so construction cost is part of the telemetry overhead
    budget.

    Attributes:
        span_id: Sequential id unique within the tracer.
        parent_id: The causal parent's id, or None for a root span.
        name: Span type, e.g. ``"poll_round"``, ``"poll"``, ``"recovery"``.
        source: The process the span belongs to (server name).
        start: Real time the span opened.
        end: Real time it closed (None while open).
        status: Outcome tag (``"ok"``, ``"accepted"``, ``"rejected"``,
            ``"timeout"``, ``"reset"``...).
        attrs: Free-form annotations (decision, rtt, inflation, ...).
    """

    __slots__ = (
        "span_id", "parent_id", "name", "source", "start", "end",
        "status", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        source: str,
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.source = source
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs = attrs

    def __repr__(self) -> str:  # debugging aid, never on the hot path
        return (
            f"Span(span_id={self.span_id}, parent_id={self.parent_id}, "
            f"name={self.name!r}, source={self.source!r}, "
            f"start={self.start}, end={self.end}, status={self.status!r}, "
            f"attrs={self.attrs!r})"
        )

    @property
    def open(self) -> bool:
        """Whether the span has not been ended yet."""
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        """Closed span's extent in real seconds (None while open)."""
        return None if self.end is None else self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        """Merge annotations into the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def to_json(self) -> str:
        """One deterministic JSONL line."""
        return json.dumps(
            {
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "source": self.source,
                "start": self.start,
                "end": self.end,
                "status": self.status,
                "attrs": self.attrs,
            },
            sort_keys=True,
        )


class SpanTracer:
    """Append-only span store with filtered views and JSONL export.

    Example:
        >>> tracer = SpanTracer()
        >>> round_ = tracer.start(0.0, "poll_round", "S1", round_id=1)
        >>> leg = tracer.start(0.0, "poll", "S1", parent=round_, neighbour="S2")
        >>> tracer.end(0.1, leg, status="accepted")
        >>> tracer.end(0.2, round_)
        >>> [s.name for s in tracer.children(round_)]
        ['poll']
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------ recording

    def start(
        self,
        time: float,
        name: str,
        source: str,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Open a span (returns None when the tracer is disabled)."""
        if not self.enabled:
            return None
        # ``attrs`` is already a fresh dict (it is this call's kwargs), so
        # hand it over without copying — start() runs once per poll.
        span_id = self._next_id
        self._next_id = span_id + 1
        span = Span(
            span_id,
            None if parent is None else parent.span_id,
            name,
            source,
            time,
            attrs,
        )
        self._spans.append(span)
        return span

    def end(
        self, time: float, span: Optional[Span], status: Optional[str] = None, **attrs: Any
    ) -> None:
        """Close a span; idempotent and None-tolerant (disabled tracer)."""
        if span is None or span.end is not None:
            return
        span.end = time
        if status is not None:
            span.status = status
        if attrs:
            span.attrs.update(attrs)

    def event(
        self,
        time: float,
        name: str,
        source: str,
        parent: Optional[Span] = None,
        status: str = "ok",
        **attrs: Any,
    ) -> Optional[Span]:
        """A zero-duration span (reset, violation, checkpoint...)."""
        span = self.start(time, name, source, parent=parent, **attrs)
        self.end(time, span, status=status)
        return span

    # ---------------------------------------------------------------- views

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def filter(
        self, name: Optional[str] = None, source: Optional[str] = None
    ) -> List[Span]:
        """Spans matching the given criteria, in creation order."""
        return [
            span
            for span in self._spans
            if (name is None or span.name == name)
            and (source is None or span.source == source)
        ]

    def count(self, name: str, status: Optional[str] = None) -> int:
        """Number of spans of a given name (and optionally status)."""
        return sum(
            1
            for span in self._spans
            if span.name == name and (status is None or span.status == status)
        )

    def children(self, parent: Span) -> List[Span]:
        """Direct children of ``parent``, in creation order."""
        return [s for s in self._spans if s.parent_id == parent.span_id]

    def open_spans(self) -> List[Span]:
        """Spans not yet ended (should be empty after a clean run)."""
        return [s for s in self._spans if s.open]

    # --------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        """All spans as JSONL, one deterministic line each."""
        return "\n".join(span.to_json() for span in self._spans) + (
            "\n" if self._spans else ""
        )

    def write_jsonl(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the span count."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self._spans)

    def clear(self) -> None:
        """Drop all spans (the id sequence keeps advancing)."""
        self._spans.clear()


class NullTracer(SpanTracer):
    """A tracer that records nothing; every ``start`` returns None and the
    None flows harmlessly through ``end``/``event`` at the call sites."""

    def __init__(self) -> None:
        super().__init__(enabled=False)


NULL_TRACER = NullTracer()
