"""Figure 3 with liars — plain IM collapses, FT-IM holds the line.

Figure 3's lesson is that algorithm IM *fails open*: a single incorrect
reply empties the round's intersection (starvation into recovery) or, if
the lie is subtle, drags the accepted region off the true time.  The
companion thesis already holds the repair — intersect tolerating up to
``f`` faults — and this experiment is the repo's adversarial gauntlet for
the server-side version of it.

Two liars run a scripted :class:`~repro.faults.ByzantineReplies` campaign
(offset lies with underreported errors, the most attractive kind to an
interval policy) against a five-server service, on three topologies:

* ``k5`` — the acceptance matrix: every honest server hears both liars,
  ``n = 5`` sources with ``f = 2`` liars, so ``2f < n`` holds and FT-IM
  must tolerate them outright;
* ``ring`` — each honest server hears at most one liar through a
  three-source round (``f = 1`` is the connectivity ceiling);
* ``random`` — a seeded ring-plus-chords graph in between.

Each cell compares two arms:

* **plain** — the paper's servers with :class:`~repro.core.im.IMPolicy`
  and :class:`~repro.core.recovery.ThirdServerRecovery`: every window
  round starves into recovery and a randomly chosen arbiter is a liar
  often enough that some honest server adopts the lie (a *poisoned*
  reset — oracle-incorrect afterwards);
* **ft** — :class:`~repro.byzantine.server.ByzantineTolerantServer` with
  a per-server :class:`~repro.core.ft_im.FTIMPolicy` driven by the
  adaptive :class:`~repro.byzantine.budget.FaultBudgetController`: rounds
  stay tolerant, the liars are classified, demoted from the poll set and
  vetoed as recovery arbiters, and the monitor sees zero violations
  outside the scheduled lying windows.

The per-arm scorecard (poisoned resets, oracle-incorrect samples,
monitor violations, demotion latency per honest-server/liar pair) is the
experiment's artefact; :func:`run_matrix` is what ``repro figure3-liars``
and the nightly liar soak run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..byzantine import FaultBudgetController
from ..core.ft_im import FTIMPolicy
from ..core.im import IMPolicy
from ..core.recovery import ThirdServerRecovery
from ..faults import ByzantineReplies, FaultSchedule, attach_chaos
from ..faults.monitor import InvariantMonitor
from ..network.delay import UniformDelay
from ..recovery import SelfStabilizingRecovery
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

#: Claimed bound for every server (~0.9 s/day).
CLAIMED_DELTA = 1e-5

#: The five servers; S4 and S5 are the scheduled liars.
NAMES = ("S1", "S2", "S3", "S4", "S5")

#: Liar campaign: value offset and error underreporting per liar.  The
#: liars *collude*: both lie in the same direction with overlapping
#: intervals, disjoint from the honest cluster.  Plain IM then starves
#: (the starvation face of Figure 3) and — the sharper failure — its
#: conflicting-pair attribution only ever flags the *larger* liar (the
#: max-trailing edge definer), so the second liar stays in the recovery
#: arbiter pool and the paper's "any third server" rule adopts the lie.
LIARS: Dict[str, float] = {"S4": +0.40, "S5": +0.33}
ERROR_SCALE = 0.2

#: Honest skews — everyone's clock is within the claim throughout; only
#: the *replies* of the liars are corrupted.
SKEWS = {"S1": +2e-6, "S2": -2e-6, "S3": +1e-6, "S4": -1e-6, "S5": +2e-6}

#: The lying window.
LIE_START = 300.0
LIE_DURATION = 600.0
LIE_END = LIE_START + LIE_DURATION

#: Poll period and run horizon (20 lying rounds, then a long clean tail
#: so redemption probing and post-window stability are visible).
TAU = 30.0
HORIZON = 1500.0

#: Slack when attributing a reset to an in-flight lie (matches the
#: monitor's default grace).
GRACE = 2.0


# ------------------------------------------------------------- topologies


def _k5() -> nx.Graph:
    return nx.complete_graph(NAMES)


def _ring() -> nx.Graph:
    graph = nx.Graph()
    graph.add_edges_from(zip(NAMES, NAMES[1:] + NAMES[:1]))
    return graph


def _random(seed: int) -> nx.Graph:
    """A seeded ring-plus-chords graph: connected, degree between the
    ring's 2 and K5's 4."""
    graph = _ring()
    rng = np.random.default_rng(seed)
    chords = [
        (a, b)
        for i, a in enumerate(NAMES)
        for b in NAMES[i + 1 :]
        if not graph.has_edge(a, b)
    ]
    for index in rng.choice(len(chords), size=2, replace=False):
        graph.add_edge(*chords[int(index)])
    return graph


def topology(name: str, seed: int) -> nx.Graph:
    """The named gauntlet topology (``k5``, ``ring`` or ``random``)."""
    if name == "k5":
        return _k5()
    if name == "ring":
        return _ring()
    if name == "random":
        return _random(seed)
    raise ValueError(f"unknown topology {name!r}")


def _liar_schedule() -> FaultSchedule:
    schedule = FaultSchedule()
    for liar, offset in LIARS.items():
        schedule.add(
            ByzantineReplies(
                at=LIE_START,
                server=liar,
                duration=LIE_DURATION,
                offset=offset,
                error_scale=ERROR_SCALE,
            )
        )
    return schedule


# ------------------------------------------------------------------ arms


@dataclass(frozen=True)
class DemotionRecord:
    """One honest-server/liar-neighbour pair's demotion outcome.

    Attributes:
        server: The honest server doing the demoting.
        liar: The lying neighbour.
        latency: Seconds from the lying window opening to the liar's
            first demotion from ``server``'s poll set; None if it was
            never demoted.
    """

    server: str
    liar: str
    latency: Optional[float]

    @property
    def demoted_in_window(self) -> bool:
        return self.latency is not None and self.latency <= LIE_DURATION


@dataclass(frozen=True)
class ArmResult:
    """One arm of one gauntlet cell, scored.

    Attributes:
        byzantine_tolerant: Which arm this is.
        total_resets: All resets over the run (direct and recovery).
        poisoned_resets: Resets on an *honest* server sourced (even
            partially) from a liar during the lying window — adopting
            the lie.
        recoveries: Recovery resets only.
        oracle_bad_samples: Sampled (time, honest server) pairs from the
            window start onward whose interval missed true time — the
            oracle's count of how wrong the service actually went.
        correctness_violations: Monitor correctness breaches outside
            fault windows and taint.
        consistency_violations: Same, for pairwise consistency.
        demotions: FT arm: one :class:`DemotionRecord` per honest
            server/liar-neighbour pair (empty for the plain arm).
        all_liars_demoted: FT arm: every pair demoted before the lying
            window closed; None for the plain arm.
        tolerant_rounds: FT arm: rounds accepted via a fault-tolerant
            intersection.
        plain_rounds: FT arm: rounds that fell back to plain IM-2.
        budget_raises: FT arm: adaptive budget step-ups across servers.
        validation_rejections: FT arm: replies rejected by the sanity or
            error-physics checks.
    """

    byzantine_tolerant: bool
    total_resets: int
    poisoned_resets: int
    recoveries: int
    oracle_bad_samples: int
    correctness_violations: int
    consistency_violations: int
    demotions: Tuple[DemotionRecord, ...]
    all_liars_demoted: Optional[bool]
    tolerant_rounds: int
    plain_rounds: int
    budget_raises: int
    validation_rejections: int


def _poisoned_resets(service, honest: set) -> Tuple[int, int, int]:
    """(total, recovery, poisoned) reset counts from the trace."""
    rows = service.trace.filter(kind="reset")
    recoveries = sum(
        1 for row in rows if row.data.get("reset_kind") == "recovery"
    )
    poisoned = 0
    for row in rows:
        if row.source not in honest:
            continue
        if not (LIE_START <= row.time <= LIE_END + GRACE):
            continue
        sources = InvariantMonitor.reset_sources(
            row.data.get("from_server", "")
        )
        if any(source in LIARS for source in sources):
            poisoned += 1
    return len(rows), recoveries, poisoned


def run(
    topology_name: str,
    byzantine_tolerant: bool,
    seed: int,
    tau: float = TAU,
    horizon: float = HORIZON,
) -> ArmResult:
    """Run one arm of one gauntlet cell."""
    graph = topology(topology_name, seed)
    specs = [
        ServerSpec(
            name,
            delta=CLAIMED_DELTA,
            skew=SKEWS[name],
            byzantine_tolerant=byzantine_tolerant,
        )
        for name in NAMES
    ]
    if byzantine_tolerant:
        policy = None
        policy_factory = lambda name: FTIMPolicy(  # noqa: E731
            fault_budget=FaultBudgetController()
        )
        # Deterministic arbiter choice: ties resolve to the first vetted
        # candidate, and the falseticker veto does the heavy lifting.
        recovery_factory = lambda name: SelfStabilizingRecovery()  # noqa: E731
    else:
        policy = IMPolicy()
        policy_factory = None
        # The paper's "any third server": random choice among the
        # candidates, which is exactly how a liar gets adopted.
        recovery_factory = lambda name: ThirdServerRecovery(  # noqa: E731
            rng=np.random.default_rng((seed, NAMES.index(name)))
        )
    service = build_service(
        graph,
        specs,
        policy=policy,
        policy_factory=policy_factory,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.02),
        recovery_factory=recovery_factory,
        trace_enabled=True,
    )
    schedule = _liar_schedule()
    injector, monitor = attach_chaos(service, schedule)

    honest = {name for name in NAMES if name not in LIARS}
    oracle_bad = 0
    for t in grid(0.0, horizon, int(horizon / tau) + 1):
        service.run_until(t)
        snapshot = service.snapshot()
        if t >= LIE_START:
            oracle_bad += sum(
                1 for name in honest if not snapshot.correct[name]
            )

    total, recoveries, poisoned = _poisoned_resets(service, honest)

    demotions: List[DemotionRecord] = []
    all_demoted: Optional[bool] = None
    tolerant_rounds = plain_rounds = raises = rejections = 0
    if byzantine_tolerant:
        for name in sorted(honest):
            server = service.servers[name]
            stats = server.byzantine_stats
            tolerant_rounds += stats.tolerant_rounds
            plain_rounds += stats.plain_rounds
            rejections += stats.validation_rejections
            if server.budget_controller is not None:
                raises += server.budget_controller.stats.raises
            for liar in sorted(LIARS):
                if not graph.has_edge(name, liar):
                    continue
                events = [
                    event
                    for event in server.demotion_log
                    if event.neighbour == liar and event.at >= LIE_START
                ]
                latency = events[0].at - LIE_START if events else None
                demotions.append(DemotionRecord(name, liar, latency))
        all_demoted = all(record.demoted_in_window for record in demotions)

    return ArmResult(
        byzantine_tolerant=byzantine_tolerant,
        total_resets=total,
        poisoned_resets=poisoned,
        recoveries=recoveries,
        oracle_bad_samples=oracle_bad,
        correctness_violations=monitor.stats.correctness_violations,
        consistency_violations=monitor.stats.consistency_violations,
        demotions=tuple(demotions),
        all_liars_demoted=all_demoted,
        tolerant_rounds=tolerant_rounds,
        plain_rounds=plain_rounds,
        budget_raises=raises,
        validation_rejections=rejections,
    )


# ------------------------------------------------------------- comparison


@dataclass(frozen=True)
class GauntletCell:
    """Both arms on one (topology, seed) cell, with the verdicts.

    Attributes:
        topology: The topology name.
        seed: The cell's root seed.
        plain: The paper's IM + third-server rule.
        ft: The Byzantine-tolerance subsystem.
        plain_failed: The plain arm showed at least one poisoned reset,
            oracle-incorrect sample, or monitor correctness breach —
            Figure 3's failure reproduced.
        ft_held: The FT arm showed none of those, zero consistency
            breaches, and demoted every adjacent liar before the lying
            window closed.
    """

    topology: str
    seed: int
    plain: ArmResult
    ft: ArmResult
    plain_failed: bool
    ft_held: bool


def run_cell(
    topology_name: str,
    seed: int,
    tau: float = TAU,
    horizon: float = HORIZON,
) -> GauntletCell:
    """Run both arms on one (topology, seed) cell."""
    plain = run(topology_name, False, seed, tau=tau, horizon=horizon)
    ft = run(topology_name, True, seed, tau=tau, horizon=horizon)
    plain_failed = (
        plain.poisoned_resets > 0
        or plain.oracle_bad_samples > 0
        or plain.correctness_violations > 0
    )
    ft_held = (
        ft.poisoned_resets == 0
        and ft.oracle_bad_samples == 0
        and ft.correctness_violations == 0
        and ft.consistency_violations == 0
        and bool(ft.all_liars_demoted)
    )
    return GauntletCell(
        topology=topology_name,
        seed=seed,
        plain=plain,
        ft=ft,
        plain_failed=plain_failed,
        ft_held=ft_held,
    )


@dataclass(frozen=True)
class GauntletMatrix:
    """The whole gauntlet: K5 across seeds plus the topology sweep.

    Attributes:
        k5: One cell per seed on the complete graph — the acceptance
            rows (``2f < n`` holds for every honest server).
        ring: One cell at the connectivity boundary (three-source
            rounds; reported, not part of acceptance).
        random: One seeded in-between cell (same status).
        accepted: Every K5 cell reproduced the plain failure *and* held
            under FT — the experiment's overall verdict.
    """

    k5: Tuple[GauntletCell, ...]
    ring: GauntletCell
    random: GauntletCell
    accepted: bool


def run_matrix(
    seeds: Tuple[int, ...] = (1, 2, 3, 4, 5),
    tau: float = TAU,
    horizon: float = HORIZON,
) -> GauntletMatrix:
    """Run the full gauntlet matrix."""
    k5 = tuple(run_cell("k5", seed, tau=tau, horizon=horizon) for seed in seeds)
    ring = run_cell("ring", seeds[0], tau=tau, horizon=horizon)
    random_cell = run_cell("random", seeds[0], tau=tau, horizon=horizon)
    return GauntletMatrix(
        k5=k5,
        ring=ring,
        random=random_cell,
        accepted=all(cell.plain_failed and cell.ft_held for cell in k5),
    )


# ------------------------------------------------------------- reporting


def report_dict(matrix: GauntletMatrix) -> dict:
    """A JSON-ready artefact of the whole gauntlet (for CI uploads)."""

    def arm(result: ArmResult) -> dict:
        payload = {
            "byzantine_tolerant": result.byzantine_tolerant,
            "total_resets": result.total_resets,
            "poisoned_resets": result.poisoned_resets,
            "recoveries": result.recoveries,
            "oracle_bad_samples": result.oracle_bad_samples,
            "correctness_violations": result.correctness_violations,
            "consistency_violations": result.consistency_violations,
        }
        if result.byzantine_tolerant:
            payload.update(
                {
                    "tolerant_rounds": result.tolerant_rounds,
                    "plain_rounds": result.plain_rounds,
                    "budget_raises": result.budget_raises,
                    "validation_rejections": result.validation_rejections,
                    "all_liars_demoted": result.all_liars_demoted,
                    "demotions": [
                        {
                            "server": record.server,
                            "liar": record.liar,
                            "latency": record.latency,
                        }
                        for record in result.demotions
                    ],
                }
            )
        return payload

    def cell(row: GauntletCell) -> dict:
        return {
            "topology": row.topology,
            "seed": row.seed,
            "plain_failed": row.plain_failed,
            "ft_held": row.ft_held,
            "plain": arm(row.plain),
            "ft": arm(row.ft),
        }

    return {
        "accepted": matrix.accepted,
        "k5": [cell(row) for row in matrix.k5],
        "ring": cell(matrix.ring),
        "random": cell(matrix.random),
    }


def _print_cell(row: GauntletCell) -> None:
    print(f"\n  [{row.topology} seed={row.seed}]")
    for result in (row.plain, row.ft):
        arm = "ft" if result.byzantine_tolerant else "plain"
        print(
            f"    {arm:>5}: poisoned_resets={result.poisoned_resets} "
            f"oracle_bad={result.oracle_bad_samples} "
            f"monitor=({result.correctness_violations} correctness, "
            f"{result.consistency_violations} consistency) "
            f"resets={result.total_resets} "
            f"(recovery {result.recoveries})"
        )
        if result.byzantine_tolerant:
            latencies = [
                record.latency
                for record in result.demotions
                if record.latency is not None
            ]
            worst = f"{max(latencies):.0f}s" if latencies else "n/a"
            print(
                f"           rounds: {result.tolerant_rounds} tolerant / "
                f"{result.plain_rounds} plain, budget raises "
                f"{result.budget_raises}, reply rejections "
                f"{result.validation_rejections}"
            )
            print(
                f"           liars demoted in window: "
                f"{result.all_liars_demoted} "
                f"(worst latency {worst})"
            )
    print(
        f"    verdict: plain_failed={row.plain_failed} ft_held={row.ft_held}"
    )


def main(json_path: Optional[str] = None) -> bool:
    """Print the gauntlet matrix (and optionally write the JSON artefact).

    Returns the overall acceptance verdict so the CLI can exit non-zero
    when a cell regresses.
    """
    matrix = run_matrix()
    print(
        "Figure 3 liar gauntlet — plain IM vs FT-IM under a scripted "
        f"Byzantine campaign ({len(LIARS)} liars, window "
        f"[{LIE_START:.0f}s, {LIE_END:.0f}s])"
    )
    for row in matrix.k5:
        _print_cell(row)
    _print_cell(matrix.ring)
    _print_cell(matrix.random)
    print(f"\n  accepted (all K5 cells): {matrix.accepted}")
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report_dict(matrix), handle, indent=2)
        print(f"\nreport written to {json_path}")
    return matrix.accepted


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default=None, help="also write the report as JSON here"
    )
    raise SystemExit(0 if main(json_path=parser.parse_args().json) else 1)
