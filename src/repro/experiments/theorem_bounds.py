"""Theorems 2, 3 and 7 — measured behaviour against the closed-form bounds.

* **Theorem 2** (MM error): ``E_i(t) < E_M(t) + ξ + δ_i(τ + 2ξ)``.
* **Theorem 3** (MM asynchronism):
  ``|C_i - C_j| < 2E_M + 2ξ + (δ_i + δ_j)(τ + 2ξ)``.
* **Theorem 7** (IM asynchronism): ``|C_i - C_j| <= ξ + (δ_i + δ_j)τ``.

Each run builds a fully-connected service (the theorems' topology), with a
heterogeneous δ population so MM actually has errors worth stealing,
samples on a grid, and reports the worst measured/bound ratio.  The
expected *shape*: ratios stay below 1 everywhere (bounds hold), typically
with substantial slack (the proofs are worst-case over adversarial delay
placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..analysis.metrics import BoundCheck, check_bound, pairwise_asynchronism
from ..core.bounds import ServiceParameters
from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from .scenarios import MeshScenario, build_mesh_service, grid


@dataclass(frozen=True)
class BoundRunResult:
    """One scenario's verdicts.

    Attributes:
        scenario: The parameters used.
        theorem2: Worst per-server bound check (MM error), or None for IM.
        theorem3: Bound check over the worst MM server pair, or None.
        theorem7: Bound check over the worst IM server pair, or None.
    """

    scenario: MeshScenario
    theorem2: BoundCheck | None = None
    theorem3: BoundCheck | None = None
    theorem7: BoundCheck | None = None


def _default_deltas(n: int, base: float) -> list[float]:
    """A spread of claimed bounds: decades from ``base`` up to ``100·base``.

    Heterogeneity matters: with identical δ's, MM-2's predicate never fires
    (no neighbour is strictly better) and the theorems hold vacuously.
    """
    return [base * (10 ** (2.0 * k / max(n - 1, 1))) for k in range(n)]


def run_mm_bounds(
    scenario: MeshScenario, horizon: float = 3600.0, samples: int = 120
) -> BoundRunResult:
    """Measure Theorems 2 and 3 on an MM service."""
    service = build_mesh_service(scenario, MMPolicy())
    snapshots = service.sample(grid(scenario.tau, horizon, samples))
    params = ServiceParameters(xi=scenario.xi, tau=scenario.tau)
    deltas = scenario.delta_map()
    names = scenario.names()

    worst2: BoundCheck | None = None
    for name in names:
        measured = np.array([snap.errors[name] for snap in snapshots])
        bound = np.array(
            [params.mm_error_bound(snap.min_error, deltas[name]) for snap in snapshots]
        )
        verdict = check_bound(measured, bound)
        if worst2 is None or verdict.max_ratio > worst2.max_ratio:
            worst2 = verdict

    worst3: BoundCheck | None = None
    for index, name_i in enumerate(names):
        for name_j in names[index + 1 :]:
            measured = pairwise_asynchronism(snapshots, name_i, name_j)
            bound = np.array(
                [
                    params.mm_asynchronism_bound(
                        snap.min_error, deltas[name_i], deltas[name_j]
                    )
                    for snap in snapshots
                ]
            )
            verdict = check_bound(measured, bound)
            if worst3 is None or verdict.max_ratio > worst3.max_ratio:
                worst3 = verdict

    return BoundRunResult(scenario=scenario, theorem2=worst2, theorem3=worst3)


def run_im_bounds(
    scenario: MeshScenario, horizon: float = 3600.0, samples: int = 120
) -> BoundRunResult:
    """Measure Theorem 7 on an IM service.

    The bound is time-independent, so it is checked from the first
    completed round onwards (the theorem presumes a synchronized service;
    our services start synchronized, so the whole horizon qualifies).
    """
    service = build_mesh_service(scenario, IMPolicy())
    snapshots = service.sample(grid(scenario.tau, horizon, samples))
    params = ServiceParameters(xi=scenario.xi, tau=scenario.tau)
    deltas = scenario.delta_map()
    names = scenario.names()

    worst7: BoundCheck | None = None
    for index, name_i in enumerate(names):
        for name_j in names[index + 1 :]:
            measured = pairwise_asynchronism(snapshots, name_i, name_j)
            bound_value = params.im_asynchronism_bound(
                deltas[name_i], deltas[name_j]
            )
            bound = np.full(len(snapshots), bound_value)
            verdict = check_bound(measured, bound)
            if worst7 is None or verdict.max_ratio > worst7.max_ratio:
                worst7 = verdict

    return BoundRunResult(scenario=scenario, theorem7=worst7)


def sweep(
    sizes: Sequence[int] = (3, 5, 8),
    taus: Sequence[float] = (30.0, 60.0, 120.0),
    base_delta: float = 1e-5,
    seed: int = 0,
    horizon: float = 1800.0,
) -> List[BoundRunResult]:
    """The full sweep the benchmark table prints: MM and IM across n and τ."""
    results: List[BoundRunResult] = []
    for n in sizes:
        for tau in taus:
            scenario = MeshScenario(
                n=n,
                deltas=_default_deltas(n, base_delta),
                tau=tau,
                seed=seed,
            )
            results.append(run_mm_bounds(scenario, horizon=horizon))
            results.append(run_im_bounds(scenario, horizon=horizon))
    return results


def main() -> None:
    """Print the sweep as a table."""
    from ..analysis.plots import render_table

    rows = []
    for result in sweep():
        label = f"n={result.scenario.n} τ={result.scenario.tau:g}"
        if result.theorem2 is not None:
            rows.append(
                [label, "MM", "Thm2", result.theorem2.holds, result.theorem2.max_ratio]
            )
            assert result.theorem3 is not None
            rows.append(
                [label, "MM", "Thm3", result.theorem3.holds, result.theorem3.max_ratio]
            )
        if result.theorem7 is not None:
            rows.append(
                [label, "IM", "Thm7", result.theorem7.holds, result.theorem7.max_ratio]
            )
    print(
        render_table(
            ["scenario", "algorithm", "bound", "holds", "max measured/bound"], rows
        )
    )


if __name__ == "__main__":
    main()
