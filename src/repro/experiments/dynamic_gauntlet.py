"""Dynamic-network gauntlet: local-skew guarantees under live topology churn.

The paper assumes a fixed, connected communication graph (Section 1.1
merely notes that "the set of time servers is not fixed").  The gradient
literature (Kuhn/Lenzen/Locher/Oshman, PAPERS.md) argues that once the
graph churns forever, the guarantee worth stating is the **local skew** —
the clock difference across edges that exist *right now* — because
applications coordinate with whoever is adjacent at the moment.

This gauntlet runs three synchronization arms over a sparse ring whose
edge set never stops moving — continuous edge churn
(:class:`~repro.dynamic.churn.EdgeChurnController`), optionally plus
waypoint mobility (:class:`~repro.dynamic.mobility.MobilityProcess`)
rewiring links by proximity — and reports:

* **the gradient arm holds a stated local-skew bound** that at least one
  plain arm violates.  In a reference-free symmetric population rule
  MM-2's adoption predicate never fires (every neighbour's error matches
  our own), so MM free-runs and adjacent clocks separate at the skew
  spread rate until the bound breaks; rules IM and gradient keep
  re-intersecting with the *current* neighbour set every round;
* **correctness is never traded**: the gradient reset point stays inside
  the rule IM-2 intersection (Theorem 5), so the strict invariant oracle
  (:class:`~repro.faults.monitor.InvariantMonitor` with no fault
  schedule — every server held to the invariants at all times, zero
  exemption windows) must report zero violations in every arm;
* **deterministic replay** — same seed, same trace digest.

The stated bound is ``ξ + 8·(2δ)·τ``: the intersection uncertainty a
single exchange leaves behind, plus eight poll periods' worth of
worst-case pairwise drift — generous headroom for an arm that actually
resynchronizes, hopeless for one that free-runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..dynamic import (
    DynamicTopology,
    EdgeChurnController,
    GradientPolicy,
    LocalSkewMonitor,
    MobilityProcess,
    WaypointMobility,
)
from ..faults import InvariantMonitor
from ..network.delay import UniformDelay
from ..network.topology import ring
from ..service.builder import ServerSpec, SimulatedService, build_service
from .chaos_soak import trace_digest

#: The three arms: the paper's two rules plus the gradient selection.
ARMS = ("MM", "IM", "gradient")

#: Claimed maximum drift rate for every server (actual skews span ±0.7δ).
DELTA = 1e-4

#: One-way delay bound; ξ (the paper's round-trip uncertainty) is twice it.
ONE_WAY = 0.01
XI = 2.0 * ONE_WAY


def local_skew_bound(tau: float) -> float:
    """The gauntlet's stated local-skew bound: ``ξ + 8·(2δ)·τ``."""
    return XI + 8.0 * (2.0 * DELTA) * tau


@dataclass(frozen=True)
class GauntletCell:
    """One (edge-churn rate × mobility) configuration of the matrix.

    Attributes:
        label: Short name used in tables and artefact paths.
        churn_interval: Mean seconds between edge-removal attempts.
        mobility: Whether waypoint mobility also rewires the graph.
    """

    label: str
    churn_interval: float
    mobility: bool


#: Default matrix cells: churn alone, churn with mobility, fast churn
#: with mobility.  Every cell keeps the graph perpetually in motion.
CELLS = (
    GauntletCell("churn", 120.0, False),
    GauntletCell("churn+mob", 120.0, True),
    GauntletCell("fastchurn+mob", 45.0, True),
)


@dataclass(frozen=True)
class GauntletOutcome:
    """One (arm, cell, seed) run.

    Attributes:
        arm: "MM", "IM", or "gradient".
        cell: The matrix cell's label.
        seed: Root seed (service RNG, churn draws, mobility waypoints).
        churn_interval: Mean seconds between edge-removal attempts.
        mobility: Whether waypoint mobility ran.
        horizon: Simulated seconds.
        bound: The stated local-skew bound (seconds).
        trace_digest: Fingerprint of the full run trace.
        edges_removed: Edges taken out by churn.
        edges_restored: Edges brought back by churn.
        churn_refused: Removals vetoed by the connectivity guard.
        rewires: Mobility rewires that changed the edge set.
        skew_samples: Live-edge skew samples taken.
        skew_breaches: Samples above the bound (gradient must score 0).
        max_local_skew: Largest live-edge skew observed (seconds).
        checks: Invariant-oracle sweeps performed.
        violations: Invariant violations (strict oracle, no exemption
            windows — must be 0).
        exemptions: Oracle server-checks skipped (expected 0: nothing
            crashes or departs in this gauntlet).
        final_max_error: Largest error bound at the end of the run.
    """

    arm: str
    cell: str
    seed: int
    churn_interval: float
    mobility: bool
    horizon: float
    bound: float
    trace_digest: int
    edges_removed: int
    edges_restored: int
    churn_refused: int
    rewires: int
    skew_samples: int
    skew_breaches: int
    max_local_skew: float
    checks: int
    violations: int
    exemptions: int
    final_max_error: float


def _policy(arm: str):
    if arm == "MM":
        return MMPolicy()
    if arm == "IM":
        return IMPolicy()
    if arm == "gradient":
        return GradientPolicy()
    raise ValueError(f"unknown arm {arm!r}; expected one of {ARMS}")


def _build(arm: str, seed: int, *, n: int, tau: float, telemetry=None) -> SimulatedService:
    # A sparse ring, deliberately: local skew is a statement about
    # *edges*, and a ring has no shortcuts for free.  No reference
    # server — the arms must hold the bound among themselves.
    graph = ring(n)
    names = sorted(graph.nodes)
    specs = [
        ServerSpec(
            name,
            delta=DELTA,
            skew=(k - (n - 1) / 2) * 2e-5,
            initial_error=0.05,
        )
        for k, name in enumerate(names)
    ]
    return build_service(
        graph,
        specs,
        policy=_policy(arm),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(ONE_WAY),
        wan_delay=UniformDelay(ONE_WAY),
        telemetry=telemetry,
    )


def run_gauntlet(
    arm: str = "gradient",
    seed: int = 0,
    *,
    churn_interval: float = 120.0,
    mobility: bool = True,
    cell_label: Optional[str] = None,
    n: int = 8,
    tau: float = 30.0,
    horizon: float = 1800.0,
    monitor_period: float = 5.0,
    telemetry=None,
) -> GauntletOutcome:
    """One arm under one dynamic-topology configuration.

    Args:
        arm: "MM", "IM", or "gradient".
        seed: Root seed; drives the service RNG registry, from which the
            churn and mobility streams are derived — one seed fixes the
            whole run.
        churn_interval: Mean seconds between edge-removal attempts.
        mobility: Attach waypoint mobility (proximity rewiring).
        cell_label: Label recorded on the outcome (defaults to a
            synthesized one).
        telemetry: Optional :class:`~repro.telemetry.ServiceTelemetry`;
            its registry also receives the invariant-oracle counters and
            the live ``repro_edge_local_skew_seconds`` series.
    """
    service = _build(arm, seed + 100, n=n, tau=tau, telemetry=telemetry)
    bound = local_skew_bound(tau)
    dynamic = DynamicTopology.for_service(service)
    churn = EdgeChurnController(
        service.engine,
        dynamic,
        service.rng.stream("dynamic/edge-churn"),
        interval=churn_interval,
        mean_downtime=churn_interval * 0.75,
    )
    mob: Optional[MobilityProcess] = None
    if mobility:
        model = WaypointMobility(
            sorted(service.servers), service.rng.stream("dynamic/mobility")
        )
        mob = MobilityProcess(service.engine, dynamic, model)
    skew = LocalSkewMonitor(
        service.engine, service, bound=bound, period=monitor_period
    )
    registry = None
    if telemetry is not None and telemetry.registry.enabled:
        registry = telemetry.registry
    # schedule=None: no fault windows, so the oracle holds every server
    # to the invariants at all times — churn earns no exemptions.
    oracle = InvariantMonitor(
        service.engine,
        service.servers,
        service.trace,
        None,
        period=monitor_period,
        registry=registry,
    )
    churn.start()
    if mob is not None:
        mob.start()
    skew.start()
    oracle.start()
    service.run_until(horizon)
    snap = service.snapshot()
    return GauntletOutcome(
        arm=arm,
        cell=cell_label
        or f"churn{churn_interval:g}{'+mob' if mobility else ''}",
        seed=seed,
        churn_interval=churn_interval,
        mobility=mobility,
        horizon=horizon,
        bound=bound,
        trace_digest=trace_digest(service.trace),
        edges_removed=churn.stats.removed,
        edges_restored=churn.stats.restored,
        churn_refused=churn.stats.refused,
        rewires=dynamic.stats.rewires,
        skew_samples=skew.stats.samples,
        skew_breaches=skew.stats.breaches,
        max_local_skew=skew.stats.max_skew,
        checks=oracle.stats.checks,
        violations=oracle.stats.total_violations,
        exemptions=oracle.stats.exemptions,
        final_max_error=snap.max_error,
    )


def run_matrix(
    *,
    arms: Sequence[str] = ARMS,
    cells: Sequence[GauntletCell] = CELLS,
    seeds: Sequence[int] = (0, 1, 2),
    n: int = 8,
    tau: float = 30.0,
    horizon: float = 1800.0,
) -> List[GauntletOutcome]:
    """Every (cell, arm, seed) run of the gauntlet."""
    return [
        run_gauntlet(
            arm,
            seed,
            churn_interval=cell.churn_interval,
            mobility=cell.mobility,
            cell_label=cell.label,
            n=n,
            tau=tau,
            horizon=horizon,
        )
        for cell in cells
        for arm in arms
        for seed in seeds
    ]


def evaluate(outcomes: Sequence[GauntletOutcome]) -> List[str]:
    """The acceptance criteria, as a list of failures (empty = pass).

    * the gradient arm holds the bound (zero breaches) in every cell and
      seed, with zero invariant violations;
    * in every (cell, seed), at least one plain arm breaches the bound —
      the guarantee is not vacuous.
    """
    problems: List[str] = []
    keys = sorted({(o.cell, o.seed) for o in outcomes})
    for cell, seed in keys:
        runs = {o.arm: o for o in outcomes if (o.cell, o.seed) == (cell, seed)}
        grad = runs.get("gradient")
        if grad is not None:
            if grad.skew_breaches:
                problems.append(
                    f"{cell} seed {seed}: gradient breached the bound "
                    f"{grad.skew_breaches} time(s) "
                    f"(max {grad.max_local_skew:.4f}s > {grad.bound:.4f}s)"
                )
            if grad.violations:
                problems.append(
                    f"{cell} seed {seed}: gradient saw "
                    f"{grad.violations} invariant violation(s)"
                )
        plain = [runs[a] for a in ("MM", "IM") if a in runs]
        if plain and not any(o.skew_breaches for o in plain):
            problems.append(
                f"{cell} seed {seed}: no plain arm breached the bound "
                f"(nothing for the gradient arm to beat)"
            )
    return problems


def main(
    *,
    seeds: Sequence[int] = (0, 1, 2),
    horizon: float = 1800.0,
    tau: float = 30.0,
    json_path: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> bool:
    """Run the matrix, print the report, return overall pass/fail."""
    from ..analysis.plots import render_table

    bound = local_skew_bound(tau)
    outcomes: List[GauntletOutcome] = []
    for cell in CELLS:
        for arm in ARMS:
            for seed in seeds:
                telemetry = None
                if telemetry_dir:
                    from ..telemetry import ServiceTelemetry

                    telemetry = ServiceTelemetry(
                        spans=False,
                        sample_period=tau,
                        local_skew_bound=bound,
                    )
                outcome = run_gauntlet(
                    arm,
                    seed,
                    churn_interval=cell.churn_interval,
                    mobility=cell.mobility,
                    cell_label=cell.label,
                    tau=tau,
                    horizon=horizon,
                    telemetry=telemetry,
                )
                outcomes.append(outcome)
                if telemetry is not None:
                    run_dir = os.path.join(
                        telemetry_dir, f"{cell.label}-{arm}-seed{seed}"
                    )
                    telemetry.write(
                        run_dir,
                        summary_extra={
                            "arm": arm,
                            "cell": cell.label,
                            "seed": seed,
                            "bound": bound,
                            "skew_breaches": outcome.skew_breaches,
                            "max_local_skew": outcome.max_local_skew,
                            "violations": outcome.violations,
                        },
                    )
    print(
        f"dynamic gauntlet: {len(CELLS)} cell(s) x {ARMS} x "
        f"{len(seeds)} seed(s), ring(8), τ={tau:g}s, {horizon:g}s horizon, "
        f"local-skew bound {bound * 1e3:.1f} ms"
    )
    rows = [
        [
            o.cell,
            o.arm,
            o.seed,
            f"{o.edges_removed}/{o.edges_restored}",
            o.rewires,
            o.skew_samples,
            o.skew_breaches,
            f"{o.max_local_skew * 1e3:.1f}",
            o.violations,
            o.exemptions,
            f"{o.trace_digest:08x}",
        ]
        for o in outcomes
    ]
    print(
        render_table(
            [
                "cell",
                "arm",
                "seed",
                "edges -/+",
                "rewires",
                "samples",
                "breaches",
                "max skew ms",
                "viol",
                "exempt",
                "trace digest",
            ],
            rows,
        )
    )
    problems = evaluate(outcomes)
    if json_path:
        report = {
            "bound": bound,
            "tau": tau,
            "horizon": horizon,
            "seeds": list(seeds),
            "ok": not problems,
            "problems": problems,
            "outcomes": [asdict(o) for o in outcomes],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nwrote JSON report to {json_path}")
    if problems:
        print()
        for problem in problems:
            print(f"FAIL: {problem}")
        return False
    print(
        "\ngradient arm held the local-skew bound in every cell and seed "
        "(zero breaches, zero invariant violations); every cell saw a "
        "plain arm breach it."
    )
    return True


if __name__ == "__main__":
    raise SystemExit(0 if main() else 1)
