"""Tick granularity and the error budget.

The paper's error budget (Section 2.2) has three terms: inherited error,
transmission delay, and drift.  Real clocks add a fourth the paper's
continuous-clock model omits: *read-out granularity*.  A clock read in
ticks of size ``q`` under-reports by up to ``q``, so a server whose
bookkeeping ignores it can claim an interval that misses the true time —
by at most one tick, but "correct" is a boolean.

Worse than a bounded ±q nuisance: flooring biases every read *low*, so
each synchronization round the whole service inherits values ~q/2..q
behind the continuous truth and never gets them back — the collective
clock random-walks downward by about one tick per round.  The violation is
therefore *cumulative*: even a tick far smaller than the rest of the error
budget eventually walks the service out of its claimed intervals.

The experiment runs an IM mesh of quantised clocks at increasing tick
sizes, twice:

* **naive** — rule MM-1 bookkeeping unchanged: offsets drift low by ~q per
  round and correctness fails at every tick size;
* **budgeted** — the mitigation: fold the tick into the inherited error at
  every reset (a policy wrapper adding ``q`` to each decision), so the
  claimed error grows at least as fast as the accumulated bias.

Expected shape: naive violations at every ``q`` (severity scaling with
``q``); the budgeted arm correct everywhere, at the cost of an error floor
proportional to ``q``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..clocks.drift import DriftingClock
from ..clocks.quantized import QuantizedClock
from ..core.im import IMPolicy
from ..core.sync import LocalState, Reply, RoundOutcome, SynchronizationPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from .scenarios import grid


class TickBudgetedIM(SynchronizationPolicy):
    """IM with the read-out granularity folded into every reset's error.

    A quantised read can be up to one tick *behind* the continuous value,
    so the safe correction is to widen the inherited error by the tick.
    """

    name = "IM+tick"
    incremental = False

    def __init__(self, tick: float) -> None:
        if tick < 0:
            raise ValueError(f"tick must be non-negative, got {tick}")
        self.tick = float(tick)
        self._inner = IMPolicy()

    def on_round_complete(self, state: LocalState, replies: Sequence[Reply]) -> RoundOutcome:
        outcome = self._inner.on_round_complete(state, replies)
        if outcome.decision is None:
            return outcome
        from ..core.sync import ResetDecision

        padded = ResetDecision(
            clock_value=outcome.decision.clock_value,
            inherited_error=outcome.decision.inherited_error + self.tick,
            source=outcome.decision.source,
        )
        return RoundOutcome(consistent=outcome.consistent, decision=padded)


@dataclass(frozen=True)
class QuantizationRow:
    """One tick size, both arms.

    Attributes:
        tick: Read-out granularity in seconds.
        naive_violations: Oracle violations with unchanged bookkeeping.
        budgeted_violations: Violations with the tick folded into ε.
        budgeted_mean_error: Steady error of the budgeted arm (shows the
            ``q`` floor).
    """

    tick: float
    naive_violations: int
    budgeted_violations: int
    budgeted_mean_error: float


def _run_arm(tick: float, budgeted: bool, *, n: int, tau: float, horizon: float, seed: int):
    def clock_factory_for(skew: float):
        def factory(rng, name):
            return QuantizedClock(DriftingClock(skew), tick=tick)

        return factory

    specs = [
        ServerSpec(
            f"S{k + 1}",
            delta=1e-5,
            clock_factory=clock_factory_for(0.9e-5 * (2.0 * k / (n - 1) - 1.0)),
            initial_error=tick,  # the initial read is already granular
        )
        for k in range(n)
    ]
    policy = TickBudgetedIM(tick) if budgeted else IMPolicy()
    service = build_service(
        full_mesh(n),
        specs,
        policy=policy,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        trace_enabled=False,
    )
    violations = 0
    errors: List[float] = []
    for snap in service.sample(grid(tau, horizon, 60)):
        violations += sum(1 for ok in snap.correct.values() if not ok)
        errors.extend(snap.errors.values())
    return violations, float(np.mean(errors))


def run(
    ticks: Sequence[float] = (0.001, 0.01, 0.05, 0.2),
    n: int = 4,
    tau: float = 60.0,
    horizon: float = 1800.0,
    seed: int = 37,
) -> List[QuantizationRow]:
    """Run the naive and budgeted arms over the tick sweep."""
    rows = []
    for tick in ticks:
        naive_violations, _ = _run_arm(
            tick, budgeted=False, n=n, tau=tau, horizon=horizon, seed=seed
        )
        budgeted_violations, budgeted_error = _run_arm(
            tick, budgeted=True, n=n, tau=tau, horizon=horizon, seed=seed
        )
        rows.append(
            QuantizationRow(
                tick=tick,
                naive_violations=naive_violations,
                budgeted_violations=budgeted_violations,
                budgeted_mean_error=budgeted_error,
            )
        )
    return rows


def main() -> None:
    """Print the tick sweep."""
    from ..analysis.plots import render_table

    rows = run()
    print("Read-out granularity vs the error budget (IM, 4 servers)")
    print(
        render_table(
            ["tick (s)", "naive violations", "budgeted violations", "budgeted mean E (s)"],
            [
                [r.tick, r.naive_violations, r.budgeted_violations, r.budgeted_mean_error]
                for r in rows
            ],
        )
    )
    print(
        "\nFlooring biases every reset low, so the bias *accumulates* (~one "
        "tick per round); folding the tick into the inherited error keeps "
        "the claimed interval growing at least as fast as the bias."
    )


if __name__ == "__main__":
    main()
