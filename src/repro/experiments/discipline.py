"""Frequency discipline — closing the Section 5 loop.

The paper's closing idea is to apply MM/IM to clock *rates* as well as
values; the practical payoff (realised a few years later by NTP) is a
*frequency discipline loop*: estimate your own oscillator's skew from how
neighbours drift against you, and trim a software rate correction until
your effective skew is near zero.

This experiment runs the same clock population under IM three ways —

* plain servers,
* rate-tracking servers (measurement only), and
* disciplining servers (measurement + frequency trim) —

anchored by one reference server, and compares the steady-state worst true
offset and asynchronism.  Expected shape: discipline shrinks both by
roughly the ratio between the raw skews and the residual (post-trim) skews,
while the *claimed* errors are unchanged (rule MM-1 grows them at the
claimed δ regardless — discipline improves the truth, not the bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.im import IMPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from ..service.discipline import DiscipliningServer
from .scenarios import grid


@dataclass(frozen=True)
class DisciplineArm:
    """One variant's steady-state measurements.

    Attributes:
        name: Variant label.
        worst_true_offset: Max |C_i - t| over polling servers in the
            measurement window.
        mean_asynchronism: Mean max-pairwise clock difference.
        mean_claimed_error: Mean reported E (expected ~identical across
            arms).
        residual_skews: Final effective skews of the polling servers
            (only meaningful for the disciplined arm).
    """

    name: str
    worst_true_offset: float
    mean_asynchronism: float
    mean_claimed_error: float
    residual_skews: Dict[str, float]


@dataclass(frozen=True)
class DisciplineResult:
    """All three arms plus the comparison verdicts."""

    plain: DisciplineArm
    tracking: DisciplineArm
    disciplined: DisciplineArm

    @property
    def offset_improvement(self) -> float:
        """Plain worst offset / disciplined worst offset."""
        return self.plain.worst_true_offset / max(
            self.disciplined.worst_true_offset, 1e-12
        )


def _run_arm(
    name: str,
    *,
    n: int,
    delta: float,
    skews: List[float],
    tau: float,
    horizon: float,
    seed: int,
    rate_tracking: bool,
    discipline: bool,
) -> DisciplineArm:
    names = [f"S{k + 1}" for k in range(n)]
    specs = [
        ServerSpec(
            names[k],
            delta=delta,
            skew=skews[k],
            rate_tracking=rate_tracking,
            discipline=discipline,
        )
        for k in range(n)
    ]
    specs.append(ServerSpec("REF", reference=True, initial_error=0.001))
    graph = full_mesh(n)
    graph.add_node("REF")
    for server in names:
        graph.add_edge(server, "REF")
    service = build_service(
        graph,
        specs,
        policy=IMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.002),
    )
    snapshots = service.sample(grid(horizon / 2, horizon, 40))
    offsets = [
        abs(snap.offsets[name]) for snap in snapshots for name in names
    ]
    asyn = [snap.asynchronism for snap in snapshots]
    errors = [snap.errors[name] for snap in snapshots for name in names]
    residual: Dict[str, float] = {}
    for server_name in names:
        server = service.servers[server_name]
        if isinstance(server, DiscipliningServer):
            raw_skew = skews[names.index(server_name)]
            residual[server_name] = server.clock.effective_skew(raw_skew)  # type: ignore[attr-defined]
    return DisciplineArm(
        name=name,
        worst_true_offset=float(np.max(offsets)),
        mean_asynchronism=float(np.mean(asyn)),
        mean_claimed_error=float(np.mean(errors)),
        residual_skews=residual,
    )


def run(
    n: int = 6,
    delta: float = 1e-4,
    tau: float = 60.0,
    horizon: float = 6.0 * 3600.0,
    seed: int = 19,
) -> DisciplineResult:
    """Run the three-arm comparison on one clock population."""
    skews = [0.9 * delta * (2.0 * k / (n - 1) - 1.0) for k in range(n)]
    common = dict(
        n=n, delta=delta, skews=skews, tau=tau, horizon=horizon, seed=seed
    )
    return DisciplineResult(
        plain=_run_arm("plain", rate_tracking=False, discipline=False, **common),
        tracking=_run_arm(
            "rate-tracking", rate_tracking=True, discipline=False, **common
        ),
        disciplined=_run_arm(
            "disciplined", rate_tracking=True, discipline=True, **common
        ),
    )


def main() -> None:
    """Print the comparison."""
    from ..analysis.plots import render_table

    result = run()
    rows = [
        [arm.name, arm.worst_true_offset, arm.mean_asynchronism, arm.mean_claimed_error]
        for arm in (result.plain, result.tracking, result.disciplined)
    ]
    print("Frequency discipline — IM + reference, identical clock population")
    print(
        render_table(
            ["variant", "worst |offset| (s)", "mean asyn (s)", "mean claimed E (s)"],
            rows,
        )
    )
    print(f"\noffset improvement from discipline: ×{result.offset_improvement:.1f}")
    residuals = result.disciplined.residual_skews
    if residuals:
        worst = max(abs(v) for v in residuals.values())
        print(f"worst residual skew after discipline: {worst:.2e} "
              f"(raw population spanned ±{0.9 * 1e-4:.1e})")


if __name__ == "__main__":
    main()
