"""Topology and the error gradient from the standard.

Section 3 only assumes the server graph is connected; the theorems are
stated for a full mesh.  Deployed services are not meshes — the Xerox
internet was LANs behind gateways — and the interesting deployment question
is how synchronization quality decays with *distance from the reference*.

The study builds each topology shape over the same number of servers with
one reference at a fixed position, runs IM to steady state, and reports:

* mean/max error and worst oracle offset by graph distance (hops) from the
  reference;
* the per-topology summary — which shapes pay how much for their sparsity.

Expected shape: error grows roughly linearly in hop count (each hop adds a
round-trip allowance plus a poll period of drift), so the line topology is
worst, the star/mesh best, and the two-level internet sits between —
matching the gradient visible in ``examples/xerox_internet.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import networkx as nx
import numpy as np

from ..core.im import IMPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh, line, ring, star, two_level_internet
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

TOPOLOGIES = ("mesh", "star", "ring", "line", "internet")


def _build_graph(shape: str, n: int) -> nx.Graph:
    if shape == "mesh":
        return full_mesh(n)
    if shape == "star":
        return star(n)
    if shape == "ring":
        return ring(n)
    if shape == "line":
        return line(n)
    if shape == "internet":
        networks = max(2, n // 4)
        per = max(2, n // networks)
        return two_level_internet(networks, per)
    raise ValueError(f"unknown topology shape {shape!r}")


@dataclass(frozen=True)
class HopRow:
    """Steady-state metrics for servers at one distance from the reference.

    Attributes:
        hops: Graph distance from the reference server.
        servers: How many servers sit at this distance.
        mean_error: Mean reported error.
        worst_offset: Worst oracle offset.
    """

    hops: int
    servers: int
    mean_error: float
    worst_offset: float


@dataclass(frozen=True)
class TopologyResult:
    """One topology's study outcome.

    Attributes:
        shape: Topology name.
        reference: Name of the reference server used.
        by_hops: Per-distance rows, ascending.
        all_correct: Oracle verdict over the measurement window.
    """

    shape: str
    reference: str
    by_hops: List[HopRow]
    all_correct: bool

    @property
    def gradient(self) -> float:
        """Fitted error increase per hop (0 when only one distance)."""
        if len(self.by_hops) < 2:
            return 0.0
        xs = np.array([row.hops for row in self.by_hops], dtype=float)
        ys = np.array([row.mean_error for row in self.by_hops])
        slope, _ = np.polyfit(xs, ys, deg=1)
        return float(slope)


def run_topology(
    shape: str,
    n: int = 9,
    tau: float = 60.0,
    horizon: float = 3600.0,
    seed: int = 41,
) -> TopologyResult:
    """Run one topology to steady state and aggregate by hop count."""
    graph = _build_graph(shape, n)
    names = sorted(graph.nodes)
    reference = names[0]
    specs = []
    for k, name in enumerate(names):
        if name == reference:
            specs.append(ServerSpec(name, reference=True, initial_error=0.001))
        else:
            specs.append(
                ServerSpec(
                    name,
                    delta=1e-5,
                    skew=0.8e-5 * (2.0 * k / (len(names) - 1) - 1.0),
                )
            )
    service = build_service(
        graph,
        specs,
        policy=IMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.005),
        wan_delay=UniformDelay(0.05),
        trace_enabled=False,
    )
    snapshots = service.sample(grid(horizon / 2, horizon, 30))
    distances = nx.single_source_shortest_path_length(graph, reference)

    per_hop: Dict[int, List[tuple[float, float]]] = {}
    all_correct = True
    for snap in snapshots:
        if not snap.all_correct:
            all_correct = False
        for name in names:
            if name == reference:
                continue
            per_hop.setdefault(distances[name], []).append(
                (snap.errors[name], abs(snap.offsets[name]))
            )
    rows = []
    for hops in sorted(per_hop):
        samples = per_hop[hops]
        rows.append(
            HopRow(
                hops=hops,
                servers=len({name for name in names if name != reference and distances[name] == hops}),
                mean_error=float(np.mean([e for e, _o in samples])),
                worst_offset=float(np.max([o for _e, o in samples])),
            )
        )
    return TopologyResult(
        shape=shape, reference=reference, by_hops=rows, all_correct=all_correct
    )


def run_all(
    shapes: Sequence[str] = TOPOLOGIES,
    n: int = 9,
    horizon: float = 3600.0,
    seed: int = 41,
) -> List[TopologyResult]:
    """The full topology comparison."""
    return [run_topology(shape, n=n, horizon=horizon, seed=seed) for shape in shapes]


def main() -> None:
    """Print the study."""
    from ..analysis.plots import render_table

    results = run_all()
    for result in results:
        print(f"\n{result.shape} (reference {result.reference}; "
              f"all correct: {result.all_correct}; "
              f"gradient {result.gradient:.2e} s/hop):")
        print(
            render_table(
                ["hops", "servers", "mean E (s)", "worst |offset| (s)"],
                [
                    [row.hops, row.servers, row.mean_error, row.worst_offset]
                    for row in result.by_hops
                ],
            )
        )
    print(
        "\nError grows with distance from the standard: sparse shapes pay "
        "per hop (round-trip allowance + a poll period of drift), the mesh "
        "and star pay once."
    )


if __name__ == "__main__":
    main()
