"""Shared scenario builders for the experiment modules.

Every experiment is a thin script over one of these builders, so the
experiments stay comparable: same delay models, same δ populations, same
naming.  All times are in seconds; δ values are dimensionless (s/s).

The canonical parameter set (chosen to be Xerox-internet plausible while
keeping runs fast):

* one-way LAN delay uniform in [0, 50 ms] → ξ = 0.1 s round trip;
* poll period τ = 60 s;
* δ around 1e-5 (~0.9 s/day), the order of a workstation crystal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..clocks.drift import SegmentDriftClock, uniform_sampler
from ..core.sync import SynchronizationPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, SimulatedService, build_service

#: Default one-way delay bound (50 ms), i.e. ξ = 0.1 s.
DEFAULT_ONE_WAY = 0.05

#: Default poll period τ.
DEFAULT_TAU = 60.0

#: Default claimed drift bound (~0.9 s/day).
DEFAULT_DELTA = 1e-5


@dataclass(frozen=True)
class MeshScenario:
    """Parameters of a full-mesh service scenario.

    Attributes:
        n: Number of servers.
        deltas: Claimed δ per server (broadcast from ``delta`` when None).
        skews: Actual constant skews per server (defaults to a symmetric
            spread inside ±``delta``).
        delta: Default claimed bound.
        tau: Poll period.
        one_way: One-way delay bound (ξ is twice this).
        seed: Root RNG seed.
        initial_error: Starting ε for every server.
        fill: Fraction of ±δ the default skew spread occupies.  Strictly
            below 1 because a clock running at *exactly* ±δ is incorrect by
            the ``δ²·t`` second-order term the paper drops (rule MM-1
            measures the clock's age on the clock itself); real claimed
            bounds are strict overestimates.
    """

    n: int = 4
    deltas: Optional[Sequence[float]] = None
    skews: Optional[Sequence[float]] = None
    delta: float = DEFAULT_DELTA
    tau: float = DEFAULT_TAU
    one_way: float = DEFAULT_ONE_WAY
    seed: int = 0
    initial_error: float = 0.0
    fill: float = 0.9

    def resolved_deltas(self) -> list[float]:
        """Per-server claimed bounds."""
        if self.deltas is not None:
            if len(self.deltas) != self.n:
                raise ValueError(
                    f"deltas has {len(self.deltas)} entries for n={self.n}"
                )
            return list(self.deltas)
        return [self.delta] * self.n

    def resolved_skews(self) -> list[float]:
        """Per-server actual skews (default: evenly spread in ±``fill·δ``)."""
        if self.skews is not None:
            if len(self.skews) != self.n:
                raise ValueError(
                    f"skews has {len(self.skews)} entries for n={self.n}"
                )
            return list(self.skews)
        deltas = self.resolved_deltas()
        if self.n == 1:
            return [0.0]
        return [
            self.fill * deltas[k] * (2.0 * k / (self.n - 1) - 1.0)
            for k in range(self.n)
        ]

    @property
    def xi(self) -> float:
        """The round-trip bound ξ."""
        return 2.0 * self.one_way

    def names(self) -> list[str]:
        """Server names ``S1..Sn``."""
        return [f"S{k + 1}" for k in range(self.n)]

    def delta_map(self) -> Dict[str, float]:
        """Claimed δ by server name."""
        return dict(zip(self.names(), self.resolved_deltas()))


def build_mesh_service(
    scenario: MeshScenario,
    policy: SynchronizationPolicy,
    *,
    trace_enabled: bool = False,
    recovery_factory=None,
) -> SimulatedService:
    """A full-mesh service of constant-skew clocks under one policy."""
    deltas = scenario.resolved_deltas()
    skews = scenario.resolved_skews()
    specs = [
        ServerSpec(
            name=name,
            delta=deltas[k],
            skew=skews[k],
            initial_error=scenario.initial_error,
        )
        for k, name in enumerate(scenario.names())
    ]
    return build_service(
        full_mesh(scenario.n),
        specs,
        policy=policy,
        tau=scenario.tau,
        seed=scenario.seed,
        lan_delay=UniformDelay(scenario.one_way),
        trace_enabled=trace_enabled,
        recovery_factory=recovery_factory,
    )


def build_stochastic_mesh_service(
    scenario: MeshScenario,
    policy: SynchronizationPolicy,
    *,
    trace_enabled: bool = False,
) -> SimulatedService:
    """Full mesh where each clock redraws its skew i.i.d. at every reset.

    This is Theorem 8's clock model: skew uniform on ±δ per segment.  Each
    clock gets its own named RNG stream, so runs are reproducible and
    adding servers does not perturb existing clocks.
    """
    deltas = scenario.resolved_deltas()

    def clock_factory_for(delta: float):
        def factory(rng, name):
            # fill < 1 keeps draws strictly inside the claimed bound; at
            # exactly ±δ a clock is incorrect by the paper's dropped δ²
            # term (see MeshScenario.fill).
            return SegmentDriftClock(
                uniform_sampler(rng.stream(f"clock/{name}"), scenario.fill * delta)
            )

        return factory

    specs = [
        ServerSpec(
            name=name,
            delta=deltas[k],
            clock_factory=clock_factory_for(deltas[k]),
            initial_error=scenario.initial_error,
        )
        for k, name in enumerate(scenario.names())
    ]
    return build_service(
        full_mesh(scenario.n),
        specs,
        policy=policy,
        tau=scenario.tau,
        seed=scenario.seed,
        lan_delay=UniformDelay(scenario.one_way),
        trace_enabled=trace_enabled,
    )


def grid(start: float, stop: float, count: int) -> list[float]:
    """``count`` evenly spaced sample times from ``start`` to ``stop``."""
    if count < 2:
        raise ValueError(f"need at least 2 grid points, got {count}")
    step = (stop - start) / (count - 1)
    return [start + step * index for index in range(count)]
