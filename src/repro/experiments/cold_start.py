"""Cold start: synchronizing a service from arbitrary initial clocks.

The paper's theorems assume "an initially correct time service"; a real
deployment starts with operator-set clocks that are seconds or minutes
apart with honest, large, initial errors.  This experiment measures the
transient: every server begins with a random offset inside a declared
initial error, and we track how many poll periods each algorithm needs to
pull the service to its steady-state error and asynchronism.

Expected shape:

* **IM** converges in one to two rounds — the first intersection already
  collapses every interval to roughly the best-informed one.
* **MM** converges in a few rounds too, but to the *minimum*-error clock's
  neighbourhood: until some server has a genuinely better interval, no
  resets happen at all, so with homogeneous initial errors MM's transient
  is flat (it cannot improve on equals).  Seeding one reference-grade
  server gives MM its gradient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from .scenarios import grid


@dataclass(frozen=True)
class ColdStartResult:
    """One policy's startup transient.

    Attributes:
        policy: "MM" or "IM".
        settle_rounds: Poll periods until the worst error first came
            within 2× its steady-state value (None if never).
        initial_asynchronism: Spread of the operator-set clocks at t=0.
        steady_asynchronism: Mean asynchronism over the final quarter.
        steady_max_error: Mean worst error over the final quarter.
        correct_throughout: Oracle — no interval ever excluded true time
            (honest initial errors make even wild clocks *correct*).
    """

    policy: str
    settle_rounds: float | None
    initial_asynchronism: float
    steady_asynchronism: float
    steady_max_error: float
    correct_throughout: bool


def run_policy(
    policy_name: str,
    n: int = 6,
    tau: float = 60.0,
    horizon: float = 3600.0,
    initial_spread: float = 30.0,
    seed: int = 43,
) -> ColdStartResult:
    """Run one cold start.

    Every server's clock starts at a random offset within
    ``±initial_spread/2`` and declares ``initial_error = initial_spread``
    (honest: the operator knows the wristwatch was only so good).  One
    reference-grade server (small initial error, tiny δ) models the machine
    whose operator had a radio check.
    """
    rng = np.random.default_rng(seed)
    offsets = rng.uniform(-initial_spread / 2.0, initial_spread / 2.0, n)

    def clock_factory_for(offset: float, skew: float):
        from ..clocks.drift import DriftingClock

        def factory(_rng, _name):
            return DriftingClock(skew, epoch=0.0, initial=offset)

        return factory

    specs = []
    for k in range(n):
        if k == 0:
            specs.append(
                ServerSpec(
                    "S1",
                    delta=1e-6,
                    clock_factory=clock_factory_for(float(offsets[0]) / 100.0, 0.0),
                    initial_error=initial_spread / 100.0,
                )
            )
            continue
        skew = 0.8e-5 * (2.0 * k / (n - 1) - 1.0)
        specs.append(
            ServerSpec(
                f"S{k + 1}",
                delta=1e-5,
                clock_factory=clock_factory_for(float(offsets[k]), skew),
                initial_error=initial_spread,
            )
        )
    policy = MMPolicy() if policy_name == "MM" else IMPolicy()
    service = build_service(
        full_mesh(n),
        specs,
        policy=policy,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        trace_enabled=False,
    )
    initial_asyn = service.snapshot().asynchronism

    sample_times = grid(tau / 4.0, horizon, int(horizon / (tau / 4.0)))
    snapshots = service.sample(sample_times)
    correct = all(snap.all_correct for snap in snapshots)

    tail = snapshots[3 * len(snapshots) // 4 :]
    steady_max_error = float(np.mean([snap.max_error for snap in tail]))
    steady_asyn = float(np.mean([snap.asynchronism for snap in tail]))

    settle: float | None = None
    for snap in snapshots:
        if snap.max_error <= 2.0 * steady_max_error:
            settle = snap.time / tau
            break
    return ColdStartResult(
        policy=policy_name,
        settle_rounds=settle,
        initial_asynchronism=initial_asyn,
        steady_asynchronism=steady_asyn,
        steady_max_error=steady_max_error,
        correct_throughout=correct,
    )


def run(n: int = 6, horizon: float = 3600.0, seed: int = 43) -> List[ColdStartResult]:
    """Both policies on the same cold-start population."""
    return [
        run_policy("MM", n=n, horizon=horizon, seed=seed),
        run_policy("IM", n=n, horizon=horizon, seed=seed),
    ]


def main() -> None:
    """Print the startup comparison."""
    from ..analysis.plots import render_table

    results = run()
    print("Cold start — operator-set clocks ±15 s, one radio-checked server")
    rows = [
        [
            r.policy,
            r.initial_asynchronism,
            r.settle_rounds,
            r.steady_max_error,
            r.steady_asynchronism,
            r.correct_throughout,
        ]
        for r in results
    ]
    print(
        render_table(
            [
                "policy",
                "initial asyn (s)",
                "settle (rounds)",
                "steady max E (s)",
                "steady asyn (s)",
                "correct",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
