"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one knob the paper's rules fix, and measures why the
rule is written the way it is:

* **MM round-trip inflation** — rule MM-2's ``(1 + δ_i)·ξ^i_j`` converts a
  *local-clock* duration into a bound on real elapsed time.  Dropping the
  inflation under-accounts the error of a slow local clock and produces
  oracle correctness violations at resets.
* **IM leading-edge-only widening** — widening both edges stays correct but
  strictly inflates the steady-state error.
* **IM self-interval** — excluding the local interval from the intersection
  discards information and inflates the error.
* **IM midpoint vs. trailing reset** — anchoring at the trailing edge
  doubles the post-reset error (``b - a`` instead of ``(b - a)/2``).
* **τ sensitivity** — steady-state IM error and asynchronism degrade
  roughly linearly in the poll period, the dependence Theorems 2/3/7 carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from .scenarios import MeshScenario, build_mesh_service, grid


# ----------------------------------------------------------- MM inflation


@dataclass(frozen=True)
class MMInflationResult:
    """Reset-instant correctness with and without the ``(1 + δ)`` factor.

    Attributes:
        violations_with: Unsafe resets under the paper's rule (expect 0).
        violations_without: Unsafe resets under the raw-ξ ablation
            (expect > 0).
        resets_checked: Resets examined per variant.
    """

    violations_with: int
    violations_without: int
    resets_checked: int


def _count_unsafe_resets(inflate: bool, *, delta: float, horizon: float, seed: int) -> tuple[int, int]:
    """Count resets whose new interval excludes the true time.

    Scenario: a very slow (but in-bounds) clock adopting a reference
    server's interval over an asymmetric-delay link.  The local clock
    under-measures the round trip by a factor ``(1 - δ)``; without the
    inflation the inherited error can be smaller than the actual reply age.
    """
    graph = full_mesh(2)
    specs = [
        # S1: slow by nearly its (large) claimed bound.
        ServerSpec("S1", delta=delta, skew=-0.95 * delta),
        # S2: the reference-grade source with a tiny interval.
        ServerSpec("S2", delta=0.0, skew=0.0, polls=False),
    ]
    service = build_service(
        graph,
        specs,
        policy=MMPolicy(inflate_rtt=inflate),
        tau=5.0,
        seed=seed,
        lan_delay=UniformDelay(0.5),  # up to 1 s round trips
        trace_enabled=True,
    )
    service.run_until(horizon)
    unsafe = 0
    resets = service.trace.filter(kind="reset", source="S1")
    for row in resets:
        if abs(row.data["new_value"] - row.time) > row.data["new_error"] + 1e-12:
            unsafe += 1
    return unsafe, len(resets)


def run_mm_inflation(
    delta: float = 0.2, horizon: float = 600.0, seed: int = 21
) -> MMInflationResult:
    """Compare reset safety with and without round-trip inflation.

    ``delta`` is deliberately large (an awful clock, 20%) so the
    second-order effect is visible within a short run; the *mechanism* is
    identical at crystal-grade δ, just proportionally smaller.
    """
    unsafe_with, checked_with = _count_unsafe_resets(
        True, delta=delta, horizon=horizon, seed=seed
    )
    unsafe_without, checked_without = _count_unsafe_resets(
        False, delta=delta, horizon=horizon, seed=seed
    )
    return MMInflationResult(
        violations_with=unsafe_with,
        violations_without=unsafe_without,
        resets_checked=min(checked_with, checked_without),
    )


# ------------------------------------------------------------ IM variants


@dataclass(frozen=True)
class IMVariantResult:
    """Steady-state error of an IM variant relative to the paper's rule.

    Attributes:
        name: Variant label.
        mean_error: Mean service error over the measurement window.
        ratio_to_paper: ``mean_error / mean_error(paper's IM)``.
    """

    name: str
    mean_error: float
    ratio_to_paper: float


def run_im_variants(
    n: int = 5,
    tau: float = 60.0,
    horizon: float = 3600.0,
    seed: int = 22,
) -> List[IMVariantResult]:
    """Measure the IM design-choice ablations on one scenario."""
    scenario = MeshScenario(n=n, delta=1e-5, tau=tau, seed=seed)
    variants = {
        "paper": IMPolicy(),
        "widen-both-edges": IMPolicy(widen_both_edges=True),
        "no-self-interval": IMPolicy(include_self=False),
        "trailing-reset": IMPolicy(reset_to="trailing"),
    }
    means: Dict[str, float] = {}
    for name, policy in variants.items():
        service = build_mesh_service(scenario, policy)
        snapshots = service.sample(grid(horizon / 2, horizon, 40))
        errors = [
            error for snap in snapshots for error in snap.errors.values()
        ]
        means[name] = float(np.mean(errors))
    baseline = means["paper"]
    return [
        IMVariantResult(
            name=name,
            mean_error=mean,
            ratio_to_paper=mean / baseline if baseline > 0 else float("inf"),
        )
        for name, mean in means.items()
    ]


# -------------------------------------------------------------- τ sweep


@dataclass(frozen=True)
class TauSensitivityRow:
    """Steady-state IM metrics at one poll period."""

    tau: float
    mean_error: float
    max_asynchronism: float


def run_tau_sweep(
    taus: Sequence[float] = (15.0, 30.0, 60.0, 120.0, 240.0),
    n: int = 5,
    seed: int = 23,
) -> List[TauSensitivityRow]:
    """Steady-state IM error/asynchronism vs. τ (expect ~linear growth)."""
    rows = []
    for tau in taus:
        scenario = MeshScenario(n=n, delta=1e-4, tau=tau, one_way=0.002, seed=seed)
        service = build_mesh_service(scenario, IMPolicy())
        horizon = max(40.0 * tau, 1800.0)
        snapshots = service.sample(grid(horizon / 2, horizon, 40))
        errors = [e for snap in snapshots for e in snap.errors.values()]
        asyn = [snap.asynchronism for snap in snapshots]
        rows.append(
            TauSensitivityRow(
                tau=tau,
                mean_error=float(np.mean(errors)),
                max_asynchronism=float(np.max(asyn)),
            )
        )
    return rows


def main() -> None:
    """Print all ablations."""
    from ..analysis.plots import render_table

    inflation = run_mm_inflation()
    print("Ablation 1 — MM round-trip inflation (unsafe resets)")
    print(f"  with (1+δ)ξ (paper): {inflation.violations_with}")
    print(f"  raw ξ (ablation):    {inflation.violations_without}"
          f"  of {inflation.resets_checked} resets")

    print("\nAblation 2 — IM design variants (steady-state mean error)")
    rows = [[v.name, v.mean_error, v.ratio_to_paper] for v in run_im_variants()]
    print(render_table(["variant", "mean error (s)", "×paper"], rows))

    print("\nAblation 3 — IM sensitivity to the poll period τ")
    rows = [[r.tau, r.mean_error, r.max_asynchronism] for r in run_tau_sweep()]
    print(render_table(["τ (s)", "mean error (s)", "max asyn (s)"], rows))


if __name__ == "__main__":
    main()
