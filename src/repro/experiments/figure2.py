"""Figure 2 — Intersections of Maximum Errors.

Figure 2 shows the two ways an intersection of intervals can be formed:

* **left case** — one interval is contained in all the others, so both
  edges of the intersection come from the *same* server (intersection ==
  smallest interval; an IM exchange degenerates to an MM exchange);
* **right case** — the latest trailing edge and the earliest leading edge
  come from *different* servers, so the intersection is strictly smaller
  than every individual interval — the situation where IM beats MM.

This experiment constructs both cases, computes the intersections, and
verifies Theorem 6 (the intersection is at least as small as the smallest
interval) plus the paper's equations 13/14 on the overlapping case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.plots import render_intervals
from ..core.intervals import TimeInterval, intersect_all, smallest

#: Left case: S2's interval nested inside S1's and S3's.
NESTED_CASE: Dict[str, TimeInterval] = {
    "S1": TimeInterval.from_center_error(10.00, 0.60),
    "S2": TimeInterval.from_center_error(10.05, 0.15),
    "S3": TimeInterval.from_center_error(9.90, 0.50),
}

#: Right case: edges of the intersection defined by different servers.
OVERLAP_CASE: Dict[str, TimeInterval] = {
    "S1": TimeInterval.from_center_error(9.80, 0.45),
    "S2": TimeInterval.from_center_error(10.15, 0.40),
    "S3": TimeInterval.from_center_error(10.00, 0.50),
}


@dataclass(frozen=True)
class Figure2Case:
    """One panel of the figure.

    Attributes:
        intervals: The drawn intervals.
        intersection: Their common region (the shaded area).
        smallest_width: Width of the smallest input interval.
        same_server_edges: Whether one server defines both intersection
            edges (the left-panel condition).
        diagram: ASCII rendering.
    """

    intervals: Dict[str, TimeInterval]
    intersection: TimeInterval
    smallest_width: float
    same_server_edges: bool
    diagram: str


@dataclass(frozen=True)
class Figure2Result:
    """Both panels plus the Theorem 6 verdicts."""

    nested: Figure2Case
    overlapping: Figure2Case
    theorem6_holds: bool


def _build_case(intervals: Dict[str, TimeInterval], true_time: float) -> Figure2Case:
    intersection = intersect_all(intervals.values())
    if intersection is None:
        raise ValueError("figure 2 cases are consistent by construction")
    trailing_owner = max(intervals, key=lambda name: intervals[name].lo)
    leading_owner = min(intervals, key=lambda name: intervals[name].hi)
    shown = dict(intervals)
    shown["∩"] = intersection
    return Figure2Case(
        intervals=intervals,
        intersection=intersection,
        smallest_width=smallest(list(intervals.values())).width,
        same_server_edges=trailing_owner == leading_owner,
        diagram=render_intervals(shown, true_time=true_time),
    )


def run() -> Figure2Result:
    """Reproduce both panels of Figure 2 and check Theorem 6 on each."""
    nested = _build_case(NESTED_CASE, true_time=10.0)
    overlapping = _build_case(OVERLAP_CASE, true_time=10.0)
    theorem6 = (
        nested.intersection.width <= nested.smallest_width + 1e-12
        and overlapping.intersection.width <= overlapping.smallest_width + 1e-12
    )
    return Figure2Result(
        nested=nested, overlapping=overlapping, theorem6_holds=theorem6
    )


def main() -> None:
    """Print the reproduced figure."""
    result = run()
    print("Figure 2 — Intersections of Maximum Errors")
    print("\nLeft panel (edges from the same server — reduces to MM):")
    print(result.nested.diagram)
    print(
        f"  same-server edges: {result.nested.same_server_edges};"
        f" |∩| = {result.nested.intersection.width:.3f},"
        f" smallest input = {result.nested.smallest_width:.3f}"
    )
    print("\nRight panel (edges from different servers — IM wins):")
    print(result.overlapping.diagram)
    print(
        f"  same-server edges: {result.overlapping.same_server_edges};"
        f" |∩| = {result.overlapping.intersection.width:.3f},"
        f" smallest input = {result.overlapping.smallest_width:.3f}"
    )
    print(f"\nTheorem 6 (|∩| <= smallest interval): {result.theorem6_holds}")


if __name__ == "__main__":
    main()
