"""Theorems 1 and 5 — MM and IM preserve correctness.

"If all of the δ_i are valid upper bounds on the drift rates of the clocks
C_i, then an initially correct time service running algorithm MM [IM] will
remain correct."

Reproduction: randomized services (sizes, δ populations, delays, seeds) run
for many rounds under each algorithm, with the oracle checking at every
sample that every server's interval still contains the true time.  The
expected result is *zero* violations for both algorithms — and, as a
control, violations *do* appear the moment a clock's actual skew exceeds
its claimed δ (that control is what Figure 3 and the recovery experiments
build on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..analysis.metrics import correctness_violations
from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..core.sync import SynchronizationPolicy
from .scenarios import MeshScenario, build_mesh_service, grid


@dataclass(frozen=True)
class CorrectnessRun:
    """One randomized run's verdict.

    Attributes:
        policy_name: "MM" or "IM".
        scenario: Parameters used.
        samples: Oracle checks performed.
        violations: Samples at which some interval missed the true time.
    """

    policy_name: str
    scenario: MeshScenario
    samples: int
    violations: int

    @property
    def correct(self) -> bool:
        """Whether the run stayed correct throughout."""
        return self.violations == 0


def run_one(
    scenario: MeshScenario,
    policy: SynchronizationPolicy,
    horizon: float = 1800.0,
    samples: int = 90,
) -> CorrectnessRun:
    """Run one service and count oracle violations."""
    service = build_mesh_service(scenario, policy)
    snapshots = service.sample(grid(0.0, horizon, samples))
    violations = correctness_violations(snapshots)
    return CorrectnessRun(
        policy_name=policy.name,
        scenario=scenario,
        samples=len(snapshots),
        violations=len(violations),
    )


def run_suite(
    seeds: Sequence[int] = (0, 1, 2),
    sizes: Sequence[int] = (3, 6),
    deltas: Sequence[float] = (1e-5, 1e-4),
    horizon: float = 1800.0,
) -> List[CorrectnessRun]:
    """The randomized suite over both algorithms."""
    runs = []
    for seed in seeds:
        for n in sizes:
            for delta in deltas:
                scenario = MeshScenario(n=n, delta=delta, seed=seed)
                runs.append(run_one(scenario, MMPolicy(), horizon=horizon))
                runs.append(run_one(scenario, IMPolicy(), horizon=horizon))
    return runs


def run_invalid_bound_control(
    seed: int = 4, horizon: float = 1800.0
) -> CorrectnessRun:
    """Control: a clock violating its claimed δ breaks IM's correctness.

    One server's actual skew is 20× its claimed bound; IM's intersection
    confidently excludes the true time (the Figure 3 mechanism).
    """
    scenario = MeshScenario(
        n=4,
        delta=1e-5,
        skews=[0.0, 5e-6, -5e-6, 2e-4],  # S4 races past its claimed 1e-5
        seed=seed,
    )
    return run_one(scenario, IMPolicy(), horizon=horizon)


def main() -> None:
    """Print the suite verdicts."""
    from ..analysis.plots import render_table

    rows = []
    for result in run_suite():
        rows.append(
            [
                result.policy_name,
                result.scenario.n,
                result.scenario.delta,
                result.scenario.seed,
                result.samples,
                result.violations,
            ]
        )
    print("Theorems 1 & 5 — correctness preservation (expect 0 violations)")
    print(
        render_table(
            ["policy", "n", "δ", "seed", "samples", "violations"], rows
        )
    )
    control = run_invalid_bound_control()
    print(
        f"\nControl (invalid bound, IM): {control.violations} violating "
        f"samples out of {control.samples} — correctness is *not* preserved "
        "when a δ is invalid, as the paper warns."
    )


if __name__ == "__main__":
    main()
