"""Figure 3 — a consistent state where MM recovers correctness and IM does not.

The figure's state: three mutually consistent servers, but only S1 and S3
are *correct* (S2's interval has drifted past the true time because its
actual rate exceeded its claimed bound).  The paper: "Under MM, a server
would choose S3, while under IM, a server would choose the incorrect
interval S2 ∩ S3.  Algorithm IM is particularly susceptible to servers
drifting slightly slower or faster than their assumed maximum drift rates."

This experiment rebuilds the state and runs one synchronization decision
under each algorithm from S1's point of view, confirming:

* the service is pairwise consistent (no inconsistency alarm fires);
* MM ends on S3's interval — which contains the true time;
* IM ends on (a sub-interval of) S2 ∩ S3 — which excludes the true time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.plots import render_intervals
from ..core.im import IMPolicy
from ..core.intervals import TimeInterval, pairwise_consistent
from ..core.mm import MMPolicy
from ..core.sync import LocalState, Reply

#: The true time of the figure (the dashed line).
TRUE_TIME = 10.0

#: The drawn state: name -> (clock value C, maximum error E).
FIGURE3_STATE: Dict[str, tuple[float, float]] = {
    "S1": (9.70, 0.80),  # correct, wide
    "S2": (9.30, 0.65),  # INCORRECT: [8.65, 9.95] misses t=10
    "S3": (9.85, 0.30),  # correct, smallest error
}

#: δ used by the deciding server (value is immaterial at rtt = 0).
DELTA = 1e-5


@dataclass(frozen=True)
class Figure3Result:
    """Both algorithms' outcomes from the same state.

    Attributes:
        intervals: The drawn intervals.
        consistent: Whether the state is pairwise consistent (it is — that
            is the point of the figure).
        mm_interval: S1's interval after its MM round.
        im_interval: S1's interval after its IM round.
        mm_correct: Oracle — MM's result contains the true time.
        im_correct: Oracle — IM's result contains the true time.
        mm_source: The server MM ended on.
        im_source: The servers defining IM's interval edges.
        diagram: ASCII rendering of the initial state.
    """

    intervals: Dict[str, TimeInterval]
    consistent: bool
    mm_interval: TimeInterval
    im_interval: TimeInterval
    mm_correct: bool
    im_correct: bool
    mm_source: str
    im_source: str
    diagram: str


def run(state: Dict[str, tuple[float, float]] | None = None) -> Figure3Result:
    """Run one MM and one IM decision from S1's point of view."""
    if state is None:
        state = FIGURE3_STATE
    intervals = {
        name: TimeInterval.from_center_error(value, error)
        for name, (value, error) in state.items()
    }
    consistent = pairwise_consistent(list(intervals.values()))

    c1, e1 = state["S1"]
    replies = [
        Reply(server=name, clock_value=value, error=error, rtt_local=0.0)
        for name, (value, error) in state.items()
        if name != "S1"
    ]

    # --- MM: evaluate replies in arrival order, tracking resets.
    mm = MMPolicy()
    local = LocalState(clock_value=c1, error=e1, delta=DELTA)
    mm_source = "S1"
    for reply in replies:
        outcome = mm.on_reply(local, reply)
        if outcome.decision is not None:
            local = LocalState(
                clock_value=outcome.decision.clock_value,
                error=outcome.decision.inherited_error,
                delta=DELTA,
            )
            mm_source = outcome.decision.source
    mm_interval = local.interval

    # --- IM: one batch round over the same replies.
    im = IMPolicy()
    im_state = LocalState(clock_value=c1, error=e1, delta=DELTA)
    im_outcome = im.on_round_complete(im_state, replies)
    assert im_outcome.consistent and im_outcome.decision is not None
    im_interval = TimeInterval.from_center_error(
        im_outcome.decision.clock_value, im_outcome.decision.inherited_error
    )

    return Figure3Result(
        intervals=intervals,
        consistent=consistent,
        mm_interval=mm_interval,
        im_interval=im_interval,
        mm_correct=mm_interval.contains(TRUE_TIME),
        im_correct=im_interval.contains(TRUE_TIME),
        mm_source=mm_source,
        im_source=im_outcome.decision.source,
        diagram=render_intervals(intervals, true_time=TRUE_TIME),
    )


def main() -> None:
    """Print the reproduced figure and both algorithms' outcomes."""
    result = run()
    print("Figure 3 — consistent but partially incorrect state")
    print(result.diagram)
    print(f"\npairwise consistent: {result.consistent}")
    print(
        f"MM resets to {result.mm_source}: {result.mm_interval} "
        f"-> correct = {result.mm_correct}"
    )
    print(
        f"IM resets to {result.im_source}: {result.im_interval} "
        f"-> correct = {result.im_correct}"
    )
    print(
        "\nPaper's claim reproduced: MM recovers correctness, IM locks onto "
        "the incorrect intersection."
    )


if __name__ == "__main__":
    main()
