"""Scale gauntlet: Figure-1-class MM-vs-IM runs at 1k–50k servers.

The kernel's reason to exist: run the paper's synchronization dynamics on a
planet-scale stratum hierarchy (:func:`repro.network.topology.
stratum_hierarchy`) and check that the paper's *laws* survive the scale-up:

* **Lemma 1** — between resets an error bound grows at the drift ceiling
  ``δ``; no stratum's mean error may grow faster than ``δ_stratum · τ`` per
  cycle once the service reaches steady state.
* **Theorem 8** — intersecting all neighbour replies (rule IM-2) yields an
  expected error no worse than adopting the best single master (rule MM-2);
  the gauntlet compares matched MM and IM arms per size and seed.
* **Consistency** — every pair of neighbouring interval estimates should
  mutually intersect (the paper's Section 4 consistency relation); the
  census runs :func:`repro.kernel.marzullo_vec.intersect_tolerating_vec`
  over every server's stacked neighbour intervals at once, which at 10k+
  servers is itself a kernel workload (and exercises the ragged-row path,
  since strata have different degrees).

Each run reports throughput (events/sec) so the scale trajectory is visible
next to the `BENCH_engine.json` arms.  Runs use the bulk kernel; shard and
process counts are parameters so the nightly soak exercises the exchange
path too.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..kernel import build_kernel_service, intersect_tolerating_vec
from ..network.delay import UniformDelay
from ..network.topology import stratum_hierarchy, stratum_of
from ..service.builder import ServerSpec

__all__ = [
    "StratumReport",
    "ScaleRunOutcome",
    "build_specs",
    "run_scale",
    "main",
]

BASE_DELTA = 1e-5  # stratum-1 drift ceiling; deeper strata drift worse
BASE_ERROR = 1e-3  # stratum-1 initial error bound (seconds)
ONE_WAY = 0.01  # uniform one-way delay bound (xi = 0.02 s)
DEFAULT_TAU = 60.0
DEFAULT_CYCLES = 8


@dataclass(frozen=True)
class StratumReport:
    """Per-stratum error statistics for one run."""

    stratum: int
    servers: int
    mean_error: float
    max_error: float
    growth_per_tau: float  # measured steady-state growth, s per cycle
    lemma1_ceiling: float  # delta_stratum * tau — the unsynchronized rate
    ok: bool  # growth_per_tau <= lemma1_ceiling (+ float slack)


@dataclass(frozen=True)
class ScaleRunOutcome:
    """One (size, policy, seed) cell of the gauntlet."""

    size: int
    policy: str
    seed: int
    shards: int
    processes: int
    tau: float
    cycles_done: int
    events: int
    wall_seconds: float
    events_per_sec: float
    mean_error: float
    max_error: float
    census_fraction: float  # servers whose neighbour intervals all intersect
    state_digest: int
    strata: List[StratumReport] = field(default_factory=list)

    @property
    def growth_ok(self) -> bool:
        return all(s.ok for s in self.strata)


def build_specs(graph) -> List[ServerSpec]:
    """Per-stratum specs: deeper strata have worse oscillators and start
    with larger inherited error, the Section 5 stratum picture."""
    specs = []
    for idx, name in enumerate(sorted(graph.nodes)):
        stratum = stratum_of(name)
        delta = BASE_DELTA * stratum
        skew = ((-1) ** idx) * 0.8 * delta * ((idx % 11) + 1) / 11.0
        specs.append(
            ServerSpec(
                name=name,
                delta=delta,
                skew=skew,
                initial_error=BASE_ERROR * stratum,
            )
        )
    return specs


def _census(graph, snapshot) -> float:
    """Fraction of servers whose neighbour intervals mutually intersect.

    Stacks each server's neighbour intervals ``<C_j − E_j, C_j + E_j>`` as
    one ragged batch and runs the zero-fault tolerant intersection over all
    rows at once.
    """
    names = sorted(graph.nodes)
    degrees = {name: len(list(graph.neighbors(name))) for name in names}
    max_deg = max(degrees.values())
    lo = np.zeros((len(names), max_deg))
    hi = np.zeros((len(names), max_deg))
    valid = np.zeros((len(names), max_deg), dtype=bool)
    for i, name in enumerate(names):
        for q, nbr in enumerate(sorted(graph.neighbors(name))):
            value = snapshot.values[nbr]
            error = snapshot.errors[nbr]
            lo[i, q] = value - error
            hi[i, q] = value + error
            valid[i, q] = True
    batch = intersect_tolerating_vec(lo, hi, faults=0, valid=valid)
    return float(batch.ok.mean())


def run_scale(
    size: int,
    policy_name: str,
    seed: int,
    *,
    shards: int = 4,
    processes: int = 0,
    tau: float = DEFAULT_TAU,
    cycles: int = DEFAULT_CYCLES,
) -> ScaleRunOutcome:
    """Run one cell: a ``size``-server stratum hierarchy under MM or IM."""
    policy = MMPolicy() if policy_name.upper() == "MM" else IMPolicy()
    graph = stratum_hierarchy(size)
    specs = build_specs(graph)
    horizon = cycles * tau
    mid = (cycles // 2) * tau
    service = build_kernel_service(
        graph,
        specs,
        policy=policy,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(ONE_WAY),
        mode="bulk",
        shards=shards,
        processes=processes,
        trace_enabled=False,
    )
    try:
        start = time.perf_counter()
        service.run_until(mid)
        mid_snapshot = service.snapshot()
        service.run_until(horizon)
        wall = time.perf_counter() - start
        snapshot = service.snapshot()
        digest = service.state_digest()
        cycles_done = service.cycles_done
        events = service.events_processed
    finally:
        service.close()

    by_stratum: Dict[int, List[str]] = {}
    for name in snapshot.values:
        by_stratum.setdefault(stratum_of(name), []).append(name)
    elapsed_cycles = max(1.0, (horizon - mid) / tau)
    strata = []
    for stratum in sorted(by_stratum):
        members = by_stratum[stratum]
        errors = [snapshot.errors[name] for name in members]
        mid_errors = [mid_snapshot.errors[name] for name in members]
        growth = (float(np.mean(errors)) - float(np.mean(mid_errors))) / elapsed_cycles
        ceiling = BASE_DELTA * stratum * tau
        strata.append(
            StratumReport(
                stratum=stratum,
                servers=len(members),
                mean_error=float(np.mean(errors)),
                max_error=float(np.max(errors)),
                growth_per_tau=growth,
                lemma1_ceiling=ceiling,
                ok=growth <= ceiling * (1.0 + 1e-9) + 1e-12,
            )
        )
    errors = np.array([snapshot.errors[name] for name in snapshot.values])
    return ScaleRunOutcome(
        size=size,
        policy=policy_name.upper(),
        seed=seed,
        shards=shards,
        processes=processes,
        tau=tau,
        cycles_done=cycles_done,
        events=events,
        wall_seconds=wall,
        events_per_sec=events / wall if wall > 0 else 0.0,
        mean_error=float(errors.mean()),
        max_error=float(errors.max()),
        census_fraction=_census(graph, snapshot),
        state_digest=digest,
        strata=strata,
    )


def main(
    *,
    sizes: Sequence[int] = (1000, 10000),
    seeds: Sequence[int] = (0,),
    shards: int = 4,
    processes: int = 0,
    tau: float = DEFAULT_TAU,
    cycles: int = DEFAULT_CYCLES,
    json_path: Optional[str] = None,
) -> bool:
    """Run the MM-vs-IM matrix, print the report, return pass/fail.

    Pass requires, for every cell: a completed run, a neighbour-interval
    census of at least 99%, and no stratum growing its mean error faster
    than the Lemma 1 drift ceiling; plus, per (size, seed), the Theorem 8
    comparison — IM's mean error must not exceed MM's.
    """
    from ..analysis.plots import render_table

    outcomes: List[ScaleRunOutcome] = []
    for size in sizes:
        for seed in seeds:
            for policy_name in ("MM", "IM"):
                outcomes.append(
                    run_scale(
                        size,
                        policy_name,
                        seed,
                        shards=shards,
                        processes=processes,
                        tau=tau,
                        cycles=cycles,
                    )
                )

    theorem8: List[Dict[str, object]] = []
    for size in sizes:
        for seed in seeds:
            mm = next(
                o for o in outcomes
                if o.size == size and o.seed == seed and o.policy == "MM"
            )
            im = next(
                o for o in outcomes
                if o.size == size and o.seed == seed and o.policy == "IM"
            )
            theorem8.append(
                {
                    "size": size,
                    "seed": seed,
                    "mm_mean_error": mm.mean_error,
                    "im_mean_error": im.mean_error,
                    "im_no_worse": im.mean_error <= mm.mean_error,
                }
            )

    ok = all(
        o.census_fraction >= 0.99 and o.growth_ok for o in outcomes
    ) and all(row["im_no_worse"] for row in theorem8)

    print(
        f"scale gauntlet: stratum hierarchies at {list(sizes)} servers, "
        f"MM vs IM, τ={tau:g}s, {cycles} cycles, {shards} shard(s), "
        f"{processes} process(es)"
    )
    print(
        render_table(
            [
                "size",
                "policy",
                "seed",
                "cycles",
                "events",
                "events/s",
                "mean E",
                "max E",
                "census",
                "growth ok",
                "digest",
            ],
            [
                [
                    o.size,
                    o.policy,
                    o.seed,
                    o.cycles_done,
                    o.events,
                    f"{o.events_per_sec:,.0f}",
                    f"{o.mean_error * 1e3:.3f} ms",
                    f"{o.max_error * 1e3:.3f} ms",
                    f"{o.census_fraction:.3f}",
                    "yes" if o.growth_ok else "NO",
                    f"{o.state_digest:08x}",
                ]
                for o in outcomes
            ],
        )
    )
    print("\nTheorem 8 (IM mean error <= MM mean error, matched runs):")
    print(
        render_table(
            ["size", "seed", "MM mean E", "IM mean E", "IM no worse"],
            [
                [
                    row["size"],
                    row["seed"],
                    f"{row['mm_mean_error'] * 1e3:.3f} ms",
                    f"{row['im_mean_error'] * 1e3:.3f} ms",
                    "yes" if row["im_no_worse"] else "NO",
                ]
                for row in theorem8
            ],
        )
    )
    largest = max(outcomes, key=lambda o: o.size)
    print(
        f"\nlargest run: {largest.size} servers at "
        f"{largest.events_per_sec:,.0f} events/s "
        f"({largest.events} events in {largest.wall_seconds:.2f}s wall)."
    )
    print("PASS" if ok else "FAIL")

    if json_path:
        report = {
            "experiment": "scale_gauntlet",
            "sizes": list(sizes),
            "seeds": list(seeds),
            "shards": shards,
            "processes": processes,
            "tau": tau,
            "cycles": cycles,
            "ok": ok,
            "theorem8": theorem8,
            "runs": [asdict(o) for o in outcomes],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_path}")
    return ok


if __name__ == "__main__":
    main()
