"""Figure 4 repaired — the self-stabilizing layer re-merges the groups.

The ``partition`` experiment shows Section 5's breakdown: with two
incorrect servers adjacent to G1, the paper's "any third server" recovery
rule adopts a liar and the service splits into consistency groups that
never re-merge.  This experiment runs the same topology with the badness
injected through the faults DSL (so the invariant monitor knows which
servers are *supposed* to be wrong and when) and compares two arms:

* **plain** — the paper's servers with :class:`~repro.core.recovery.
  ThirdServerRecovery`: G1 is repeatedly poisoned and the non-faulty
  servers end in two or more consistency groups (the Figure 4 state);
* **self-stabilizing** — :class:`~repro.recovery.server.
  SelfStabilizingServer` with :class:`~repro.recovery.stabilizer.
  SelfStabilizingRecovery`: the consonance veto and census-majority
  vetting keep the liars out of the arbiter pool, so every recovery
  merges G1 back into the good core and the non-faulty servers end in
  exactly one group — with zero monitor correctness violations outside
  the scheduled fault windows.

A second scenario, :func:`crash_soak`, exercises the durable-state leg:
seeded runs crash servers mid-flight and assert that every warm restart
(interval rebuilt from the stable store with the ρ·downtime inflation)
revives *correct*, and that a sabotaged checkpoint (bit rot + torn write)
falls back to the cold-start bootstrap instead of trusting bad state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from ..analysis.consistency_graph import ConsistencyGroup, consistency_groups
from ..core.mm import MMPolicy
from ..core.recovery import ThirdServerRecovery
from ..faults import (
    CheckpointCorruption,
    ClockRace,
    ClockStep,
    FaultSchedule,
    ServerCrash,
    TornCheckpoint,
    attach_chaos,
)
from ..network.delay import UniformDelay
from ..recovery import SelfStabilizingRecovery
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

#: Claimed bound for every server (~0.9 s/day).
CLAIMED_DELTA = 1e-5

#: The non-faulty servers (the acceptance set for the repair).
GOOD = ("G1", "G2", "G3", "G4")

#: The servers the schedule makes incorrect.
BAD = ("B1", "B2")

#: Honest skews — everyone is within the claim until the DSL says otherwise.
SKEWS = {
    "B1": +2e-6,
    "B2": -1e-6,
    "G1": +2e-6,
    "G2": -2e-6,
    "G3": 0.0,
    "G4": +1e-6,
}

#: When the bad clocks start racing (and at what rates — far beyond the
#: claim, different from each other, so B1 and B2 are mutually inconsistent).
RACE_START = 60.0
RACE_SKEWS = {"B1": +5e-3, "B2": -4e-3}

#: G1's clock silently jumps mid-run, forcing a full group re-merge.
STEP_AT = 1800.0
STEP_OFFSET = 0.5


def _breakdown_topology() -> nx.Graph:
    """G1 adjacent to both bad servers; good core is a triangle."""
    graph = nx.Graph()
    graph.add_edges_from(
        [
            ("G1", "B1"),
            ("G1", "B2"),
            ("G1", "G2"),
            ("G2", "G3"),
            ("G3", "G4"),
            ("G2", "G4"),
        ]
    )
    return graph


def _breakdown_schedule(horizon: float) -> FaultSchedule:
    """The DSL rendering of the Figure 4 scenario."""
    schedule = FaultSchedule()
    for name, skew in RACE_SKEWS.items():
        schedule.add(
            ClockRace(
                at=RACE_START, server=name, skew=skew, duration=horizon - RACE_START
            )
        )
    schedule.add(ClockStep(at=STEP_AT, server="G1", offset=STEP_OFFSET))
    return schedule


@dataclass(frozen=True)
class RepairResult:
    """Outcome of one arm of the repair scenario.

    Attributes:
        self_stabilizing: Which arm this is.
        groups_all: Final consistency groups over all six servers.
        groups_good: Final consistency groups over the non-faulty servers
            only — the acceptance metric (1 == repaired, ≥2 == Figure 4).
        merged: Whether the non-faulty servers ended in a single group.
        total_recoveries: All recovery resets over the run.
        poisoned_recoveries: Recovery resets whose arbiter was a bad server.
        correctness_violations: Monitor correctness breaches *outside*
            fault windows and taint (the monitor exempts scheduled faults).
        consistency_violations: Same, for pairwise consistency.
        g1_final_offset: ``|C_G1 - t|`` at the end.
        core_still_correct: Oracle — the untouched core (G2–G4) stayed
            correct.
        census_detected_split: Whether any server's live census held a
            fresh "inconsistent" verdict on a good-good pair at some
            sample (the online Figure 4 detector firing).  None in the
            plain arm (no census exists).
        census_detection_time: First sample time the census saw the split.
        census_clean_at_end: Whether the final census holds no stale
            split among the good servers (the detector standing down
            after the merge).  None in the plain arm.
        final_epochs: Merge epoch by server at the end (plain arm: empty).
    """

    self_stabilizing: bool
    groups_all: List[ConsistencyGroup]
    groups_good: List[ConsistencyGroup]
    merged: bool
    total_recoveries: int
    poisoned_recoveries: int
    correctness_violations: int
    consistency_violations: int
    g1_final_offset: float
    core_still_correct: bool
    census_detected_split: Optional[bool]
    census_detection_time: Optional[float]
    census_clean_at_end: Optional[bool]
    final_epochs: Dict[str, int]


def _good_split_seen(service) -> bool:
    """Whether G2's live census currently condemns a good-good edge."""
    observer = service.servers["G2"]
    verdicts = observer.census.edge_verdicts(observer.clock_value())
    good = set(GOOD)
    return any(
        not ok for pair, ok in verdicts.items() if pair <= good
    )


def run(
    self_stabilizing: bool,
    tau: float = 120.0,
    horizon: float = 2.0 * 3600.0,
    seed: int = 13,
) -> RepairResult:
    """Run one arm of the DSL-driven breakdown scenario.

    Args:
        self_stabilizing: False builds the paper's plain servers with
            :class:`~repro.core.recovery.ThirdServerRecovery`; True builds
            the full recovery subsystem.
    """
    names = sorted(SKEWS)
    specs = [
        ServerSpec(
            name,
            delta=CLAIMED_DELTA,
            skew=SKEWS[name],
            self_stabilizing=self_stabilizing,
        )
        for name in names
    ]
    if self_stabilizing:
        recovery_factory = lambda name: SelfStabilizingRecovery()  # noqa: E731
    else:
        recovery_factory = lambda name: ThirdServerRecovery()  # noqa: E731
    service = build_service(
        _breakdown_topology(),
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.02),
        recovery_factory=recovery_factory,
        trace_enabled=True,
    )
    schedule = _breakdown_schedule(horizon)
    injector, monitor = attach_chaos(service, schedule)

    detected: Optional[bool] = None
    detection_time: Optional[float] = None
    if self_stabilizing:
        detected = False
    final = None
    for t in grid(0.0, horizon, 120):
        service.run_until(t)
        final = service.snapshot()
        if self_stabilizing and not detected and _good_split_seen(service):
            detected = True
            detection_time = t

    intervals = final.intervals()
    groups_all = consistency_groups(intervals)
    groups_good = consistency_groups(
        {name: intervals[name] for name in GOOD}
    )

    recoveries = service.trace.filter(
        kind="reset",
        predicate=lambda row: row.data.get("reset_kind") == "recovery",
    )
    bad = set(BAD)
    poisoned = sum(
        1
        for row in recoveries
        if row.data.get("from_server", "").removeprefix("recovery:") in bad
    )

    if self_stabilizing:
        census_clean = not _good_split_seen(service)
        epochs = {
            name: service.servers[name].epoch for name in names
        }
    else:
        census_clean = None
        epochs = {}

    core = {"G2", "G3", "G4"}
    return RepairResult(
        self_stabilizing=self_stabilizing,
        groups_all=groups_all,
        groups_good=groups_good,
        merged=len(groups_good) == 1,
        total_recoveries=len(recoveries),
        poisoned_recoveries=poisoned,
        correctness_violations=monitor.stats.correctness_violations,
        consistency_violations=monitor.stats.consistency_violations,
        g1_final_offset=abs(final.offsets["G1"]),
        core_still_correct=all(final.correct[name] for name in core),
        census_detected_split=detected,
        census_detection_time=detection_time,
        census_clean_at_end=census_clean,
        final_epochs=epochs,
    )


@dataclass(frozen=True)
class RepairComparison:
    """Both arms of the scenario, with the acceptance verdicts.

    Attributes:
        plain: The paper's rule — expected to end in the Figure 4 state.
        stabilized: The recovery subsystem — expected to end merged.
        figure4_reproduced: Plain arm ended with ≥2 groups of non-faulty
            servers.
        repaired: Stabilized arm ended with exactly one group of
            non-faulty servers and zero correctness violations outside
            fault windows.
    """

    plain: RepairResult
    stabilized: RepairResult
    figure4_reproduced: bool
    repaired: bool


def run_comparison(
    tau: float = 120.0, horizon: float = 2.0 * 3600.0, seed: int = 13
) -> RepairComparison:
    """Run the scenario with and without the self-stabilizing layer."""
    plain = run(False, tau=tau, horizon=horizon, seed=seed)
    stabilized = run(True, tau=tau, horizon=horizon, seed=seed)
    return RepairComparison(
        plain=plain,
        stabilized=stabilized,
        figure4_reproduced=len(plain.groups_good) >= 2,
        repaired=(
            stabilized.merged
            and stabilized.correctness_violations == 0
        ),
    )


# --------------------------------------------------------------- crash soak


@dataclass(frozen=True)
class SoakReport:
    """One seeded crash-restart run, scored.

    Attributes:
        seed: The run's root seed.
        restarts: Total restarts observed.
        warm_restarts: Restarts rebuilt from a checkpoint.
        cold_restarts: Restarts that fell back to the bootstrap (the
            sabotaged-checkpoint server must land here).
        warm_all_correct: Every warm restart revived with an interval
            containing true time — the acceptance oracle.
        all_correct: Every restart (warm or cold) revived correct.
        correctness_violations: Monitor breaches outside fault windows.
    """

    seed: int
    restarts: int
    warm_restarts: int
    cold_restarts: int
    warm_all_correct: bool
    all_correct: bool
    correctness_violations: int


def run_soak(
    seed: int, tau: float = 60.0, horizon: float = 3600.0
) -> SoakReport:
    """One crash-restart soak: a good mesh, three crashes, one sabotage.

    S2 and S3 crash with intact checkpoints (warm-restart path); S4's
    checkpoint is bit-rotted *and* its next write torn just before its
    crash, so its restart must detect the damage and come back cold.
    """
    rng = np.random.default_rng(seed)
    names = ["S1", "S2", "S3", "S4"]
    skews = {"S1": +2e-6, "S2": -2e-6, "S3": +1e-6, "S4": -1e-6}
    specs = [
        ServerSpec(
            name,
            delta=CLAIMED_DELTA,
            skew=skews[name],
            self_stabilizing=True,
        )
        for name in names
    ]
    service = build_service(
        nx.complete_graph(names),
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.02),
        recovery_factory=lambda name: SelfStabilizingRecovery(),
        trace_enabled=True,
    )
    schedule = FaultSchedule()
    for name in ("S2", "S3", "S4"):
        at = float(rng.uniform(900.0, horizon - 900.0))
        downtime = float(rng.uniform(60.0, 300.0))
        schedule.add(
            ServerCrash(at=at, server=name, downtime=downtime, rejoin_error=2.0)
        )
        if name == "S4":
            # Bit rot *and* an armed torn write: whether or not another
            # checkpoint lands before the crash, the slot is unusable and
            # the restart must take the cold path.
            schedule.add(CheckpointCorruption(at=at - 0.5, server=name))
            schedule.add(TornCheckpoint(at=at - 0.5, server=name))
    injector, monitor = attach_chaos(service, schedule)
    service.run_until(horizon)

    reports = [
        report
        for name in names
        for report in service.servers[name].restart_reports
    ]
    warm = [report for report in reports if report.warm]
    cold = [report for report in reports if not report.warm]
    return SoakReport(
        seed=seed,
        restarts=len(reports),
        warm_restarts=len(warm),
        cold_restarts=len(cold),
        warm_all_correct=all(report.correct for report in warm),
        all_correct=all(report.correct for report in reports),
        correctness_violations=monitor.stats.correctness_violations,
    )


def crash_soak(
    seeds=(1, 2, 3, 4, 5), tau: float = 60.0, horizon: float = 3600.0
) -> List[SoakReport]:
    """The crash-restart soak across several seeds."""
    return [run_soak(seed, tau=tau, horizon=horizon) for seed in seeds]


# --------------------------------------------------------------- reporting


def report_dict(
    comparison: RepairComparison, soak: List[SoakReport]
) -> dict:
    """A JSON-ready artefact of the whole experiment (for CI uploads)."""

    def arm(result: RepairResult) -> dict:
        return {
            "self_stabilizing": result.self_stabilizing,
            "groups_good": [list(g.members) for g in result.groups_good],
            "merged": result.merged,
            "total_recoveries": result.total_recoveries,
            "poisoned_recoveries": result.poisoned_recoveries,
            "correctness_violations": result.correctness_violations,
            "consistency_violations": result.consistency_violations,
            "g1_final_offset": result.g1_final_offset,
            "core_still_correct": result.core_still_correct,
            "census_detected_split": result.census_detected_split,
            "census_detection_time": result.census_detection_time,
            "census_clean_at_end": result.census_clean_at_end,
            "final_epochs": result.final_epochs,
        }

    return {
        "figure4_reproduced": comparison.figure4_reproduced,
        "repaired": comparison.repaired,
        "plain": arm(comparison.plain),
        "stabilized": arm(comparison.stabilized),
        "crash_soak": [
            {
                "seed": row.seed,
                "restarts": row.restarts,
                "warm_restarts": row.warm_restarts,
                "cold_restarts": row.cold_restarts,
                "warm_all_correct": row.warm_all_correct,
                "all_correct": row.all_correct,
                "correctness_violations": row.correctness_violations,
            }
            for row in soak
        ],
    }


def main(json_path: Optional[str] = None) -> None:
    """Print the repair comparison and the crash soak."""
    comparison = run_comparison()
    print("Figure 4 repair — plain third-server rule vs self-stabilizing layer")
    for result in (comparison.plain, comparison.stabilized):
        arm = "self-stabilizing" if result.self_stabilizing else "plain"
        print(f"\n  [{arm}]")
        print(
            f"    non-faulty consistency groups at end: "
            f"{len(result.groups_good)}"
        )
        for group in result.groups_good:
            print(f"      {{{', '.join(group.members)}}}")
        print(
            f"    recoveries: {result.total_recoveries} "
            f"(poisoned: {result.poisoned_recoveries})"
        )
        print(
            f"    monitor violations outside fault windows: "
            f"correctness={result.correctness_violations} "
            f"consistency={result.consistency_violations}"
        )
        print(f"    G1 final offset: {result.g1_final_offset:.3f} s")
        if result.self_stabilizing:
            print(
                f"    census detected the split: "
                f"{result.census_detected_split} "
                f"(t={result.census_detection_time}); "
                f"clean at end: {result.census_clean_at_end}"
            )
            print(f"    final epochs: {result.final_epochs}")
    print(f"\n  Figure 4 reproduced by plain rule: {comparison.figure4_reproduced}")
    print(f"  repaired by self-stabilizing layer: {comparison.repaired}")

    soak = crash_soak()
    print("\nCrash-restart soak (warm restores must revive correct):")
    for row in soak:
        print(
            f"  seed {row.seed}: {row.restarts} restarts "
            f"({row.warm_restarts} warm, {row.cold_restarts} cold), "
            f"warm all correct: {row.warm_all_correct}, "
            f"monitor correctness violations: {row.correctness_violations}"
        )

    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report_dict(comparison, soak), handle, indent=2)
        print(f"\nreport written to {json_path}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default=None, help="also write the report as JSON here"
    )
    main(json_path=parser.parse_args().json)
