"""Delay asymmetry: the failure mode intervals are immune to.

Every point-timestamp synchronization algorithm that compensates delay with
the round-trip midpoint (Cristian's trick, used by our [Lamport 78]/
[Lamport 82] baselines and by NTP's point estimate) silently assumes
σ ≈ ρ: that the request and reply legs are comparable.  An asymmetric path
— one congested direction, a satellite uplink, token-bucket shaping —
injects a *systematic, undetectable* bias of ``(ρ - σ)/2`` into every
measurement.

The paper's interval exchange never makes that assumption: rule IM-2's
transformation widens only the leading edge by the whole round trip, so the
interval stays *correct* under any split of the delay between the legs; the
cost of asymmetry is only a (bounded) accuracy bias inside the interval,
never a correctness violation.

The experiment runs the same service — one reference, four drifting servers
— on a symmetric network and on one whose reply legs are 20× slower than
its request legs, under IM and under the midpoint baselines, and scores
oracle offsets and correctness.

Expected shape: on the asymmetric network the baselines acquire a
systematic offset about half the leg difference, while IM's servers stay
*correct* (oracle inside the claimed interval) with offsets bounded by
their claimed errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..baselines.averaging import MeanPolicy, MedianPolicy
from ..baselines.first_reply import FirstReplyPolicy
from ..core.im import IMPolicy
from ..core.sync import SynchronizationPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

#: Request-leg one-way bound (fast direction).
FAST_LEG = 0.002

#: Reply-leg one-way bound on the asymmetric network (slow direction).
SLOW_LEG = 0.040

POLICIES: Dict[str, type] = {
    "IM": IMPolicy,
    "median": MedianPolicy,
    "mean": MeanPolicy,
    "first-reply": FirstReplyPolicy,
}


@dataclass(frozen=True)
class AsymmetryRow:
    """One (policy, network) cell.

    Attributes:
        policy: Policy name.
        asymmetric: Whether reply legs were 20× slower.
        mean_offset: Mean signed oracle offset of the polling servers —
            the systematic bias midpoint compensation picks up.
        worst_offset: Worst |offset|.
        correct: Oracle: every sampled interval contained the true time.
    """

    policy: str
    asymmetric: bool
    mean_offset: float
    worst_offset: float
    correct: bool


def _run_cell(
    policy: SynchronizationPolicy,
    policy_name: str,
    asymmetric: bool,
    *,
    n: int = 5,
    tau: float = 60.0,
    horizon: float = 1800.0,
    seed: int = 47,
) -> AsymmetryRow:
    names = [f"S{k + 1}" for k in range(n)]
    specs = [ServerSpec(names[0], reference=True, initial_error=0.001)]
    for k in range(1, n):
        specs.append(
            ServerSpec(
                names[k],
                delta=1e-5,
                skew=0.8e-5 * (2.0 * k / (n - 1) - 1.0),
            )
        )
    service = build_service(
        full_mesh(n),
        specs,
        policy=policy,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(FAST_LEG),
        trace_enabled=False,
    )
    if asymmetric:
        # Reverse legs (reply direction for canonical-order requests) are
        # 20x slower on every link.
        for a in names:
            for b in names:
                if a < b:
                    service.network.link(a, b).reverse_delay = UniformDelay(SLOW_LEG)
    snapshots = service.sample(grid(horizon / 2, horizon, 30))
    polling = names[1:]
    offsets = [snap.offsets[name] for snap in snapshots for name in polling]
    correct = all(
        snap.correct[name] for snap in snapshots for name in polling
    )
    return AsymmetryRow(
        policy=policy_name,
        asymmetric=asymmetric,
        mean_offset=float(np.mean(offsets)),
        worst_offset=float(np.max(np.abs(offsets))),
        correct=correct,
    )


def run(horizon: float = 1800.0, seed: int = 47) -> List[AsymmetryRow]:
    """The full policy × symmetry matrix."""
    rows = []
    for name, policy_class in POLICIES.items():
        for asymmetric in (False, True):
            rows.append(
                _run_cell(
                    policy_class(),
                    name,
                    asymmetric,
                    horizon=horizon,
                    seed=seed,
                )
            )
    return rows


def main() -> None:
    """Print the matrix."""
    from ..analysis.plots import render_table

    rows = run()
    print(
        "Delay asymmetry — request legs "
        f"≤{FAST_LEG * 1e3:.0f} ms, reply legs ≤{SLOW_LEG * 1e3:.0f} ms "
        "when asymmetric"
    )
    print(
        render_table(
            ["policy", "asymmetric", "mean offset (s)", "worst |offset| (s)", "correct"],
            [
                [r.policy, r.asymmetric, r.mean_offset, r.worst_offset, r.correct]
                for r in rows
            ],
        )
    )
    print(
        "\nMidpoint compensation turns asymmetry into a systematic bias of "
        "about (ρ - σ)/2; the interval exchange never assumes symmetry, so "
        "IM stays correct — the bias is absorbed inside the claimed error."
    )


if __name__ == "__main__":
    main()
