"""Flash crowd — overload robustness of the time service's sync plane.

The paper's service model has infinite capacity: a server answers every
request instantly, so client traffic can never interfere with the MM-2 /
IM-2 poll rounds that keep the errors bounded.  Real servers have CPUs.
This experiment gives every server a finite request path (the
:mod:`repro.load` capacity model) and drives it with an open-loop Poisson
client workload that ramps from a calm base rate into a ~23× flash crowd,
comparing two arms on identical topology, clocks and seeds:

* **plain** — a single FIFO run queue with drop-tail overflow and no
  other defence (:meth:`~repro.load.server.LoadPolicy.plain`), queried by
  plain one-shot clients.  During the crowd the queue sits full of client
  requests, peer poll messages drown in it or are dropped, and rule
  MM-2's rounds stop completing: the invariant monitor's sync-plane
  progress assertion fires and every server's error ``E_i`` grows at the
  full drift bound ``δ`` until the crowd recedes — the paper's guarantee
  starved out by load the paper never modelled.

* **controlled** — the same capacity, defended: a priority queue that
  serves the sync plane first (evicting queued client work on overflow),
  a token-bucket admission limiter with retry-after hints, deadline-aware
  shedding, and a queue-delay EWMA that flips client answers to the
  *degraded* path — the cached ``⟨C₀, E₀⟩`` aged and served with its
  error inflated by ``δ·age/(1 − δ)``, rule MM-1's "answer with a large
  E" taken literally, so every degraded answer still contains true time.  Clients
  are :class:`~repro.load.client.ResilientTimeClient`\\ s (retries,
  breakers, hedging).  The acceptance bar: zero monitor violations of
  any kind, every degraded reply oracle-correct, and crowd-window
  goodput/p99 that dominate the plain arm.

Everything is driven by named RNG streams, so a seed fully determines
both arms; each arm result carries a digest over its counters to make
determinism checkable.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.im import IMPolicy
from ..faults.monitor import InvariantMonitor
from ..load import (
    BackoffPolicy,
    CapacityConfig,
    CircuitBreakerConfig,
    FlashCrowdProfile,
    LoadPolicy,
    ResilienceConfig,
    TokenBucketConfig,
    WorkloadGenerator,
)
from ..network.delay import UniformDelay
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

#: Claimed drift bound for every server (makes unsynced E growth visible
#: within a two-minute run).
CLAIMED_DELTA = 1e-3

#: The four time servers (a complete sync mesh).
SERVERS = ("S1", "S2", "S3", "S4")

#: Client hub nodes, each attached to every server.
CLIENT_NODES = ("C1", "C2")

#: Actual skews — all honest (|skew| < δ); overload, not lying, is the foe.
SKEWS = {"S1": +5e-4, "S2": -3e-4, "S3": +2e-4, "S4": -5e-4}

#: Poll period and per-round reply deadline.
TAU = 5.0
ROUND_TIMEOUT = 1.0

#: One-way LAN delay bound (uniform 0–10 ms).
ONE_WAY = 0.01

#: Run length and the offered-rate shape (per generator; two generators).
HORIZON = 120.0
PROFILE = FlashCrowdProfile(
    base_rate=15.0, crowd_rate=350.0, crowd_start=30.0, crowd_end=70.0, ramp=2.0
)

#: Monitor cadence and the sync-plane progress window (3τ).
MONITOR_PERIOD = 5.0
SYNC_WINDOW = 3.0 * TAU

#: The capacity physics, shared by both arms: 8 ms per fresh answer
#: (125 req/s), 1.5 ms per degraded answer, a 128-deep run queue.
SERVICE_TIME = 0.008
DEGRADED_TIME = 0.0015
QUEUE_LIMIT = 128


def _capacity(controlled: bool) -> CapacityConfig:
    """Same physics; only the queue *discipline* differs between arms."""
    return CapacityConfig(
        service_time=SERVICE_TIME,
        degraded_time=DEGRADED_TIME,
        queue_limit=QUEUE_LIMIT,
        prioritized=controlled,
        sync_evicts_client=controlled,
    )


def _load_policy(controlled: bool) -> LoadPolicy:
    if not controlled:
        return LoadPolicy.plain()
    return LoadPolicy(
        admission=TokenBucketConfig(rate=200.0, burst=40.0),
        shedding="deadline",
        shedding_kwargs={"deadline": 0.25},
        degraded=True,
        busy_replies=True,
    )


def _resilience() -> ResilienceConfig:
    return ResilienceConfig(
        max_attempts=4,
        attempt_timeout=0.3,
        backoff=BackoffPolicy(base=0.04, factor=2.0, max_delay=0.5, jitter=0.5),
        breaker=CircuitBreakerConfig(failure_threshold=4, reset_timeout=3.0),
        hedge_after=0.15,
        honor_retry_after=True,
    )


def _topology() -> nx.Graph:
    graph = nx.complete_graph(len(SERVERS))
    graph = nx.relabel_nodes(graph, dict(enumerate(SERVERS)))
    for hub in CLIENT_NODES:
        for server in SERVERS:
            graph.add_edge(hub, server)
    return graph


# --------------------------------------------------------------------- arms


@dataclass(frozen=True)
class ArmResult:
    """One arm of the comparison, fully summarised.

    Crowd-window metrics attribute each query to its *issue* time and
    cover only the full-rate plateau; latency percentiles include failed
    queries at the latency their failure took to surface.
    """

    arm: str
    seed: int
    issued: int
    completed: int
    failed: int
    crowd_issued: int
    crowd_good: int  # completed, correct, issued on the plateau
    goodput: float  # crowd_good per plateau second
    p50_latency: float
    p99_latency: float
    shed_rate: float  # shed or refused arrivals per crowd query
    busy_replies: int
    shed_silent: int
    sync_evictions: int
    sync_drops: int
    degraded_replies: int
    degraded_correct: int
    fresh_replies: int
    peak_queue_depth: int
    overload_onsets: int
    sync_plane_violations: int
    monitor_violations: int  # all categories
    monitor_checks: int
    min_replies_handled: int  # across servers — the starving arm's tell
    max_error_crowd: float  # peak service-wide E on the plateau
    max_error_final: float
    incorrect_results: int  # oracle: successful queries whose interval missed
    digest: str  # crc32 over the integer counters (determinism check)

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


def run_arm(
    controlled: bool,
    seed: int,
    *,
    horizon: float = HORIZON,
    profile: FlashCrowdProfile = PROFILE,
) -> ArmResult:
    """Run one arm and summarise it."""
    service = build_service(
        _topology(),
        [
            ServerSpec(
                name,
                delta=CLAIMED_DELTA,
                skew=SKEWS[name],
                initial_error=0.02,
            )
            for name in SERVERS
        ],
        policy=IMPolicy(),
        tau=TAU,
        seed=seed,
        lan_delay=UniformDelay(ONE_WAY),
        round_timeout=ROUND_TIMEOUT,
        capacity=_capacity(controlled),
        load_policy=_load_policy(controlled),
    )
    monitor = InvariantMonitor(
        service.engine,
        service.servers,
        service.trace,
        None,
        period=MONITOR_PERIOD,
        sync_window=SYNC_WINDOW,
    )
    monitor.start()

    generators = []
    clients = []
    for hub in CLIENT_NODES:
        resilience = _resilience() if controlled else None
        client = service.add_client(hub, timeout=1.0, resilience=resilience)
        client.start()
        clients.append(client)
        generator = WorkloadGenerator(
            service.engine,
            f"load/{hub}",
            client,
            SERVERS,
            profile,
            service.rng.stream(f"workload/{hub}"),
            stop_at=horizon,
            servers_per_ask=len(SERVERS) if controlled else 1,
        )
        generator.start()
        generators.append(generator)

    # Advance on a 1 s grid so the plateau's peak E is actually observed.
    max_error_crowd = 0.0
    for snapshot in service.sample(grid(0.0, horizon, int(horizon) + 1)):
        if profile.in_crowd(snapshot.time):
            max_error_crowd = max(max_error_crowd, snapshot.max_error)
    final = service.snapshot()

    # Each finished query: (issued_at, latency, correct, failed) — both
    # successes and explicit failures, attributed to their issue time.
    records: List[Tuple[float, float, bool, bool]] = []
    for client in clients:
        for result in list(client.results) + list(client.failures):
            records.append(
                (
                    result.true_time - result.latency,
                    result.latency,
                    result.correct,
                    result.failed,
                )
            )

    issued = sum(g.issued for g in generators)
    crowd_issued = sum(g.issued_in_crowd for g in generators)
    completed = sum(1 for _, _, _, failed in records if not failed)
    failed = sum(1 for _, _, _, f in records if f)
    incorrect = sum(
        1 for _, _, correct, f in records if not f and not correct
    )
    in_crowd = [r for r in records if profile.in_crowd(r[0])]
    crowd_good = sum(1 for _, _, correct, f in in_crowd if not f and correct)
    latencies = sorted(latency for _, latency, _, _ in in_crowd)

    def percentile(fraction: float) -> float:
        if not latencies:
            return math.nan
        index = min(len(latencies) - 1, int(fraction * (len(latencies) - 1)))
        return latencies[index]

    plateau = (profile.crowd_end - profile.ramp) - (
        profile.crowd_start + profile.ramp
    )
    busy = shed_silent = evictions = sync_drops = 0
    degraded = degraded_correct = fresh = peak_depth = onsets = 0
    min_replies = min(
        server.stats.replies_handled for server in service.servers.values()
    )
    for server in service.servers.values():
        stats = server.load_stats
        busy += stats.busy_replies
        shed_silent += stats.shed_silent
        evictions += stats.sync_evictions
        sync_drops += stats.sync_drops
        degraded += stats.degraded_replies
        degraded_correct += stats.degraded_correct
        fresh += stats.fresh_replies
        peak_depth = max(peak_depth, server.queue.stats.peak_depth)
        if server.detector is not None:
            onsets += server.detector.onsets
    shed_rate = (busy + shed_silent) / max(1, crowd_issued)

    counters = [
        issued,
        crowd_issued,
        completed,
        failed,
        busy,
        shed_silent,
        evictions,
        sync_drops,
        degraded,
        degraded_correct,
        fresh,
        peak_depth,
        monitor.stats.sync_plane_violations,
        monitor.stats.total_violations,
        min_replies,
    ]
    digest = f"{zlib.crc32(json.dumps(counters).encode()):08x}"

    return ArmResult(
        arm="controlled" if controlled else "plain",
        seed=seed,
        issued=issued,
        completed=completed,
        failed=failed,
        crowd_issued=crowd_issued,
        crowd_good=crowd_good,
        goodput=crowd_good / plateau,
        p50_latency=percentile(0.50),
        p99_latency=percentile(0.99),
        shed_rate=shed_rate,
        busy_replies=busy,
        shed_silent=shed_silent,
        sync_evictions=evictions,
        sync_drops=sync_drops,
        degraded_replies=degraded,
        degraded_correct=degraded_correct,
        fresh_replies=fresh,
        peak_queue_depth=peak_depth,
        overload_onsets=onsets,
        sync_plane_violations=monitor.stats.sync_plane_violations,
        monitor_violations=monitor.stats.total_violations,
        monitor_checks=monitor.stats.checks,
        min_replies_handled=min_replies,
        max_error_crowd=max_error_crowd,
        max_error_final=final.max_error,
        incorrect_results=incorrect,
        digest=digest,
    )


# -------------------------------------------------------------- comparison


@dataclass(frozen=True)
class Comparison:
    """Both arms under one seed, plus the acceptance verdicts."""

    seed: int
    plain: ArmResult
    controlled: ArmResult

    @property
    def plain_starved(self) -> bool:
        """The undefended arm's sync plane visibly suffered."""
        return self.plain.sync_plane_violations > 0

    @property
    def controlled_clean(self) -> bool:
        """The defended arm kept every invariant, crowd included."""
        return self.controlled.monitor_violations == 0

    @property
    def degraded_all_correct(self) -> bool:
        """Degraded mode engaged and never served a wrong interval."""
        return (
            self.controlled.degraded_replies > 0
            and self.controlled.degraded_correct
            == self.controlled.degraded_replies
        )

    @property
    def controlled_dominates(self) -> bool:
        """Crowd-window goodput and tail latency both favour defence."""
        return (
            self.controlled.goodput > self.plain.goodput
            and self.controlled.p99_latency < self.plain.p99_latency
        )

    @property
    def passed(self) -> bool:
        return (
            self.plain_starved
            and self.controlled_clean
            and self.degraded_all_correct
            and self.controlled_dominates
            and self.plain.incorrect_results == 0
            and self.controlled.incorrect_results == 0
        )


def run_comparison(
    seed: int,
    *,
    horizon: float = HORIZON,
    profile: FlashCrowdProfile = PROFILE,
) -> Comparison:
    """Both arms under one seed."""
    return Comparison(
        seed=seed,
        plain=run_arm(False, seed, horizon=horizon, profile=profile),
        controlled=run_arm(True, seed, horizon=horizon, profile=profile),
    )


def report_dict(comparisons: Sequence[Comparison]) -> Dict[str, object]:
    """The JSON artefact for CI soaks and notebooks."""
    return {
        "experiment": "flash_crowd",
        "tau": TAU,
        "delta": CLAIMED_DELTA,
        "profile": {
            "base_rate": PROFILE.base_rate,
            "crowd_rate": PROFILE.crowd_rate,
            "crowd_start": PROFILE.crowd_start,
            "crowd_end": PROFILE.crowd_end,
            "ramp": PROFILE.ramp,
            "generators": len(CLIENT_NODES),
        },
        "capacity": {
            "service_time": SERVICE_TIME,
            "degraded_time": DEGRADED_TIME,
            "queue_limit": QUEUE_LIMIT,
        },
        "seeds": [c.seed for c in comparisons],
        "passed": all(c.passed for c in comparisons),
        "comparisons": [
            {
                "seed": c.seed,
                "passed": c.passed,
                "plain_starved": c.plain_starved,
                "controlled_clean": c.controlled_clean,
                "degraded_all_correct": c.degraded_all_correct,
                "controlled_dominates": c.controlled_dominates,
                "plain": c.plain.to_dict(),
                "controlled": c.controlled.to_dict(),
            }
            for c in comparisons
        ],
    }


def main(
    json_path: Optional[str] = None,
    *,
    seeds: Sequence[int] = (11, 12, 13),
    horizon: float = HORIZON,
) -> bool:
    """Run the comparison across seeds; print a table; True iff all pass."""
    print("flash_crowd: open-loop client crowd vs the sync plane")
    print(
        f"  {len(SERVERS)} servers @ {1.0 / SERVICE_TIME:.0f} req/s fresh, "
        f"{len(CLIENT_NODES)} generators, "
        f"{PROFILE.base_rate:.0f}->{PROFILE.crowd_rate:.0f} q/s each, "
        f"tau={TAU:.0f}s, horizon={horizon:.0f}s"
    )
    comparisons = []
    for seed in seeds:
        comparison = run_comparison(seed, horizon=horizon)
        comparisons.append(comparison)
        for result in (comparison.plain, comparison.controlled):
            print(
                f"  seed {seed} {result.arm:>10}: "
                f"goodput {result.goodput:7.1f}/s  "
                f"p99 {result.p99_latency:6.3f}s  "
                f"shed {result.shed_rate:5.1%}  "
                f"degraded {result.degraded_correct}/{result.degraded_replies}  "
                f"sync-viol {result.sync_plane_violations}  "
                f"maxE(crowd) {result.max_error_crowd:.4f}  "
                f"[{result.digest}]"
            )
        verdict = "PASS" if comparison.passed else "FAIL"
        print(
            f"  seed {seed}   verdict: {verdict} "
            f"(starved={comparison.plain_starved} "
            f"clean={comparison.controlled_clean} "
            f"degraded-ok={comparison.degraded_all_correct} "
            f"dominates={comparison.controlled_dominates})"
        )
    passed = all(c.passed for c in comparisons)
    print(f"flash_crowd: {'PASS' if passed else 'FAIL'} across seeds {list(seeds)}")
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump(report_dict(comparisons), handle, indent=2)
        print(f"flash_crowd: report written to {json_path}")
    return passed


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, help="write the report here")
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[11, 12, 13], help="seeds to run"
    )
    raise SystemExit(0 if main(json_path=parser.parse_args().json) else 1)
