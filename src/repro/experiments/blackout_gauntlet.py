"""Reference-blackout gauntlet: holdover versus free-running MM.

The paper is explicit that "a time service cannot remain correct with
respect to the standard without some communication with it" — rule MM-1
handles blackout by growing the claimed error ``E`` at the claimed ``δ``
forever (Theorem 2's worst case).  This gauntlet measures what a
*disciplined holdover* buys on top of that guarantee: a servo that
trimmed the oscillator while sources were up leaves a far smaller
residual drift when they vanish, so the **true** error during a blackout
stays well below what an undisciplined free-run accumulates, while the
claimed interval stays exactly as correct in both arms.

Two arms over a star topology (one reference hub, ``N_LEAVES`` leaf
servers that poll only the hub):

* ``mm`` — plain :class:`~repro.service.server.TimeServer` under rule
  MM: free-runs at its raw skew during the blackout;
* ``holdover`` — :class:`~repro.holdover.server.HoldoverServer`: a
  disciplined, slewing clock, the SYNCED → HOLDOVER → DEGRADED →
  REINTEGRATING machine, reset suppression until revalidation, and
  bounded-slew adoption afterwards.

Each cell of the matrix is one blackout shape — a
:class:`~repro.faults.schedule.ReferenceBlackout` of the hub (short and
long) or a :class:`~repro.faults.schedule.TotalPartition` (every server
isolated) — crossed with both arms and every seed.  Acceptance
(:func:`evaluate`):

* in **every** (cell, seed), the holdover arm's peak true error during
  the blackout is strictly below the mm arm's;
* the holdover arm serves **monotone** time throughout — the
  fine-grained :class:`~repro.holdover.probe.MonotonicityProbe` must
  count zero backward steps (the mm arm's count is reported; stepping
  resets make it a non-guarantee there);
* the strict invariant oracle (no fault schedule, hence no exemption
  windows) reports **zero** violations in both arms — holdover never
  trades away rule MM-1 correctness;
* the whole matrix is **deterministically replayable**: re-running a
  cell yields an identical trace digest.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from ..core.mm import MMPolicy
from ..faults import (
    FaultSchedule,
    InvariantMonitor,
    ReferenceBlackout,
    TotalPartition,
)
from ..faults.injector import FaultInjector
from ..holdover import HoldoverConfig, HoldoverState, MonotonicityProbe
from ..network.delay import UniformDelay
from ..network.topology import star
from ..service.builder import ServerSpec, SimulatedService, build_service
from .chaos_soak import trace_digest

#: The two arms: the paper's rule MM free-running, and disciplined holdover.
ARMS = ("mm", "holdover")

#: Claimed maximum drift rate δ for every leaf server.
DELTA = 1e-4

#: Actual leaf skews (all below δ, both signs, none negligible): the
#: drift the mm arm free-runs at and the holdover servo must learn.
LEAF_SKEWS = (8e-5, -7e-5, 6e-5, -9e-5)

#: One-way delay bound; ξ is a symmetric round trip.
ONE_WAY = 0.01
XI = 2.0 * ONE_WAY

#: Poll period and fault-free lead-in (the servo needs several discipline
#: periods — 4τ each — to trim the oscillators before the lights go out).
TAU = 30.0
BLACKOUT_AT = 600.0

#: Simulated seconds of recovery observed after the blackout lifts.
RECOVERY = 600.0

#: Oracle sampling grid for true-error and resync measurements.
SAMPLE_STEP = 5.0

#: A leaf is "resynced" when its true offset is back inside one
#: round-trip uncertainty of the reference.
RESYNC_THRESHOLD = XI

#: Sentinel for "never resynced within the observed horizon".
NEVER = -1.0


def holdover_config() -> HoldoverConfig:
    """The gauntlet's holdover knobs (shared by every holdover run).

    The no-source window is three poll periods, so every cell's blackout
    comfortably triggers holdover; the trust horizon is short enough
    that the long cells also exercise the DEGRADED watchdog.
    """
    return HoldoverConfig(
        no_source_window=3.0 * TAU,
        trust_horizon=450.0,
        reintegrate_rounds=2,
    )


@dataclass(frozen=True)
class GauntletCell:
    """One blackout shape of the matrix.

    Attributes:
        label: Short name used in tables and artefact paths.
        fault: ``"reference"`` (hub links dark) or ``"total"`` (every
            server isolated).
        blackout: Blackout length in simulated seconds.
    """

    label: str
    fault: str
    blackout: float


#: Default matrix: a short and a long hub blackout, plus a total
#: partition.  The long cells outlive the trust horizon, so the
#: DEGRADED watchdog and the staged reintegration both get exercised.
CELLS = (
    GauntletCell("short-ref", "reference", 300.0),
    GauntletCell("long-ref", "reference", 900.0),
    GauntletCell("total", "total", 600.0),
)


@dataclass(frozen=True)
class GauntletOutcome:
    """One (cell, arm, seed) run.

    Attributes:
        cell: The matrix cell's label.
        arm: "mm" or "holdover".
        seed: Root seed for the whole run.
        fault: Blackout shape ("reference" or "total").
        blackout: Blackout length (seconds).
        horizon: Total simulated seconds.
        trace_digest: Fingerprint of the full run trace.
        peak_error_blackout: Largest true leaf error during the blackout.
        mean_error_blackout: Mean true leaf error during the blackout.
        peak_claimed_error: Largest claimed E_i during the blackout
            (identical MM-1 growth in both arms, reported as a check).
        time_to_resync: Seconds after the blackout lifted until every
            leaf's true offset was back under ``RESYNC_THRESHOLD``
            (``NEVER`` if not within the horizon).
        time_to_synced: Holdover arm only: seconds after the blackout
            until every leaf was back in ``SYNCED`` (``NEVER`` if not;
            0.0 for the mm arm, which has no state machine).
        monotonicity_violations: Backward steps of any served clock, on
            a 1-second sampling grid (holdover arm must score 0).
        checks: Strict-oracle sweeps performed.
        violations: Invariant violations (no exemptions — must be 0).
        holdover_entries: Leaves that entered holdover (holdover arm).
        degraded: Leaves that reached DEGRADED (holdover arm).
        suppressed_resets: Resets suppressed while not SYNCED.
        insane_resets: Resets refused by the sanity rail (expect 0).
        final_max_error: Largest claimed error at the end of the run.
    """

    cell: str
    arm: str
    seed: int
    fault: str
    blackout: float
    horizon: float
    trace_digest: int
    peak_error_blackout: float
    mean_error_blackout: float
    peak_claimed_error: float
    time_to_resync: float
    time_to_synced: float
    monotonicity_violations: int
    checks: int
    violations: int
    holdover_entries: int
    degraded: int
    suppressed_resets: int
    insane_resets: int
    final_max_error: float


def _build(arm: str, seed: int, *, telemetry=None) -> SimulatedService:
    # A star, deliberately: the leaves' only source is the hub, so a hub
    # blackout is a clean total loss of references without partitioning
    # the leaves from each other's requests.
    n = len(LEAF_SKEWS)
    graph = star(n + 1)
    names = sorted(graph.nodes)  # S1 is the hub.
    hub, leaves = names[0], names[1:]
    specs = [ServerSpec(hub, reference=True, initial_error=0.005)]
    for name, skew in zip(leaves, LEAF_SKEWS):
        specs.append(
            ServerSpec(
                name,
                delta=DELTA,
                skew=skew,
                initial_error=0.1,
                holdover=(arm == "holdover"),
            )
        )
    return build_service(
        graph,
        specs,
        policy=MMPolicy(),
        tau=TAU,
        seed=seed + 7000,
        lan_delay=UniformDelay(ONE_WAY),
        wan_delay=UniformDelay(ONE_WAY),
        telemetry=telemetry,
        holdover=holdover_config(),
    )


def _schedule(cell: GauntletCell, hub: str) -> FaultSchedule:
    if cell.fault == "reference":
        event = ReferenceBlackout(
            at=BLACKOUT_AT, duration=cell.blackout, servers=(hub,)
        )
    elif cell.fault == "total":
        event = TotalPartition(at=BLACKOUT_AT, duration=cell.blackout)
    else:
        raise ValueError(f"unknown fault kind {cell.fault!r}")
    return FaultSchedule().add(event)


def run_gauntlet(
    cell: GauntletCell,
    arm: str = "holdover",
    seed: int = 0,
    *,
    monitor_period: float = 5.0,
    telemetry=None,
) -> GauntletOutcome:
    """One arm through one blackout cell.

    Args:
        cell: The blackout shape.
        arm: "mm" or "holdover".
        seed: Root seed; one seed fixes the whole run (service RNG,
            delays, loss — the blackout itself is scheduled, not drawn).
        monitor_period: Strict-oracle sweep period.
        telemetry: Optional :class:`~repro.telemetry.ServiceTelemetry`;
            its registry also receives the holdover/slew gauges and the
            oracle counters.
    """
    if arm not in ARMS:
        raise ValueError(f"unknown arm {arm!r}; expected one of {ARMS}")
    service = _build(arm, seed, telemetry=telemetry)
    names = sorted(service.servers)
    hub, leaves = names[0], names[1:]
    schedule = _schedule(cell, hub)
    injector = FaultInjector(
        service.engine,
        service.network,
        service.servers,
        schedule,
        rng=service.rng.stream("faults/injector"),
        trace=service.trace,
    )
    probe = MonotonicityProbe(service.engine, service.servers, period=1.0)
    registry = None
    if telemetry is not None and telemetry.registry.enabled:
        registry = telemetry.registry
    # schedule=None: link faults earn no invariant exemptions anyway, so
    # hold every server to the invariants at all times.
    oracle = InvariantMonitor(
        service.engine,
        service.servers,
        service.trace,
        None,
        period=monitor_period,
        registry=registry,
    )
    injector.start()
    probe.start()
    oracle.start()

    blackout_end = BLACKOUT_AT + cell.blackout
    horizon = blackout_end + RECOVERY
    peak = 0.0
    mean_sum, mean_n = 0.0, 0
    peak_claimed = 0.0
    resync_at: Optional[float] = None
    synced_at: Optional[float] = None
    t = 0.0
    while t < horizon:
        t = min(t + SAMPLE_STEP, horizon)
        service.run_until(t)
        snap = service.snapshot()
        worst = max(abs(snap.offsets[name]) for name in leaves)
        if BLACKOUT_AT <= t <= blackout_end:
            peak = max(peak, worst)
            mean_sum += worst
            mean_n += 1
            peak_claimed = max(
                peak_claimed, max(snap.errors[name] for name in leaves)
            )
        if t >= blackout_end:
            if resync_at is None and worst <= RESYNC_THRESHOLD:
                resync_at = t
            if arm == "holdover" and synced_at is None:
                states = [
                    service.servers[name].holdover_state for name in leaves
                ]
                if all(s is HoldoverState.SYNCED for s in states):
                    synced_at = t
    snap = service.snapshot()

    entries = degraded = suppressed = insane = 0
    if arm == "holdover":
        for name in leaves:
            stats = service.servers[name].holdover_stats
            entries += stats.holdover_entries
            degraded += stats.degraded_transitions
            suppressed += stats.suppressed_resets
            insane += stats.insane_resets
    return GauntletOutcome(
        cell=cell.label,
        arm=arm,
        seed=seed,
        fault=cell.fault,
        blackout=cell.blackout,
        horizon=horizon,
        trace_digest=trace_digest(service.trace),
        peak_error_blackout=peak,
        mean_error_blackout=mean_sum / mean_n if mean_n else 0.0,
        peak_claimed_error=peak_claimed,
        time_to_resync=(
            resync_at - blackout_end if resync_at is not None else NEVER
        ),
        time_to_synced=(
            (synced_at - blackout_end if synced_at is not None else NEVER)
            if arm == "holdover"
            else 0.0
        ),
        monotonicity_violations=probe.total(),
        checks=oracle.stats.checks,
        violations=oracle.stats.total_violations,
        holdover_entries=entries,
        degraded=degraded,
        suppressed_resets=suppressed,
        insane_resets=insane,
        final_max_error=snap.max_error,
    )


def run_matrix(
    *,
    cells: Sequence[GauntletCell] = CELLS,
    arms: Sequence[str] = ARMS,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[GauntletOutcome]:
    """Every (cell, arm, seed) run of the gauntlet."""
    return [
        run_gauntlet(cell, arm, seed)
        for cell in cells
        for arm in arms
        for seed in seeds
    ]


def evaluate(outcomes: Sequence[GauntletOutcome]) -> List[str]:
    """The acceptance criteria, as a list of failures (empty = pass)."""
    problems: List[str] = []
    keys = sorted({(o.cell, o.seed) for o in outcomes})
    for cell, seed in keys:
        runs = {o.arm: o for o in outcomes if (o.cell, o.seed) == (cell, seed)}
        mm, hold = runs.get("mm"), runs.get("holdover")
        if mm is not None and hold is not None:
            if not hold.peak_error_blackout < mm.peak_error_blackout:
                problems.append(
                    f"{cell} seed {seed}: holdover peak true error "
                    f"{hold.peak_error_blackout:.4f}s not below mm's "
                    f"{mm.peak_error_blackout:.4f}s"
                )
        if hold is not None:
            if hold.monotonicity_violations:
                problems.append(
                    f"{cell} seed {seed}: holdover served time ran backward "
                    f"{hold.monotonicity_violations} time(s)"
                )
            if hold.holdover_entries == 0:
                problems.append(
                    f"{cell} seed {seed}: no leaf entered holdover "
                    f"(the blackout did not bite)"
                )
            if hold.time_to_resync == NEVER:
                problems.append(
                    f"{cell} seed {seed}: holdover arm never resynced"
                )
            if hold.insane_resets:
                problems.append(
                    f"{cell} seed {seed}: {hold.insane_resets} insane "
                    f"reset(s) — nothing in this gauntlet should trip "
                    f"the sanity rail"
                )
        for arm, o in sorted(runs.items()):
            if o.violations:
                problems.append(
                    f"{cell} seed {seed}: {arm} arm saw {o.violations} "
                    f"invariant violation(s) under the strict oracle"
                )
    return problems


def main(
    *,
    seeds: Sequence[int] = (0, 1, 2),
    json_path: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> bool:
    """Run the matrix, print the report, return overall pass/fail."""
    from ..analysis.plots import render_table

    outcomes: List[GauntletOutcome] = []
    for cell in CELLS:
        for arm in ARMS:
            for seed in seeds:
                telemetry = None
                if telemetry_dir:
                    from ..telemetry import ServiceTelemetry

                    telemetry = ServiceTelemetry(
                        spans=False, sample_period=TAU
                    )
                outcome = run_gauntlet(
                    cell, arm, seed, telemetry=telemetry
                )
                outcomes.append(outcome)
                if telemetry is not None:
                    run_dir = os.path.join(
                        telemetry_dir, f"{cell.label}-{arm}-seed{seed}"
                    )
                    telemetry.write(
                        run_dir,
                        summary_extra={
                            "cell": cell.label,
                            "arm": arm,
                            "seed": seed,
                            "peak_error_blackout": outcome.peak_error_blackout,
                            "time_to_resync": outcome.time_to_resync,
                            "monotonicity_violations": (
                                outcome.monotonicity_violations
                            ),
                            "violations": outcome.violations,
                        },
                    )
    # Deterministic replay: re-run the first combination and demand a
    # byte-identical trace.
    first = outcomes[0]
    replay = run_gauntlet(CELLS[0], first.arm, first.seed)
    replay_ok = replay.trace_digest == first.trace_digest

    print(
        f"blackout gauntlet: {len(CELLS)} cell(s) x {ARMS} x "
        f"{len(seeds)} seed(s), star({len(LEAF_SKEWS) + 1}), τ={TAU:g}s, "
        f"blackout at t={BLACKOUT_AT:g}s"
    )
    rows = [
        [
            o.cell,
            o.arm,
            o.seed,
            f"{o.peak_error_blackout * 1e3:.1f}",
            f"{o.mean_error_blackout * 1e3:.1f}",
            "-" if o.time_to_resync == NEVER else f"{o.time_to_resync:.0f}",
            (
                "-"
                if o.arm != "holdover" or o.time_to_synced == NEVER
                else f"{o.time_to_synced:.0f}"
            ),
            o.monotonicity_violations,
            o.violations,
            f"{o.holdover_entries}/{o.degraded}",
            o.suppressed_resets,
            f"{o.trace_digest:08x}",
        ]
        for o in outcomes
    ]
    print(
        render_table(
            [
                "cell",
                "arm",
                "seed",
                "peak ms",
                "mean ms",
                "resync s",
                "synced s",
                "mono",
                "viol",
                "hold/deg",
                "suppr",
                "trace digest",
            ],
            rows,
        )
    )
    problems = evaluate(outcomes)
    if not replay_ok:
        problems.append(
            f"replay of {first.cell}/{first.arm}/seed {first.seed} "
            f"diverged: {replay.trace_digest:08x} != {first.trace_digest:08x}"
        )
    if json_path:
        report = {
            "tau": TAU,
            "blackout_at": BLACKOUT_AT,
            "seeds": list(seeds),
            "replay_ok": replay_ok,
            "ok": not problems,
            "problems": problems,
            "outcomes": [asdict(o) for o in outcomes],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nwrote JSON report to {json_path}")
    if problems:
        print()
        for problem in problems:
            print(f"FAIL: {problem}")
        return False
    print(
        "\nholdover beat free-running MM on true error in every cell and "
        "seed, served monotone time throughout, and both arms stayed "
        "invariant-clean; replay digests matched."
    )
    return True


if __name__ == "__main__":
    raise SystemExit(0 if main() else 1)
