"""Membership churn — the paper's unstable server set, measured.

Section 1.1: "The set of servers making up the service is not stable, in
that time servers can frequently join or leave the service."  The paper
never quantifies churn, but the claim implicit in the system design is that
the algorithms tolerate it: correctness is a per-server property (Theorem 1
holds for whoever is present), and a rejoining server — whose clock was set
by hand, so its error is large — is pulled back in by ordinary rounds.

The experiment runs an IM mesh under Poisson leave/rejoin churn and checks:

* the servers present at each sample stay correct and mutually consistent;
* rejoining servers reconverge to the service's error level within a few
  poll periods;
* the service's error level is only mildly degraded versus a churn-free
  control run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.im import IMPolicy
from ..service.churn import ChurnController
from .scenarios import MeshScenario, build_mesh_service, grid


@dataclass(frozen=True)
class ChurnRunResult:
    """Outcome of one churn run.

    Attributes:
        departures: Leave events executed.
        rejoins: Rejoin events executed.
        present_violations: Samples at which a *present* server was
            incorrect (expect 0; departed servers drift freely and are not
            judged).
        worst_reconvergence: Worst observed time (in poll periods) for a
            rejoined server to get its error back under ``2×`` the service
            median.
        mean_error: Mean error over present servers across the run.  The
            mean is dominated by the rejoin transients (a returning server
            carries its large hand-set error until its next round), so the
            median is the steady-state comparison.
        median_error: Median error over present servers across the run.
        control_mean_error: Mean from the churn-free control.
        control_median_error: Median from the churn-free control.
    """

    departures: int
    rejoins: int
    present_violations: int
    worst_reconvergence: float
    mean_error: float
    median_error: float
    control_mean_error: float
    control_median_error: float


def run(
    n: int = 8,
    tau: float = 60.0,
    horizon: float = 2.0 * 3600.0,
    churn_interval: float = 240.0,
    mean_downtime: float = 180.0,
    rejoin_error: float = 2.0,
    seed: int = 17,
) -> ChurnRunResult:
    """Run the churn scenario and its churn-free control."""
    scenario = MeshScenario(n=n, delta=1e-5, tau=tau, seed=seed)

    # --- control (no churn)
    control = build_mesh_service(scenario, IMPolicy())
    control_errors: List[float] = []
    for snap in control.sample(grid(tau * 2, horizon, 60)):
        control_errors.extend(snap.errors.values())

    # --- churned run
    service = build_mesh_service(scenario, IMPolicy(), trace_enabled=True)
    controller = ChurnController(
        service.engine,
        list(service.servers.values()),
        service.rng.stream("churn"),
        interval=churn_interval,
        mean_downtime=mean_downtime,
        rejoin_error=rejoin_error,
        min_alive=max(2, n // 2),
    )
    controller.start()

    # Sample the run, remembering per-sample state for post-processing.
    step = tau / 4.0
    sample_times = grid(tau * 2, horizon, int((horizon - tau * 2) / step))
    samples = []  # (t, errors dict, correct dict, present set)
    for t in sample_times:
        service.run_until(t)
        snap = service.snapshot()
        present = frozenset(
            name
            for name, server in service.servers.items()
            if not server.departed
        )
        samples.append((t, dict(snap.errors), dict(snap.correct), present))

    present_violations = sum(
        1
        for _t, _errors, correct, present in samples
        for name in present
        if not correct[name]
    )
    errors = [
        errors_at[name]
        for _t, errors_at, _correct, present in samples
        for name in present
    ]

    # Reconvergence: for each rejoin event, the time until that server's
    # error first drops under 2x the present-servers' median.
    reconvergence: List[float] = []
    for row in service.trace.filter(kind="rejoin"):
        for t, errors_at, _correct, present in samples:
            if t < row.time or row.source not in present:
                continue
            median_error = float(
                np.median([errors_at[name] for name in present])
            )
            if errors_at[row.source] <= 2.0 * max(median_error, 1e-9):
                reconvergence.append((t - row.time) / tau)
                break

    return ChurnRunResult(
        departures=controller.stats.departures,
        rejoins=controller.stats.rejoins,
        present_violations=present_violations,
        worst_reconvergence=max(reconvergence) if reconvergence else float("nan"),
        mean_error=float(np.mean(errors)),
        median_error=float(np.median(errors)),
        control_mean_error=float(np.mean(control_errors)),
        control_median_error=float(np.median(control_errors)),
    )


def main() -> None:
    """Print the churn run."""
    result = run()
    print("Churn — IM mesh under Poisson leave/rejoin membership noise")
    print(f"  departures / rejoins: {result.departures} / {result.rejoins}")
    print(f"  present-server correctness violations: {result.present_violations}")
    print(f"  worst rejoin reconvergence: {result.worst_reconvergence:.1f} poll periods")
    print(
        f"  mean present-server error: {result.mean_error:.4f} s "
        f"(control without churn: {result.control_mean_error:.4f} s)"
    )
    print(
        f"  median present-server error: {result.median_error:.4f} s "
        f"(control: {result.control_median_error:.4f} s) — the steady state "
        "is churn-insensitive; the mean is rejoin-transient dominated"
    )


if __name__ == "__main__":
    main()
