"""Synchronization overhead: accuracy versus message cost and loss.

The paper fixes the polling discipline ("each time server sends a time
request to its neighbours at least once every τ seconds") but never costs
it.  For a deployable service the engineering questions are:

* **cost/accuracy** — messages per server-hour scale as ``2(n-1)·3600/τ``
  on a full mesh; steady-state IM error scales roughly linearly *up* in τ
  (Theorems 2/7 carry the ``δτ`` term).  The sweep exposes the knee.
* **loss robustness** — rounds complete by timeout with whatever replies
  arrived, so the algorithms degrade gracefully under packet loss; the
  error floor rises as fewer intervals intersect per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.im import IMPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from .scenarios import grid


@dataclass(frozen=True)
class OverheadRow:
    """One point of the cost/accuracy tradeoff.

    Attributes:
        tau: Poll period.
        messages_per_server_hour: Measured message rate (requests +
            replies crossing the network, normalised per server-hour).
        mean_error: Steady-state mean reported error.
        worst_offset: Steady-state worst oracle offset.
    """

    tau: float
    messages_per_server_hour: float
    mean_error: float
    worst_offset: float


def _run_service(
    *,
    n: int,
    tau: float,
    loss: float,
    horizon: float,
    seed: int,
):
    specs = [
        ServerSpec(
            f"S{k + 1}",
            delta=1e-4,
            skew=0.9e-4 * (2.0 * k / (n - 1) - 1.0),
        )
        for k in range(n)
    ]
    return build_service(
        full_mesh(n),
        specs,
        policy=IMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.005),
        loss_probability=loss,
        trace_enabled=False,
    )


def sweep_tau(
    taus: Sequence[float] = (15.0, 30.0, 60.0, 120.0, 240.0, 480.0),
    n: int = 6,
    seed: int = 29,
) -> List[OverheadRow]:
    """Accuracy vs message cost as the poll period varies."""
    rows = []
    for tau in taus:
        horizon = max(20.0 * tau, 3600.0)
        service = _run_service(n=n, tau=tau, loss=0.0, horizon=horizon, seed=seed)
        snapshots = service.sample(grid(horizon / 2, horizon, 30))
        errors = [e for snap in snapshots for e in snap.errors.values()]
        offsets = [
            abs(o) for snap in snapshots for o in snap.offsets.values()
        ]
        per_server_hour = (
            service.network.stats.sent / n / (service.engine.now / 3600.0)
        )
        rows.append(
            OverheadRow(
                tau=tau,
                messages_per_server_hour=per_server_hour,
                mean_error=float(np.mean(errors)),
                worst_offset=float(np.max(offsets)),
            )
        )
    return rows


@dataclass(frozen=True)
class LossRow:
    """One point of the loss-robustness sweep.

    Attributes:
        loss: Per-message drop probability.
        mean_error: Steady-state mean reported error.
        worst_offset: Steady-state worst oracle offset.
        correct: Whether every sampled interval stayed correct.
        reply_rate: Fraction of expected replies actually handled.
    """

    loss: float
    mean_error: float
    worst_offset: float
    correct: bool
    reply_rate: float


def sweep_loss(
    losses: Sequence[float] = (0.0, 0.05, 0.2, 0.5, 0.8),
    n: int = 6,
    tau: float = 60.0,
    horizon: float = 3600.0,
    seed: int = 29,
) -> List[LossRow]:
    """Graceful degradation under packet loss."""
    rows = []
    for loss in losses:
        service = _run_service(n=n, tau=tau, loss=loss, horizon=horizon, seed=seed)
        snapshots = service.sample(grid(horizon / 2, horizon, 30))
        errors = [e for snap in snapshots for e in snap.errors.values()]
        offsets = [abs(o) for snap in snapshots for o in snap.offsets.values()]
        correct = all(snap.all_correct for snap in snapshots)
        handled = sum(s.stats.replies_handled for s in service.servers.values())
        rounds = sum(s.stats.rounds for s in service.servers.values())
        expected = max(rounds * (n - 1), 1)
        rows.append(
            LossRow(
                loss=loss,
                mean_error=float(np.mean(errors)),
                worst_offset=float(np.max(offsets)),
                correct=correct,
                reply_rate=handled / expected,
            )
        )
    return rows


def main() -> None:
    """Print both sweeps."""
    from ..analysis.plots import render_table

    print("Cost vs accuracy (IM, 6-server mesh):")
    rows = [
        [r.tau, r.messages_per_server_hour, r.mean_error, r.worst_offset]
        for r in sweep_tau()
    ]
    print(
        render_table(
            ["τ (s)", "msgs/server/h", "mean E (s)", "worst |offset| (s)"],
            rows,
        )
    )

    print("\nLoss robustness (IM, τ = 60 s):")
    rows = [
        [r.loss, r.reply_rate, r.mean_error, r.worst_offset, r.correct]
        for r in sweep_loss()
    ]
    print(
        render_table(
            ["loss", "reply rate", "mean E (s)", "worst |offset| (s)", "correct"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
