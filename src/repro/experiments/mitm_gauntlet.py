"""MITM gauntlet: an on-path adversary versus three defense postures.

Rules MM-1/MM-2 assume the network only *delays* messages (Section 2.2
bounds the one-way delay by ξ); nothing in the paper defends against a
network that rewrites, replays, or substitutes them.  This gauntlet
measures exactly that gap and what the :mod:`repro.security` layer buys
back.  Four attack cells — tamper, replay, delay attack, spoofed
replies — each run under three arms:

* ``plain`` — the paper's :class:`~repro.service.server.TimeServer`,
  trusting every bit on the wire;
* ``hardened`` — :class:`~repro.service.hardening.HardenedTimeServer`:
  plausibility validation, health-score quarantine, but no
  cryptography and no transit-physics check;
* ``authenticated`` —
  :class:`~repro.security.server.AuthenticatedTimeServer`: keyed MACs
  over a canonical encoding, per-request nonces, a per-peer
  anti-replay window, and the delay guard judging measured RTTs
  against the links' declared delay models.

Topology is a five-server full mesh with one well-synchronized server
(``S1``, tiny initial error) and four cold-start servers (large initial
error) — the cold start is what makes the delay attack bite: a victim
whose inherited error exceeds one poll period will happily adopt a
period-stale claim served implausibly fast.

Each run is watched by the **strict** invariant oracle (no fault
schedule, hence no exemption windows: a poisoned victim is a violation,
full stop) and by a taint oracle: the injector remembers the identity
of every forged/replayed reply it delivered
(:func:`~repro.faults.injector.taint_key`), and every server's reply
acceptance path is wrapped to count how many of those poisoned
messages it *accepted*.

Acceptance (:func:`evaluate`):

* the ``plain`` arm is poisoned — strict-oracle violations — in at
  least the tamper and delay-attack cells (round ids incidentally
  defeat verbatim cross-round replays even unauthenticated, which the
  replay cell demonstrates);
* the ``authenticated`` arm shows **zero** invariant violations and
  **zero** accepted tainted replies in **every** cell;
* the authenticated defenses demonstrably fired where they should:
  MAC failures in the tamper cell, replay drops in the replay cell,
  delay-attack detections in the delay and spoof cells;
* the whole matrix is deterministically replayable: re-running a
  (cell, arm, seed) combination yields an identical trace digest.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from ..core.mm import MMPolicy
from ..faults import (
    DelayAttack,
    FaultSchedule,
    InvariantMonitor,
    MessageReplay,
    MessageTamper,
    SpoofedReply,
)
from ..faults.injector import FaultInjector, taint_key
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..security import Keyring, SecurityConfig
from ..service.builder import ServerSpec, SimulatedService, build_service
from ..service.hardening import HardeningConfig
from .chaos_soak import trace_digest

#: The three defense postures.
ARMS = ("plain", "hardened", "authenticated")

#: Servers in the full mesh (S1 plus four cold-start victims).
N_SERVERS = 5

#: Claimed maximum drift rate δ for every server.
DELTA = 1e-4

#: Actual skews: S1 is nearly true; the victims drift but stay below δ.
SKEWS = (1e-5, 6e-5, -7e-5, 8e-5, -5e-5)

#: S1's initial error — the attractive source everyone adopts from.
SOURCE_ERROR = 0.01

#: The victims' cold-start initial error.  Deliberately larger than one
#: poll period: rule MM-2's consistency gate only admits a period-stale
#: claim while the victim's own error still covers the staleness, which
#: is exactly the window the delay attack needs.
COLD_ERROR = 15.0

#: Link physics: one-way delay uniform on [2 ms, 10 ms].  The declared
#: floor gives the delay guard a 4 ms round-trip minimum to judge
#: against; the adversary's races arrive far below it.
ONE_WAY_MIN = 0.002
ONE_WAY_BOUND = 0.01

#: Poll period.  Short, so the delay attack's held-back data is exactly
#: one period (10 s) stale — far beyond any honest uncertainty.
TAU = 10.0

#: Attacks start immediately (the victims must still be cold) and cover
#: most of the horizon.
ATTACK_AT = 0.0
ATTACK_DURATION = 360.0
HORIZON = 400.0

#: Oracle sweep period and true-offset sampling grid.
MONITOR_PERIOD = 5.0
SAMPLE_STEP = 5.0


@dataclass(frozen=True)
class GauntletCell:
    """One attack shape of the matrix.

    Attributes:
        label: Short name used in tables and artefact paths.
        attack: ``"tamper"``, ``"replay"``, ``"delay"``, or ``"spoof"``.
    """

    label: str
    attack: str


CELLS = (
    GauntletCell("tamper", "tamper"),
    GauntletCell("replay", "replay"),
    GauntletCell("delay", "delay"),
    GauntletCell("spoof", "spoof"),
)

#: Tamper shift (seconds) and per-message probability.  0.3 s is far
#: outside every honest uncertainty yet tiny against a cold victim's
#: 15 s error — the forged claim passes the consistency gate, then the
#: victim's truth sits 0.3 s outside its adopted interval.
TAMPER_OFFSET = 0.3
TAMPER_PROBABILITY = 0.7

#: Replay hold: longer than one poll period, so the copy lands in a
#: later round (the round-id/nonce gate's territory).
REPLAY_HOLD = 12.0
REPLAY_PROBABILITY = 0.5

#: The adversary's race delay — far below the 4 ms link floor.
FAST_DELAY = 0.0005

#: The delay attack / spoof target edge: victim S2, impersonated S1.
VICTIM = "S2"
UPSTREAM = "S1"


def _schedule(cell: GauntletCell) -> FaultSchedule:
    if cell.attack == "tamper":
        event = MessageTamper(
            at=ATTACK_AT,
            offset=TAMPER_OFFSET,
            probability=TAMPER_PROBABILITY,
            duration=ATTACK_DURATION,
        )
    elif cell.attack == "replay":
        event = MessageReplay(
            at=ATTACK_AT,
            probability=REPLAY_PROBABILITY,
            hold=REPLAY_HOLD,
            duration=ATTACK_DURATION,
        )
    elif cell.attack == "delay":
        event = DelayAttack(
            at=ATTACK_AT,
            a=VICTIM,
            b=UPSTREAM,
            fast_delay=FAST_DELAY,
            duration=ATTACK_DURATION,
        )
    elif cell.attack == "spoof":
        event = SpoofedReply(
            at=ATTACK_AT,
            server=UPSTREAM,
            victim=VICTIM,
            offset=TAMPER_OFFSET,
            claimed_error=0.01,
            fast_delay=FAST_DELAY,
            duration=ATTACK_DURATION,
        )
    else:
        raise ValueError(f"unknown attack kind {cell.attack!r}")
    return FaultSchedule().add(event)


def _build(arm: str, seed: int, *, telemetry=None) -> SimulatedService:
    graph = full_mesh(N_SERVERS)
    names = sorted(graph.nodes)
    specs = [
        ServerSpec(
            name,
            delta=DELTA,
            skew=skew,
            initial_error=SOURCE_ERROR if name == UPSTREAM else COLD_ERROR,
        )
        for name, skew in zip(names, SKEWS)
    ]
    kwargs = {}
    if arm in ("hardened", "authenticated"):
        kwargs["hardening"] = HardeningConfig()
    if arm == "authenticated":
        # One keyring instance shared by every server of the run (the
        # builder passes the same SecurityConfig to each), derived from
        # the seed so distinct seeds exercise distinct keys.
        kwargs["security"] = SecurityConfig(
            keyring=Keyring.from_secret(f"mitm-gauntlet-{seed}")
        )
    return build_service(
        graph,
        specs,
        policy=MMPolicy(),
        tau=TAU,
        seed=seed + 9000,
        lan_delay=UniformDelay(ONE_WAY_BOUND, minimum=ONE_WAY_MIN),
        wan_delay=UniformDelay(ONE_WAY_BOUND, minimum=ONE_WAY_MIN),
        telemetry=telemetry,
        **kwargs,
    )


def _arm_taint_oracle(
    service: SimulatedService, injector: FaultInjector
) -> Dict[str, int]:
    """Wrap every server's reply-acceptance path with the taint check.

    ``_observe_reply`` runs exactly once per reply that survived every
    gate (round/nonce match, validation, admission) — i.e. once per
    reply the server *accepted* into its synchronization policy.
    Membership is checked against the injector's live taint set, so a
    reply recorded as genuine and only replayed later does not
    retroactively count its original, legitimate acceptance.
    """
    accepted_tainted: Dict[str, int] = {name: 0 for name in service.servers}
    for name, server in service.servers.items():
        original = server._observe_reply

        def wrapped(
            reply, rtt_local, local_now, _orig=original, _name=name
        ):
            if taint_key(reply) in injector.taint_keys:
                accepted_tainted[_name] += 1
            _orig(reply, rtt_local, local_now)

        server._observe_reply = wrapped
    return accepted_tainted


@dataclass(frozen=True)
class GauntletOutcome:
    """One (cell, arm, seed) run.

    Attributes:
        cell: The matrix cell's label.
        arm: "plain", "hardened", or "authenticated".
        seed: Root seed for the whole run.
        horizon: Total simulated seconds.
        trace_digest: Fingerprint of the full run trace.
        peak_true_offset: Largest |true offset| of any server during the
            attack window — how far the adversary actually moved a
            clock.
        final_max_error: Largest claimed error at the end of the run
            (small = the arm still converged despite the attack).
        checks: Strict-oracle sweeps performed.
        violations: Strict-oracle invariant violations (a poisoned
            victim; must be 0 in the authenticated arm).
        accepted_tainted: Forged/replayed replies any server accepted
            past every gate (must be 0 in the authenticated arm).
        tampered: Messages the adversary rewrote in flight.
        replayed: Extra verbatim deliveries the adversary made.
        swallowed: Genuine replies the delay attacker held back.
        spoofed: Forged replies the spoofer raced to the victim.
        auth_failures: MAC rejections across all servers (authenticated
            arm only; 0 elsewhere).
        replay_drops: Anti-replay window rejections (authenticated arm).
        delay_detections: Delay-guard rejections (authenticated arm).
        quarantines: Peers quarantined by the health machinery
            (hardened and authenticated arms).
    """

    cell: str
    arm: str
    seed: int
    horizon: float
    trace_digest: int
    peak_true_offset: float
    final_max_error: float
    checks: int
    violations: int
    accepted_tainted: int
    tampered: int
    replayed: int
    swallowed: int
    spoofed: int
    auth_failures: int
    replay_drops: int
    delay_detections: int
    quarantines: int


def run_gauntlet(
    cell: GauntletCell,
    arm: str = "authenticated",
    seed: int = 0,
    *,
    telemetry=None,
) -> GauntletOutcome:
    """One arm through one attack cell.

    Args:
        cell: The attack shape.
        arm: "plain", "hardened", or "authenticated".
        seed: Root seed; one seed fixes the whole run (service RNG,
            delays, per-message attack decisions).
        telemetry: Optional :class:`~repro.telemetry.ServiceTelemetry`;
            its registry also receives the security counters and the
            oracle counters.
    """
    if arm not in ARMS:
        raise ValueError(f"unknown arm {arm!r}; expected one of {ARMS}")
    service = _build(arm, seed, telemetry=telemetry)
    schedule = _schedule(cell)
    injector = FaultInjector(
        service.engine,
        service.network,
        service.servers,
        schedule,
        rng=service.rng.stream("faults/injector"),
        trace=service.trace,
    )
    accepted_tainted = _arm_taint_oracle(service, injector)
    registry = None
    if telemetry is not None and telemetry.registry.enabled:
        registry = telemetry.registry
    # schedule=None: adversary faults earn no invariant exemptions — a
    # poisoned victim is a violation even while the attack runs.
    oracle = InvariantMonitor(
        service.engine,
        service.servers,
        service.trace,
        None,
        period=MONITOR_PERIOD,
        registry=registry,
    )
    injector.start()
    oracle.start()

    peak = 0.0
    t = 0.0
    while t < HORIZON:
        t = min(t + SAMPLE_STEP, HORIZON)
        service.run_until(t)
        snap = service.snapshot()
        if t <= ATTACK_AT + ATTACK_DURATION:
            peak = max(peak, max(abs(o) for o in snap.offsets.values()))
    snap = service.snapshot()

    auth_failures = replay_drops = delay_detections = quarantines = 0
    for server in service.servers.values():
        stats = getattr(server, "security_stats", None)
        if stats is not None:
            auth_failures += stats.auth_failures
            replay_drops += stats.replay_drops
            delay_detections += stats.delay_attack_detections
        quarantined = getattr(server, "quarantined_peers", None)
        if callable(quarantined):
            quarantines += len(quarantined())
    return GauntletOutcome(
        cell=cell.label,
        arm=arm,
        seed=seed,
        horizon=HORIZON,
        trace_digest=trace_digest(service.trace),
        peak_true_offset=peak,
        final_max_error=snap.max_error,
        checks=oracle.stats.checks,
        violations=oracle.stats.total_violations,
        accepted_tainted=sum(accepted_tainted.values()),
        tampered=injector.stats.messages_tampered,
        replayed=injector.stats.messages_replayed,
        swallowed=injector.stats.replies_delayed,
        spoofed=injector.stats.replies_spoofed,
        auth_failures=auth_failures,
        replay_drops=replay_drops,
        delay_detections=delay_detections,
        quarantines=quarantines,
    )


def run_matrix(
    *,
    cells: Sequence[GauntletCell] = CELLS,
    arms: Sequence[str] = ARMS,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[GauntletOutcome]:
    """Every (cell, arm, seed) run of the gauntlet."""
    return [
        run_gauntlet(cell, arm, seed)
        for cell in cells
        for arm in arms
        for seed in seeds
    ]


#: Cells in which the plain arm must demonstrably be poisoned.
POISONED_CELLS = ("tamper", "delay")


def evaluate(outcomes: Sequence[GauntletOutcome]) -> List[str]:
    """The acceptance criteria, as a list of failures (empty = pass)."""
    problems: List[str] = []
    for o in outcomes:
        if o.arm == "plain" and o.cell in POISONED_CELLS:
            if o.violations == 0:
                problems.append(
                    f"{o.cell} seed {o.seed}: plain arm survived — the "
                    f"attack should have poisoned an unauthenticated victim"
                )
        if o.arm == "authenticated":
            if o.violations:
                problems.append(
                    f"{o.cell} seed {o.seed}: authenticated arm saw "
                    f"{o.violations} invariant violation(s)"
                )
            if o.accepted_tainted:
                problems.append(
                    f"{o.cell} seed {o.seed}: authenticated arm accepted "
                    f"{o.accepted_tainted} forged/replayed reply(ies)"
                )
            if o.cell == "tamper" and o.auth_failures == 0:
                problems.append(
                    f"tamper seed {o.seed}: no MAC failures — the tamper "
                    f"tap did not bite"
                )
            if o.cell == "replay" and o.replay_drops == 0:
                problems.append(
                    f"replay seed {o.seed}: no anti-replay drops — the "
                    f"replay tap did not bite"
                )
            if o.cell in ("delay", "spoof") and o.delay_detections == 0:
                problems.append(
                    f"{o.cell} seed {o.seed}: no delay-attack detections — "
                    f"the race was not judged against the link floor"
                )
    return problems


def main(
    *,
    seeds: Sequence[int] = (0, 1, 2),
    json_path: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> bool:
    """Run the matrix, print the report, return overall pass/fail."""
    from ..analysis.plots import render_table

    outcomes: List[GauntletOutcome] = []
    for cell in CELLS:
        for arm in ARMS:
            for seed in seeds:
                telemetry = None
                if telemetry_dir:
                    from ..telemetry import ServiceTelemetry

                    telemetry = ServiceTelemetry(
                        spans=False, sample_period=TAU
                    )
                outcome = run_gauntlet(cell, arm, seed, telemetry=telemetry)
                outcomes.append(outcome)
                if telemetry is not None:
                    run_dir = os.path.join(
                        telemetry_dir, f"{cell.label}-{arm}-seed{seed}"
                    )
                    telemetry.write(
                        run_dir,
                        summary_extra={
                            "cell": cell.label,
                            "arm": arm,
                            "seed": seed,
                            "violations": outcome.violations,
                            "accepted_tainted": outcome.accepted_tainted,
                            "peak_true_offset": outcome.peak_true_offset,
                        },
                    )
    # Deterministic replay: re-run the first combination and demand a
    # byte-identical trace.
    first = outcomes[0]
    replay = run_gauntlet(CELLS[0], first.arm, first.seed)
    replay_ok = replay.trace_digest == first.trace_digest

    print(
        f"mitm gauntlet: {len(CELLS)} cell(s) x {ARMS} x "
        f"{len(seeds)} seed(s), full_mesh({N_SERVERS}), τ={TAU:g}s, "
        f"attacks t={ATTACK_AT:g}..{ATTACK_AT + ATTACK_DURATION:g}s"
    )
    rows = [
        [
            o.cell,
            o.arm,
            o.seed,
            f"{o.peak_true_offset:.3f}",
            o.violations,
            o.accepted_tainted,
            o.tampered + o.replayed + o.swallowed + o.spoofed,
            o.auth_failures,
            o.replay_drops,
            o.delay_detections,
            o.quarantines,
            f"{o.trace_digest:08x}",
        ]
        for o in outcomes
    ]
    print(
        render_table(
            [
                "cell",
                "arm",
                "seed",
                "peak off s",
                "viol",
                "taint-acc",
                "attacks",
                "mac-fail",
                "replay-drop",
                "delay-det",
                "quar",
                "trace digest",
            ],
            rows,
        )
    )
    problems = evaluate(outcomes)
    if not replay_ok:
        problems.append(
            f"replay of {first.cell}/{first.arm}/seed {first.seed} "
            f"diverged: {replay.trace_digest:08x} != {first.trace_digest:08x}"
        )
    if json_path:
        report = {
            "tau": TAU,
            "attack_at": ATTACK_AT,
            "attack_duration": ATTACK_DURATION,
            "seeds": list(seeds),
            "replay_ok": replay_ok,
            "ok": not problems,
            "problems": problems,
            "outcomes": [asdict(o) for o in outcomes],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nwrote JSON report to {json_path}")
    if problems:
        print()
        for problem in problems:
            print(f"FAIL: {problem}")
        return False
    print(
        "\nthe plain arm was poisoned wherever the theory says it must "
        "be; the authenticated arm accepted zero forged or replayed "
        "messages and stayed invariant-clean in every cell; replay "
        "digests matched."
    )
    return True


if __name__ == "__main__":
    raise SystemExit(0 if main() else 1)
