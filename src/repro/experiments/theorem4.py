"""Theorem 4 — the service converges onto its most accurate clocks.

Theorem 4: if no server resets to a clock with a worse error than its own
(MM's predicate guarantees this), then after a finite time ``t_x`` the
server with the smallest error in the service belongs to ``S_min``, the
set of servers with the smallest drift bound.  From then on "the time
service will derive its behavior from the most accurate clocks".

The experiment starts the service in an adversarial state — the *least*
accurate server has the *smallest* initial error — and measures when the
min-error holder becomes (and stays) a member of ``S_min``, comparing
against the theorem's closed-form worst-case ``t_x^0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..analysis.convergence import ConvergenceReport, analyze_convergence
from ..core.mm import MMPolicy
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from .scenarios import grid


@dataclass(frozen=True)
class Theorem4Result:
    """Measured vs. predicted convergence.

    Attributes:
        report: The convergence analysis (measured time, holder series).
        within_bound: Whether the measured convergence time is at most the
            predicted worst case (the theorem's claim).
    """

    report: ConvergenceReport
    within_bound: bool


#: (name, claimed δ, actual skew, initial error) — adversarial start: the
#: sloppiest clock (S3, δ = 1e-4) begins with the smallest error.
DEFAULT_POPULATION = (
    ("S1", 1e-6, +5e-7, 0.050),
    ("S2", 1e-5, -8e-6, 0.030),
    ("S3", 1e-4, +9e-5, 0.001),
)


def run(
    population: Sequence[tuple[str, float, float, float]] = DEFAULT_POPULATION,
    tau: float = 60.0,
    horizon: float = 2400.0,
    samples: int = 240,
    seed: int = 3,
) -> Theorem4Result:
    """Run MM from the adversarial start and analyse convergence."""
    specs = [
        ServerSpec(name=name, delta=delta, skew=skew, initial_error=err)
        for name, delta, skew, err in population
    ]
    service = build_service(
        full_mesh(len(population)),
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.005),
        trace_enabled=False,
    )
    snapshots = service.sample(grid(0.0, horizon, samples))
    deltas = {name: delta for name, delta, _skew, _err in population}
    report = analyze_convergence(snapshots, deltas)
    within = (
        report.converged
        and report.measured_time is not None
        and report.measured_time <= report.predicted_time + tau
        # one poll period of slack: the theorem's t_x is about error *lines*
        # crossing; the service only observes them at poll instants.
    )
    return Theorem4Result(report=report, within_bound=within)


def main() -> None:
    """Print the convergence comparison."""
    result = run()
    report = result.report
    print("Theorem 4 — convergence onto the most accurate clocks")
    print(f"  converged: {report.converged}")
    print(f"  measured convergence time: {report.measured_time}")
    print(f"  predicted worst case t_x^0: {report.predicted_time:.1f}")
    print(f"  within bound (±τ sampling slack): {result.within_bound}")
    holders = report.holder_series
    changes = [holders[0]]
    for holder in holders[1:]:
        if holder != changes[-1]:
            changes.append(holder)
    print(f"  min-error holder sequence: {' -> '.join(changes)}")


if __name__ == "__main__":
    main()
