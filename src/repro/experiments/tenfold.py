"""Section 4's experimental claim: IM's error grows ~10× slower than MM's.

"In one test of a small system where the δ_i were chosen casually, the
error grew ten times slower than it would have under algorithm MM."

Mechanism (made precise by Theorem 8's corollary): MM's error bookkeeping
grows at the *claimed* δ regardless of how good the clocks really are,
because rule MM-1's age term uses δ.  IM, by intersecting, recovers the
information in how far the clocks have *actually* drifted apart: with
actual drift filling a fraction ``f`` of the claimed bound, IM's error
grows at roughly ``(1 - f)·δ`` — so casually over-specified bounds
(``f ≈ 0.9``) give a ~10× growth-rate gap.

The experiment runs the *same* clock population (constant skews evenly
filling ``±f·δ``) under both algorithms and compares fitted growth rates of
the service's smallest error ``E_M(t)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import GrowthRate, growth_rate, min_error_series, times
from ..analysis.statistics import ratio_of_rates
from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from .scenarios import MeshScenario, build_mesh_service, grid


@dataclass(frozen=True)
class TenfoldResult:
    """Growth-rate comparison.

    Attributes:
        mm: Fitted growth of ``E_M(t)`` under MM.
        im: Fitted growth of ``E_M(t)`` under IM.
        ratio: ``mm.slope / im.slope`` — the paper reports ~10.
        predicted_ratio: ``1 / (1 - fill_fraction)`` from the Theorem 8
            corollary (ignores the delay-driven floor, so the measured
            ratio is expected somewhat below it).
    """

    mm: GrowthRate
    im: GrowthRate
    ratio: float
    predicted_ratio: float


def run(
    n: int = 10,
    claimed_delta: float = 1e-4,
    fill_fraction: float = 0.9,
    tau: float = 60.0,
    one_way: float = 0.002,
    horizon: float = 6.0 * 3600.0,
    samples: int = 120,
    seed: int = 5,
) -> TenfoldResult:
    """Compare MM and IM error growth on identical clock populations.

    Args:
        n: Service size (enough servers that some clock sits near each
            extreme of the actual-drift range, which is what pins IM's
            intersection).
        claimed_delta: The casually chosen (overspecified) bound δ.
        fill_fraction: How much of ±δ the actual skews really span.
        tau: Poll period.
        one_way: One-way delay bound; kept small so the delay floor does
            not mask the drift effect (the paper's LAN was ~ms).
        horizon: Simulated duration; hours, so growth dominates transients.
        samples: Grid resolution for the fits.
        seed: RNG seed.
    """
    skews = [
        fill_fraction * claimed_delta * (2.0 * k / (n - 1) - 1.0)
        for k in range(n)
    ]
    scenario = MeshScenario(
        n=n,
        delta=claimed_delta,
        skews=skews,
        tau=tau,
        one_way=one_way,
        seed=seed,
    )
    sample_times = grid(tau * 2, horizon, samples)

    mm_service = build_mesh_service(scenario, MMPolicy())
    mm_snapshots = mm_service.sample(sample_times)
    mm_fit = growth_rate(times(mm_snapshots), min_error_series(mm_snapshots))

    im_service = build_mesh_service(scenario, IMPolicy())
    im_snapshots = im_service.sample(sample_times)
    im_fit = growth_rate(times(im_snapshots), min_error_series(im_snapshots))

    return TenfoldResult(
        mm=mm_fit,
        im=im_fit,
        ratio=ratio_of_rates(mm_fit.slope, im_fit.slope),
        predicted_ratio=1.0 / (1.0 - fill_fraction),
    )


def main() -> None:
    """Print the comparison."""
    result = run()
    print("Section 4 experiment — error growth, MM vs IM")
    print(f"  MM E_M growth: {result.mm.slope:.3e} s/s (r² = {result.mm.r_squared:.3f})")
    print(f"  IM E_M growth: {result.im.slope:.3e} s/s (r² = {result.im.r_squared:.3f})")
    print(f"  ratio MM/IM: {result.ratio:.1f}  (paper: ~10; predicted limit: "
          f"{result.predicted_ratio:.1f})")


if __name__ == "__main__":
    main()
