"""The live gauntlet: real processes, real packets, injected faults.

Five time-server processes run on loopback UDP under a
:class:`~repro.runtime.supervisor.ClusterSupervisor`, every data packet
routed through a :class:`~repro.runtime.proxy.ChaosProxy` injecting 10%
steady loss, a delay spike, and an on-path tamper window, while one node
is crashed with ``SIGKILL`` mid-run and restarted by the supervisor's
backoff machinery.  Two arms run the identical scenario:

* **plain** — the paper's trusting :class:`~repro.service.server.
  TimeServer`.  Rule MM-2's consistency check makes a steady-state
  server surprisingly tamper-resistant — a forged value far outside its
  few-millisecond interval is "inconsistent with ``S_i``" and ignored —
  so the attack targets the one moment the paper itself flags as
  delicate: a **rejoining** server (Section 3) whose interval is wide
  open.  The tamper window brackets the crash victim's restart and
  shifts the anchors' replies by −60 ms: the forgery is consistent with
  the rejoiner's ±80 ms interval, gets adopted with a tiny inherited
  error (the clock visibly steps *backwards*), and from then on honest
  replies are the ones rejected as inconsistent — the node is stuck
  wrong, and the live invariant probes count every 50 ms of it.
* **hardened** — :class:`~repro.runtime.node.LiveAuthenticatedServer`:
  hardening + authentication + slewing rails.  Tampered replies fail
  their MAC, delay physics guard the spike, pending slew is charged to
  ``ε``, and every adopted interval stays MM-1-valid: the acceptance
  bar is **zero** MM-1 and **zero** monotonicity violations over the
  whole run.

The cluster needs continuous adoption pressure for the attack to bite:
the anchor ``S1`` claims a 10× tighter drift bound than the loose
servers, so their reported errors outgrow its own and rule MM-2 keeps
re-adopting from it every few seconds — exactly the paper's "good
clocks discipline bad ones" dynamic, here measured over real sockets
with live ξ (max observed round trip) in the report.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults.schedule import DelaySpike, MessageTamper
from ..runtime.proxy import ChaosProxy
from ..runtime.supervisor import ClusterSupervisor, NodeSpec, RestartPolicy

__all__ = ["main", "run"]

TAU = 0.75
ONE_WAY_BOUND = 0.25  # declared; ξ = 0.5 s
LOSS = 0.10
#: Negative and larger than the probe spacing: adoption is a visible
#: backward step, yet small enough to sit inside a rejoining server's
#: wide-open ±``initial_error`` interval (a steady-state interval is a
#: few ms wide and rule MM-2 would discard anything outside it).
TAMPER_OFFSET = -0.06
SCRAPE_PERIOD = 0.5
CRASH_VICTIM = "S4"

#: (name, skew, claimed delta, initial offset, initial error).  The
#: anchor S1 claims δ ten times tighter than the loose servers, so the
#: loose errors outgrow it and adoptions recur throughout the run.
NODE_PARAMS: List[Tuple[str, float, float, float, float]] = [
    ("S1", 2e-5, 5e-5, 0.001, 0.003),
    ("S2", -2e-5, 5e-5, -0.002, 0.006),
    ("S3", 2e-4, 5e-4, 0.006, 0.08),
    ("S4", -2e-4, 5e-4, 0.008, 0.08),
    ("S5", 1e-4, 5e-4, -0.005, 0.08),
]

ARM_KINDS = {"plain": "plain", "hardened": "authenticated"}


def _free_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    socks = [socket.socket(socket.AF_INET, socket.SOCK_DGRAM) for _ in range(count)]
    try:
        for sock in socks:
            sock.bind((host, 0))
        return [sock.getsockname()[1] for sock in socks]
    finally:
        for sock in socks:
            sock.close()


def _accumulate(series: List[Dict[str, Any]]) -> Dict[str, float]:
    """Total invariant counters across process incarnations.

    A crash-restart resets a node's counters; an incarnation boundary
    shows as the probe count dropping.  Summing the per-incarnation
    maxima gives the true run total.
    """
    totals = {"probes": 0.0, "mm1_violations": 0.0, "monotonicity_violations": 0.0,
              "max_true_error": 0.0, "max_excess": float("-inf")}
    last_probes = None
    acc = {"probes": 0.0, "mm1_violations": 0.0, "monotonicity_violations": 0.0}
    for snap in series:
        inv = snap["invariants"]
        if last_probes is not None and inv["probes"] < last_probes:
            for key in acc:
                totals[key] += acc[key]
            acc = {key: 0.0 for key in acc}
        for key in acc:
            acc[key] = inv[key]
        last_probes = inv["probes"]
        totals["max_true_error"] = max(totals["max_true_error"], inv["max_true_error"])
        totals["max_excess"] = max(totals["max_excess"], inv["max_excess"])
    for key in acc:
        totals[key] += acc[key]
    if totals["max_excess"] == float("-inf"):
        totals["max_excess"] = 0.0
    return totals


async def _run_arm(
    arm: str,
    *,
    seed: int,
    duration: float,
    loss: float = LOSS,
    with_faults: bool = True,
    telemetry_dir: Optional[str] = None,
) -> Dict[str, Any]:
    kind = ARM_KINDS[arm]
    epoch = time.monotonic()
    names = [p[0] for p in NODE_PARAMS]
    ports = _free_ports(len(names))
    peers = {name: ["127.0.0.1", port] for name, port in zip(names, ports)}
    edges = [[a, b] for i, a in enumerate(names) for b in names[i + 1 :]]

    proxy = ChaosProxy(
        addresses={n: (h, p) for n, (h, p) in peers.items()},
        loss=loss,
        seed=seed,
        epoch=epoch,
        nominal_one_way=0.001,
    )
    proxy_addr = await proxy.start()

    specs = []
    for index, (name, skew, delta, offset, eps) in enumerate(NODE_PARAMS):
        config = dict(
            name=name,
            host="127.0.0.1",
            port=peers[name][1],
            peers=peers,
            edges=edges,
            epoch=epoch,
            via=list(proxy_addr),
            kind=kind,
            tau=TAU,
            delta=delta,
            skew=skew,
            initial_offset=offset,
            initial_error=eps,
            one_way_bound=ONE_WAY_BOUND,
            poll_phase=0.3 + 0.15 * index,
            probe_period=0.05,
            seed=seed * 100 + index,
            secret="repro-live",
        )
        specs.append(NodeSpec(name=name, config=config))

    supervisor = ClusterSupervisor(
        specs, restart=RestartPolicy(base=0.2, factor=2.0, max_delay=2.0)
    )
    series: Dict[str, List[Dict[str, Any]]] = {name: [] for name in names}
    try:
        await supervisor.start()
        booted = await supervisor.wait_ready(timeout=45.0)
        start = time.monotonic() - epoch  # measurement-window origin, axis time
        if with_faults:
            # The tamper window brackets the crash victim's backoff +
            # respawn + first poll round; both anchors are tampered so
            # the rejoiner's first-arriving reply is a forgery even
            # under the steady 10% loss.
            tamper_at = start + 0.35 * duration
            tamper_for = 0.35 * duration
            proxy.events = sorted(
                [
                    DelaySpike(at=start + 0.20 * duration, scale=1.0,
                               extra=0.15, duration=0.15 * duration),
                    MessageTamper(at=tamper_at, a="S1", offset=TAMPER_OFFSET,
                                  probability=1.0, duration=tamper_for),
                    MessageTamper(at=tamper_at, a="S2", offset=TAMPER_OFFSET,
                                  probability=1.0, duration=tamper_for),
                ],
                key=lambda e: e.at,
            )
        crashed = False
        crash_elapsed = 0.30 * duration
        while time.monotonic() - epoch - start < duration:
            await asyncio.sleep(SCRAPE_PERIOD)
            elapsed = time.monotonic() - epoch - start
            if with_faults and not crashed and elapsed >= crash_elapsed:
                supervisor.kill(CRASH_VICTIM)
                crashed = True
            for name, snap in (await supervisor.scrape(timeout=0.5)).items():
                if snap is not None:
                    series[name].append(snap)
        final = await supervisor.scrape(timeout=2.0)
        for name, snap in final.items():
            if snap is not None:
                series[name].append(snap)
        if telemetry_dir:
            arm_dir = os.path.join(telemetry_dir, arm)
            os.makedirs(arm_dir, exist_ok=True)
            for name, text in (await supervisor.metrics(timeout=2.0)).items():
                if text:
                    with open(os.path.join(arm_dir, f"{name}.prom"), "w") as fh:
                        fh.write(text)
        drained = await supervisor.drain(grace=3.0)
    finally:
        supervisor.close()
        proxy.close()

    nodes: Dict[str, Any] = {}
    mm1_total = 0
    mono_total = 0
    xi_live = 0.0
    rtt_count = 0
    for name in names:
        snaps = series[name]
        inv = _accumulate(snaps)
        last = snaps[-1] if snaps else None
        rtt = (last or {}).get("rtt", {"count": 0, "mean": None, "max": None, "p95": None})
        if rtt.get("max"):
            xi_live = max(xi_live, rtt["max"])
        rtt_count += rtt.get("count") or 0
        nodes[name] = {
            "invariants": inv,
            "rounds": (last or {}).get("rounds", 0),
            "resets": (last or {}).get("resets", 0),
            "rejects": (last or {}).get("rejects", 0),
            "rtt": rtt,
            "rtt_samples": (last or {}).get("rtt_samples", []),
            "security": (last or {}).get("security"),
            "restarts": supervisor.specs[name].restarts,
            "scrapes": len(snaps),
        }
        mm1_total += int(inv["mm1_violations"])
        mono_total += int(inv["monotonicity_violations"])

    return {
        "arm": arm,
        "kind": kind,
        "seed": seed,
        "duration": duration,
        "booted": booted,
        "loss": loss,
        "nodes": nodes,
        "mm1_violations": mm1_total,
        "monotonicity_violations": mono_total,
        "xi_live": xi_live,
        "xi_declared": 2.0 * ONE_WAY_BOUND,
        "rtt_count": rtt_count,
        "crash_restarts": supervisor.crash_restarts,
        "drained": drained,
        "proxy": vars(proxy.stats).copy(),
    }


def run(
    *,
    seed: int = 0,
    duration: float = 12.0,
    loss: float = LOSS,
    with_faults: bool = True,
    arms: Sequence[str] = ("plain", "hardened"),
    telemetry_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the scenario once per arm (sequentially — one cluster at a
    time keeps loopback RTTs honest) and assemble the report."""
    results = {}
    for arm in arms:
        results[arm] = asyncio.run(
            _run_arm(
                arm,
                seed=seed,
                duration=duration,
                loss=loss,
                with_faults=with_faults,
                telemetry_dir=telemetry_dir,
            )
        )
    hardened = results.get("hardened")
    ok = True
    if hardened is not None:
        ok = (
            hardened["booted"]
            and hardened["mm1_violations"] == 0
            and hardened["monotonicity_violations"] == 0
            and hardened["rtt_count"] > 0
        )
    return {
        "experiment": "live_gauntlet",
        "seed": seed,
        "duration": duration,
        "arms": results,
        "plain_degraded": (
            results["plain"]["mm1_violations"] > 0 if "plain" in results else None
        ),
        "ok": ok,
    }


def main(
    *,
    seeds: Sequence[int] = (0,),
    json_path: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
    duration: float = 12.0,
) -> bool:
    """Run the live gauntlet for each seed; print and persist the report."""
    reports = []
    all_ok = True
    for seed in seeds:
        report = run(seed=seed, duration=duration, telemetry_dir=telemetry_dir)
        reports.append(report)
        all_ok = all_ok and report["ok"]
        for arm in ("plain", "hardened"):
            if arm not in report["arms"]:
                continue
            res = report["arms"][arm]
            print(
                f"seed {seed} {arm:>9}: mm1={res['mm1_violations']:4d} "
                f"mono={res['monotonicity_violations']:4d} "
                f"xi_live={res['xi_live']:.4f}s (declared {res['xi_declared']:.2f}s) "
                f"rtt_n={res['rtt_count']} restarts={res['crash_restarts']}"
            )
    print(f"live gauntlet: {'PASS' if all_ok else 'FAIL'}")
    if json_path:
        payload = reports[0] if len(reports) == 1 else {
            "experiment": "live_gauntlet",
            "reports": reports,
            "ok": all_ok,
        }
        with open(json_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    return all_ok
