"""Theorem 8 — expected intersection error does not grow, given enough servers.

The theorem's model: ``n`` clocks synchronized at ``t0`` with common error
``e0``; each clock's actual drift over the interval is an i.i.d. random
variable supported on ``[-δ, +δ]``; no resets occur.  Then the expected
half-width of the intersection of the ``n`` intervals at ``t > t0``
satisfies ``lim_{n→∞} E(e) = e0`` — the intersection's edges get pinned by
the fastest clock's trailing edge and the slowest clock's leading edge,
both of which track real time exactly when actual drift reaches the claimed
bound.

Two reproductions:

* :func:`run_monte_carlo` — the theorem verbatim: direct sampling of the
  closed-form interval edges, sweeping ``n``.  Expected: ``E(e)`` decreases
  toward ``e0`` as ``n`` grows; for ``n = 1`` it equals ``e0 + δ·Δ``.
* :func:`run_overspecified` — the corollary the paper states in prose: when
  the claimed bound is *overspecified* (actual drift only fills
  ``fraction`` of it), the expected growth is the amount of
  overspecification, ``(1 - fraction)·δ·Δ`` per unit time in the limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


@dataclass(frozen=True)
class Theorem8Result:
    """Monte-Carlo sweep output.

    Attributes:
        e0: Common initial error.
        delta: Claimed drift bound δ.
        elapsed: Interval length Δ.
        mean_error: Expected intersection half-width by server count n.
        single_clock_error: The no-intersection baseline ``e0 + δ·Δ``.
    """

    e0: float
    delta: float
    elapsed: float
    mean_error: Dict[int, float]
    single_clock_error: float

    @property
    def monotone_decreasing(self) -> bool:
        """Whether E(e) decreases as n grows (the theorem's direction)."""
        values = [self.mean_error[n] for n in sorted(self.mean_error)]
        return all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


def _intersection_half_widths(
    n: int,
    trials: int,
    e0: float,
    delta: float,
    elapsed: float,
    drift_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorised sampling of the theorem's intersection half-width.

    Clock ``i``: ``C_i(t0 + Δ) = t0 + Δ(1 + α_i)`` with α uniform on
    ``±(drift_fraction·δ)``; error ``E_i = e0 + δ·Δ`` (claimed bound).
    Intersection: ``[max(C_i - E_i), min(C_i + E_i)]``.
    """
    alphas = rng.uniform(
        -drift_fraction * delta, drift_fraction * delta, size=(trials, n)
    )
    centers = elapsed * alphas  # offsets from the true time t0 + Δ
    error = e0 + delta * elapsed
    trailing = (centers - error).max(axis=1)
    leading = (centers + error).min(axis=1)
    widths = leading - trailing
    # With valid bounds the intersection cannot be empty (every interval
    # contains the true time), so widths are positive by construction.
    return widths / 2.0


def run_monte_carlo(
    sizes: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    e0: float = 0.01,
    delta: float = 1e-4,
    elapsed: float = 3600.0,
    trials: int = 4000,
    drift_fraction: float = 1.0,
    seed: int = 11,
) -> Theorem8Result:
    """The theorem verbatim: E(e) vs. n with actual drift filling ±δ."""
    rng = np.random.default_rng(seed)
    mean_error = {
        n: float(
            _intersection_half_widths(
                n, trials, e0, delta, elapsed, drift_fraction, rng
            ).mean()
        )
        for n in sizes
    }
    return Theorem8Result(
        e0=e0,
        delta=delta,
        elapsed=elapsed,
        mean_error=mean_error,
        single_clock_error=e0 + delta * elapsed,
    )


@dataclass(frozen=True)
class OverspecifiedResult:
    """Growth under overspecified bounds.

    Attributes:
        fraction: Actual drift range as a fraction of the claimed δ.
        limit_growth: Predicted large-n error growth, ``(1 - fraction)·δ·Δ``.
        measured_excess: Measured ``E(e) - e0`` at the largest n.
    """

    fraction: float
    limit_growth: float
    measured_excess: float


def run_overspecified(
    fractions: Sequence[float] = (1.0, 0.75, 0.5, 0.25, 0.0),
    n: int = 128,
    e0: float = 0.01,
    delta: float = 1e-4,
    elapsed: float = 3600.0,
    trials: int = 4000,
    seed: int = 12,
) -> list[OverspecifiedResult]:
    """The prose corollary: growth equals the overspecification amount."""
    rng = np.random.default_rng(seed)
    results = []
    for fraction in fractions:
        widths = _intersection_half_widths(
            n, trials, e0, delta, elapsed, fraction, rng
        )
        results.append(
            OverspecifiedResult(
                fraction=fraction,
                limit_growth=(1.0 - fraction) * delta * elapsed,
                measured_excess=float(widths.mean() - e0),
            )
        )
    return results


def main() -> None:
    """Print both sweeps."""
    from ..analysis.plots import render_table

    result = run_monte_carlo()
    print("Theorem 8 — E(intersection error) vs. number of servers")
    print(f"  e0 = {result.e0}, δ·Δ = {result.delta * result.elapsed}")
    rows = [
        [n, result.mean_error[n], result.mean_error[n] / result.e0]
        for n in sorted(result.mean_error)
    ]
    print(render_table(["n", "E(e)", "E(e)/e0"], rows))
    print(f"  single clock would have e = {result.single_clock_error}")
    print(f"  monotone decreasing in n: {result.monotone_decreasing}")

    print("\nOverspecified bounds — growth equals the overspecification:")
    rows = [
        [r.fraction, r.limit_growth, r.measured_excess]
        for r in run_overspecified()
    ]
    print(
        render_table(
            ["actual/claimed", "predicted growth", "measured E(e) - e0"], rows
        )
    )


if __name__ == "__main__":
    main()
