"""Section 3's recovery anecdote — the four-percent-fast clock.

"In one experiment there was a network of two servers in which one server
assumed its maximum drift rate was bounded by one second a day and whose
actual drift rate was closer to one hour a day (about four percent fast).
Each time either of the two clocks decided to reset, it found itself
inconsistent with its neighbor and obtained the time from a server on some
other network.  The main problem was that the servers did not check their
neighbor very often, so the time of the inaccurate clock would be very far
off by the time it reset."

Reproduction: a two-server LAN (A good, B four percent fast with a claimed
bound of 1 s/day), plus a reference server R on "some other network" —
reachable over slow WAN links.  Both LAN servers run MM with the paper's
third-server recovery.  Because B's racing clock makes *every* neighbour
reply inconsistent (MM-2 ignores them), only the recovery path can fix B;
the experiment measures the inconsistency/recovery cycle and — sweeping the
poll period τ — the anecdote's moral that B's worst offset scales with how
rarely it checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from ..core.mm import MMPolicy
from ..core.recovery import ThirdServerRecovery
from ..network.delay import UniformDelay
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

#: 1 second/day, the claimed bound of both LAN servers.
ONE_SECOND_PER_DAY = 1.0 / 86400.0

#: "about four percent fast" — roughly one hour per day.
FOUR_PERCENT = 0.04


def _anecdote_topology() -> nx.Graph:
    """A–B on the LAN; R on another network behind WAN links."""
    graph = nx.Graph()
    graph.add_edge("A", "B", kind="lan")
    graph.add_edge("A", "R", kind="wan")
    graph.add_edge("B", "R", kind="wan")
    return graph


@dataclass(frozen=True)
class RecoveryRunResult:
    """One run of the anecdote.

    Attributes:
        tau: Poll period used.
        inconsistencies: Inconsistency detections across A and B.
        recoveries: Unconditional third-server resets applied.
        worst_offset_b: Max |C_B(t) - t| over the run — how "very far off"
            the racing clock got between recoveries.
        final_offset_b: |C_B - t| at the end of the run.
        b_kept_bounded: Whether recovery kept B's worst offset to roughly
            what it can accumulate in two poll periods (i.e. recovery
            actually worked).
    """

    tau: float
    inconsistencies: int
    recoveries: int
    worst_offset_b: float
    final_offset_b: float
    b_kept_bounded: bool


def run(
    tau: float = 300.0,
    horizon: float = 4.0 * 3600.0,
    seed: int = 9,
    racing_skew: float = FOUR_PERCENT,
    claimed_delta: float = ONE_SECOND_PER_DAY,
) -> RecoveryRunResult:
    """Run the two-server + remote-arbiter anecdote."""
    specs = [
        ServerSpec("A", delta=claimed_delta, skew=0.0),
        ServerSpec("B", delta=claimed_delta, skew=racing_skew),
        ServerSpec("R", reference=True, initial_error=0.001),
    ]
    service = build_service(
        _anecdote_topology(),
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        wan_delay=UniformDelay(0.25),
        recovery_factory=lambda name: ThirdServerRecovery(remote_servers=("R",)),
        trace_enabled=True,
    )
    worst_offset_b = 0.0
    for snap in service.sample(grid(0.0, horizon, 400)):
        worst_offset_b = max(worst_offset_b, abs(snap.offsets["B"]))
    final_offset_b = abs(service.snapshot().offsets["B"])

    trace = service.trace
    recoveries = trace.filter(
        kind="reset",
        predicate=lambda row: row.data.get("reset_kind") == "recovery",
    )
    # With recovery, B drifts for at most ~2τ (one poll to notice, one
    # recovery round trip, sampling slack) before being yanked back.
    allowance = racing_skew * 2.0 * tau + 2.0
    return RecoveryRunResult(
        tau=tau,
        inconsistencies=trace.count("inconsistent"),
        recoveries=len(recoveries),
        worst_offset_b=worst_offset_b,
        final_offset_b=final_offset_b,
        b_kept_bounded=worst_offset_b <= allowance,
    )


@dataclass(frozen=True)
class TauSweepRow:
    """One τ of the sweep behind the anecdote's moral."""

    tau: float
    recoveries: int
    worst_offset: float


def sweep_tau(
    taus: Sequence[float] = (60.0, 300.0, 900.0),
    horizon: float = 2.0 * 3600.0,
    seed: int = 9,
) -> list[TauSweepRow]:
    """Worst offset of the racing clock as a function of the poll period.

    Expected shape: roughly linear growth in τ — the less often B checks,
    the further off it is by the time it resets.
    """
    rows = []
    for tau in taus:
        result = run(tau=tau, horizon=horizon, seed=seed)
        rows.append(
            TauSweepRow(
                tau=tau,
                recoveries=result.recoveries,
                worst_offset=result.worst_offset_b,
            )
        )
    return rows


def main() -> None:
    """Print the anecdote run and the τ sweep."""
    from ..analysis.plots import render_table

    result = run()
    print("Section 3 anecdote — two servers, one 4% fast, remote recovery")
    print(f"  inconsistencies detected: {result.inconsistencies}")
    print(f"  third-server recoveries:  {result.recoveries}")
    print(f"  B's worst offset:         {result.worst_offset_b:.3f} s")
    print(f"  B's final offset:         {result.final_offset_b:.3f} s")
    print(f"  recovery kept B bounded:  {result.b_kept_bounded}")
    print("\nPoll-period sweep (worst offset grows with τ):")
    rows = [[r.tau, r.recoveries, r.worst_offset] for r in sweep_tau()]
    print(render_table(["τ (s)", "recoveries", "worst offset (s)"], rows))


if __name__ == "__main__":
    main()
