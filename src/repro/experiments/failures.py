"""Clock failure modes under each algorithm (Section 1.1's failure menu).

"A clock may fail in many ways, such as by stopping, racing ahead, or
refusing to change its value when reset."  The paper defers the full
treatment to [Marzullo 83] but its recovery machinery exists for exactly
these faults.  This experiment injects each failure into one server of a
healthy mesh, runs MM and IM with and without third-server recovery, and
scores:

* whether the *healthy* servers stay correct (they must — MM/IM ignore
  inconsistent inputs, and an inconsistent faulty server cannot poison a
  correct majority under MM; IM's hazard is the consistent-but-wrong state
  of Figure 3, which the stopped/racing faults quickly leave);
* the faulty server's final true offset (recovery should bound it for
  stopping/racing faults; nothing can fix a clock that refuses resets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..clocks.base import Clock
from ..clocks.drift import DriftingClock
from ..clocks.failures import RacingClock, StoppedClock, StuckOnResetClock
from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..core.recovery import ThirdServerRecovery
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

#: When the injected fault activates.
FAIL_AT = 600.0

#: Claimed drift bound of every server.
DELTA = 1e-5


def _stopped(rng, name) -> Clock:
    return StoppedClock(DriftingClock(2e-6), fail_at=FAIL_AT)


def _racing(rng, name) -> Clock:
    return RacingClock(DriftingClock(2e-6), fail_at=FAIL_AT, racing_skew=0.02)


def _stuck(rng, name) -> Clock:
    return StuckOnResetClock(DriftingClock(2e-6), fail_at=FAIL_AT)


FAILURE_MODES: dict[str, Callable] = {
    "stopped": _stopped,
    "racing": _racing,
    "stuck-on-reset": _stuck,
}

#: Post-failure offset growth rate of each mode (s of offset per real s):
#: a stopped clock falls behind at 1 s/s; the racing clock gains at its
#: racing skew; a stuck clock just keeps its small natural drift.
FAILURE_DRIFT_RATE = {
    "stopped": 1.0,
    "racing": 0.02,
    "stuck-on-reset": 2e-6,
}


@dataclass(frozen=True)
class FailureOutcome:
    """One (failure, policy, recovery) cell.

    Attributes:
        failure: Failure-mode name.
        policy: "MM" or "IM".
        recovery: Whether third-server recovery was enabled.
        healthy_correct: Healthy servers stayed correct at every sample.
        faulty_final_offset: |C_faulty - t| at the end.
        faulty_recovered: Whether recovery bounded the faulty server's
            offset to what it can re-accumulate in ~3 poll periods at its
            post-failure drift rate (a stopped clock re-drifts at 1 s/s, so
            "bounded" still means tens of seconds at τ = 60).
        inconsistencies: Total inconsistency detections across the service.
    """

    failure: str
    policy: str
    recovery: bool
    healthy_correct: bool
    faulty_final_offset: float
    faulty_recovered: bool
    inconsistencies: int


def run_cell(
    failure: str,
    policy_name: str,
    recovery: bool,
    *,
    n: int = 5,
    tau: float = 60.0,
    horizon: float = 3600.0,
    seed: int = 23,
) -> FailureOutcome:
    """Run one failure scenario cell."""
    clock_factory = FAILURE_MODES[failure]
    healthy = [f"S{k + 1}" for k in range(n - 1)]
    faulty = f"S{n}"
    specs = [
        ServerSpec(name, delta=DELTA, skew=(k - (n - 2) / 2) * 2e-6)
        for k, name in enumerate(healthy)
    ]
    specs.append(ServerSpec(faulty, delta=DELTA, clock_factory=clock_factory))
    policy = MMPolicy() if policy_name == "MM" else IMPolicy()
    service = build_service(
        full_mesh(n),
        specs,
        policy=policy,
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.01),
        recovery_factory=(
            (lambda name: ThirdServerRecovery()) if recovery else None
        ),
        trace_enabled=False,
    )
    healthy_correct = True
    for snap in service.sample(grid(0.0, horizon, 72)):
        if not all(snap.correct[name] for name in healthy):
            healthy_correct = False
    final = service.snapshot()
    offset = abs(final.offsets[faulty])
    inconsistencies = sum(
        server.stats.inconsistencies for server in service.servers.values()
    )
    allowance = 3.0 * tau * FAILURE_DRIFT_RATE[failure] + 1.0
    return FailureOutcome(
        failure=failure,
        policy=policy_name,
        recovery=recovery,
        healthy_correct=healthy_correct,
        faulty_final_offset=offset,
        faulty_recovered=offset <= allowance,
        inconsistencies=inconsistencies,
    )


def run_matrix(
    *,
    horizon: float = 3600.0,
    seed: int = 23,
) -> List[FailureOutcome]:
    """The full failure × policy × recovery matrix."""
    outcomes = []
    for failure in FAILURE_MODES:
        for policy_name in ("MM", "IM"):
            for recovery in (False, True):
                outcomes.append(
                    run_cell(
                        failure,
                        policy_name,
                        recovery,
                        horizon=horizon,
                        seed=seed,
                    )
                )
    return outcomes


def main() -> None:
    """Print the failure matrix."""
    from ..analysis.plots import render_table

    rows = [
        [
            o.failure,
            o.policy,
            o.recovery,
            o.healthy_correct,
            o.faulty_final_offset,
            o.faulty_recovered,
            o.inconsistencies,
        ]
        for o in run_matrix()
    ]
    print("Failure injection — one faulty clock in a five-server mesh")
    print(
        render_table(
            [
                "failure",
                "policy",
                "recovery",
                "healthy ok",
                "faulty |offset|",
                "faulty bounded",
                "inconsistencies",
            ],
            rows,
        )
    )
    print(
        "\nExpected shape: recovery bounds the stopped/racing clock "
        "(a stuck clock needs no bounding and accepts no fix).  One "
        "emergent hazard is visible in the racing/IM/recovery cell: the "
        "faulty server's own recoveries keep pulling it back to a "
        "consistent-but-incorrect interval, dynamically re-arming the "
        "Figure 3 trap for its IM neighbours; MM's acceptance predicate "
        "is immune.  This is the paper's IM fault-tolerance warning, "
        "reproduced as a closed loop."
    )


if __name__ == "__main__":
    main()
