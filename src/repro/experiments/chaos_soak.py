"""Chaos soak: seeded fault storms with a continuous correctness oracle.

The paper proves its invariants for correct servers under benign loss; the
chaos subsystem (:mod:`repro.faults`) asks what happens under everything
else — flapping links, partitions, corrupted/duplicated/reordered
messages, crashing servers, stepped/frozen/racing clocks, and Byzantine
liars.  This experiment runs seeded soak storms and reports:

* **zero invariant violations** for non-faulty servers (the monitor's
  taint tracking decides who counts as faulty, and when);
* **deterministic replay** — the same seed reproduces the identical fault
  timeline (schedule signature) and the identical run (trace digest);
* **hardening pays** — under a sustained 30% loss, flapping links, and a
  persistent liar, :class:`~repro.service.hardening.HardenedTimeServer`
  quarantines the liar and keeps the honest servers' error bounded while
  the plain baseline's inconsistency count diverges linearly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.im import IMPolicy
from ..core.mm import MMPolicy
from ..faults import (
    ByzantineReplies,
    FaultSchedule,
    LinkFlap,
    attach_chaos,
)
from ..network.topology import full_mesh
from ..service.builder import ServerSpec, SimulatedService, build_service
from ..service.hardening import HardeningConfig
from ..simulation.trace import TraceRecorder
from .scenarios import grid

#: Fault rates (events/hour) used by the soak — deliberately far above the
#: schedule sampler's defaults so a 30-minute run sees a real storm.
SOAK_RATES = dict(
    link_fault_rate=40.0,
    message_fault_rate=20.0,
    server_fault_rate=20.0,
)


def trace_digest(trace: TraceRecorder) -> int:
    """A stable fingerprint of an entire run's trace.

    Two runs with the same seed must produce byte-identical traces; the
    digest is a CRC over a canonical rendering of every row.
    """
    crc = 0
    for row in trace:
        text = "%r|%s|%s|%s" % (
            row.time,
            row.kind,
            row.source,
            ",".join(f"{k}={row.data[k]!r}" for k in sorted(row.data)),
        )
        crc = zlib.crc32(text.encode("utf-8"), crc)
    return crc


@dataclass(frozen=True)
class SoakOutcome:
    """One seeded storm.

    Attributes:
        policy: "MM" or "IM".
        seed: Root seed (drives both the schedule and the service RNG).
        horizon: Simulated seconds.
        schedule_signature: Fingerprint of the sampled fault timeline.
        trace_digest: Fingerprint of the full run trace.
        events_applied: Fault events the injector fired.
        fault_counts: Events per kind.
        checks: Monitor sweeps performed.
        violations: Total invariant violations (must be 0).
        exemptions: Server-checks skipped as faulty/tainted/departed.
        survival_rate: Fraction of non-exempt server-checks that passed.
        final_max_error: Largest error bound at the end of the run.
    """

    policy: str
    seed: int
    horizon: float
    schedule_signature: int
    trace_digest: int
    events_applied: int
    fault_counts: Dict[str, int]
    checks: int
    violations: int
    exemptions: int
    survival_rate: float
    final_max_error: float


def _build(
    policy_name: str,
    seed: int,
    *,
    n: int,
    tau: float,
    loss: float = 0.0,
    hardened: bool = True,
    reference: bool = False,
    telemetry=None,
) -> SimulatedService:
    names = [f"S{k + 1}" for k in range(n)]
    specs = [
        ServerSpec(
            name,
            delta=1e-4,
            skew=(k - (n - 1) / 2) * 2e-5,
            initial_error=0.05,
        )
        for k, name in enumerate(names)
    ]
    graph = full_mesh(n)
    if reference:
        # A WWV-style master (paper Section 6) so honest servers have an
        # anchor to sync down to — without one, a symmetric mesh's errors
        # all grow together and "bounded" is unmeasurable.
        graph.add_node("R")
        for name in names:
            graph.add_edge("R", name)
        specs.append(ServerSpec("R", reference=True, initial_error=0.01))
    policy = MMPolicy() if policy_name == "MM" else IMPolicy()
    return build_service(
        graph,
        specs,
        policy=policy,
        tau=tau,
        seed=seed,
        loss_probability=loss,
        hardening=HardeningConfig() if hardened else None,
        telemetry=telemetry,
    )


def run_soak(
    policy_name: str = "MM",
    seed: int = 0,
    *,
    n: int = 5,
    tau: float = 30.0,
    horizon: float = 1800.0,
    monitor_period: float = 5.0,
    telemetry=None,
) -> SoakOutcome:
    """One seeded fault storm against a hardened service.

    Args:
        telemetry: An optional :class:`~repro.telemetry.ServiceTelemetry`
            to attach to the soaked service; :func:`attach_chaos` then
            routes the monitor's ``repro_invariant_checks_total`` counters
            into its registry (the nightly soak's archived artefacts).
    """
    service = _build(policy_name, seed + 100, n=n, tau=tau, telemetry=telemetry)
    names = sorted(service.servers)
    edges = sorted(
        tuple(sorted((str(a), str(b)))) for a, b in service.network.graph.edges
    )
    schedule = FaultSchedule.random(
        seed=seed, names=names, edges=edges, horizon=horizon, **SOAK_RATES
    )
    injector, monitor = attach_chaos(
        service, schedule, monitor_period=monitor_period
    )
    service.run_until(horizon)
    assert monitor is not None
    stats = monitor.stats
    total_slots = stats.checks * len(names)
    judged = max(1, total_slots - stats.exemptions)
    snap = service.snapshot()
    return SoakOutcome(
        policy=policy_name,
        seed=seed,
        horizon=horizon,
        schedule_signature=schedule.signature(),
        trace_digest=trace_digest(service.trace),
        events_applied=injector.stats.events_applied,
        fault_counts=schedule.counts(),
        checks=stats.checks,
        violations=stats.total_violations,
        exemptions=stats.exemptions,
        survival_rate=(judged - stats.correctness_violations) / judged,
        final_max_error=snap.max_error,
    )


def run_matrix(
    *,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    policies: Sequence[str] = ("MM", "IM"),
    horizon: float = 1800.0,
) -> List[SoakOutcome]:
    """Soak every (policy, seed) cell."""
    return [
        run_soak(policy_name, seed, horizon=horizon)
        for policy_name in policies
        for seed in seeds
    ]


# ------------------------------------------------------- hardening payoff


def adversarial_schedule(
    edges: Sequence[Tuple[str, str]],
    horizon: float,
    *,
    liar: str,
    flap_period: float = 120.0,
    lie_offset: float = 5.0,
) -> FaultSchedule:
    """Flapping links plus a persistent Byzantine liar.

    Combined with a 30% ambient message loss this is the hostile
    environment the hardening comparison runs in: the liar answers every
    poll with a clock 5 s off and a confidently understated error.
    """
    events = []
    t = 90.0
    while t < horizon:
        for a, b in list(edges)[:2]:
            events.append(LinkFlap(at=t, a=a, b=b, downtime=45.0))
        t += flap_period
    t = 60.0
    while t < horizon:
        events.append(
            ByzantineReplies(
                at=t,
                server=liar,
                duration=110.0,
                offset=lie_offset,
                error_scale=0.2,
            )
        )
        t += 120.0
    return FaultSchedule(events)


@dataclass(frozen=True)
class HardeningComparison:
    """Plain vs hardened servers under the same adversarial schedule.

    Attributes:
        seed: Root seed shared by both runs.
        horizon: Simulated seconds.
        liar: The Byzantine server (excluded from honest metrics).
        baseline_inconsistencies: Inconsistency detections summed over the
            plain run's honest servers — grows for as long as the liar
            keeps answering, i.e. diverges with the horizon.
        hardened_inconsistencies: Same for the hardened run — validation
            rejects the lies before the policy ever sees them.
        baseline_worst_error: Largest honest-server error bound observed
            at any sample of the plain run.
        hardened_worst_error: Same for the hardened run.
        baseline_honest_correct: Fraction of honest-server samples whose
            interval contained true time (plain run).
        hardened_honest_correct: Same for the hardened run.
        hardened_invalid_replies: Lies caught by validation.
        hardened_quarantines: Quarantine activations across the run.
        hardened_retries: Poll retransmissions sent (the 30% loss is why).
    """

    seed: int
    horizon: float
    liar: str
    baseline_inconsistencies: int
    hardened_inconsistencies: int
    baseline_worst_error: float
    hardened_worst_error: float
    baseline_honest_correct: float
    hardened_honest_correct: float
    hardened_invalid_replies: int
    hardened_quarantines: int
    hardened_retries: int


def _adversarial_run(
    seed: int,
    *,
    hardened: bool,
    n: int,
    tau: float,
    horizon: float,
    loss: float,
    samples: int,
) -> Tuple[SimulatedService, float, float, str]:
    liar = f"S{n}"
    service = _build(
        "MM", seed, n=n, tau=tau, loss=loss, hardened=hardened, reference=True
    )
    edges = sorted(
        tuple(sorted((str(a), str(b)))) for a, b in service.network.graph.edges
    )
    schedule = adversarial_schedule(edges, horizon, liar=liar)
    attach_chaos(service, schedule, monitor=False)
    honest = [
        name for name in sorted(service.servers) if name not in (liar, "R")
    ]
    worst = 0.0
    correct = 0
    total = 0
    for snap in service.sample(grid(tau, horizon, samples)):
        worst = max(worst, max(snap.errors[name] for name in honest))
        correct += sum(1 for name in honest if snap.correct[name])
        total += len(honest)
    return service, worst, correct / max(1, total), liar


def compare_hardening(
    seed: int = 0,
    *,
    n: int = 5,
    tau: float = 30.0,
    horizon: float = 1800.0,
    loss: float = 0.3,
    samples: int = 60,
) -> HardeningComparison:
    """Run the adversarial schedule twice: plain servers, then hardened."""
    base, base_worst, base_correct, liar = _adversarial_run(
        seed, hardened=False, n=n, tau=tau, horizon=horizon, loss=loss,
        samples=samples,
    )
    hard, hard_worst, hard_correct, _ = _adversarial_run(
        seed, hardened=True, n=n, tau=tau, horizon=horizon, loss=loss,
        samples=samples,
    )

    def inconsistencies(service: SimulatedService) -> int:
        return sum(
            service.servers[name].stats.inconsistencies
            for name in service.servers
            if name != liar
        )

    invalid = sum(
        server.stats.invalid_replies for server in hard.servers.values()
    )
    quarantines = sum(
        getattr(server, "hardening_stats").quarantines
        for server in hard.servers.values()
        if hasattr(server, "hardening_stats")
    )
    retries = sum(
        getattr(server, "hardening_stats").retries_sent
        for server in hard.servers.values()
        if hasattr(server, "hardening_stats")
    )
    return HardeningComparison(
        seed=seed,
        horizon=horizon,
        liar=liar,
        baseline_inconsistencies=inconsistencies(base),
        hardened_inconsistencies=inconsistencies(hard),
        baseline_worst_error=base_worst,
        hardened_worst_error=hard_worst,
        baseline_honest_correct=base_correct,
        hardened_honest_correct=hard_correct,
        hardened_invalid_replies=invalid,
        hardened_quarantines=quarantines,
        hardened_retries=retries,
    )


def main() -> None:
    """Print the soak matrix and the hardening comparison."""
    from ..analysis.plots import render_table

    outcomes = run_matrix()
    rows = [
        [
            o.policy,
            o.seed,
            o.events_applied,
            o.checks,
            o.violations,
            o.exemptions,
            f"{o.survival_rate:.3f}",
            f"{o.final_max_error:.3f}",
            f"{o.schedule_signature:08x}",
            f"{o.trace_digest:08x}",
        ]
        for o in outcomes
    ]
    print("Chaos soak — seeded fault storms against a hardened 5-mesh")
    print(
        render_table(
            [
                "policy",
                "seed",
                "faults",
                "checks",
                "violations",
                "exempt",
                "survival",
                "final max E",
                "schedule sig",
                "trace digest",
            ],
            rows,
        )
    )
    comparison = compare_hardening()
    print(
        "\nHardening payoff (30% loss + flapping links + Byzantine "
        f"{comparison.liar}, {comparison.horizon:.0f} s):"
    )
    print(
        render_table(
            [
                "variant",
                "inconsistencies",
                "worst honest E",
                "honest correct",
            ],
            [
                [
                    "plain",
                    comparison.baseline_inconsistencies,
                    f"{comparison.baseline_worst_error:.3f}",
                    f"{comparison.baseline_honest_correct:.3f}",
                ],
                [
                    "hardened",
                    comparison.hardened_inconsistencies,
                    f"{comparison.hardened_worst_error:.3f}",
                    f"{comparison.hardened_honest_correct:.3f}",
                ],
            ],
        )
    )
    print(
        f"\nhardened caught {comparison.hardened_invalid_replies} invalid "
        f"replies, quarantined {comparison.hardened_quarantines} times, "
        f"retried {comparison.hardened_retries} polls.\n"
        "Expected shape: every soak row shows zero violations, and the "
        "plain baseline's inconsistency count diverges with the horizon "
        "while the hardened run rejects and quarantines the liar."
    )


if __name__ == "__main__":
    main()
