"""Section 5 / Figure 4 genesis — recovery breakdown and consistency groups.

"This recovery algorithm can break down as soon as there is more than one
incorrect server directly connected to a server.  In this case, the service
can partition into different consistency groups (Figure 4)."

Reproduction: server G1 is directly connected to *two* racing clocks (B1,
B2, fast/slow at rates far beyond their claimed bounds and mutually
inconsistent), plus one good neighbour G2; the good core G2–G3–G4 is a
triangle.  When G1 finds itself inconsistent with B1, the third-server rule
picks an arbiter that is "any third server" — and with two bad neighbours
the arbiter can be B2, so G1 adopts a racing clock's time and is torn away
from the good core.  The service ends partitioned into multiple
consistency groups: the dynamic route into the Figure 4 state.

The experiment also runs Section 5's proposed diagnosis: apply the interval
machinery to clock *rates*.  Pairwise separation rates are measured from
the run; servers outside the largest mutually-*consonant* clique are the
suspects — and they turn out to be exactly the racing clocks, even though
point-in-time consistency could not tell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from ..analysis.consistency_graph import ConsistencyGroup, consistency_groups
from ..core.consonance import consonant
from ..core.mm import MMPolicy
from ..core.recovery import ThirdServerRecovery
from ..network.delay import UniformDelay
from ..service.builder import ServerSpec, build_service
from .scenarios import grid

#: Claimed bound for every server (~0.9 s/day).
CLAIMED_DELTA = 1e-5

#: Actual skews.  B1/B2 race far beyond the claim, at different rates, so
#: they are inconsistent with everyone *including each other*.
SKEWS = {
    "B1": +5e-3,
    "B2": -4e-3,
    "G1": +2e-6,
    "G2": -2e-6,
    "G3": 0.0,
    "G4": +1e-6,
}


def _breakdown_topology() -> nx.Graph:
    """G1 adjacent to both bad servers; good core is a triangle."""
    graph = nx.Graph()
    graph.add_edges_from(
        [
            ("G1", "B1"),
            ("G1", "B2"),
            ("G1", "G2"),
            ("G2", "G3"),
            ("G3", "G4"),
            ("G2", "G4"),
        ]
    )
    return graph


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of the breakdown scenario.

    Attributes:
        groups: Final consistency groups (more than one == partitioned).
        partitioned: Whether the Figure 4 state was reached.
        poisoned_recoveries: Recovery resets whose arbiter was a bad server.
        total_recoveries: All recovery resets.
        g1_final_offset: |C_G1 - t| at the end — how far the poisoned
            server was dragged.
        core_still_correct: Oracle — the untouched core (G2–G4) stayed
            correct.
        suspects: Servers outside the largest consonant clique (Section 5's
            rate-domain diagnosis).
        diagnosis_correct: Whether the suspects include every racing clock
            and exclude the untouched good core.
    """

    groups: List[ConsistencyGroup]
    partitioned: bool
    poisoned_recoveries: int
    total_recoveries: int
    g1_final_offset: float
    core_still_correct: bool
    suspects: List[str]
    diagnosis_correct: bool


def run(
    tau: float = 120.0,
    horizon: float = 2.0 * 3600.0,
    seed: int = 13,
    rate_tracking: bool = False,
) -> PartitionResult:
    """Run the two-bad-neighbours breakdown.

    Args:
        rate_tracking: Build :class:`~repro.service.rate_tracking.
            RateTrackingServer`s, which exclude provably-dissonant
            neighbours from the recovery arbiter pool — the Section 5 fix.
            With it on, the poisoned-recovery count drops to (near) zero
            and the good servers stay in one consistency group.
    """
    names = sorted(SKEWS)
    specs = [
        ServerSpec(
            name,
            delta=CLAIMED_DELTA,
            skew=SKEWS[name],
            rate_tracking=rate_tracking,
        )
        for name in names
    ]
    service = build_service(
        _breakdown_topology(),
        specs,
        policy=MMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(0.02),
        recovery_factory=lambda name: ThirdServerRecovery(),
        trace_enabled=True,
    )
    snapshots = service.sample(grid(0.0, horizon, 120))
    final = snapshots[-1]
    groups = consistency_groups(final.intervals())

    recoveries = service.trace.filter(
        kind="reset",
        predicate=lambda row: row.data.get("reset_kind") == "recovery",
    )
    bad = {"B1", "B2"}
    poisoned = sum(
        1
        for row in recoveries
        if row.data.get("from_server", "").removeprefix("recovery:") in bad
    )

    # Section 5 diagnosis: pairwise separation rates over the run, then the
    # largest mutually-consonant clique.  Rates are fit over the final
    # quarter of the horizon (after the transient) from snapshot values.
    window = snapshots[len(snapshots) * 3 // 4 :]
    span = window[-1].time - window[0].time
    rate: Dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            d_last = window[-1].values[a] - window[-1].values[b]
            d_first = window[0].values[a] - window[0].values[b]
            rate[(a, b)] = (d_last - d_first) / span
    cons_graph = nx.Graph()
    cons_graph.add_nodes_from(names)
    for (a, b), r in rate.items():
        if consonant(r, CLAIMED_DELTA, CLAIMED_DELTA):
            cons_graph.add_edge(a, b)
    cliques = sorted(nx.find_cliques(cons_graph), key=len, reverse=True)
    largest = set(cliques[0]) if cliques else set()
    suspects = sorted(set(names) - largest)

    core = {"G2", "G3", "G4"}
    return PartitionResult(
        groups=groups,
        partitioned=len(groups) > 1,
        poisoned_recoveries=poisoned,
        total_recoveries=len(recoveries),
        g1_final_offset=abs(final.offsets["G1"]),
        core_still_correct=all(final.correct[name] for name in core),
        suspects=suspects,
        diagnosis_correct=bad <= set(suspects) and not (core & set(suspects)),
    )


@dataclass(frozen=True)
class RateTrackingComparison:
    """The Section 5 fix, measured.

    Attributes:
        without: The breakdown with plain servers.
        with_tracking: The same scenario with rate-tracking servers.
        poisoning_eliminated: Whether rate tracking removed (almost) all
            poisoned recoveries.
        g1_rescued: Whether G1's final offset improved by at least 10×.
    """

    without: PartitionResult
    with_tracking: PartitionResult
    poisoning_eliminated: bool
    g1_rescued: bool


def run_comparison(
    tau: float = 120.0, horizon: float = 2.0 * 3600.0, seed: int = 13
) -> RateTrackingComparison:
    """Run the breakdown with and without Section 5 rate tracking."""
    without = run(tau=tau, horizon=horizon, seed=seed, rate_tracking=False)
    with_tracking = run(tau=tau, horizon=horizon, seed=seed, rate_tracking=True)
    return RateTrackingComparison(
        without=without,
        with_tracking=with_tracking,
        poisoning_eliminated=(
            with_tracking.poisoned_recoveries
            <= max(1, without.poisoned_recoveries // 20)
        ),
        g1_rescued=(
            with_tracking.g1_final_offset < without.g1_final_offset / 10.0
        ),
    )


def main() -> None:
    """Print the breakdown outcome."""
    result = run()
    print("Section 5 — recovery breakdown with two bad neighbours of G1")
    print(f"  final consistency groups: {len(result.groups)}")
    for group in result.groups:
        print(f"    {{{', '.join(group.members)}}}  ∩ = {group.intersection}")
    print(f"  partitioned (Figure 4 state): {result.partitioned}")
    print(
        f"  recoveries: {result.total_recoveries} "
        f"(poisoned by a bad arbiter: {result.poisoned_recoveries})"
    )
    print(f"  G1 dragged to offset {result.g1_final_offset:.3f} s; "
          f"good core still correct: {result.core_still_correct}")
    print(f"  consonance suspects: {result.suspects} "
          f"(diagnosis correct: {result.diagnosis_correct})")

    comparison = run_comparison()
    print("\nWith Section 5 rate tracking (dissonant arbiters excluded):")
    print(
        f"  poisoned recoveries: {comparison.without.poisoned_recoveries} "
        f"-> {comparison.with_tracking.poisoned_recoveries}"
    )
    print(
        f"  G1 final offset:     {comparison.without.g1_final_offset:.3f} s "
        f"-> {comparison.with_tracking.g1_final_offset:.3f} s"
    )


if __name__ == "__main__":
    main()
