"""Figure 4 — An Inconsistent Time Service.

Six servers whose intervals no longer share a common point: the service has
split into *three* consistency groups (maximal sets of mutually consistent
servers), with overlapping membership, and "it is not apparent which set of
servers (if any) is the correct one" — consistency is not transitive, so
majority voting over pairwise checks is unsound.

The reproduction builds the six intervals, extracts the maximal-clique
consistency groups and their intersections (the figure's shaded areas), and
demonstrates the ambiguity: exactly one group contains the true time, but
nothing observable distinguishes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.consistency_graph import (
    ConsistencyGroup,
    consistency_groups,
    correct_groups,
    is_partitioned,
)
from ..analysis.plots import render_intervals
from ..core.intervals import TimeInterval, intersect_all

#: The figure's true time (the dashed line).
TRUE_TIME = 103.5

#: Six intervals arranged into three overlapping consistency groups:
#: {S1,S2,S3}, {S3,S4}, {S4,S5,S6}.
FIGURE4_INTERVALS: Dict[str, TimeInterval] = {
    "S1": TimeInterval(100.0, 104.0),
    "S2": TimeInterval(101.0, 105.0),
    "S3": TimeInterval(103.0, 108.0),
    "S4": TimeInterval(107.0, 110.0),
    "S5": TimeInterval(109.0, 112.0),
    "S6": TimeInterval(109.5, 112.5),
}


@dataclass(frozen=True)
class Figure4Result:
    """The reproduced inconsistent state.

    Attributes:
        intervals: The six drawn intervals.
        globally_consistent: Whether all six share a point (they must not).
        groups: The maximal consistency groups, largest first.
        correct: The group(s) whose intersection contains the true time
            (oracle — the algorithms cannot see this).
        diagram: ASCII rendering with the shaded intersections appended.
    """

    intervals: Dict[str, TimeInterval]
    globally_consistent: bool
    groups: List[ConsistencyGroup]
    correct: List[ConsistencyGroup]
    diagram: str


def run(intervals: Dict[str, TimeInterval] | None = None) -> Figure4Result:
    """Extract the consistency-group structure of the Figure 4 state."""
    if intervals is None:
        intervals = FIGURE4_INTERVALS
    groups = consistency_groups(intervals)
    shown = dict(intervals)
    for index, group in enumerate(groups):
        shown[f"∩{index + 1}"] = group.intersection
    return Figure4Result(
        intervals=intervals,
        globally_consistent=intersect_all(intervals.values()) is not None,
        groups=groups,
        correct=correct_groups(intervals, TRUE_TIME),
        diagram=render_intervals(shown, true_time=TRUE_TIME),
    )


def main() -> None:
    """Print the reproduced figure and its group structure."""
    result = run()
    print("Figure 4 — An Inconsistent Time Service")
    print(result.diagram)
    print(f"\nglobally consistent: {result.globally_consistent}")
    print(f"partitioned into {len(result.groups)} consistency groups:")
    for group in result.groups:
        marker = " <- contains true time" if group in result.correct else ""
        print(
            f"  {{{', '.join(group.members)}}}"
            f"  ∩ = {group.intersection}{marker}"
        )
    print(
        "\nWithout the oracle the groups are indistinguishable — the "
        "paper's motivation for examining clock *rates* (consonance)."
    )


if __name__ == "__main__":
    main()
