"""Figure 1 — Growth of Maximum Errors.

The paper's Figure 1 shows the intervals of three correct time servers at
three successive times: as the system runs, each interval both *grows*
(rule MM-1's age term) and *shifts* relative to the correct time (actual
drift).  This experiment reproduces the figure: three unsynchronized
servers with distinct claimed bounds and actual skews, sampled at three
times, rendered as ASCII interval diagrams.

Checks encoded:

* every interval contains the true time at every sample (clocks are
  correct, as drawn);
* every interval's width grows linearly at exactly ``2·δ_i`` (Lemma 1);
* the interval centres drift at the clocks' actual skews.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.plots import render_intervals
from ..core.im import IMPolicy
from ..core.intervals import TimeInterval
from ..network.delay import UniformDelay
from ..network.topology import full_mesh
from ..service.builder import (
    ServerSpec,
    ServiceSnapshot,
    SimulatedService,
    build_service,
)
from ..telemetry import ServiceTelemetry

#: The three servers of the figure: (name, claimed δ, actual skew).
FIGURE1_SERVERS = (
    ("S1", 4e-5, -2.5e-5),
    ("S2", 2e-5, +1.2e-5),
    ("S3", 6e-5, +4.0e-5),
)

#: Sample times (seconds): the figure's three rows.
FIGURE1_TIMES = (600.0, 1800.0, 3600.0)

#: Initial error shared by the three servers.
FIGURE1_INITIAL_ERROR = 0.02


@dataclass(frozen=True)
class Figure1Result:
    """Data behind the reproduced figure.

    Attributes:
        snapshots: One per sample time.
        diagrams: ASCII interval diagram per sample time.
        all_correct: Whether every interval contained the true time at
            every sample.
    """

    snapshots: List[ServiceSnapshot]
    diagrams: List[str]
    all_correct: bool

    def intervals_at(self, index: int) -> Dict[str, TimeInterval]:
        """The three intervals at sample ``index``."""
        return self.snapshots[index].intervals()


def run(
    times=FIGURE1_TIMES,
    servers=FIGURE1_SERVERS,
    initial_error: float = FIGURE1_INITIAL_ERROR,
) -> Figure1Result:
    """Reproduce Figure 1.

    Servers never synchronize (no policy), so the intervals evolve purely
    by rule MM-1: the diagram isolates the error-growth mechanism the rest
    of the paper builds on.
    """
    specs = [
        ServerSpec(name=name, delta=delta, skew=skew, initial_error=initial_error)
        for name, delta, skew in servers
    ]
    service = build_service(
        full_mesh(len(servers)),
        specs,
        policy=None,  # answer-only: Figure 1 has no synchronization
        tau=60.0,
        seed=7,
        lan_delay=UniformDelay(0.05),
        trace_enabled=False,
    )
    snapshots = service.sample(list(times))
    diagrams = [
        render_intervals(snap.intervals(), true_time=snap.time)
        for snap in snapshots
    ]
    all_correct = all(snap.all_correct for snap in snapshots)
    return Figure1Result(
        snapshots=snapshots, diagrams=diagrams, all_correct=all_correct
    )


def run_instrumented(
    times=FIGURE1_TIMES,
    servers=FIGURE1_SERVERS,
    initial_error: float = FIGURE1_INITIAL_ERROR,
    *,
    tau: float = 60.0,
    seed: int = 7,
    sample_period: float = 60.0,
    one_way: float = 0.002,
    telemetry: Optional[ServiceTelemetry] = None,
) -> Tuple[Figure1Result, SimulatedService, ServiceTelemetry]:
    """Figure 1's servers, synchronizing under rule IM, fully telemetered.

    The plain :func:`run` isolates error *growth* (no policy), which makes
    it useless as a telemetry acceptance target — zero rounds means every
    counter reads zero.  This variant keeps the figure's clock population
    (same claimed bounds and actual skews) but lets the servers
    synchronize under rule IM on a tight LAN, so the telemetry plane has
    real traffic to measure: poll rounds, adoptions, resets, and live
    per-edge asynchronism against the Theorem 7 bound.

    Args:
        times: Sample times; the last one is the run horizon.
        servers: ``(name, claimed δ, actual skew)`` triples.
        initial_error: Starting ε shared by the servers.
        tau: Poll period (seconds).
        seed: Root RNG seed — identical seeds must yield byte-identical
            telemetry artefacts.
        sample_period: The telemetry sampler's gauge period (default τ:
            one live gauge sample per poll round).
        one_way: One-way delay bound; kept small so adoptions dominate
            the (1+δ)ξ inflation and the reset counters are nonzero.
        telemetry: A pre-built :class:`ServiceTelemetry` to attach; a
            fresh fully-enabled one is created when None.

    Returns:
        ``(result, service, telemetry)`` — the figure data plus the live
        service and its telemetry plane, ready for export or assertions.
    """
    if telemetry is None:
        telemetry = ServiceTelemetry(sample_period=sample_period)
    specs = [
        ServerSpec(name=name, delta=delta, skew=skew, initial_error=initial_error)
        for name, delta, skew in servers
    ]
    service = build_service(
        full_mesh(len(servers)),
        specs,
        policy=IMPolicy(),
        tau=tau,
        seed=seed,
        lan_delay=UniformDelay(one_way),
        trace_enabled=True,
        telemetry=telemetry,
    )
    snapshots = service.sample(list(times))
    diagrams = [
        render_intervals(snap.intervals(), true_time=snap.time)
        for snap in snapshots
    ]
    all_correct = all(snap.all_correct for snap in snapshots)
    result = Figure1Result(
        snapshots=snapshots, diagrams=diagrams, all_correct=all_correct
    )
    return result, service, telemetry


def main() -> None:
    """Print the reproduced figure."""
    result = run()
    print("Figure 1 — Growth of Maximum Errors (three correct servers)")
    for snap, diagram in zip(result.snapshots, result.diagrams):
        print(f"\n  t = {snap.time:.0f} s")
        for line in diagram.splitlines():
            print("   ", line)
    print(f"\nAll intervals contain the true time: {result.all_correct}")


if __name__ == "__main__":
    main()
