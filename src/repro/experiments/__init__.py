"""Experiments — one module per paper figure, theorem, and anecdote.

Each module exposes ``run(...)`` returning a typed result object and a
``main()`` that prints the reproduced artefact; the benchmark suite under
``benchmarks/`` wraps these with pytest-benchmark.  See DESIGN.md §3 for
the experiment index and EXPERIMENTS.md for paper-vs-measured records.
"""

from . import (
    ablations,
    chaos_soak,
    churn,
    cold_start,
    correctness,
    delay_asymmetry,
    discipline,
    drift_recovery,
    dynamic_gauntlet,
    failures,
    figure1,
    figure2,
    figure3,
    figure3_liars,
    figure4,
    figure4_repair,
    flash_crowd,
    overhead,
    partition,
    quantization,
    scale_gauntlet,
    scenarios,
    tenfold,
    theorem4,
    topology_study,
    theorem8,
    theorem_bounds,
)

__all__ = [
    "ablations",
    "chaos_soak",
    "churn",
    "cold_start",
    "correctness",
    "delay_asymmetry",
    "discipline",
    "drift_recovery",
    "dynamic_gauntlet",
    "failures",
    "figure1",
    "figure2",
    "figure3",
    "figure3_liars",
    "figure4",
    "figure4_repair",
    "flash_crowd",
    "overhead",
    "partition",
    "quantization",
    "scale_gauntlet",
    "scenarios",
    "tenfold",
    "theorem4",
    "topology_study",
    "theorem8",
    "theorem_bounds",
]
