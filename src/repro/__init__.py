"""repro — Maintaining the Time in a Distributed System (Marzullo & Owicki, 1983).

A full reproduction of the paper's interval-based time service:

* :mod:`repro.core` — interval algebra, algorithms **MM** and **IM**,
  Marzullo's fault-tolerant intersection, theorem bounds, recovery,
  consonance.
* :mod:`repro.simulation` — deterministic discrete-event engine.
* :mod:`repro.clocks` — drift/instability/failure clock models.
* :mod:`repro.network` — topologies, bounded-delay links, transport.
* :mod:`repro.service` — time servers, clients, reference sources,
  declarative service assembly.
* :mod:`repro.baselines` — Lamport max, median/mean, first-reply.
* :mod:`repro.analysis` — metrics, consistency groups, convergence, plots.
* :mod:`repro.experiments` — one module per paper figure/theorem/anecdote.

Quickstart::

    from repro import (
        IMPolicy, ServerSpec, build_service, full_mesh,
    )

    graph = full_mesh(4)
    specs = [ServerSpec(f"S{k}", delta=2e-5, skew=(k - 2) * 1e-5)
             for k in range(1, 5)]
    service = build_service(graph, specs, policy=IMPolicy(), tau=60.0)
    service.run_until(3600.0)
    print(service.snapshot().errors)
"""

from .baselines import FirstReplyPolicy, LamportMaxPolicy, MeanPolicy, MedianPolicy
from .clocks import (
    Clock,
    DriftingClock,
    MonotonicClock,
    PerfectClock,
    QuantizedClock,
    RacingClock,
    RandomWalkClock,
    SegmentDriftClock,
    StoppedClock,
    StuckOnResetClock,
    uniform_sampler,
)
from .core import (
    IMPolicy,
    LocalState,
    MMPolicy,
    NullRecovery,
    Reply,
    ResetDecision,
    ServiceParameters,
    SynchronizationPolicy,
    ThirdServerRecovery,
    TimeInterval,
    consistency,
    intersect_all,
    intersect_tolerating,
    marzullo,
    ntp_select,
    theorem2_error_bound,
    theorem3_asynchronism_bound,
    theorem7_asynchronism_bound,
)
from .ordering import (
    IntervalTimestamp,
    TimestampAuthority,
    certain_order,
    commit_wait,
)
from .network import (
    Network,
    TruncatedExponentialDelay,
    UniformDelay,
    full_mesh,
    line,
    random_connected,
    ring,
    star,
    two_level_internet,
)
from .service import (
    ClientResult,
    QueryStrategy,
    ReferenceServer,
    ServerSpec,
    ServiceSnapshot,
    SimulatedService,
    TimeClient,
    TimeServer,
    build_service,
)
from .simulation import RngRegistry, SimulationEngine, TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "Clock",
    "ClientResult",
    "DriftingClock",
    "FirstReplyPolicy",
    "IMPolicy",
    "IntervalTimestamp",
    "LamportMaxPolicy",
    "LocalState",
    "MMPolicy",
    "MeanPolicy",
    "MedianPolicy",
    "MonotonicClock",
    "Network",
    "NullRecovery",
    "PerfectClock",
    "QuantizedClock",
    "QueryStrategy",
    "RacingClock",
    "RandomWalkClock",
    "ReferenceServer",
    "Reply",
    "ResetDecision",
    "RngRegistry",
    "SegmentDriftClock",
    "ServerSpec",
    "ServiceParameters",
    "ServiceSnapshot",
    "SimulatedService",
    "SimulationEngine",
    "StoppedClock",
    "StuckOnResetClock",
    "SynchronizationPolicy",
    "ThirdServerRecovery",
    "TimeClient",
    "TimestampAuthority",
    "TimeInterval",
    "TimeServer",
    "TraceRecorder",
    "TruncatedExponentialDelay",
    "UniformDelay",
    "build_service",
    "certain_order",
    "commit_wait",
    "consistency",
    "full_mesh",
    "intersect_all",
    "intersect_tolerating",
    "line",
    "marzullo",
    "ntp_select",
    "random_connected",
    "ring",
    "star",
    "theorem2_error_bound",
    "theorem3_asynchronism_bound",
    "theorem7_asynchronism_bound",
    "two_level_internet",
    "uniform_sampler",
]
